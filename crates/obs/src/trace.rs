//! The span tracer: per-thread ring buffers of `(span, parent, label,
//! t_start, t_end)` records, plus causal **trace contexts** and
//! cross-thread **flow links**.
//!
//! Recording is designed for the fleet's threading model: every thread
//! owns one ring buffer, a span push touches only the owning thread's
//! ring (the per-ring mutex is uncontended in steady state — the only
//! other locker is an end-of-run [`drain`](Tracer::drain)), and span
//! identity comes from one global atomic, so records from different
//! threads can be correlated after the fact. A full ring overwrites its
//! oldest record and counts the drop instead of blocking or growing —
//! tracing must never apply backpressure to the simulation.
//!
//! Spans are RAII: [`Tracer::span`] returns a [`SpanGuard`] that
//! records the interval when dropped. Nesting is tracked per thread —
//! a span started while another is open becomes its child, which is
//! what makes the Chrome export (see [`crate::export`]) render
//! calibration solves nested inside shard execution. Zero-length
//! *events* ([`Tracer::event`]) mark instants (pool request / publish /
//! adopt hops) with the same parent correlation.
//!
//! # Causal tracing
//!
//! Parent edges only connect records **within** one thread. A request's
//! lifecycle (device submit → scheduler pick → worker solve → publish →
//! device adopt) hops threads, so two extra mechanisms stitch it back
//! together:
//!
//! * every record carries a **trace id** ([`SpanRecord::trace`], 0 =
//!   untraced). [`Tracer::begin_trace`] mints a fresh id and records the
//!   origin event in one step, returning a [`TraceCtx`] small enough to
//!   ride on the request itself;
//! * [`Tracer::link`] records an explicit **flow link** from one record
//!   to another ([`RecordKind::Link`]), which the Chrome exporter turns
//!   into `ph:"s"` / `ph:"f"` flow events so Perfetto draws one
//!   connected arc per request across threads.
//!
//! [`validate`] treats a record whose parent was overwritten by ring
//! overflow (or drained earlier) as a **root**, not an error — causality
//! is best-effort by design; only structural corruption (duplicate ids,
//! negative intervals, cross-thread or escaping parents) fails.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a [`SpanRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// An interval (`start_ns..end_ns`).
    Span,
    /// An instant event (`end_ns == start_ns`).
    Event,
    /// A cross-thread flow link: causality flows from record `from` to
    /// record `to`. The link itself is an instant on the recording
    /// thread; its endpoints may live on any thread (and may have been
    /// dropped by ring overflow — exporters skip a link whose endpoints
    /// are missing).
    Link {
        /// Source record id (where the flow starts).
        from: u64,
        /// Destination record id (where the flow lands).
        to: u64,
    },
}

/// One completed record: a span interval, an instant event, or a flow
/// link (see [`RecordKind`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, 0 for roots.
    pub parent: u64,
    /// Static label (`"calibrate"`, `"fleet_shard"`, ...).
    pub label: &'static str,
    /// Start, nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the tracer's epoch.
    pub end_ns: u64,
    /// Tracer-assigned thread index.
    pub thread: u64,
    /// Free numeric payload (cohort index, shard index, level size...).
    pub arg: u64,
    /// Trace id this record belongs to, 0 for untraced records.
    pub trace: u64,
    /// Span, event, or flow link.
    pub kind: RecordKind,
}

/// A minted trace context: the trace id plus the origin record, small
/// enough to ride on a request across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// The trace id (0 = no trace).
    pub trace: u64,
    /// Id of the origin record (0 when it was sampled out).
    pub origin: u64,
}

impl TraceCtx {
    /// The inert context: no trace, no origin.
    pub const NONE: TraceCtx = TraceCtx {
        trace: 0,
        origin: 0,
    };

    /// Whether this context carries a live trace id.
    pub fn is_active(&self) -> bool {
        self.trace != 0
    }
}

#[derive(Debug, Default)]
struct RingState {
    records: VecDeque<SpanRecord>,
    dropped: u64,
}

#[derive(Debug)]
struct ThreadRing {
    thread: u64,
    capacity: usize,
    state: Mutex<RingState>,
}

impl ThreadRing {
    fn push(&self, record: SpanRecord) {
        let mut state = self.state.lock().expect("span ring poisoned");
        if state.records.len() == self.capacity {
            state.records.pop_front();
            state.dropped += 1;
        }
        state.records.push_back(record);
    }
}

/// Per-thread recording context for one tracer: the ring plus the open
/// span stack that tracks nesting.
struct ThreadCtx {
    tracer_id: usize,
    ring: Arc<ThreadRing>,
    stack: Vec<u64>,
    tick: u32,
}

thread_local! {
    /// Contexts for every tracer this thread has recorded into. A
    /// linear scan — in practice one global tracer, plus short-lived
    /// test instances.
    static THREAD_CTXS: RefCell<Vec<ThreadCtx>> = const { RefCell::new(Vec::new()) };
}

/// Everything a [`Tracer::drain`] hands back.
#[derive(Debug, Clone, Default)]
pub struct TraceDrain {
    /// Records from every thread's ring, sorted by `(start_ns, id)`.
    /// Each record appears in exactly one drain.
    pub records: Vec<SpanRecord>,
    /// Records lost to ring overwrites since the previous drain.
    pub dropped: u64,
}

/// The span recorder (see the module docs).
#[derive(Debug)]
pub struct Tracer {
    tracer_id: usize,
    epoch: Instant,
    capacity: usize,
    next_span: AtomicU64,
    next_trace: AtomicU64,
    next_thread: AtomicU64,
    sample_every: AtomicU32,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

/// Default per-thread ring capacity: at ~64 B a record, 64k spans keep
/// a thread's ring around 4 MiB while comfortably holding every span of
/// a 16k-device bench shard.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

static NEXT_TRACER_ID: AtomicUsize = AtomicUsize::new(1);

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_RING_CAPACITY)
    }
}

impl Tracer {
    /// A tracer whose per-thread rings hold `capacity` records each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Tracer {
            tracer_id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            capacity,
            next_span: AtomicU64::new(1),
            next_trace: AtomicU64::new(1),
            next_thread: AtomicU64::new(0),
            sample_every: AtomicU32::new(1),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Record every `every`-th span per thread (1 = all, the default;
    /// 0 = none). Events follow the same ratio.
    pub fn set_sample_every(&self, every: u32) {
        self.sample_every.store(every, Ordering::Relaxed);
    }

    /// The configured sampling denominator.
    pub fn sample_every(&self) -> u32 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this tracer was created.
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Run `f` with this thread's context, registering a fresh ring on
    /// the thread's first record into this tracer.
    fn with_ctx<R>(&self, f: impl FnOnce(&mut ThreadCtx) -> R) -> R {
        THREAD_CTXS.with(|ctxs| {
            let mut ctxs = ctxs.borrow_mut();
            if let Some(ctx) = ctxs.iter_mut().find(|c| c.tracer_id == self.tracer_id) {
                return f(ctx);
            }
            let ring = Arc::new(ThreadRing {
                thread: self.next_thread.fetch_add(1, Ordering::Relaxed),
                capacity: self.capacity,
                state: Mutex::new(RingState::default()),
            });
            self.rings
                .lock()
                .expect("ring directory poisoned")
                .push(Arc::clone(&ring));
            ctxs.push(ThreadCtx {
                tracer_id: self.tracer_id,
                ring,
                stack: Vec::new(),
                tick: 0,
            });
            f(ctxs.last_mut().expect("just pushed"))
        })
    }

    /// This thread's sampling decision: admit the record and advance the
    /// per-thread tick.
    fn sampled(&self, ctx: &mut ThreadCtx) -> bool {
        let every = self.sample_every.load(Ordering::Relaxed);
        if every == 0 {
            return false;
        }
        let tick = ctx.tick;
        ctx.tick = ctx.tick.wrapping_add(1);
        tick.is_multiple_of(every)
    }

    /// Mint a fresh trace id (never 0). Cheap: one relaxed atomic.
    pub fn mint_trace(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Mint a trace and record its origin event in one step: the
    /// returned [`TraceCtx`] carries both the trace id and the origin
    /// record id (0 when the event was sampled out) and is what request
    /// structs carry across threads.
    pub fn begin_trace(&self, label: &'static str, arg: u64) -> TraceCtx {
        let trace = self.mint_trace();
        let origin = self.event_in(label, arg, trace);
        TraceCtx { trace, origin }
    }

    /// Open an untraced span. The returned guard records the interval
    /// when it drops; `None` means the span was sampled out. Drop the
    /// guard on the thread that opened it (it is `!Send`, so the
    /// compiler holds you to that).
    pub fn span(&self, label: &'static str, arg: u64) -> Option<SpanGuard> {
        self.span_in(label, arg, 0)
    }

    /// Open a span belonging to `trace` (0 = untraced; see [`span`]
    /// (Self::span)).
    pub fn span_in(&self, label: &'static str, arg: u64, trace: u64) -> Option<SpanGuard> {
        self.with_ctx(|ctx| {
            if !self.sampled(ctx) {
                return None;
            }
            let id = self.next_span.fetch_add(1, Ordering::Relaxed);
            let parent = ctx.stack.last().copied().unwrap_or(0);
            ctx.stack.push(id);
            Some(SpanGuard {
                ring: Arc::clone(&ctx.ring),
                tracer_id: self.tracer_id,
                epoch: self.epoch,
                id,
                parent,
                label,
                arg,
                trace,
                start_ns: self.now_ns(),
                _not_send: std::marker::PhantomData,
            })
        })
    }

    /// Record an untraced instant event under the currently open span.
    /// Returns the record id (0 when sampled out).
    pub fn event(&self, label: &'static str, arg: u64) -> u64 {
        self.event_in(label, arg, 0)
    }

    /// Record an instant event belonging to `trace`. Returns the record
    /// id (0 when sampled out) — flow links take it as an endpoint.
    pub fn event_in(&self, label: &'static str, arg: u64, trace: u64) -> u64 {
        self.push_instant(label, arg, trace, RecordKind::Event)
    }

    /// Record a flow link: causality flows from record `from` to record
    /// `to` within `trace`. A no-op returning 0 when either endpoint is
    /// 0 (its record was sampled out) or the link itself is sampled out.
    pub fn link(&self, label: &'static str, from: u64, to: u64, trace: u64) -> u64 {
        if from == 0 || to == 0 {
            return 0;
        }
        self.push_instant(label, trace, trace, RecordKind::Link { from, to })
    }

    fn push_instant(&self, label: &'static str, arg: u64, trace: u64, kind: RecordKind) -> u64 {
        self.with_ctx(|ctx| {
            if !self.sampled(ctx) {
                return 0;
            }
            let now = self.now_ns();
            let id = self.next_span.fetch_add(1, Ordering::Relaxed);
            let record = SpanRecord {
                id,
                parent: ctx.stack.last().copied().unwrap_or(0),
                label,
                start_ns: now,
                end_ns: now,
                thread: ctx.ring.thread,
                arg,
                trace,
                kind,
            };
            ctx.ring.push(record);
            id
        })
    }

    /// Move every completed record out of every thread's ring. Each
    /// record is returned by exactly one drain (rings are emptied under
    /// their mutex); spans still open stay with their guard and appear
    /// in a later drain.
    pub fn drain(&self) -> TraceDrain {
        let rings: Vec<Arc<ThreadRing>> = self
            .rings
            .lock()
            .expect("ring directory poisoned")
            .iter()
            .map(Arc::clone)
            .collect();
        let mut out = TraceDrain::default();
        for ring in rings {
            let mut state = ring.state.lock().expect("span ring poisoned");
            out.records.extend(state.records.drain(..));
            out.dropped += std::mem::take(&mut state.dropped);
        }
        out.records.sort_by_key(|r| (r.start_ns, r.id));
        out
    }
}

/// RAII guard for an open span (see [`Tracer::span`]).
#[must_use = "a span guard records its interval when dropped"]
pub struct SpanGuard {
    ring: Arc<ThreadRing>,
    tracer_id: usize,
    epoch: Instant,
    id: u64,
    parent: u64,
    label: &'static str,
    arg: u64,
    trace: u64,
    start_ns: u64,
    /// The open-span stack is thread-local; keep the guard on its
    /// opening thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard {
    /// The span's record id — a flow-link endpoint for cross-thread
    /// stitching.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end_ns = self.epoch.elapsed().as_nanos() as u64;
        self.ring.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            label: self.label,
            start_ns: self.start_ns,
            end_ns: end_ns.max(self.start_ns),
            thread: self.ring.thread,
            arg: self.arg,
            trace: self.trace,
            kind: RecordKind::Span,
        });
        THREAD_CTXS.with(|ctxs| {
            let mut ctxs = ctxs.borrow_mut();
            if let Some(ctx) = ctxs.iter_mut().find(|c| c.tracer_id == self.tracer_id) {
                match ctx.stack.last() {
                    Some(&top) if top == self.id => {
                        ctx.stack.pop();
                    }
                    // Out-of-order drop (guards held across each other):
                    // surgically remove this id, keep the rest nested.
                    _ => ctx.stack.retain(|&open| open != self.id),
                }
            }
        });
    }
}

/// Check that a drained record set is well-formed: ids unique, every
/// interval non-negative, and every non-root record whose parent is
/// **present** contained in that parent on the same thread.
///
/// A record whose parent is *missing* — overwritten by ring overflow,
/// drained earlier, or its guard still open — degrades to a **root**
/// and passes: causality is best-effort and merged multi-thread drains
/// with partial histories must stay valid. Flow links are likewise
/// lenient about missing endpoints (exporters simply skip them).
pub fn validate(records: &[SpanRecord]) -> Result<(), String> {
    use std::collections::HashMap;
    let mut by_id: HashMap<u64, &SpanRecord> = HashMap::with_capacity(records.len());
    for r in records {
        if r.id == 0 {
            return Err(format!("span {:?} uses the reserved id 0", r.label));
        }
        if r.end_ns < r.start_ns {
            return Err(format!("span {} ({}) ends before it starts", r.id, r.label));
        }
        if let RecordKind::Link { from, to } = r.kind {
            if from == 0 || to == 0 {
                return Err(format!(
                    "link {} ({}) uses the reserved id 0 as an endpoint",
                    r.id, r.label
                ));
            }
        }
        if by_id.insert(r.id, r).is_some() {
            return Err(format!("span id {} appears twice", r.id));
        }
    }
    for r in records {
        if r.parent == 0 {
            continue;
        }
        let Some(p) = by_id.get(&r.parent) else {
            // Dropped (or not-yet-drained) parent: the record is an
            // honest root of what remains.
            continue;
        };
        if p.thread != r.thread {
            return Err(format!(
                "span {} ({}) is parented across threads ({} vs {})",
                r.id, r.label, r.thread, p.thread
            ));
        }
        if p.start_ns > r.start_ns || p.end_ns < r.end_ns {
            return Err(format!(
                "span {} ({}) [{}, {}] escapes parent {} [{}, {}]",
                r.id, r.label, r.start_ns, r.end_ns, p.id, p.start_ns, p.end_ns
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_validate() {
        let t = Tracer::new(128);
        {
            let _outer = t.span("outer", 1);
            t.event("ping", 9);
            {
                let _inner = t.span("inner", 2);
            }
        }
        let drain = t.drain();
        assert_eq!(drain.dropped, 0);
        assert_eq!(drain.records.len(), 3);
        validate(&drain.records).expect("well-nested");
        let outer = drain
            .records
            .iter()
            .find(|r| r.label == "outer")
            .expect("outer recorded");
        let inner = drain
            .records
            .iter()
            .find(|r| r.label == "inner")
            .expect("inner recorded");
        let ping = drain
            .records
            .iter()
            .find(|r| r.label == "ping")
            .expect("event recorded");
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(ping.parent, outer.id);
        assert_eq!(ping.kind, RecordKind::Event);
        assert!(ping.start_ns == ping.end_ns);
        assert!(outer.start_ns <= inner.start_ns && outer.end_ns >= inner.end_ns);
        assert!(
            drain.records.iter().all(|r| r.trace == 0),
            "plain spans are untraced"
        );
    }

    #[test]
    fn drain_is_move_not_copy() {
        let t = Tracer::new(128);
        {
            let _s = t.span("once", 0);
        }
        assert_eq!(t.drain().records.len(), 1);
        assert_eq!(t.drain().records.len(), 0, "second drain finds nothing");
    }

    #[test]
    fn open_spans_stay_with_their_guard() {
        let t = Tracer::new(128);
        let open = t.span("open", 0);
        {
            let _closed = t.span("closed", 0);
        }
        let first = t.drain();
        assert_eq!(first.records.len(), 1);
        assert_eq!(first.records[0].label, "closed");
        drop(open);
        let second = t.drain();
        assert_eq!(second.records.len(), 1);
        assert_eq!(second.records[0].label, "open");
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let t = Tracer::new(4);
        for i in 0..7u64 {
            let _s = t.span("s", i);
        }
        let drain = t.drain();
        assert_eq!(drain.records.len(), 4);
        assert_eq!(drain.dropped, 3);
        let args: Vec<u64> = drain.records.iter().map(|r| r.arg).collect();
        assert_eq!(args, vec![3, 4, 5, 6], "oldest records were evicted");
    }

    #[test]
    fn sampling_thins_spans() {
        let t = Tracer::new(128);
        t.set_sample_every(2);
        for i in 0..10u64 {
            let _s = t.span("s", i);
        }
        assert_eq!(t.drain().records.len(), 5);
        t.set_sample_every(0);
        for _ in 0..10 {
            let _s = t.span("s", 0);
        }
        assert_eq!(t.drain().records.len(), 0, "0 disables recording");
    }

    #[test]
    fn cross_thread_records_share_one_id_space() {
        let t = std::sync::Arc::new(Tracer::new(128));
        let mut handles = Vec::new();
        for k in 0..4u64 {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let _s = t.span("worker", k);
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        let drain = t.drain();
        assert_eq!(drain.records.len(), 4);
        validate(&drain.records).expect("distinct threads, distinct roots");
        let mut ids: Vec<u64> = drain.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "ids unique across threads");
        let mut threads: Vec<u64> = drain.records.iter().map(|r| r.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 4, "each thread got its own ring");
    }

    #[test]
    fn trace_contexts_tag_records_and_links_connect_them() {
        let t = Tracer::new(128);
        let ctx = t.begin_trace("submit", 3);
        assert!(ctx.is_active());
        assert_ne!(ctx.origin, 0);
        let pick = t.event_in("pick", 3, ctx.trace);
        let link = t.link("queue_flow", ctx.origin, pick, ctx.trace);
        assert_ne!(link, 0);
        let solve_id = {
            let solve = t.span_in("solve", 3, ctx.trace).expect("sampled in");
            t.link("solve_flow", pick, solve.id(), ctx.trace);
            solve.id()
        };
        let drain = t.drain();
        validate(&drain.records).expect("traced records validate");
        let traced: Vec<_> = drain
            .records
            .iter()
            .filter(|r| r.trace == ctx.trace)
            .collect();
        assert_eq!(traced.len(), 5, "submit, pick, 2 links, solve");
        let links: Vec<_> = drain
            .records
            .iter()
            .filter_map(|r| match r.kind {
                RecordKind::Link { from, to } => Some((from, to)),
                _ => None,
            })
            .collect();
        assert!(links.contains(&(ctx.origin, pick)));
        assert!(links.contains(&(pick, solve_id)));
    }

    #[test]
    fn trace_ids_are_unique_and_never_zero() {
        let t = Tracer::new(128);
        let a = t.mint_trace();
        let b = t.mint_trace();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn links_with_sampled_out_endpoints_are_suppressed() {
        let t = Tracer::new(128);
        assert_eq!(t.link("flow", 0, 7, 1), 0, "missing from endpoint");
        assert_eq!(t.link("flow", 7, 0, 1), 0, "missing to endpoint");
        assert_eq!(t.drain().records.len(), 0);
    }

    #[test]
    fn validate_rejects_duplicates_and_structural_corruption() {
        let r1 = SpanRecord {
            id: 1,
            parent: 0,
            label: "a",
            start_ns: 0,
            end_ns: 10,
            thread: 0,
            arg: 0,
            trace: 0,
            kind: RecordKind::Span,
        };
        let dup = vec![r1.clone(), r1.clone()];
        assert!(validate(&dup).is_err());
        let escapes = vec![
            r1.clone(),
            SpanRecord {
                id: 3,
                parent: 1,
                start_ns: 5,
                end_ns: 20,
                ..r1.clone()
            },
        ];
        assert!(validate(&escapes).is_err());
        let cross_thread = vec![
            r1.clone(),
            SpanRecord {
                id: 4,
                parent: 1,
                thread: 9,
                start_ns: 2,
                end_ns: 3,
                ..r1.clone()
            },
        ];
        assert!(validate(&cross_thread).is_err());
        let backwards = vec![SpanRecord {
            id: 5,
            start_ns: 10,
            end_ns: 3,
            ..r1.clone()
        }];
        assert!(validate(&backwards).is_err());
    }

    #[test]
    fn a_dropped_parent_degrades_to_a_root_not_an_error() {
        // Parent id 99 is nowhere in the drain (overwritten by ring
        // overflow): the orphan is an honest root of what remains.
        let orphan = vec![SpanRecord {
            id: 2,
            parent: 99,
            label: "orphan",
            start_ns: 0,
            end_ns: 10,
            thread: 0,
            arg: 0,
            trace: 7,
            kind: RecordKind::Span,
        }];
        validate(&orphan).expect("missing parent degrades to root");
    }

    #[test]
    fn validate_accepts_merged_multi_thread_drains_with_links_and_dropped_parents() {
        // Build the merged shape the flight recorder accumulates: two
        // threads, a flow link between them, and an overflow that drops
        // the submit-side parent of the first window.
        let t = std::sync::Arc::new(Tracer::new(2));
        let ctx = {
            let _outer = t.span("window0", 0); // will be overwritten below
            t.begin_trace("submit", 1)
        };
        // Overflow the 2-slot ring on this thread: the window0 span and
        // the submit event get pushed out by newer records.
        for i in 0..4u64 {
            t.event("filler", i);
        }
        let worker = {
            let t2 = std::sync::Arc::clone(&t);
            std::thread::spawn(move || {
                let pick = t2.event_in("pick", 1, ctx.trace);
                t2.link("queue_flow", ctx.origin, pick, ctx.trace);
            })
        };
        worker.join().expect("worker panicked");
        let drain = t.drain();
        assert!(drain.dropped > 0, "the overflow actually happened");
        // The link's `from` endpoint was dropped; fillers reference the
        // dropped window0 parent. Both degrade, neither fails.
        validate(&drain.records).expect("merged drain with partial history validates");
        assert!(drain
            .records
            .iter()
            .any(|r| matches!(r.kind, RecordKind::Link { .. })));
    }
}
