//! Measure the coarse-to-fine recalibration pipeline and write
//! `BENCH_recalibrate.json`.
//!
//! ```text
//! cargo run --release -p capman-bench --bin bench_recalibrate             # full sizes
//! cargo run --release -p capman-bench --bin bench_recalibrate -- --quick  # CI smoke
//! cargo run --release -p capman-bench --bin bench_recalibrate -- --out p  # custom path
//! cargo run --release -p capman-bench --features obs --bin bench_recalibrate -- \
//!     --trace-out recal.trace.json --metrics-out recal.metrics.json
//! ```
//!
//! Per fixture size the binary solves the hierarchically clustered
//! device MDP (see `capman_bench::mdp_fixtures::clustered_device_mdp`)
//! three ways — the warm-started coarse-to-fine pipeline, the per-level
//! cold baseline, and the warm pipeline with the opt-in f32 kernel —
//! asserts that warm and cold reach the same fixed point and policy
//! (and that f32 stays within 1e-3 of the f64 oracle) **before** any
//! timing, then reports per-level warm-vs-cold sweep counts and
//! interleaved-rep wall times.

use std::time::Instant;

use capman_bench::mdp_fixtures::{
    build_csr, clustered_device_mdp, clustered_device_transitions, drift_clustered_rows,
    row_patches, RECAL_THETAS,
};
use capman_bench::perf_report::{IncrementalRow, RecalLevelRow, RecalReport, RecalRow};
use capman_bench::trials::{self, SampleGroup};
use capman_mdp::pipeline::{QuotientScratch, RecalibrationPipeline};
use capman_mdp::value_iteration::Precision;
use capman_mdp::ExecutionMode;

// rho = 0.9 keeps the f32 kernel inside its documented 1e-3 envelope
// (error ~ F32_EPS_FLOOR * rho / (1 - rho)) while still forcing a cold
// solve through ~200 full-space sweeps at eps = 1e-9.
const RHO: f64 = 0.9;
const EPS: f64 = 1e-9;
const SEED: u64 = 42;

/// Wall time of one call to `f`, milliseconds.
fn time_once_ms<T>(mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    let out = f();
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(out);
    ms
}

fn recal_row(n_states: usize, reps: usize, strict: bool) -> RecalRow {
    let (mdp, sigma) = clustered_device_mdp(n_states, SEED);
    let pipe = RecalibrationPipeline::new(RHO, EPS);
    let pipe32 = pipe.with_precision(Precision::F32);
    let mut scratch = QuotientScratch::new();
    let mode = ExecutionMode::Parallel; // auto-dispatches per level

    // --- Equivalence before timing -------------------------------------
    let warm = pipe.solve_with_scratch(&mdp, &sigma, &RECAL_THETAS, None, mode, &mut scratch);
    let cold = pipe.solve_cold(&mdp, &sigma, &RECAL_THETAS, mode, &mut scratch);
    assert_eq!(
        warm.solution.policy, cold.solution.policy,
        "warm and cold pipelines must extract the same greedy policy"
    );
    let tol = 2.0 * EPS / (1.0 - RHO);
    for (s, (a, b)) in warm
        .solution
        .values
        .iter()
        .zip(&cold.solution.values)
        .enumerate()
    {
        assert!(
            (a - b).abs() < tol,
            "state {s}: warm {a} vs cold {b} outside the contraction bound"
        );
    }
    let fast = pipe32.solve_with_scratch(&mdp, &sigma, &RECAL_THETAS, None, mode, &mut scratch);
    let f32_max_abs_err = fast
        .solution
        .values
        .iter()
        .zip(&cold.solution.values)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        f32_max_abs_err < 1e-3,
        "f32 kernel drifted {f32_max_abs_err} from the f64 oracle"
    );

    // The headline claim, checked on sweeps (deterministic) always:
    assert_eq!(
        warm.levels.len(),
        cold.levels.len(),
        "both pipelines must solve the same ladder"
    );
    assert!(
        warm.total_sweeps() < cold.total_sweeps(),
        "warm pipeline must need fewer sweeps ({} vs {})",
        warm.total_sweeps(),
        cold.total_sweeps()
    );

    // --- Timing (interleaved reps, min headline + warm samples) --------
    let mut warm_ms_samples = Vec::with_capacity(reps);
    let mut cold_ms = f64::INFINITY;
    let mut f32_ms = f64::INFINITY;
    for _ in 0..reps {
        warm_ms_samples.push(time_once_ms(|| {
            pipe.solve_with_scratch(&mdp, &sigma, &RECAL_THETAS, None, mode, &mut scratch)
        }));
        cold_ms = cold_ms.min(time_once_ms(|| {
            pipe.solve_cold(&mdp, &sigma, &RECAL_THETAS, mode, &mut scratch)
        }));
        f32_ms = f32_ms.min(time_once_ms(|| {
            pipe32.solve_with_scratch(&mdp, &sigma, &RECAL_THETAS, None, mode, &mut scratch)
        }));
    }
    let warm_ms = warm_ms_samples
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    if strict {
        assert!(
            warm_ms < cold_ms,
            "warm pipeline must be faster at {n_states} states ({warm_ms:.3} ms vs {cold_ms:.3} ms)"
        );
    }

    let levels = warm
        .levels
        .iter()
        .zip(&cold.levels)
        .map(|(w, c)| {
            assert_eq!(w.theta, c.theta);
            assert_eq!(w.n_clusters, c.n_clusters);
            RecalLevelRow {
                theta: w.theta,
                n_clusters: w.n_clusters,
                warm_sweeps: w.sweeps,
                cold_sweeps: c.sweeps,
            }
        })
        .collect();

    RecalRow {
        states: n_states,
        action_nodes: mdp.n_action_nodes(),
        outcomes: mdp.n_outcomes(),
        levels,
        warm_final_sweeps: warm.final_sweeps,
        cold_final_sweeps: cold.final_sweeps,
        warm_total_sweeps: warm.total_sweeps(),
        cold_total_sweeps: cold.total_sweeps(),
        warm_ms,
        warm_ms_samples,
        cold_ms,
        f32_ms,
        f32_max_abs_err,
    }
}

/// One drift-ladder point: drift `dirty_frac` of the fixture's rows,
/// then race the incremental period (in-place `patch_rows` + closure-
/// restricted `solve_incremental`) against the full-rebuild period
/// (`build_csr` from the drifted table + warm `solve_with_scratch`) —
/// the cost a pre-incremental calibrator pays every interval. Patches
/// are assembled outside the timed region: the profiler hands them over
/// in O(dirty rows) from its row table. Equivalence is asserted before
/// any timing: the patched model is bitwise the rebuild, and the
/// restricted solve matches the full warm solve (bitwise on the
/// fallback path, policy + contraction tolerance otherwise).
fn incremental_row(n_states: usize, dirty_frac: f64, reps: usize) -> IncrementalRow {
    let (base_txs, sigma) = clustered_device_transitions(n_states, SEED);
    let base_mdp = build_csr(n_states, &base_txs);
    let pipe = RecalibrationPipeline::new(RHO, EPS);
    let mut scratch = QuotientScratch::new();
    let mode = ExecutionMode::Parallel;
    let prior = pipe
        .solve_with_scratch(&base_mdp, &sigma, &RECAL_THETAS, None, mode, &mut scratch)
        .solution
        .values;

    let mut drifted_txs = base_txs.clone();
    let dirty = drift_clustered_rows(&mut drifted_txs, dirty_frac, SEED ^ 0x5eed);
    let patches = row_patches(&drifted_txs, &dirty);
    let mut owners: Vec<usize> = dirty.iter().map(|&(s, _)| s).collect();
    owners.dedup(); // dirty rows are sorted by (state, action)

    // --- Equivalence before timing -------------------------------------
    let mut patched = base_mdp.clone();
    patched.patch_rows(&patches);
    assert_eq!(
        patched,
        build_csr(n_states, &drifted_txs),
        "patched model must be bitwise the full rebuild"
    );
    let inc = pipe.solve_incremental(
        &patched,
        &sigma,
        &RECAL_THETAS,
        &prior,
        &owners,
        mode,
        &mut scratch,
    );
    let full = pipe.solve_with_scratch(
        &patched,
        &sigma,
        &RECAL_THETAS,
        Some(&prior),
        mode,
        &mut scratch,
    );
    if inc.stats.full_fallback {
        assert_eq!(
            inc.outcome, full,
            "the fallback path must be bitwise the full warm pipeline"
        );
    } else {
        assert_eq!(
            inc.outcome.solution.policy, full.solution.policy,
            "restricted and full solves must extract the same greedy policy"
        );
        let tol = 2.0 * EPS / (1.0 - RHO);
        for (s, (a, b)) in inc
            .outcome
            .solution
            .values
            .iter()
            .zip(&full.solution.values)
            .enumerate()
        {
            assert!(
                (a - b).abs() < tol,
                "state {s}: incremental {a} vs full {b} outside the contraction bound"
            );
        }
    }

    // --- Timing (interleaved reps, min headline + per-rep samples) -----
    let mut wall_ms_samples = Vec::with_capacity(reps);
    let mut full_ms_samples = Vec::with_capacity(reps);
    let mut work = patched.clone();
    for _ in 0..reps {
        wall_ms_samples.push(time_once_ms(|| {
            work.patch_rows(&patches);
            pipe.solve_incremental(
                &work,
                &sigma,
                &RECAL_THETAS,
                &prior,
                &owners,
                mode,
                &mut scratch,
            )
        }));
        full_ms_samples.push(time_once_ms(|| {
            let rebuilt = build_csr(n_states, &drifted_txs);
            pipe.solve_with_scratch(
                &rebuilt,
                &sigma,
                &RECAL_THETAS,
                Some(&prior),
                mode,
                &mut scratch,
            )
        }));
    }
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    IncrementalRow {
        dirty_frac,
        states: n_states,
        dirty_rows: dirty.len(),
        dirty_states: owners.len(),
        affected_states: inc.stats.affected_states,
        full_fallback: inc.stats.full_fallback,
        wall_ms: min(&wall_ms_samples),
        wall_ms_samples,
        full_ms: min(&full_ms_samples),
        full_ms_samples,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_recalibrate.json")
        .to_string();
    let trials_out = args
        .iter()
        .position(|a| a == "--trials")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let dirty_frac_arg: Option<f64> = args
        .iter()
        .position(|a| a == "--dirty-frac")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--dirty-frac takes a number in [0, 1]"));
    let require_incremental_win = args.iter().any(|a| a == "--require-incremental-win");
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // Quick mode keeps the equivalence and sweep-count asserts but skips
    // the wall-clock assert: on a loaded CI box a 96-state timing can
    // flap, while sweep counts are deterministic.
    let (sizes, reps): (&[usize], usize) = if quick {
        (&[96, 128], 2)
    } else {
        (&[256, 512, 1024], 5)
    };
    // The drift ladder runs at one fixture size so `perf_gate` can key
    // its rows by dirty fraction alone.
    let (ladder_states, default_ladder): (usize, &[f64]) = if quick {
        (96, &[0.05])
    } else {
        (1024, &[0.01, 0.05, 0.25, 1.0])
    };
    let ladder: Vec<f64> = match dirty_frac_arg {
        Some(f) => vec![f],
        None => default_ladder.to_vec(),
    };

    let mut report = RecalReport {
        threads: rayon::current_num_threads(),
        rho: RHO,
        eps: EPS,
        ..RecalReport::default()
    };

    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>11} {:>11} {:>9}",
        "states", "warm_sweeps", "cold_sweeps", "sweep_ratio", "warm_ms", "cold_ms", "speedup"
    );
    for &n in sizes {
        let row = recal_row(n, reps, !quick);
        println!(
            "{:>7} {:>12} {:>12} {:>11.1}x {:>11.3} {:>11.3} {:>8.1}x",
            row.states,
            row.warm_total_sweeps,
            row.cold_total_sweeps,
            row.sweep_ratio(),
            row.warm_ms,
            row.cold_ms,
            row.speedup()
        );
        for lvl in &row.levels {
            println!(
                "        level theta={:<5} {:>5} clusters: warm {:>5} vs cold {:>5} sweeps",
                lvl.theta, lvl.n_clusters, lvl.warm_sweeps, lvl.cold_sweeps
            );
        }
        report.rows.push(row);
    }

    println!(
        "\n{:>10} {:>7} {:>10} {:>9} {:>9} {:>10} {:>10} {:>9}",
        "dirty_frac",
        "states",
        "dirty_rows",
        "affected",
        "fallback",
        "inc_ms",
        "full_ms",
        "speedup"
    );
    for &frac in &ladder {
        let row = incremental_row(ladder_states, frac, reps);
        println!(
            "{:>10} {:>7} {:>10} {:>9} {:>9} {:>10.3} {:>10.3} {:>8.1}x",
            row.dirty_frac,
            row.states,
            row.dirty_rows,
            row.affected_states,
            if row.full_fallback { "yes" } else { "no" },
            row.wall_ms,
            row.full_ms,
            row.speedup()
        );
        if require_incremental_win {
            assert!(
                row.wall_ms < row.full_ms,
                "incremental must beat the full rebuild at dirty_frac {} \
                 ({:.3} ms vs {:.3} ms)",
                row.dirty_frac,
                row.wall_ms,
                row.full_ms
            );
        }
        report.incremental.push(row);
    }

    std::fs::write(&out_path, report.to_json()).expect("write BENCH_recalibrate.json");
    println!("\nwrote {out_path}");

    if let Some(dir) = trials_out.as_deref() {
        let groups: Vec<SampleGroup> = report
            .rows
            .iter()
            .map(|row| {
                SampleGroup::new(
                    &format!("states-{}", row.states),
                    "warm",
                    "warm_ms",
                    &row.warm_ms_samples,
                )
            })
            .collect();
        trials::emit(std::path::Path::new(dir), "bench_recalibrate", &groups)
            .unwrap_or_else(|e| panic!("emit trials to {dir}: {e}"));
        println!("wrote {dir} ({} sample groups)", groups.len());
    }

    // Observability exports (meaningful with --features obs; empty
    // otherwise — the kernels only record through the global hooks).
    if let Some(path) = trace_out.as_deref() {
        let drain = capman_obs::drain();
        std::fs::write(path, capman_obs::export::chrome_trace(&drain))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path} ({} spans)", drain.records.len());
    }
    if let Some(path) = metrics_out.as_deref() {
        std::fs::write(
            path,
            capman_obs::export::metrics_json(&capman_obs::snapshot()),
        )
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
