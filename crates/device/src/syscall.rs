//! The raw system-call vocabulary recorded by the profiler.
//!
//! The paper's finite MDP records "over 200 system calls" as its action
//! alphabet (Section III-D). Following Pathak et al.'s system-call power
//! modelling, each raw call (or binder transaction) is classified into one
//! of the semantic [`Action`] classes that actually move the power-state
//! machine; calls with no power effect classify as [`Action::CpuBusy`]
//! (they keep the CPU in C0) or [`Action::TimerTick`].

use crate::fsm::Action;

/// A raw system call (or binder transaction) and its action class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Syscall {
    /// The call name as recorded by the tracer.
    pub name: &'static str,
    /// The semantic class it maps to.
    pub action: Action,
}

macro_rules! syscalls {
    ($(($name:literal, $action:ident)),+ $(,)?) => {
        &[$(Syscall { name: $name, action: Action::$action }),+]
    };
}

/// The recorded system-call table: every Linux/Android call the profiler
/// observed, with its action class.
pub const SYSCALL_TABLE: &[Syscall] = syscalls![
    // -- process / scheduling (keep the CPU busy) --------------------
    ("fork", CpuBusy),
    ("vfork", CpuBusy),
    ("clone", AppLaunch),
    ("execve", AppLaunch),
    ("execveat", AppLaunch),
    ("exit", AppExit),
    ("exit_group", AppExit),
    ("wait4", CpuIdle),
    ("waitid", CpuIdle),
    ("kill", CpuBusy),
    ("tkill", CpuBusy),
    ("tgkill", CpuBusy),
    ("getpid", CpuBusy),
    ("getppid", CpuBusy),
    ("gettid", CpuBusy),
    ("sched_yield", CpuIdle),
    ("sched_setaffinity", CpuBusy),
    ("sched_getaffinity", CpuBusy),
    ("sched_setscheduler", CpuBusy),
    ("sched_getscheduler", CpuBusy),
    ("sched_setparam", CpuBusy),
    ("sched_getparam", CpuBusy),
    ("sched_get_priority_max", CpuBusy),
    ("sched_get_priority_min", CpuBusy),
    ("setpriority", CpuBusy),
    ("getpriority", CpuBusy),
    ("prctl", CpuBusy),
    ("arch_prctl", CpuBusy),
    ("ptrace", CpuBusy),
    ("seccomp", CpuBusy),
    ("unshare", CpuBusy),
    ("setns", CpuBusy),
    ("capget", CpuBusy),
    ("capset", CpuBusy),
    ("personality", CpuBusy),
    ("prlimit64", CpuBusy),
    ("getrlimit", CpuBusy),
    ("setrlimit", CpuBusy),
    ("getrusage", CpuBusy),
    // -- memory -------------------------------------------------------
    ("mmap", CpuBusy),
    ("mmap2", CpuBusy),
    ("munmap", CpuBusy),
    ("mprotect", CpuBusy),
    ("mremap", CpuBusy),
    ("msync", CpuBusy),
    ("madvise", CpuBusy),
    ("mincore", CpuBusy),
    ("mlock", CpuBusy),
    ("munlock", CpuBusy),
    ("mlockall", CpuBusy),
    ("munlockall", CpuBusy),
    ("brk", CpuBusy),
    ("membarrier", CpuBusy),
    ("memfd_create", CpuBusy),
    ("shmget", CpuBusy),
    ("shmat", CpuBusy),
    ("shmdt", CpuBusy),
    ("shmctl", CpuBusy),
    ("remap_file_pages", CpuBusy),
    // -- files --------------------------------------------------------
    ("open", CpuBusy),
    ("openat", CpuBusy),
    ("openat2", CpuBusy),
    ("close", CpuBusy),
    ("creat", CpuBusy),
    ("read", CpuBusy),
    ("write", CpuBusy),
    ("pread64", CpuBusy),
    ("pwrite64", CpuBusy),
    ("readv", CpuBusy),
    ("writev", CpuBusy),
    ("preadv", CpuBusy),
    ("pwritev", CpuBusy),
    ("lseek", CpuBusy),
    ("stat", CpuBusy),
    ("fstat", CpuBusy),
    ("lstat", CpuBusy),
    ("newfstatat", CpuBusy),
    ("statx", CpuBusy),
    ("access", CpuBusy),
    ("faccessat", CpuBusy),
    ("dup", CpuBusy),
    ("dup2", CpuBusy),
    ("dup3", CpuBusy),
    ("fcntl", CpuBusy),
    ("flock", CpuBusy),
    ("fsync", CpuBusy),
    ("fdatasync", CpuBusy),
    ("sync", CpuBusy),
    ("syncfs", CpuBusy),
    ("truncate", CpuBusy),
    ("ftruncate", CpuBusy),
    ("fallocate", CpuBusy),
    ("rename", CpuBusy),
    ("renameat", CpuBusy),
    ("renameat2", CpuBusy),
    ("mkdir", CpuBusy),
    ("mkdirat", CpuBusy),
    ("rmdir", CpuBusy),
    ("unlink", CpuBusy),
    ("unlinkat", CpuBusy),
    ("link", CpuBusy),
    ("linkat", CpuBusy),
    ("symlink", CpuBusy),
    ("symlinkat", CpuBusy),
    ("readlink", CpuBusy),
    ("readlinkat", CpuBusy),
    ("chmod", CpuBusy),
    ("fchmod", CpuBusy),
    ("fchmodat", CpuBusy),
    ("chown", CpuBusy),
    ("fchown", CpuBusy),
    ("fchownat", CpuBusy),
    ("lchown", CpuBusy),
    ("umask", CpuBusy),
    ("getdents", CpuBusy),
    ("getdents64", CpuBusy),
    ("getcwd", CpuBusy),
    ("chdir", CpuBusy),
    ("fchdir", CpuBusy),
    ("chroot", CpuBusy),
    ("statfs", CpuBusy),
    ("fstatfs", CpuBusy),
    ("utimensat", CpuBusy),
    ("futimesat", CpuBusy),
    ("utimes", CpuBusy),
    ("sendfile", CpuBusy),
    ("splice", CpuBusy),
    ("tee", CpuBusy),
    ("vmsplice", CpuBusy),
    ("copy_file_range", CpuBusy),
    ("inotify_init", CpuBusy),
    ("inotify_init1", CpuBusy),
    ("inotify_add_watch", CpuBusy),
    ("inotify_rm_watch", CpuBusy),
    ("fanotify_init", CpuBusy),
    ("fanotify_mark", CpuBusy),
    ("name_to_handle_at", CpuBusy),
    ("open_by_handle_at", CpuBusy),
    ("ioprio_set", CpuBusy),
    ("ioprio_get", CpuBusy),
    ("io_setup", CpuBusy),
    ("io_destroy", CpuBusy),
    ("io_submit", CpuBusy),
    ("io_getevents", CpuBusy),
    ("io_cancel", CpuBusy),
    ("io_uring_setup", CpuBusy),
    ("io_uring_enter", CpuBusy),
    ("io_uring_register", CpuBusy),
    // -- polling / waiting (idle the CPU) -------------------------------
    ("poll", CpuIdle),
    ("ppoll", CpuIdle),
    ("select", CpuIdle),
    ("pselect6", CpuIdle),
    ("epoll_create", CpuBusy),
    ("epoll_create1", CpuBusy),
    ("epoll_ctl", CpuBusy),
    ("epoll_wait", CpuIdle),
    ("epoll_pwait", CpuIdle),
    ("nanosleep", CpuDeepIdle),
    ("clock_nanosleep", CpuDeepIdle),
    ("pause", CpuDeepIdle),
    ("futex", CpuIdle),
    ("futex_waitv", CpuIdle),
    ("eventfd", CpuBusy),
    ("eventfd2", CpuBusy),
    ("timerfd_create", CpuBusy),
    ("timerfd_settime", TimerTick),
    ("timerfd_gettime", TimerTick),
    ("timer_create", TimerTick),
    ("timer_settime", TimerTick),
    ("timer_gettime", TimerTick),
    ("timer_delete", TimerTick),
    ("alarm", TimerTick),
    ("getitimer", TimerTick),
    ("setitimer", TimerTick),
    ("clock_gettime", TimerTick),
    ("clock_settime", TimerTick),
    ("clock_getres", TimerTick),
    ("gettimeofday", TimerTick),
    ("settimeofday", TimerTick),
    ("time", TimerTick),
    ("times", TimerTick),
    // -- signals --------------------------------------------------------
    ("rt_sigaction", CpuBusy),
    ("rt_sigprocmask", CpuBusy),
    ("rt_sigreturn", CpuBusy),
    ("rt_sigpending", CpuBusy),
    ("rt_sigtimedwait", CpuIdle),
    ("rt_sigqueueinfo", CpuBusy),
    ("rt_sigsuspend", CpuDeepIdle),
    ("sigaltstack", CpuBusy),
    ("signalfd", CpuBusy),
    ("signalfd4", CpuBusy),
    // -- network (drive the WiFi states) --------------------------------
    ("socket", NetReceiveStart),
    ("socketpair", CpuBusy),
    ("connect", NetReceiveStart),
    ("accept", NetReceiveStart),
    ("accept4", NetReceiveStart),
    ("bind", CpuBusy),
    ("listen", CpuBusy),
    ("recvfrom", NetReceiveStart),
    ("recvmsg", NetReceiveStart),
    ("recvmmsg", NetReceiveStart),
    ("sendto", NetSendStart),
    ("sendmsg", NetSendStart),
    ("sendmmsg", NetSendStart),
    ("shutdown", NetStop),
    ("getsockname", CpuBusy),
    ("getpeername", CpuBusy),
    ("getsockopt", CpuBusy),
    ("setsockopt", CpuBusy),
    // -- Android binder / power management -------------------------------
    ("binder_transaction", AppLaunch),
    ("binder_reply", CpuBusy),
    ("binder_thread_write", CpuBusy),
    ("binder_thread_read", CpuIdle),
    ("wakelock_acquire", Wake),
    ("wakelock_release", Suspend),
    ("autosleep_enter", Suspend),
    ("autosleep_exit", Wake),
    ("display_on", ScreenOn),
    ("display_off", ScreenOff),
    ("backlight_set", ScreenOn),
    ("input_event", ScreenOn),
    ("sensor_batch", CpuBusy),
    ("sensor_flush", CpuBusy),
    ("vibrator_on", CpuBusy),
    ("vibrator_off", CpuBusy),
    ("thermal_throttle", TecOn),
    ("thermal_clear", TecOff),
    ("battery_switch_big", SwitchToBig),
    ("battery_switch_little", SwitchToLittle),
    // -- misc -------------------------------------------------------------
    ("uname", CpuBusy),
    ("sysinfo", CpuBusy),
    ("syslog", CpuBusy),
    ("getrandom", CpuBusy),
    ("perf_event_open", CpuBusy),
    ("getcpu", CpuBusy),
    ("ioctl", CpuBusy),
    ("pipe", CpuBusy),
    ("pipe2", CpuBusy),
    ("getuid", CpuBusy),
    ("geteuid", CpuBusy),
    ("getgid", CpuBusy),
    ("getegid", CpuBusy),
    ("setuid", CpuBusy),
    ("setgid", CpuBusy),
    ("setreuid", CpuBusy),
    ("setregid", CpuBusy),
    ("setresuid", CpuBusy),
    ("setresgid", CpuBusy),
    ("getresuid", CpuBusy),
    ("getresgid", CpuBusy),
    ("setsid", CpuBusy),
    ("getsid", CpuBusy),
    ("setpgid", CpuBusy),
    ("getpgid", CpuBusy),
    ("getpgrp", CpuBusy),
    ("getgroups", CpuBusy),
    ("setgroups", CpuBusy),
    ("mount", CpuBusy),
    ("umount2", CpuBusy),
    ("swapon", CpuBusy),
    ("swapoff", CpuBusy),
    ("reboot", Suspend),
    ("kexec_load", CpuBusy),
    ("init_module", CpuBusy),
    ("delete_module", CpuBusy),
    ("quotactl", CpuBusy),
    ("acct", CpuBusy),
    ("add_key", CpuBusy),
    ("request_key", CpuBusy),
    ("keyctl", CpuBusy),
    ("bpf", CpuBusy),
    ("userfaultfd", CpuBusy),
    ("pkey_alloc", CpuBusy),
    ("pkey_free", CpuBusy),
    ("pkey_mprotect", CpuBusy),
    ("process_vm_readv", CpuBusy),
    ("process_vm_writev", CpuBusy),
    ("kcmp", CpuBusy),
    ("rseq", CpuBusy),
    ("gettimeofday_vdso", TimerTick),
];

/// Classify a raw call name into its action class, if recorded.
pub fn classify(name: &str) -> Option<Action> {
    SYSCALL_TABLE
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.action)
}

/// Number of distinct recorded system calls.
pub fn vocabulary_size() -> usize {
    SYSCALL_TABLE.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn over_200_syscalls_recorded() {
        // The paper: "over 200 system calls recorded".
        assert!(
            vocabulary_size() > 200,
            "need > 200 calls, have {}",
            vocabulary_size()
        );
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<_> = SYSCALL_TABLE.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), SYSCALL_TABLE.len());
    }

    #[test]
    fn classify_known_calls() {
        assert_eq!(classify("execve"), Some(Action::AppLaunch));
        assert_eq!(classify("sendto"), Some(Action::NetSendStart));
        assert_eq!(classify("display_on"), Some(Action::ScreenOn));
        assert_eq!(classify("nanosleep"), Some(Action::CpuDeepIdle));
        assert_eq!(
            classify("battery_switch_little"),
            Some(Action::SwitchToLittle)
        );
    }

    #[test]
    fn classify_unknown_returns_none() {
        assert_eq!(classify("not_a_syscall"), None);
    }

    #[test]
    fn every_action_class_is_reachable_from_some_syscall() {
        let classes: HashSet<_> = SYSCALL_TABLE.iter().map(|s| s.action).collect();
        for &action in &Action::ALL {
            assert!(classes.contains(&action), "no syscall maps to {action:?}");
        }
    }
}
