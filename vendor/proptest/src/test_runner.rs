//! Case configuration and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Mirrors `proptest::test_runner::ProptestConfig` (cases only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG for one case: failures reproduce by rerunning
/// the test (there is no persistence file in this stand-in).
pub fn new_case_rng(case: u32) -> TestRng {
    StdRng::seed_from_u64(0xC0FF_EE00_0000_0000 ^ u64::from(case))
}
