//! Mixed-workload sweep: service time versus the PCMark/Video mix ratio.
//!
//! ```text
//! cargo run --release --example mixed_workload
//! ```
//!
//! The paper's eta-Static workloads blend bursty (PCMark-like) and
//! steady (Video-like) behaviour. This example sweeps eta and compares
//! CAPMAN against the LITTLE-first *Dual* baseline — the gap is the
//! value of scheduling, not of merely owning two batteries.

use capman::core::config::SimConfig;
use capman::core::experiments::{run_policy_with, PolicyKind};
use capman::device::phone::PhoneProfile;
use capman::workload::WorkloadKind;

fn main() {
    let horizon = 30_000.0;
    let seed = 11;
    println!("eta sweep: CAPMAN vs Dual (LITTLE-first), service time in seconds\n");
    println!(
        "{:>5} {:>10} {:>10} {:>10}",
        "eta", "CAPMAN", "Dual", "gain"
    );
    for eta in [0u8, 20, 40, 60, 80, 100] {
        let workload = WorkloadKind::EtaStatic { eta };
        let mut per_policy = Vec::new();
        for kind in [PolicyKind::Capman, PolicyKind::Dual] {
            let config = SimConfig {
                max_horizon_s: horizon,
                tec_enabled: kind.has_tec(),
                ..SimConfig::paper()
            };
            per_policy.push(run_policy_with(
                kind,
                workload,
                PhoneProfile::nexus(),
                seed,
                config,
            ));
        }
        println!(
            "{:>4}% {:>10.0} {:>10.0} {:>9.1}%",
            eta,
            per_policy[0].service_time_s,
            per_policy[1].service_time_s,
            per_policy[0].service_gain_pct(&per_policy[1])
        );
    }
    println!("\n(burstier mixes reward prediction: the LITTLE cell must be saved for surges)");
}
