//! The clairvoyant *Oracle* baseline.
//!
//! "A baseline based on offline analysis, serving ground truth"
//! (Section V): the Oracle reads the workload trace itself, so it knows
//! the exact upcoming power demand — it classifies every surge perfectly
//! and a few seconds early, and balances the two cells' depletion with
//! exact knowledge. CAPMAN's quality is judged by how closely it tracks
//! this policy without seeing the future.

use capman_battery::chemistry::Class;
use capman_device::phone::PhoneProfile;
use capman_device::power::PowerModel;
use capman_workload::{Trace, WorkloadKind};

use crate::config::SimConfig;
use crate::experiments::PolicyKind;
use crate::metrics::Outcome;
use crate::online::CalibratorSpec;
use crate::policy::{usable_or_fallback, DecisionContext, Policy};
use crate::scenario::{Scenario, ScenarioRunner};

/// Offline candidate selection, "serving ground truth": score candidate
/// calibrator configurations by running each as a complete what-if
/// CAPMAN rollout through [`ScenarioRunner`] (one independent scenario
/// per candidate, fanned across cores), and pick the one that serves
/// the most work — ties broken by service time, then by candidate
/// order. Returns the winning index and every candidate's [`Outcome`]
/// (outcome `i` belongs to candidate `i`, per the runner's ordering
/// contract).
///
/// # Panics
///
/// Panics if `candidates` is empty or a candidate spec is invalid.
pub fn select_calibrator(
    candidates: &[CalibratorSpec],
    workload: WorkloadKind,
    phone: &PhoneProfile,
    seed: u64,
    config: SimConfig,
) -> (usize, Vec<Outcome>) {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let scenarios: Vec<Scenario> = candidates
        .iter()
        .map(|&spec| {
            Scenario::new(PolicyKind::Capman, workload, phone.clone(), seed, config)
                .with_calibrator(spec)
        })
        .collect();
    let outcomes = ScenarioRunner::new().run(&scenarios);
    let better = |a: &Outcome, b: &Outcome| {
        (a.work_served, a.service_time_s) > (b.work_served, b.service_time_s)
    };
    let mut best = 0;
    for (i, o) in outcomes.iter().enumerate().skip(1) {
        if better(o, &outcomes[best]) {
            best = i;
        }
    }
    (best, outcomes)
}

/// The clairvoyant scheduling baseline.
#[derive(Debug, Clone)]
pub struct OraclePolicy {
    trace: Trace,
    model: PowerModel,
    /// How far ahead the Oracle peeks, seconds.
    lookahead_s: f64,
    /// Base surge threshold, watts.
    thr_base_w: f64,
    /// Gain of the depletion-balance controller.
    beta: f64,
}

impl OraclePolicy {
    /// Build an Oracle for the given trace and phone power model.
    pub fn new(trace: Trace, model: PowerModel) -> Self {
        OraclePolicy {
            trace,
            model,
            lookahead_s: 4.0,
            thr_base_w: 1.5,
            beta: 2.5,
        }
    }

    /// The exact device power at time `t`, assuming the device state the
    /// engine reports, watts.
    fn exact_power_w(&self, ctx: &DecisionContext<'_>, t: f64) -> f64 {
        let mut state = ctx.state;
        // Apply the boundary actions of every segment between now and t
        // so the peeked state is consistent with the trace.
        for seg in self.trace.segments_starting_in(ctx.time_s, t + 1e-9) {
            for &a in &seg.actions {
                state = state.apply(a);
            }
        }
        let demand = self.trace.at(t).demand;
        self.model.device_power_mw(&state, &demand) / 1000.0
    }
}

impl Policy for OraclePolicy {
    fn name(&self) -> &'static str {
        "Oracle"
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Class {
        // Exact current power plus a peek at the near future.
        let now = self.exact_power_w(ctx, ctx.time_s);
        let ahead = self.exact_power_w(ctx, ctx.time_s + self.lookahead_s);
        let pred = now.max(ahead);

        // Balance both cells toward simultaneous exhaustion: when the
        // LITTLE cell is richer, lower the threshold so it takes more of
        // the load, and vice versa.
        let imbalance = ctx.little_soc - ctx.big_soc;
        let thr = (self.thr_base_w * (1.0 - self.beta * imbalance)).clamp(0.4, 6.0);

        let hot = ctx.tec_on || ctx.hotspot_c > 44.0;
        let mut preferred = if pred > thr || (hot && pred > 0.7 * thr) {
            Class::Little
        } else {
            Class::Big
        };

        // Head guard (see `CapmanPolicy::decide`): rest a diffusion-
        // starved big cell instead of browning out on it.
        if preferred == Class::Big && ctx.big_head < 0.12 && ctx.little_usable {
            preferred = Class::Little;
        } else if preferred == Class::Little && ctx.little_head < 0.05 && ctx.big_usable {
            preferred = Class::Big;
        }
        usable_or_fallback(preferred, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_device::phone::PhoneProfile;
    use capman_device::states::DeviceState;
    use capman_workload::{generate, WorkloadKind};

    fn ctx_at(time_s: f64, little_soc: f64, big_soc: f64) -> DecisionContext<'static> {
        DecisionContext {
            time_s,
            state: DeviceState::awake(),
            actions: &[],
            last_power_w: 1.0,
            big_soc,
            little_soc,
            big_usable: true,
            little_usable: true,
            big_head: 1.0,
            little_head: 1.0,
            hotspot_c: 30.0,
            tec_on: false,
            dual: true,
        }
    }

    fn oracle(kind: WorkloadKind) -> OraclePolicy {
        let trace = generate(kind, 2000.0, 3);
        OraclePolicy::new(trace, PhoneProfile::nexus().power_model())
    }

    #[test]
    fn routes_saturating_load_to_little() {
        let mut o = oracle(WorkloadKind::Geekbench);
        // Geekbench saturates from the start: power > threshold.
        assert_eq!(o.decide(&ctx_at(100.0, 0.9, 0.9)), Class::Little);
    }

    #[test]
    fn routes_idle_load_to_big() {
        let mut o = oracle(WorkloadKind::IdleOn);
        assert_eq!(o.decide(&ctx_at(100.0, 0.9, 0.9)), Class::Big);
    }

    #[test]
    fn balance_controller_protects_the_drained_cell() {
        let mut o = oracle(WorkloadKind::Geekbench);
        // Geekbench draws ~2.3 W: with a near-dead LITTLE cell, the
        // threshold rises above the demand and big takes over.
        assert_eq!(o.decide(&ctx_at(100.0, 0.05, 0.95)), Class::Big);
    }

    #[test]
    fn falls_back_when_preferred_cell_is_dead() {
        let mut o = oracle(WorkloadKind::Geekbench);
        let mut c = ctx_at(100.0, 0.5, 0.5);
        c.little_usable = false;
        assert_eq!(o.decide(&c), Class::Big);
    }

    #[test]
    fn candidate_selection_scores_every_rollout_and_picks_the_best() {
        let config = SimConfig {
            max_horizon_s: 900.0,
            tec_enabled: true,
            ..SimConfig::paper()
        };
        let candidates = [
            CalibratorSpec::paper(),
            CalibratorSpec {
                rho: 0.3,
                ..CalibratorSpec::paper()
            },
        ];
        let (best, outcomes) = select_calibrator(
            &candidates,
            WorkloadKind::Pcmark,
            &PhoneProfile::nexus(),
            5,
            config,
        );
        assert_eq!(outcomes.len(), candidates.len());
        assert!(best < candidates.len());
        for o in &outcomes {
            assert_eq!(o.policy, "CAPMAN");
            assert!(o.work_served > 0.0);
        }
        // The winner dominates on the (work, service-time) score.
        for o in &outcomes {
            assert!(
                (outcomes[best].work_served, outcomes[best].service_time_s)
                    >= (o.work_served, o.service_time_s)
            );
        }
    }

    #[test]
    #[should_panic(expected = "candidate")]
    fn candidate_selection_rejects_an_empty_slate() {
        let _ = select_calibrator(
            &[],
            WorkloadKind::Pcmark,
            &PhoneProfile::nexus(),
            1,
            SimConfig::paper(),
        );
    }
}
