//! The asynchronous calibration pool.
//!
//! CAPMAN's calibration is a background activity (Section III-D): the
//! scheduler keeps taking per-second decisions from the *last completed*
//! calibration while the next one runs. The seed reproduced that by
//! paying the calibration wall-time inline inside the device tick —
//! faithful for one device, hopeless for a fleet: at 4k devices a
//! calibration storm serialises every shard behind the slowest solve.
//!
//! The pool moves calibration off the tick path:
//!
//! * Devices *submit* calibration requests; workers execute them on
//!   background threads against a per-cohort [`Calibrator`] that keeps
//!   its warm-start state (prior value vector, EMD memo cache) across
//!   runs, exactly like the inline calibrator does.
//! * Completed calibrations are *published* through an
//!   [`ArcSwap`]-backed snapshot slot per cohort. A device tick does one
//!   lock-free-style `load_full` and always observes a complete,
//!   immutable [`CalibrationSnapshot`] — never a torn or in-progress
//!   one (see `vendor/arc-swap` for the protocol and its test).
//! * Requests are *coalesced* per cohort: devices of a cohort are
//!   seed-perturbed instances of one shared profile, so one calibration
//!   serves all of them. While a cohort has a calibration in flight,
//!   further submissions from its devices are counted and absorbed
//!   instead of queued. This is where the fleet-scale win comes from —
//!   O(cohorts) solves per calibration interval instead of O(devices).
//! * The queue is bounded; when it overflows the submission is counted
//!   as dropped rather than blocking the simulation tick. The fleet
//!   smoke gate asserts this counter stays zero in CI.
//!
//! # Shutdown semantics
//!
//! Dropping (or explicitly [`CalibrationPool::shutdown`]-ing) the pool
//! is a *drain-on-drop* with a hard line between started and unstarted
//! work:
//!
//! * a solve that a worker has already dequeued **publishes before the
//!   join** — readers holding the pool's snapshots observe it;
//! * a request still sitting in the queue is **reclassified as
//!   dropped** — it never ran, so counting it as enqueued-and-lost
//!   would break accounting.
//!
//! After the workers quiesce the counters satisfy two identities that
//! tests pin across shutdown races: `enqueued + coalesced + dropped ==
//! submitted` (every submission has exactly one outcome) and
//! `completed == enqueued` (everything still classified as enqueued
//! actually published).
//!
//! # The backend seam
//!
//! [`CalibrationBackend`] abstracts the three operations a pooled
//! policy needs — submit, read the published snapshot, count cohorts —
//! so the same `PooledCapmanPolicy`/arena machinery can run against
//! this in-process pool or the resident `capman-serve` service.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use arc_swap::ArcSwap;
use capman_core::online::{Calibration, Calibrator, CalibratorSpec};
use capman_core::profiler::Profiler;

/// The causal-trace breadcrumb a publication carries so the *adopting*
/// device can close the request's trace: the trace id, the publish
/// record to flow-link the adoption event to, and the simulated
/// timestamps of the lifecycle hops the backend observed (what the
/// critical-path phase decomposition is computed from at adoption).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotTrace {
    /// Trace id minted at submission (never 0 — an untraced publication
    /// carries no `SnapshotTrace` at all).
    pub trace: u64,
    /// Record id of the backend's publish event, the flow-link source
    /// for the adoption hop (0 when that event was sampled out).
    pub publish_span: u64,
    /// Simulated time the winning request was first submitted.
    pub submitted_s: f64,
    /// When the backend's scheduler first considered the request (equal
    /// to `submitted_s` for backends without a scheduling step).
    pub queue_end_s: f64,
    /// When the request was picked for solving.
    pub picked_s: f64,
    /// When the solved calibration was published.
    pub published_s: f64,
}

/// A published calibration: what device ticks read.
///
/// Snapshots are immutable once published; the pool only ever swaps in
/// a freshly allocated one. `seq` increases by one per publication per
/// cohort, so a reader can detect "new calibration arrived" with one
/// integer compare.
#[derive(Debug, Clone)]
pub struct CalibrationSnapshot {
    /// Publication sequence number, per cohort, starting at 1 (the
    /// pre-calibration placeholder is seq 0 with no calibration).
    pub seq: u64,
    /// Simulated time at which the request producing this snapshot was
    /// submitted — staleness is measured against this.
    pub requested_at_s: f64,
    /// Wall-clock of the background solve, microseconds (raw, before
    /// compute-speed normalisation).
    pub wall_us: f64,
    /// The calibration itself; `None` only in the seq-0 placeholder.
    pub calibration: Option<Calibration>,
    /// Causal-trace breadcrumb of the winning request, `None` when the
    /// request was untraced (observability off or sampled out).
    pub trace: Option<SnapshotTrace>,
}

impl CalibrationSnapshot {
    fn empty() -> Self {
        CalibrationSnapshot {
            seq: 0,
            requested_at_s: 0.0,
            wall_us: 0.0,
            calibration: None,
            trace: None,
        }
    }
}

/// Outcome of a [`CalibrationPool::submit`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The request was queued for a worker.
    Enqueued,
    /// The cohort already has a calibration in flight; this request was
    /// absorbed by it.
    Coalesced,
    /// The queue was full; the request was discarded (the device keeps
    /// using its current snapshot).
    Dropped,
}

/// Pool sizing.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Background worker threads.
    pub workers: usize,
    /// Bounded request-queue depth.
    pub queue_depth: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 2,
            queue_depth: 64,
        }
    }
}

/// Counter snapshot for reports and gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolCounters {
    /// Total `submit` calls.
    pub submitted: u64,
    /// Requests actually handed to workers.
    pub enqueued: u64,
    /// Requests absorbed by an in-flight cohort calibration.
    pub coalesced: u64,
    /// Requests discarded because the queue was full.
    pub dropped: u64,
    /// Calibrations completed and published.
    pub completed: u64,
}

struct Request {
    cohort: usize,
    now_s: f64,
    profiler: Profiler,
    compute_speed: f64,
    /// Trace id minted at submission (0 = untraced).
    trace: u64,
    /// Record id of the submission's origin event, the flow-link source
    /// for the queue hop (0 when sampled out).
    origin: u64,
}

struct CohortSlot {
    snapshot: ArcSwap<CalibrationSnapshot>,
    calibrator: Mutex<Calibrator>,
    in_flight: AtomicBool,
}

struct Shared {
    slots: Vec<CohortSlot>,
    completed: AtomicU64,
    // Submission-side counters live here (not on the pool value) so the
    // workers can reclassify queued-but-unstarted requests at shutdown.
    submitted: AtomicU64,
    enqueued: AtomicU64,
    coalesced: AtomicU64,
    dropped: AtomicU64,
    /// Set by `shutdown` before the channel closes. A worker that
    /// dequeues a request while this is up reclassifies it as dropped
    /// instead of solving: the request never started, and drain-on-drop
    /// only promises publication for *started* work.
    draining: AtomicBool,
}

/// The submit/read/size surface a pooled policy needs from whatever is
/// doing its calibrations. [`CalibrationPool`] is the in-process
/// implementation; the resident `capman-serve` service is the other.
///
/// Implementations must never block the caller: `submit` either hands
/// the request off or reports why not, and `snapshot` always returns a
/// complete published snapshot (seq 0 placeholder before the first).
pub trait CalibrationBackend: Send + Sync {
    /// Submit a calibration request for `cohort`, built from the
    /// requesting device's learned `profiler`.
    fn submit(
        &self,
        cohort: usize,
        now_s: f64,
        profiler: &Profiler,
        compute_speed: f64,
    ) -> SubmitOutcome;

    /// The latest published snapshot of a cohort.
    fn snapshot(&self, cohort: usize) -> Arc<CalibrationSnapshot>;

    /// Number of cohort slots this backend serves.
    fn cohorts(&self) -> usize;

    /// A device adopted `snapshot` at simulated time `now_s` — the end
    /// of the request's lifecycle. Backends that close causal traces
    /// (the serve service's critical-path decomposition) override this;
    /// the default is a no-op, so the in-process pool pays nothing.
    fn adopt(&self, _cohort: usize, _snapshot: &CalibrationSnapshot, _now_s: f64) {}
}

/// Background calibration service shared by every shard of a fleet run.
pub struct CalibrationPool {
    shared: Arc<Shared>,
    tx: Option<SyncSender<Request>>,
    workers: Vec<JoinHandle<()>>,
}

impl CalibrationPool {
    /// Spawn a pool with one calibrator slot per cohort spec.
    pub fn spawn(specs: &[CalibratorSpec], config: PoolConfig) -> Self {
        assert!(config.workers > 0, "pool needs at least one worker");
        assert!(config.queue_depth > 0, "pool needs a queue");
        let slots = specs
            .iter()
            .map(|spec| CohortSlot {
                snapshot: ArcSwap::from_pointee(CalibrationSnapshot::empty()),
                calibrator: Mutex::new(spec.build()),
                in_flight: AtomicBool::new(false),
            })
            .collect();
        let shared = Arc::new(Shared {
            slots,
            completed: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            draining: AtomicBool::new(false),
        });
        let (tx, rx) = mpsc::sync_channel::<Request>(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || Self::worker(&shared, &rx))
            })
            .collect();
        CalibrationPool {
            shared,
            tx: Some(tx),
            workers,
        }
    }

    fn worker(shared: &Shared, rx: &Mutex<Receiver<Request>>) {
        loop {
            // Hold the receiver lock only for the dequeue, not the solve.
            let req = {
                let rx = rx.lock().expect("pool receiver poisoned");
                rx.recv()
            };
            let Ok(req) = req else {
                return; // channel closed: pool is shutting down
            };
            if capman_obs::enabled() {
                capman_obs::gauge!(
                    "pool_queue_depth",
                    "Calibration requests waiting in the queue"
                )
                .sub(1);
            }
            let slot = &shared.slots[req.cohort];
            if shared.draining.load(Ordering::Acquire) {
                // Shutdown won the race: this request was queued but
                // never started, so it is a drop, not a publication.
                shared.enqueued.fetch_sub(1, Ordering::AcqRel);
                shared.dropped.fetch_add(1, Ordering::Relaxed);
                slot.in_flight.store(false, Ordering::Release);
                continue;
            }
            let solve_span = capman_obs::span_in("pool_solve", req.cohort as u64, req.trace);
            if let Some(span) = &solve_span {
                // Stitch the submit→solve hop across threads.
                capman_obs::link("pool_queue_flow", req.origin, span.id(), req.trace);
            }
            let wall_us = {
                let mut calibrator = slot.calibrator.lock().expect("calibrator poisoned");
                calibrator.recalibrate(req.now_s, &req.profiler, req.compute_speed)
            };
            let calibration = {
                let calibrator = slot.calibrator.lock().expect("calibrator poisoned");
                calibrator.calibration().cloned()
            };
            // The publish event is recorded before the store so its id
            // can ride the snapshot as the adoption hop's flow source.
            let publish_span = capman_obs::event_in("pool_publish", req.cohort as u64, req.trace);
            let trace = (req.trace != 0).then_some(SnapshotTrace {
                trace: req.trace,
                publish_span,
                submitted_s: req.now_s,
                queue_end_s: req.now_s,
                picked_s: req.now_s,
                published_s: req.now_s,
            });
            let prev_seq = slot.snapshot.load_full().seq;
            slot.snapshot.store(Arc::new(CalibrationSnapshot {
                seq: prev_seq + 1,
                requested_at_s: req.now_s,
                wall_us,
                calibration,
                trace,
            }));
            if capman_obs::enabled() {
                capman_obs::counter!(
                    "pool_completed_total",
                    "Calibrations completed and published"
                )
                .inc();
                capman_obs::histogram!(
                    "pool_solve_us",
                    "Background calibration solve wall time, microseconds",
                    &[100.0, 250.0, 500.0, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 1e6]
                )
                .observe(wall_us);
            }
            drop(solve_span);
            // Publish before accounting: once `completed` covers this
            // request, `drain` may return and readers must already see
            // the snapshot.
            shared.completed.fetch_add(1, Ordering::Release);
            slot.in_flight.store(false, Ordering::Release);
        }
    }

    /// Submit a calibration request for `cohort`, built from the
    /// requesting device's learned `profiler`. Never blocks.
    pub fn submit(
        &self,
        cohort: usize,
        now_s: f64,
        profiler: &Profiler,
        compute_speed: f64,
    ) -> SubmitOutcome {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        if capman_obs::enabled() {
            capman_obs::counter!("pool_submitted_total", "Calibration requests submitted").inc();
        }
        // Mint the request's causal trace at the submission boundary;
        // the origin event doubles as the old `pool_request` instant.
        let ctx = capman_obs::begin_trace("pool_request", cohort as u64);
        let slot = &self.shared.slots[cohort];
        if slot.in_flight.swap(true, Ordering::AcqRel) {
            self.shared.coalesced.fetch_add(1, Ordering::Relaxed);
            if capman_obs::enabled() {
                capman_obs::counter!(
                    "pool_coalesced_total",
                    "Requests absorbed by an in-flight cohort calibration"
                )
                .inc();
            }
            return SubmitOutcome::Coalesced;
        }
        let Some(tx) = self.tx.as_ref() else {
            // Shut-down pool: refuse, don't panic — callers may race a
            // graceful teardown.
            slot.in_flight.store(false, Ordering::Release);
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Dropped;
        };
        let req = Request {
            cohort,
            now_s,
            profiler: profiler.clone(),
            compute_speed,
            trace: ctx.trace,
            origin: ctx.origin,
        };
        match tx.try_send(req) {
            Ok(()) => {
                self.shared.enqueued.fetch_add(1, Ordering::Relaxed);
                if capman_obs::enabled() {
                    capman_obs::counter!("pool_enqueued_total", "Requests handed to workers").inc();
                    capman_obs::gauge!(
                        "pool_queue_depth",
                        "Calibration requests waiting in the queue"
                    )
                    .add(1);
                }
                SubmitOutcome::Enqueued
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                slot.in_flight.store(false, Ordering::Release);
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                if capman_obs::enabled() {
                    capman_obs::counter!(
                        "pool_dropped_total",
                        "Requests discarded on queue overflow"
                    )
                    .inc();
                }
                SubmitOutcome::Dropped
            }
        }
    }

    /// The latest published snapshot of a cohort. Never blocks on an
    /// in-progress publication; always a complete snapshot.
    pub fn snapshot(&self, cohort: usize) -> Arc<CalibrationSnapshot> {
        self.shared.slots[cohort].snapshot.load_full()
    }

    /// Block until every enqueued request has been completed and
    /// published. Used at end-of-run so reports see final state.
    pub fn drain(&self) {
        loop {
            let enqueued = self.shared.enqueued.load(Ordering::Acquire);
            let completed = self.shared.completed.load(Ordering::Acquire);
            if completed >= enqueued {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Current counter values.
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            enqueued: self.shared.enqueued.load(Ordering::Relaxed),
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Acquire),
        }
    }

    /// Number of cohort slots.
    pub fn cohorts(&self) -> usize {
        self.shared.slots.len()
    }

    /// Graceful shutdown: raise the draining flag, close the queue,
    /// join the workers, and return the settled counters. Solves a
    /// worker already started publish before the join; requests still
    /// queued are reclassified as dropped (see the module docs for the
    /// counter identities this preserves). Idempotent — `Drop` calls it.
    pub fn shutdown(&mut self) -> PoolCounters {
        self.shared.draining.store(true, Ordering::Release);
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.counters()
    }
}

impl CalibrationBackend for CalibrationPool {
    fn submit(
        &self,
        cohort: usize,
        now_s: f64,
        profiler: &Profiler,
        compute_speed: f64,
    ) -> SubmitOutcome {
        CalibrationPool::submit(self, cohort, now_s, profiler, compute_speed)
    }

    fn snapshot(&self, cohort: usize) -> Arc<CalibrationSnapshot> {
        CalibrationPool::snapshot(self, cohort)
    }

    fn cohorts(&self) -> usize {
        CalibrationPool::cohorts(self)
    }
}

impl Drop for CalibrationPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_core::profiler::Profiler;
    use capman_device::fsm::Action;
    use capman_device::states::DeviceState;

    /// A profiler warmed past the calibrator's observation threshold.
    fn warm_profiler() -> Profiler {
        let mut profiler = Profiler::new();
        let awake = DeviceState::awake();
        let asleep = DeviceState::asleep();
        for i in 0..40 {
            let power = 1.0 + (i % 5) as f64 * 0.5;
            profiler.observe(asleep, Action::ScreenOn, awake, 0.9, power);
            profiler.observe(awake, Action::TimerTick, awake, 0.9, power);
            profiler.observe(awake, Action::ScreenOff, asleep, 0.9, 0.2);
        }
        profiler
    }

    #[test]
    fn placeholder_snapshot_has_no_calibration() {
        let pool = CalibrationPool::spawn(&[CalibratorSpec::paper()], PoolConfig::default());
        let snap = pool.snapshot(0);
        assert_eq!(snap.seq, 0);
        assert!(snap.calibration.is_none());
    }

    #[test]
    fn submit_publishes_a_complete_snapshot() {
        let pool = CalibrationPool::spawn(&[CalibratorSpec::paper()], PoolConfig::default());
        let profiler = warm_profiler();
        assert_eq!(
            pool.submit(0, 1200.0, &profiler, 1.0),
            SubmitOutcome::Enqueued
        );
        pool.drain();
        let snap = pool.snapshot(0);
        assert_eq!(snap.seq, 1);
        assert!(snap.calibration.is_some(), "published snapshot is complete");
        assert!(snap.wall_us > 0.0);
        assert_eq!(snap.requested_at_s, 1200.0);
        let c = pool.counters();
        assert_eq!(c.submitted, 1);
        assert_eq!(c.enqueued, 1);
        assert_eq!(c.completed, 1);
        assert_eq!(c.dropped, 0);
    }

    #[test]
    fn cohort_requests_coalesce_while_in_flight() {
        let pool = CalibrationPool::spawn(&[CalibratorSpec::paper()], PoolConfig::default());
        let profiler = warm_profiler();
        // First submission wins the in-flight flag; a burst of follow-ups
        // from the rest of the cohort is absorbed, not queued.
        let first = pool.submit(0, 1200.0, &profiler, 1.0);
        assert_eq!(first, SubmitOutcome::Enqueued);
        let mut coalesced = 0;
        for _ in 0..64 {
            if pool.submit(0, 1200.0, &profiler, 1.0) == SubmitOutcome::Coalesced {
                coalesced += 1;
            }
        }
        assert!(
            coalesced > 0,
            "burst must coalesce against the in-flight run"
        );
        pool.drain();
        let c = pool.counters();
        assert_eq!(c.submitted, 65);
        assert_eq!(c.enqueued + c.coalesced + c.dropped, c.submitted);
        assert_eq!(c.completed, c.enqueued, "drain waits for all enqueued work");
        // After drain the flag is clear: the next request enqueues again.
        assert_eq!(
            pool.submit(0, 2400.0, &profiler, 1.0),
            SubmitOutcome::Enqueued
        );
        pool.drain();
        assert!(pool.snapshot(0).seq >= 2);
    }

    #[test]
    fn sequence_numbers_increase_monotonically_per_cohort() {
        let pool = CalibrationPool::spawn(
            &[CalibratorSpec::paper(), CalibratorSpec::paper()],
            PoolConfig::default(),
        );
        let profiler = warm_profiler();
        for round in 0..3u64 {
            for cohort in 0..2 {
                pool.submit(cohort, 1200.0 * (round + 1) as f64, &profiler, 1.0);
            }
            pool.drain();
        }
        for cohort in 0..2 {
            assert_eq!(pool.snapshot(cohort).seq, 3);
        }
    }

    #[test]
    fn pool_workers_reuse_the_incremental_model_path() {
        let pool = CalibrationPool::spawn(&[CalibratorSpec::paper()], PoolConfig::default());
        let mut profiler = warm_profiler();
        pool.submit(0, 1200.0, &profiler, 1.0);
        pool.drain();
        let first = pool.snapshot(0);
        let first_cal = first.calibration.as_ref().expect("calibrated");
        assert!(first_cal.dirty_rows.is_none(), "first solve rebuilds cold");

        // The device keeps learning on the same profiler lineage; the
        // next request ships a clone, which the cohort calibrator
        // recognises and patches its cached model forward from.
        let awake = DeviceState::awake();
        let asleep = DeviceState::asleep();
        profiler.observe(awake, Action::ScreenOff, asleep, 0.7, 0.2);
        profiler.observe(asleep, Action::ScreenOn, awake, 0.8, 2.0);
        pool.submit(0, 2400.0, &profiler, 1.0);
        pool.drain();
        let snap = pool.snapshot(0);
        let cal = snap.calibration.as_ref().expect("calibrated");
        assert_eq!(cal.dirty_rows, Some(2), "only the drifted rows are dirty");
        assert!(
            cal.incremental.is_some(),
            "background worker takes the incremental solve path"
        );
    }

    #[test]
    fn shutdown_reclassifies_queued_requests_and_keeps_the_identities() {
        // One worker, a deep queue, and a wide burst of distinct cohorts
        // (coalescing is per cohort, so each submission enqueues): the
        // worker cannot clear the backlog before `shutdown` raises the
        // draining flag, so at least the tail must be reclassified.
        let specs: Vec<CalibratorSpec> = (0..32).map(|_| CalibratorSpec::paper()).collect();
        let mut pool = CalibrationPool::spawn(
            &specs,
            PoolConfig {
                workers: 1,
                queue_depth: 64,
            },
        );
        let profiler = warm_profiler();
        for cohort in 0..32 {
            assert_eq!(
                pool.submit(cohort, 1200.0, &profiler, 1.0),
                SubmitOutcome::Enqueued
            );
        }
        let c = pool.shutdown();
        assert_eq!(c.submitted, 32);
        assert_eq!(
            c.enqueued + c.coalesced + c.dropped,
            c.submitted,
            "every submission has exactly one outcome across the shutdown race"
        );
        assert_eq!(
            c.completed, c.enqueued,
            "whatever stayed classified as enqueued actually published"
        );
        assert!(
            c.dropped >= 1,
            "one worker cannot beat shutdown to a 32-request backlog"
        );
        // Published snapshots are complete; reclassified cohorts still
        // hold the seq-0 placeholder. No snapshot is torn either way.
        for cohort in 0..32 {
            let snap = pool.snapshot(cohort);
            assert_eq!(snap.calibration.is_some(), snap.seq > 0);
        }
    }

    #[test]
    fn in_flight_solves_publish_before_join() {
        // Drained work is by definition started-and-finished; shutdown
        // right after must preserve it and report clean counters.
        let mut pool = CalibrationPool::spawn(&[CalibratorSpec::paper()], PoolConfig::default());
        let profiler = warm_profiler();
        assert_eq!(
            pool.submit(0, 1200.0, &profiler, 1.0),
            SubmitOutcome::Enqueued
        );
        pool.drain();
        let c = pool.shutdown();
        assert_eq!(c.completed, 1);
        assert_eq!(c.dropped, 0);
        assert_eq!(pool.snapshot(0).seq, 1, "the publication survives the join");
    }

    #[test]
    fn submit_after_shutdown_is_a_drop_not_a_panic() {
        let mut pool = CalibrationPool::spawn(&[CalibratorSpec::paper()], PoolConfig::default());
        let profiler = warm_profiler();
        pool.shutdown();
        assert_eq!(
            pool.submit(0, 1200.0, &profiler, 1.0),
            SubmitOutcome::Dropped
        );
        let c = pool.counters();
        assert_eq!(c.submitted, 1);
        assert_eq!(c.dropped, 1);
        assert_eq!(c.enqueued + c.coalesced + c.dropped, c.submitted);
    }

    #[test]
    fn shutdown_race_identity_holds_under_concurrent_submitters() {
        // Hammer submit from several threads, then shut down immediately
        // while the workers are still mid-backlog; whatever interleaving
        // happens, the counter identities must settle clean.
        let specs: Vec<CalibratorSpec> = (0..8).map(|_| CalibratorSpec::paper()).collect();
        let mut pool = CalibrationPool::spawn(
            &specs,
            PoolConfig {
                workers: 2,
                queue_depth: 8,
            },
        );
        let pool_ref = &pool;
        let profiler = warm_profiler();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let profiler = profiler.clone();
                scope.spawn(move || {
                    for i in 0..64usize {
                        let cohort = (t * 64 + i) % 8;
                        pool_ref.submit(cohort, 1200.0 + i as f64, &profiler, 1.0);
                    }
                });
            }
        });
        let c = pool.shutdown();
        assert_eq!(c.submitted, 256);
        assert_eq!(c.enqueued + c.coalesced + c.dropped, c.submitted);
        assert_eq!(c.completed, c.enqueued);
    }

    #[test]
    fn warm_start_survives_across_pool_calibrations() {
        let pool = CalibrationPool::spawn(&[CalibratorSpec::paper()], PoolConfig::default());
        let profiler = warm_profiler();
        pool.submit(0, 1200.0, &profiler, 1.0);
        pool.drain();
        pool.submit(0, 2400.0, &profiler, 1.0);
        pool.drain();
        let snap = pool.snapshot(0);
        let calibration = snap.calibration.as_ref().expect("calibrated");
        assert!(
            calibration.warm_started,
            "second calibration must reuse the first's fixed point"
        );
    }
}
