//! The actuator (Section III-E).
//!
//! Converts the scheduler's battery decision into switch-facility
//! commands on the pack and reports the corresponding system-level
//! action so the profiler sees its own switches in the MDP.

use capman_battery::chemistry::Class;
use capman_battery::pack::BatteryPack;
use capman_device::fsm::Action;

/// Applies battery decisions to a pack.
#[derive(Debug, Clone, Copy, Default)]
pub struct Actuator {
    switches: u64,
}

impl Actuator {
    /// A fresh actuator.
    pub fn new() -> Self {
        Actuator::default()
    }

    /// Request that `target` carry the load. Returns the switch action
    /// when a flip actually happened (`None` when the target was already
    /// active or the pack has a single cell).
    pub fn apply(&mut self, pack: &mut BatteryPack, target: Class) -> Option<Action> {
        if pack.select(target) {
            self.switches += 1;
            Some(match target {
                Class::Big => Action::SwitchToBig,
                Class::Little => Action::SwitchToLittle,
            })
        } else {
            None
        }
    }

    /// Number of switches performed through this actuator.
    pub fn switches(&self) -> u64 {
        self.switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_battery::chemistry::Chemistry;

    #[test]
    fn apply_switches_and_reports_the_action() {
        let mut pack = BatteryPack::paper_prototype();
        let mut act = Actuator::new();
        let a = act.apply(&mut pack, Class::Little);
        assert_eq!(a, Some(Action::SwitchToLittle));
        assert_eq!(act.switches(), 1);
        assert_eq!(pack.active(), Class::Little);
    }

    #[test]
    fn redundant_requests_are_free() {
        let mut pack = BatteryPack::paper_prototype();
        let mut act = Actuator::new();
        assert!(act.apply(&mut pack, Class::Big).is_none());
        assert_eq!(act.switches(), 0);
    }

    #[test]
    fn single_cell_pack_never_switches() {
        let mut pack = BatteryPack::single(Chemistry::Nca, 5.0);
        let mut act = Actuator::new();
        assert!(act.apply(&mut pack, Class::Little).is_none());
        assert_eq!(act.switches(), 0);
    }

    #[test]
    fn switch_count_matches_pack_flips() {
        let mut pack = BatteryPack::paper_prototype();
        let mut act = Actuator::new();
        for target in [Class::Little, Class::Big, Class::Little] {
            act.apply(&mut pack, target);
        }
        assert_eq!(act.switches(), pack.switch_count());
    }
}
