//! The discrete-time simulation engine.
//!
//! One discharge cycle couples five models per step: the workload trace
//! fires system-call actions that move the device power-state machine;
//! the policy picks the battery; the component power models produce the
//! demand; the pack serves it (with switching and filter losses); and the
//! thermal network integrates the component heat, with the TEC pumping
//! the CPU hot spot when the 45 degC threshold trips.
//!
//! Service ends when the pack can no longer serve the demand — either a
//! sustained continuous shortfall or a high failure rate over a rolling
//! window (a phone that browns out on every app launch is dead to its
//! user even if it can still idle).
//!
//! The engine itself is [`DeviceSim`]: a resumable, step-wise core that
//! is generic over the policy, the trace supplier
//! ([`TraceSource`] — materialized or streamed) and the telemetry sink
//! (full series or constant-memory counters). [`Simulator`] is the
//! single-device front door that drives it to completion; the fleet
//! arena drives the same core in time-sliced windows across thousands of
//! devices. Both paths execute the identical per-tick operation
//! sequence, so their results are bitwise equal by construction.

use std::collections::VecDeque;
use std::sync::Arc;

use capman_battery::pack::BatteryPack;
use capman_device::fsm::Action;
use capman_device::phone::PhoneProfile;
use capman_device::power::PowerModel;
use capman_device::states::{DeviceState, TecState};
use capman_thermal::network::{NodeId, ThermalNetwork};
use capman_thermal::tec::{Tec, TecController, TecStep};
use capman_workload::{Trace, TraceSource};

use crate::actuator::Actuator;
use crate::config::SimConfig;
use crate::metrics::{EndReason, Outcome};
use crate::policy::{DecisionContext, Observation, Policy};
use crate::telemetry::{Sample, Telemetry, TelemetrySink};

/// Rolling window for the failure-rate end condition, seconds.
const FAIL_WINDOW_S: f64 = 120.0;
/// Failure fraction within the rolling window that ends the service.
const FAIL_FRACTION: f64 = 0.10;
/// Share of CPU power concentrated on the die hot spot.
const HOTSPOT_POWER_SHARE: f64 = 0.45;

/// A resumable single-device discharge-cycle core.
///
/// Holds the physics state (pack, thermal network, TEC, power-state
/// machine) and the outcome accumulators; the policy, trace and
/// telemetry sink are supplied per call so cohort-shared values can live
/// outside the per-device row. Cohort-shared immutables (the phone and
/// its power model) are `Arc`s for the same reason.
#[derive(Debug)]
pub struct DeviceSim {
    phone: Arc<PhoneProfile>,
    model: Arc<PowerModel>,
    pack: BatteryPack,
    config: SimConfig,
    thermal: ThermalNetwork,
    tec: Tec,
    tec_ctl: TecController,
    actuator: Actuator,
    state: DeviceState,
    t: f64,
    last_power_w: f64,
    last_sample_t: f64,
    // Accumulators.
    energy_delivered_j: f64,
    energy_heat_j: f64,
    work_served: f64,
    tec_on_s: f64,
    tec_energy_j: f64,
    max_hotspot_c: f64,
    hotspot_sum: f64,
    steps: u64,
    // End-condition trackers.
    consecutive_fail_s: f64,
    window_len: usize,
    fail_window: VecDeque<bool>,
    fails_in_window: usize,
    /// Actions fired in the current step — reused across steps so the
    /// hot loop allocates nothing in steady state.
    fired: Vec<Action>,
    done: Option<EndReason>,
}

impl DeviceSim {
    /// Assemble a fresh device at time zero.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(
        phone: Arc<PhoneProfile>,
        model: Arc<PowerModel>,
        pack: BatteryPack,
        config: SimConfig,
    ) -> Self {
        config.validate();
        let window_len = (FAIL_WINDOW_S / config.dt_s).round().max(1.0) as usize;
        DeviceSim {
            thermal: ThermalNetwork::phone_at_ambient(config.ambient_c),
            tec: Tec::ate31(),
            tec_ctl: TecController::new(config.tec_threshold_c, 2.0),
            actuator: Actuator::new(),
            state: DeviceState::asleep(),
            t: 0.0,
            last_power_w: 0.0,
            last_sample_t: f64::NEG_INFINITY,
            energy_delivered_j: 0.0,
            energy_heat_j: 0.0,
            work_served: 0.0,
            tec_on_s: 0.0,
            tec_energy_j: 0.0,
            max_hotspot_c: f64::NEG_INFINITY,
            hotspot_sum: 0.0,
            steps: 0,
            consecutive_fail_s: 0.0,
            window_len,
            fail_window: VecDeque::with_capacity(window_len),
            fails_in_window: 0,
            fired: Vec::new(),
            done: None,
            phone,
            model,
            pack,
            config,
        }
    }

    /// Advance one tick. Returns the end reason once the cycle is over
    /// (and keeps returning it on further calls without re-stepping).
    pub fn step<P, T, S>(
        &mut self,
        policy: &mut P,
        trace: &mut T,
        sink: &mut S,
    ) -> Option<EndReason>
    where
        P: Policy + ?Sized,
        T: TraceSource + ?Sized,
        S: TelemetrySink + ?Sized,
    {
        if self.done.is_some() {
            return self.done;
        }
        if self.t >= self.config.max_horizon_s {
            self.done = Some(EndReason::HorizonReached);
            return self.done;
        }
        if self.pack.is_depleted() {
            self.done = Some(EndReason::PackDepleted);
            return self.done;
        }

        let dt = self.config.dt_s;
        let t = self.t;

        // 1. Fire the trace's boundary actions.
        let prev_state = self.state;
        self.fired.clear();
        for seg in trace.segments_in(t, t + dt) {
            for &a in &seg.actions {
                self.state = self.state.apply(a);
                self.fired.push(a);
            }
        }

        // 2. Thermal governor: TEC on/off from the hot-spot reading.
        let hotspot_c = self.thermal.temp_c(NodeId::HotSpot);
        let tec_on = self.config.tec_enabled && self.tec_ctl.update(hotspot_c);
        self.state.tec = if tec_on { TecState::On } else { TecState::Off };

        // 3. Battery decision.
        let target = {
            let ctx = DecisionContext {
                time_s: t,
                state: self.state,
                actions: &self.fired,
                last_power_w: self.last_power_w,
                big_soc: self.pack.big().soc(),
                little_soc: self.pack.little().map(|c| c.soc()).unwrap_or(1.0),
                big_usable: self.pack.big().is_usable(),
                little_usable: self.pack.little().map(|c| c.is_usable()).unwrap_or(false),
                big_head: self.pack.big().available_head(),
                little_head: self
                    .pack
                    .little()
                    .map(|c| c.available_head())
                    .unwrap_or(0.0),
                hotspot_c,
                tec_on,
                dual: self.pack.little().is_some(),
            };
            policy.decide(&ctx)
        };
        for cal in policy.drain_calibrations() {
            sink.record_calibration(cal);
        }
        if let Some(switch_action) = self.actuator.apply(&mut self.pack, target) {
            self.state = self.state.apply(switch_action);
            self.fired.push(switch_action);
        } else {
            self.state.battery = self.pack.active();
        }

        // 4. Demand and thermal throttling.
        let mut demand = trace.demand_at(t);
        let throttled = hotspot_c > self.config.throttle_threshold_c;
        if throttled {
            demand.cpu_util *= self.config.throttle_factor;
        }
        let device_mw = self.model.device_power_mw(&self.state, &demand);

        // 5. TEC physics (pump before integrating the network).
        let tec_step = if tec_on {
            self.tec.pump(
                &mut self.thermal,
                NodeId::HotSpot,
                NodeId::Shell,
                self.tec.rated_current_a(),
            )
        } else {
            TecStep::off()
        };
        let total_w = device_mw / 1000.0 + tec_step.power_w;

        // 6. The pack serves the load.
        let battery_c = self.thermal.temp_c(NodeId::Battery);
        let pstep = self.pack.step(total_w, dt, battery_c);

        // 7. Component heat into the thermal network.
        let cpu_w = self.model.cpu().power_mw(self.state.cpu, &demand) / 1000.0;
        self.thermal
            .inject(NodeId::Cpu, cpu_w * (1.0 - HOTSPOT_POWER_SHARE));
        self.thermal
            .inject(NodeId::HotSpot, cpu_w * HOTSPOT_POWER_SHARE);
        self.thermal.inject(
            NodeId::Screen,
            self.model.screen().power_mw(self.state.screen, &demand) / 1000.0,
        );
        self.thermal.inject(
            NodeId::Shell,
            self.model.wifi().power_mw(self.state.wifi, &demand) / 1000.0,
        );
        self.thermal.inject(NodeId::Battery, pstep.heat_w);
        self.thermal.step(dt);

        // 8. Bookkeeping.
        let fail = total_w > 0.0 && pstep.shortfall_w > self.config.shortfall_tolerance * total_w;
        self.energy_delivered_j += pstep.delivered_w * dt;
        self.energy_heat_j += pstep.heat_w * dt;
        if !fail {
            let freq_share = (demand.freq_index.min(self.phone.n_freqs() - 1) + 1) as f64
                / self.phone.n_freqs() as f64;
            self.work_served += demand.cpu_util * freq_share * dt;
        }
        if tec_on {
            self.tec_on_s += dt;
            self.tec_energy_j += tec_step.power_w * dt;
        }
        let spot = self.thermal.temp_c(NodeId::HotSpot);
        self.max_hotspot_c = self.max_hotspot_c.max(spot);
        self.hotspot_sum += spot;
        self.steps += 1;

        // 9. Feed the policy.
        let reward = if fail {
            0.0
        } else {
            let spent = pstep.delivered_w + pstep.heat_w;
            if spent > 0.0 {
                (pstep.delivered_w / spent).clamp(0.0, 1.0)
            } else {
                1.0
            }
        };
        policy.observe(&Observation {
            time_s: t + dt,
            prev_state,
            action: self.fired.first().copied().unwrap_or(Action::TimerTick),
            new_state: self.state,
            reward,
            power_w: total_w,
        });
        self.last_power_w = total_w;

        // 10. Telemetry.
        if t - self.last_sample_t >= self.config.sample_every_s {
            self.last_sample_t = t;
            sink.record_sample(Sample {
                time_s: t,
                power_mw: total_w * 1000.0,
                hotspot_c: spot,
                shell_c: self.thermal.temp_c(NodeId::Shell),
                battery_c: self.thermal.temp_c(NodeId::Battery),
                big_soc: self.pack.big().soc(),
                little_soc: self.pack.little().map(|c| c.soc()).unwrap_or(1.0),
                active: pstep.active,
                tec_on,
                voltage_v: pstep.voltage_v,
            });
        }

        // 11. End conditions.
        if fail {
            self.consecutive_fail_s += dt;
        } else {
            self.consecutive_fail_s = 0.0;
        }
        if self.fail_window.len() == self.window_len && self.fail_window.pop_front() == Some(true) {
            self.fails_in_window -= 1;
        }
        self.fail_window.push_back(fail);
        if fail {
            self.fails_in_window += 1;
        }
        let window_full = self.fail_window.len() == self.window_len;
        if self.consecutive_fail_s >= self.config.shortfall_window_s
            || (window_full && self.fails_in_window as f64 / self.window_len as f64 > FAIL_FRACTION)
        {
            self.done = Some(EndReason::SustainedShortfall);
            return self.done;
        }

        self.t += dt;
        None
    }

    /// Advance until the cycle ends or the clock reaches `t_end` — the
    /// fleet arena's time-slice entry point. Returns the end reason if
    /// the cycle is over.
    pub fn run_until<P, T, S>(
        &mut self,
        policy: &mut P,
        trace: &mut T,
        sink: &mut S,
        t_end: f64,
    ) -> Option<EndReason>
    where
        P: Policy + ?Sized,
        T: TraceSource + ?Sized,
        S: TelemetrySink + ?Sized,
    {
        while self.done.is_none() && self.t < t_end {
            self.step(policy, trace, sink);
        }
        self.done
    }

    /// The end reason, once the cycle is over.
    pub fn end_reason(&self) -> Option<EndReason> {
        self.done
    }

    /// Current simulation time, seconds (the service time once done).
    pub fn time_s(&self) -> f64 {
        self.t
    }

    /// Work units served so far.
    pub fn work_served(&self) -> f64 {
        self.work_served
    }

    /// Energy delivered by the pack so far, joules.
    pub fn energy_delivered_j(&self) -> f64 {
        self.energy_delivered_j
    }

    /// Battery switches performed so far.
    pub fn switches(&self) -> u64 {
        self.actuator.switches()
    }

    /// Peak hot-spot temperature, degC (ambient before the first step —
    /// the same fallback the single-device outcome reports).
    pub fn peak_hotspot_c(&self) -> f64 {
        if self.steps > 0 {
            self.max_hotspot_c
        } else {
            self.config.ambient_c
        }
    }

    /// Consume the core into a full [`Outcome`]. `policy` must be the
    /// value that drove the run (its name and counters are reported) and
    /// `telemetry` the sink it filled.
    ///
    /// # Panics
    ///
    /// Panics if the cycle has not ended yet.
    pub fn finish(self, policy: &dyn Policy, workload: &str, telemetry: Telemetry) -> Outcome {
        let end_reason = self.done.expect("finish() before the cycle ended");
        Outcome {
            policy: policy.name().to_string(),
            workload: workload.to_string(),
            phone: self.phone.name.to_string(),
            service_time_s: self.t,
            end_reason,
            energy_delivered_j: self.energy_delivered_j,
            energy_heat_j: self.energy_heat_j,
            work_served: self.work_served,
            switches: self.actuator.switches(),
            big_active_s: self.pack.big_active_s(),
            little_active_s: self.pack.little_active_s(),
            big_delivered_j: self.pack.big().delivered_j(),
            little_delivered_j: self.pack.little().map(|c| c.delivered_j()).unwrap_or(0.0),
            tec_on_s: self.tec_on_s,
            tec_energy_j: self.tec_energy_j,
            max_hotspot_c: if self.steps > 0 {
                self.max_hotspot_c
            } else {
                self.config.ambient_c
            },
            mean_hotspot_c: if self.steps > 0 {
                self.hotspot_sum / self.steps as f64
            } else {
                self.config.ambient_c
            },
            scheduler_overhead_us: policy.overhead_us(),
            recalibrations: policy.recalibrations(),
            telemetry,
        }
    }
}

/// A configured discharge-cycle simulation.
pub struct Simulator {
    phone: PhoneProfile,
    model: PowerModel,
    trace: Trace,
    pack: BatteryPack,
    policy: Box<dyn Policy>,
    config: SimConfig,
}

impl Simulator {
    /// Assemble a simulation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(
        phone: PhoneProfile,
        trace: Trace,
        pack: BatteryPack,
        policy: Box<dyn Policy>,
        config: SimConfig,
    ) -> Self {
        config.validate();
        let model = phone.power_model();
        Simulator {
            phone,
            model,
            trace,
            pack,
            policy,
            config,
        }
    }

    /// Run one discharge cycle to completion.
    pub fn run(self) -> Outcome {
        let Simulator {
            phone,
            model,
            mut trace,
            pack,
            mut policy,
            config,
        } = self;
        let mut sim = DeviceSim::new(Arc::new(phone), Arc::new(model), pack, config);
        let mut telemetry = Telemetry::new();
        while sim
            .step(policy.as_mut(), &mut trace, &mut telemetry)
            .is_none()
        {}
        sim.finish(policy.as_ref(), trace.name(), telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{DualPolicy, PracticePolicy};
    use capman_battery::chemistry::Chemistry;
    use capman_workload::{generate, WorkloadKind};

    fn quick_config() -> SimConfig {
        SimConfig {
            max_horizon_s: 2000.0,
            ..SimConfig::paper()
        }
    }

    #[test]
    fn idle_cycle_survives_the_short_horizon() {
        let trace = generate(WorkloadKind::IdleOn, 2500.0, 1);
        let sim = Simulator::new(
            PhoneProfile::nexus(),
            trace,
            BatteryPack::single(Chemistry::Nca, 5.0),
            Box::new(PracticePolicy),
            quick_config(),
        );
        let o = sim.run();
        assert_eq!(o.end_reason, EndReason::HorizonReached);
        assert!(o.energy_delivered_j > 0.0);
        assert!(o.work_served > 0.0);
        assert_eq!(o.switches, 0);
    }

    #[test]
    fn tiny_battery_dies_quickly_under_load() {
        let trace = generate(WorkloadKind::Geekbench, 10_000.0, 1);
        let config = SimConfig {
            max_horizon_s: 10_000.0,
            ..SimConfig::paper()
        };
        let sim = Simulator::new(
            PhoneProfile::nexus(),
            trace,
            BatteryPack::single(Chemistry::Nca, 0.15),
            Box::new(PracticePolicy),
            config,
        );
        let o = sim.run();
        assert_ne!(o.end_reason, EndReason::HorizonReached);
        assert!(o.service_time_s < 10_000.0);
    }

    #[test]
    fn dual_policy_actually_switches() {
        let trace = generate(WorkloadKind::Pcmark, 2500.0, 2);
        let sim = Simulator::new(
            PhoneProfile::nexus(),
            trace,
            BatteryPack::paper_prototype(),
            Box::new(DualPolicy),
            quick_config(),
        );
        let o = sim.run();
        assert!(o.little_active_s > 0.0);
        assert!(o.switches >= 1);
    }

    #[test]
    fn telemetry_is_sampled() {
        let trace = generate(WorkloadKind::Video, 2500.0, 3);
        let sim = Simulator::new(
            PhoneProfile::nexus(),
            trace,
            BatteryPack::paper_prototype(),
            Box::new(DualPolicy),
            quick_config(),
        );
        let o = sim.run();
        assert!(o.telemetry.len() >= 10);
        assert!(o.telemetry.mean_power_mw() > 100.0);
    }

    #[test]
    fn capman_calibration_telemetry_reaches_the_outcome() {
        use crate::capman::CapmanPolicy;
        let trace = generate(WorkloadKind::Pcmark, 3000.0, 5);
        let config = SimConfig {
            max_horizon_s: 3000.0,
            ..SimConfig::paper()
        };
        let sim = Simulator::new(
            PhoneProfile::nexus(),
            trace,
            BatteryPack::paper_prototype(),
            Box::new(CapmanPolicy::new(1.0)),
            config,
        );
        let o = sim.run();
        assert!(o.recalibrations >= 1, "CAPMAN should calibrate");
        assert_eq!(
            o.telemetry.calibrations().len() as u64,
            o.recalibrations,
            "every calibration must be drained into telemetry"
        );
        for cal in o.telemetry.calibrations() {
            assert!(cal.sweeps >= 1);
            assert!(cal.wall_us > 0.0);
            assert!(cal.graph_action_nodes >= 1);
        }
    }

    #[test]
    fn heavy_load_heats_the_hot_spot() {
        let trace = generate(WorkloadKind::Geekbench, 2500.0, 4);
        let sim = Simulator::new(
            PhoneProfile::nexus(),
            trace,
            BatteryPack::paper_prototype(),
            Box::new(DualPolicy),
            quick_config(),
        );
        let o = sim.run();
        assert!(
            o.max_hotspot_c > 40.0,
            "Geekbench should heat the spot, got {}",
            o.max_hotspot_c
        );
    }

    #[test]
    fn stepwise_run_until_matches_single_pass_bitwise() {
        // The fleet arena's time-sliced scheduling resumes a DeviceSim
        // mid-cycle; the per-tick operation sequence must be identical
        // to running straight through.
        let config = quick_config();
        let build = || {
            DeviceSim::new(
                Arc::new(PhoneProfile::nexus()),
                Arc::new(PhoneProfile::nexus().power_model()),
                BatteryPack::paper_prototype(),
                config,
            )
        };
        let mut one_trace = generate(WorkloadKind::Pcmark, 2500.0, 9);
        let mut one_policy = DualPolicy;
        let mut one_tel = Telemetry::new();
        let mut one = build();
        while one
            .step(&mut one_policy, &mut one_trace, &mut one_tel)
            .is_none()
        {}

        let mut sliced_trace = generate(WorkloadKind::Pcmark, 2500.0, 9);
        let mut sliced_policy = DualPolicy;
        let mut sliced_tel = Telemetry::new();
        let mut sliced = build();
        let mut w = 0.0;
        while sliced
            .run_until(&mut sliced_policy, &mut sliced_trace, &mut sliced_tel, w)
            .is_none()
        {
            w += 300.0;
        }

        let a = one.finish(&one_policy, "pcmark", one_tel);
        let b = sliced.finish(&sliced_policy, "pcmark", sliced_tel);
        assert_eq!(a, b, "time-sliced stepping must be bit-identical");
    }
}
