//! Statistical self-tests for the gate's verdict machinery: seeded
//! synthetic timing distributions pushed through the same Welch test
//! and judge the CI gate runs.
//!
//! * Under the null (A/A), the raw false-positive rate must sit in a
//!   binomial tolerance band around `alpha`, and the full gate verdict
//!   (which adds the practical-effect floor) must fail *less* often.
//! * Under a 2x shift at n = 10 reps per arm, the gate must fail every
//!   time — the power regime CI relies on.

use capman_bench::gate::{judge, GateConfig, RowVerdict};
use capman_lab::stats::{mean, welch_t_test};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Box–Muller normal draw.
fn normal(rng: &mut StdRng, mu: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mu + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn arm(rng: &mut StdRng, n: usize, mu: f64, sd: f64) -> Vec<f64> {
    (0..n).map(|_| normal(rng, mu, sd)).collect()
}

#[test]
fn aa_false_positive_rate_stays_in_the_alpha_band() {
    let cfg = GateConfig::default();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let trials = 400;
    let mut significant = 0usize;
    let mut gate_fails = 0usize;
    for _ in 0..trials {
        let a = arm(&mut rng, 10, 100.0, 5.0);
        let b = arm(&mut rng, 10, 100.0, 5.0);
        let w = welch_t_test(&a, &b).expect("10 samples per arm");
        if w.p_greater < cfg.alpha {
            significant += 1;
        }
        if judge(mean(&a), mean(&b), &a, &b, &cfg).0 == RowVerdict::Fail {
            gate_fails += 1;
        }
    }
    // E[significant] = 400 * 0.05 = 20, sd = sqrt(400 * .05 * .95) ≈ 4.4;
    // [6, 38] is a ±~3.2 sd band — loose enough to be seed-stable, tight
    // enough to catch a mis-calibrated CDF (e.g. a two-sided p) outright.
    assert!(
        (6..=38).contains(&significant),
        "A/A raw significance count {significant}/400 is outside the alpha=0.05 band"
    );
    // The min-effect floor only ever removes failures.
    assert!(
        gate_fails <= significant,
        "the practical floor must not add failures ({gate_fails} > {significant})"
    );
    // With sd=5 and n=10 the floor (5% of 100 ms) sits ~2.2 se out, so
    // the gate's own A/A failure rate is pushed well below alpha.
    assert!(
        gate_fails <= 16,
        "gate A/A failure count {gate_fails}/400 too high for alpha=0.05 + 5% floor"
    );
}

#[test]
fn a_2x_shift_is_detected_every_time_at_n10() {
    let cfg = GateConfig::default();
    let mut rng = StdRng::seed_from_u64(0xB16B00);
    for trial in 0..100 {
        let a = arm(&mut rng, 10, 100.0, 5.0);
        let b = arm(&mut rng, 10, 200.0, 10.0);
        let (verdict, detail) = judge(mean(&a), mean(&b), &a, &b, &cfg);
        assert_eq!(
            verdict,
            RowVerdict::Fail,
            "trial {trial}: a 2x shift must fail the gate — {detail}"
        );
    }
}

#[test]
fn a_2x_speedup_never_fails() {
    // Symmetry check on the one-sidedness: big *improvements* must not
    // trip a slowdown gate no matter how significant they are.
    let cfg = GateConfig::default();
    let mut rng = StdRng::seed_from_u64(0xFA57);
    for trial in 0..100 {
        let a = arm(&mut rng, 10, 100.0, 5.0);
        let b = arm(&mut rng, 10, 50.0, 2.5);
        let (verdict, detail) = judge(mean(&a), mean(&b), &a, &b, &cfg);
        assert_eq!(
            verdict,
            RowVerdict::Pass,
            "trial {trial}: an improvement failed the gate — {detail}"
        );
    }
}
