//! Concurrent fan-out of independent discharge-cycle simulations.
//!
//! Every figure of the evaluation is a grid of *scenarios* — one
//! `(trace, policy, config)` triple per cell — and each scenario is a
//! completely independent [`Simulator`] run: its own trace generation,
//! its own battery pack, its own policy instance. [`ScenarioRunner`]
//! exploits that independence by dealing scenarios across the available
//! cores and merging the resulting [`Outcome`]s (telemetry included)
//! back **by scenario index**, so the output vector is byte-for-byte the
//! same whatever the schedule: result `i` always belongs to scenario
//! `i`, and a scenario's simulation never observes another scenario.
//!
//! The experiment harness ([`crate::experiments`]) routes every
//! multi-scenario figure (Figs. 12–15, the seed-scatter stats, the
//! ambient sweep) through this runner, which makes the figure and
//! ablation harnesses scale with cores without touching the simulation
//! engine itself.

use capman_battery::pack::BatteryPack;
use capman_device::phone::PhoneProfile;
use capman_mdp::ExecutionMode;
use capman_workload::{generate, WorkloadKind};
use rayon::prelude::*;

use crate::capman::CapmanPolicy;
use crate::config::SimConfig;
use crate::experiments::{build_pack, build_policy, PolicyKind};
use crate::metrics::Outcome;
use crate::online::CalibratorSpec;
use crate::policy::Policy;
use crate::sim::Simulator;

/// One independent discharge-cycle simulation: which policy runs which
/// workload on which phone, under which configuration and battery pack.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The scheduling policy under test.
    pub kind: PolicyKind,
    /// Workload generator for the trace.
    pub workload: WorkloadKind,
    /// Phone model (power model, compute speed).
    pub phone: PhoneProfile,
    /// Trace-generation seed.
    pub seed: u64,
    /// Simulation configuration (horizon, ambient, TEC).
    pub config: SimConfig,
    /// Explicit battery pack; `None` uses the policy's default pack
    /// ([`build_pack`]).
    pub pack: Option<BatteryPack>,
    /// Non-default calibrator for CAPMAN scenarios (the what-if rollouts
    /// the offline oracle scores candidate configurations with); `None`
    /// uses the paper calibrator. Ignored by non-CAPMAN policies.
    pub calibrator: Option<CalibratorSpec>,
}

impl Scenario {
    /// A scenario on the policy's default battery pack.
    pub fn new(
        kind: PolicyKind,
        workload: WorkloadKind,
        phone: PhoneProfile,
        seed: u64,
        config: SimConfig,
    ) -> Self {
        Scenario {
            kind,
            workload,
            phone,
            seed,
            config,
            pack: None,
            calibrator: None,
        }
    }

    /// Override the battery pack (the hardware-swap ablations).
    pub fn with_pack(mut self, pack: BatteryPack) -> Self {
        self.pack = Some(pack);
        self
    }

    /// Run CAPMAN with a non-default calibrator configuration (candidate
    /// scoring; no effect on other policies).
    pub fn with_calibrator(mut self, spec: CalibratorSpec) -> Self {
        self.calibrator = Some(spec);
        self
    }

    /// Run this scenario to completion on the calling thread.
    pub fn run(&self) -> Outcome {
        let _span = capman_obs::span("scenario_run", self.seed);
        let trace = generate(self.workload, self.config.max_horizon_s, self.seed);
        let pack = self.pack.clone().unwrap_or_else(|| build_pack(self.kind));
        let policy: Box<dyn Policy> = match (self.kind, self.calibrator) {
            (PolicyKind::Capman, Some(spec)) => Box::new(CapmanPolicy::with_calibrator(
                self.phone.compute_speed,
                spec.build(),
            )),
            _ => build_policy(self.kind, &trace, &self.phone),
        };
        Simulator::new(self.phone.clone(), trace, pack, policy, self.config).run()
    }
}

/// Runs batches of independent scenarios, concurrently when cores allow.
///
/// Determinism contract: [`run`](ScenarioRunner::run) returns exactly
/// `scenarios.iter().map(Scenario::run).collect()` — same outcomes, same
/// order — under every schedule. Each scenario owns its simulator, trace
/// and pack, so there is no shared mutable state to race on; the only
/// cross-thread communication is each worker writing its own disjoint
/// output slot.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioRunner {
    mode: ExecutionMode,
}

impl Default for ScenarioRunner {
    fn default() -> Self {
        ScenarioRunner::new()
    }
}

impl ScenarioRunner {
    /// A runner that fans out across the available cores (inline on a
    /// single-core machine — the fan-out has no spawn overhead there).
    pub fn new() -> Self {
        ScenarioRunner {
            mode: ExecutionMode::Parallel,
        }
    }

    /// A runner that executes scenarios one after another on the calling
    /// thread (debugging / profiling).
    pub fn serial() -> Self {
        ScenarioRunner {
            mode: ExecutionMode::Serial,
        }
    }

    /// The configured schedule.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Run every scenario, merging outcomes by scenario index.
    pub fn run(&self, scenarios: &[Scenario]) -> Vec<Outcome> {
        match self.mode {
            ExecutionMode::Serial => scenarios.iter().map(Scenario::run).collect(),
            ExecutionMode::Parallel => {
                let mut slots: Vec<Option<Outcome>> = scenarios.iter().map(|_| None).collect();
                slots
                    .par_chunks_mut(1)
                    .enumerate()
                    .for_each(|i, slot| slot[0] = Some(scenarios[i].run()));
                slots
                    .into_iter()
                    .map(|o| o.expect("every scenario slot is filled exactly once"))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short(kind: PolicyKind, workload: WorkloadKind, seed: u64) -> Scenario {
        let config = SimConfig {
            max_horizon_s: 900.0,
            tec_enabled: kind.has_tec(),
            ..SimConfig::paper()
        };
        Scenario::new(kind, workload, PhoneProfile::nexus(), seed, config)
    }

    #[test]
    fn parallel_run_matches_serial_run_in_order() {
        let scenarios = vec![
            short(PolicyKind::Dual, WorkloadKind::Video, 7),
            short(PolicyKind::Practice, WorkloadKind::Pcmark, 7),
            short(PolicyKind::Heuristic, WorkloadKind::Video, 9),
        ];
        let serial = ScenarioRunner::serial().run(&scenarios);
        let parallel = ScenarioRunner::new().run(&scenarios);
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.policy, b.policy, "scenario {i}");
            assert_eq!(a.service_time_s, b.service_time_s, "scenario {i}");
            assert_eq!(a.work_served, b.work_served, "scenario {i}");
            assert_eq!(
                a.telemetry.samples().len(),
                b.telemetry.samples().len(),
                "scenario {i}"
            );
        }
    }

    #[test]
    fn outcomes_follow_scenario_order_not_completion_order() {
        // Different horizons make completion times differ; order must not.
        let mut long = short(PolicyKind::Dual, WorkloadKind::Video, 3);
        long.config.max_horizon_s = 1800.0;
        let scenarios = vec![long, short(PolicyKind::Practice, WorkloadKind::Video, 3)];
        let out = ScenarioRunner::new().run(&scenarios);
        assert_eq!(out[0].policy, "Dual");
        assert_eq!(out[1].policy, "Practice");
    }

    #[test]
    fn calibrator_override_changes_the_capman_run() {
        let base = short(PolicyKind::Capman, WorkloadKind::Pcmark, 11);
        // An aggressive interval calibrates far more often than the
        // paper's 20-minute default within the same horizon.
        let mut eager = base.clone().with_calibrator(CalibratorSpec {
            every_s: 60.0,
            ..CalibratorSpec::paper()
        });
        eager.config.max_horizon_s = 3600.0;
        let mut default = base;
        default.config.max_horizon_s = 3600.0;
        let out = ScenarioRunner::new().run(&[eager, default]);
        let calib = |o: &Outcome| o.telemetry.calibrations().len();
        assert!(
            calib(&out[0]) > calib(&out[1]),
            "eager: {}, default: {}",
            calib(&out[0]),
            calib(&out[1])
        );
    }

    #[test]
    fn pack_override_is_respected() {
        use capman_battery::chemistry::Chemistry;
        let scenario = short(PolicyKind::Dual, WorkloadKind::Video, 5)
            .with_pack(BatteryPack::single(Chemistry::Nca, 2.0));
        let out = ScenarioRunner::new().run(&[scenario]);
        assert_eq!(out.len(), 1);
        assert!(out[0].little_active_s == 0.0, "single pack has no LITTLE");
    }
}
