//! An indentation-based parser for the YAML subset `experiment.yaml`
//! uses, producing the same [`Json`] tree as the JSON parser so the
//! spec layer reads one value model regardless of source format.
//!
//! Supported grammar — deliberately the plain-config slice of YAML:
//!
//! * block mappings (`key: value`, nested by indentation)
//! * block sequences (`- item`, including `- key: value` mapping items)
//! * flow sequences and mappings on one line (`[1, 2]`, `{rho: 0.05}`)
//! * scalars: `null`/`~`, booleans, numbers, bare and quoted strings
//! * `#` comments and blank lines
//!
//! Not supported (and rejected rather than misread): anchors, aliases,
//! tags, multi-line block scalars, multi-document streams.

use crate::json::Json;

/// Parse a YAML document into a [`Json`] tree.
pub fn parse(src: &str) -> Result<Json, String> {
    let rows = split_rows(src)?;
    if rows.is_empty() {
        return Ok(Json::Null);
    }
    let mut p = Parser { rows, pos: 0 };
    let root_indent = p.rows[0].indent;
    let value = p.node(root_indent)?;
    if let Some(row) = p.rows.get(p.pos) {
        return Err(format!(
            "line {}: content after the document root (indentation never returns to column {})",
            row.line, root_indent
        ));
    }
    Ok(value)
}

struct Row {
    indent: usize,
    text: String,
    line: usize,
}

/// Strip comments/blanks and measure indentation. Tabs in indentation
/// are rejected (YAML forbids them and silently mixing them with spaces
/// misnests blocks).
fn split_rows(src: &str) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        let indent = raw.len() - raw.trim_start_matches(' ').len();
        let body = &raw[indent..];
        if body.starts_with('\t') {
            return Err(format!("line {line}: tab in indentation"));
        }
        let body = strip_comment(body).trim_end();
        if body.is_empty() || body == "---" {
            continue;
        }
        rows.push(Row {
            indent,
            text: body.to_string(),
            line,
        });
    }
    Ok(rows)
}

/// Drop a trailing `# comment` that is not inside a quoted scalar.
fn strip_comment(body: &str) -> &str {
    let mut quote: Option<char> = None;
    for (i, c) in body.char_indices() {
        match (quote, c) {
            (Some(q), c) if c == q => quote = None,
            (None, '"' | '\'') => quote = Some(c),
            (None, '#') if i == 0 || body.as_bytes()[i - 1].is_ascii_whitespace() => {
                return &body[..i];
            }
            _ => {}
        }
    }
    body
}

struct Parser {
    rows: Vec<Row>,
    pos: usize,
}

impl Parser {
    /// Parse the block starting at the cursor, which must sit at
    /// `indent`. Consumes every row indented at least that far.
    fn node(&mut self, indent: usize) -> Result<Json, String> {
        let row = &self.rows[self.pos];
        if row.text == "-" || row.text.starts_with("- ") {
            self.sequence(indent)
        } else if split_key(&row.text).is_some() {
            self.mapping(indent)
        } else {
            let value = scalar(&row.text, row.line)?;
            self.pos += 1;
            Ok(value)
        }
    }

    fn mapping(&mut self, indent: usize) -> Result<Json, String> {
        let mut members: Vec<(String, Json)> = Vec::new();
        while let Some(row) = self.rows.get(self.pos) {
            if row.indent < indent {
                break;
            }
            if row.indent > indent {
                return Err(format!("line {}: unexpected indentation", row.line));
            }
            let line = row.line;
            let Some((key, rest)) = split_key(&row.text) else {
                return Err(format!("line {line}: expected `key: value`"));
            };
            let key = unquote(key.trim());
            if members.iter().any(|(k, _)| *k == key) {
                return Err(format!("line {line}: duplicate key {key:?}"));
            }
            let rest = rest.trim().to_string();
            self.pos += 1;
            let value = if rest.is_empty() {
                // Value is the nested block, if the next row is deeper.
                match self.rows.get(self.pos) {
                    Some(next) if next.indent > indent => {
                        let child = next.indent;
                        self.node(child)?
                    }
                    _ => Json::Null,
                }
            } else {
                scalar(&rest, line)?
            };
            members.push((key, value));
        }
        Ok(Json::Obj(members))
    }

    fn sequence(&mut self, indent: usize) -> Result<Json, String> {
        let mut items = Vec::new();
        while let Some(row) = self.rows.get(self.pos) {
            if row.indent < indent {
                break;
            }
            if row.indent > indent || !(row.text == "-" || row.text.starts_with("- ")) {
                return Err(format!(
                    "line {}: expected a `- ` sequence item at column {indent}",
                    row.line
                ));
            }
            let rest = row.text[1..].trim_start().to_string();
            let line = row.line;
            if rest.is_empty() {
                // `-` alone: the item is the nested block.
                self.pos += 1;
                match self.rows.get(self.pos) {
                    Some(next) if next.indent > indent => {
                        let child = next.indent;
                        items.push(self.node(child)?);
                    }
                    _ => items.push(Json::Null),
                }
            } else if split_key(&rest).is_some() {
                // `- key: value`: a mapping item whose first entry rides
                // on the dash line. Rewrite the row as that entry at the
                // item's inner indentation (dash column + 2) and parse
                // the mapping from there — following keys of the same
                // item sit at exactly that column.
                let inner = indent + 2;
                self.rows[self.pos] = Row {
                    indent: inner,
                    text: rest,
                    line,
                };
                items.push(self.mapping(inner)?);
            } else {
                self.pos += 1;
                items.push(scalar(&rest, line)?);
            }
        }
        Ok(Json::Arr(items))
    }
}

/// Split `key: value` at the first `:` that is followed by whitespace
/// or ends the line, outside quotes and flow brackets.
fn split_key(text: &str) -> Option<(&str, &str)> {
    let bytes = text.as_bytes();
    let mut quote: Option<u8> = None;
    let mut depth = 0usize;
    for (i, &c) in bytes.iter().enumerate() {
        match (quote, c) {
            (Some(q), c) if c == q => quote = None,
            (Some(_), _) => {}
            (None, b'"' | b'\'') => quote = Some(c),
            (None, b'[' | b'{') => depth += 1,
            (None, b']' | b'}') => depth = depth.saturating_sub(1),
            (None, b':')
                if depth == 0 && (i + 1 == bytes.len() || bytes[i + 1].is_ascii_whitespace()) =>
            {
                return Some((&text[..i], &text[i + 1..]));
            }
            _ => {}
        }
    }
    None
}

/// Parse a one-line value: flow collection, quoted string, or plain
/// scalar.
fn scalar(text: &str, line: usize) -> Result<Json, String> {
    let text = text.trim();
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("line {line}: unterminated flow sequence"))?;
        let mut items = Vec::new();
        for part in split_flow(inner, line)? {
            items.push(scalar(&part, line)?);
        }
        return Ok(Json::Arr(items));
    }
    if let Some(inner) = text.strip_prefix('{') {
        let inner = inner
            .strip_suffix('}')
            .ok_or_else(|| format!("line {line}: unterminated flow mapping"))?;
        let mut members = Vec::new();
        for part in split_flow(inner, line)? {
            let Some((key, rest)) = part.split_once(':') else {
                return Err(format!(
                    "line {line}: expected `key: value` in flow mapping"
                ));
            };
            members.push((unquote(key.trim()), scalar(rest, line)?));
        }
        return Ok(Json::Obj(members));
    }
    if (text.starts_with('"') && text.ends_with('"') && text.len() >= 2)
        || (text.starts_with('\'') && text.ends_with('\'') && text.len() >= 2)
    {
        return Ok(Json::Str(unquote(text)));
    }
    Ok(match text {
        "null" | "~" => Json::Null,
        "true" => Json::Bool(true),
        "false" => Json::Bool(false),
        _ => match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Json::Num(v),
            _ => Json::Str(text.to_string()),
        },
    })
}

/// Split flow-collection content on top-level commas.
fn split_flow(inner: &str, line: usize) -> Result<Vec<String>, String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut quote: Option<char> = None;
    let mut current = String::new();
    for c in inner.chars() {
        match (quote, c) {
            (Some(q), c) if c == q => {
                quote = None;
                current.push(c);
            }
            (Some(_), c) => current.push(c),
            (None, '"' | '\'') => {
                quote = Some(c);
                current.push(c);
            }
            (None, '[' | '{') => {
                depth += 1;
                current.push(c);
            }
            (None, ']' | '}') => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| format!("line {line}: unbalanced flow brackets"))?;
                current.push(c);
            }
            (None, ',') if depth == 0 => {
                parts.push(std::mem::take(&mut current));
                continue;
            }
            (None, c) => current.push(c),
        }
    }
    if quote.is_some() || depth != 0 {
        return Err(format!("line {line}: unterminated flow collection"));
    }
    if !current.trim().is_empty() || !parts.is_empty() {
        parts.push(current);
    }
    Ok(parts.into_iter().filter(|p| !p.trim().is_empty()).collect())
}

fn unquote(text: &str) -> String {
    for q in ['"', '\''] {
        if text.len() >= 2 && text.starts_with(q) && text.ends_with(q) {
            return text[1..text.len() - 1].to_string();
        }
    }
    text.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::obj;

    #[test]
    fn parses_the_experiment_shape() {
        let doc = "\
# the fig12 sweep
name: fig12
design:
  repeats: 3
  base_seed: 42
variants:
  - name: capman
    policy: CAPMAN
    calibrator: {rho: 0.05, every_s: 1200}
  - name: practice
    policy: Practice
";
        let v = parse(doc).expect("valid yaml");
        assert_eq!(v.str("name"), Some("fig12"));
        assert_eq!(v.get("design").unwrap().num("repeats"), Some(3.0));
        let variants = v.get("variants").unwrap().as_arr().unwrap();
        assert_eq!(variants.len(), 2);
        assert_eq!(variants[0].str("policy"), Some("CAPMAN"));
        assert_eq!(
            variants[0].get("calibrator").unwrap().num("every_s"),
            Some(1200.0)
        );
        assert_eq!(variants[1].str("name"), Some("practice"));
    }

    #[test]
    fn scalars_and_flow_collections() {
        let doc = "\
a: true
b: ~
c: -2.5e3
d: \"quoted # not a comment\"
e: [1, 2, 3]
f: plain string   # comment
";
        let v = parse(doc).expect("valid");
        assert_eq!(v.get("a"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b"), Some(&Json::Null));
        assert_eq!(v.num("c"), Some(-2500.0));
        assert_eq!(v.str("d"), Some("quoted # not a comment"));
        assert_eq!(
            v.get("e"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.0),
                Json::Num(3.0)
            ]))
        );
        assert_eq!(v.str("f"), Some("plain string"));
    }

    #[test]
    fn nested_sequences_of_scalars() {
        let doc = "\
workloads:
  - video
  - pcmark
devices: 64
";
        let v = parse(doc).expect("valid");
        assert_eq!(
            v.get("workloads"),
            Some(&Json::Arr(vec![
                Json::Str("video".into()),
                Json::Str("pcmark".into())
            ]))
        );
        assert_eq!(v.num("devices"), Some(64.0));
    }

    #[test]
    fn mapping_item_fields_align_after_the_dash() {
        let doc = "\
variants:
  - name: a
    policy: Dual
    tec: false
";
        let v = parse(doc).expect("valid");
        let item = &v.get("variants").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            item,
            &obj(vec![
                ("name", Json::Str("a".into())),
                ("policy", Json::Str("Dual".into())),
                ("tec", Json::Bool(false)),
            ])
        );
    }

    #[test]
    fn rejects_what_it_does_not_support() {
        for bad in [
            "key: value\n\tbad: tabs",
            "a:\n    b: 1\n  c: misnested",
            "a: [1, 2",
            "a: {rho: ",
            "dup: 1\ndup: 2",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_documents_read_as_null() {
        assert_eq!(parse("").unwrap(), Json::Null);
        assert_eq!(parse("# only comments\n\n").unwrap(), Json::Null);
    }
}
