//! Cross-PR perf regression gate over `BENCH_mdp.json`.
//!
//! ```text
//! perf_gate <committed.json> <fresh.json> [--max-slowdown 1.30] [--min-ms 0.25]
//! ```
//!
//! CI regenerates the benchmark report and compares it against the
//! committed one **at matching state counts**: if a gated metric slowed
//! down by more than the allowed factor (default 1.30, i.e. >30%), the
//! gate exits non-zero and prints the offending rows.
//!
//! Gated metrics are the *serial* solver time (`csr_serial_ms`) and the
//! similarity engine time (`engine_ms`). The parallel solver time is
//! reported but not gated — its variance on shared CI runners (core
//! stealing, migration) swamps a 30% threshold. Rows whose committed
//! time is below the `--min-ms` floor are skipped too: at sub-floor
//! durations the timer and allocator noise exceed any real regression.
//! Fixture sizes present in only one file are reported and ignored.

use capman_bench::perf_report::{parse_rows, row_value};

/// A gated metric within a section of the report.
const GATES: [(&str, &str); 2] = [("solver", "csr_serial_ms"), ("similarity", "engine_ms")];

struct Args {
    committed: String,
    fresh: String,
    max_slowdown: f64,
    min_ms: f64,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str, default: f64| -> f64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let positional: Vec<&String> = {
        // Strip flag pairs to recover the two file paths.
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.starts_with("--") {
                    skip_next = true;
                    return false;
                }
                true
            })
            .collect()
    };
    if positional.len() != 2 {
        eprintln!(
            "usage: perf_gate <committed.json> <fresh.json> [--max-slowdown 1.30] [--min-ms 0.25]"
        );
        std::process::exit(2);
    }
    Args {
        committed: positional[0].clone(),
        fresh: positional[1].clone(),
        max_slowdown: flag("--max-slowdown", 1.30),
        min_ms: flag("--min-ms", 0.25),
    }
}

fn main() {
    let args = parse_args();
    let committed = std::fs::read_to_string(&args.committed)
        .unwrap_or_else(|e| panic!("read {}: {e}", args.committed));
    let fresh =
        std::fs::read_to_string(&args.fresh).unwrap_or_else(|e| panic!("read {}: {e}", args.fresh));

    let mut failures = 0usize;
    let mut compared = 0usize;
    for (section, metric) in GATES {
        let old_rows = parse_rows(&committed, section);
        let new_rows = parse_rows(&fresh, section);
        for old in &old_rows {
            let Some(states) = row_value(old, "states") else {
                continue;
            };
            let Some(new) = new_rows
                .iter()
                .find(|r| row_value(r, "states") == Some(states))
            else {
                println!("{section}/{states}: only in committed report, skipped");
                continue;
            };
            let (Some(old_ms), Some(new_ms)) = (row_value(old, metric), row_value(new, metric))
            else {
                continue;
            };
            if old_ms < args.min_ms {
                println!(
                    "{section}/{states} {metric}: committed {old_ms:.3} ms below the \
                     {:.2} ms noise floor, skipped",
                    args.min_ms
                );
                continue;
            }
            compared += 1;
            let ratio = new_ms / old_ms;
            let verdict = if ratio > args.max_slowdown {
                failures += 1;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "{section}/{states} {metric}: {old_ms:.3} ms -> {new_ms:.3} ms \
                 ({ratio:.2}x, limit {:.2}x) {verdict}",
                args.max_slowdown
            );
        }
    }

    if compared == 0 {
        eprintln!("perf_gate compared no rows — report schema drifted?");
        std::process::exit(2);
    }
    if failures > 0 {
        eprintln!("perf_gate: {failures} gated metric(s) regressed");
        std::process::exit(1);
    }
    println!("perf_gate: all {compared} gated metrics within limits");
}
