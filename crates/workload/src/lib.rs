//! Workload traces and generators for the CAPMAN reproduction.
//!
//! The paper evaluates with four workload families (Section V):
//!
//! * **Geekbench** — resource-intensive, always fully utilised;
//! * **PCMark** — CPU-intensive with occasional user interactions;
//! * **Video** — a stable streaming load;
//! * **eta-Static** — a mixed batch controlled by the ratio `eta` between
//!   PCMark and Video behaviour,
//!
//! plus the motivation micro-workloads of Fig. 2: keeping the screen on
//! and idle, and toggling the phone on/off at a configurable frequency.
//!
//! A [`trace::Trace`] is a timeline of [`trace::Segment`]s, each carrying
//! the instantaneous component demand (CPU utilisation, brightness,
//! packet rate) and the device actions (system-call classes) fired at the
//! segment boundary. Generators are deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use capman_workload::{generate, WorkloadKind};
//!
//! let trace = generate(WorkloadKind::Video, 600.0, 7);
//! assert!(trace.horizon_s() >= 600.0);
//! let seg = trace.at(120.0);
//! assert!(seg.demand.cpu_util > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod io;
pub mod perturb;
pub mod stats;
pub mod stream;
pub mod trace;
pub mod zipf;

pub use generators::{generate, WorkloadKind};
pub use perturb::{generate_perturbed, Perturbation};
pub use stream::{TraceCursor, TraceSource};
pub use trace::{Segment, Trace};
