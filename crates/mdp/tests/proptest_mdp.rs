//! Property-based invariants for the MDP machinery.

use proptest::prelude::*;

use capman_mdp::abstraction::Abstraction;
use capman_mdp::emd::emd;
use capman_mdp::graph::MdpGraph;
use capman_mdp::hausdorff::hausdorff;
use capman_mdp::mdp::{Mdp, MdpBuilder};
use capman_mdp::similarity::{structural_similarity, SimilarityParams};
use capman_mdp::value_iteration::solve;

/// A random small MDP: every non-final state gets 1–3 actions with 1–3
/// weighted successors each.
fn arb_mdp() -> impl Strategy<Value = Mdp> {
    (2usize..7, 0u64..10_000).prop_map(|(n, seed)| {
        // Simple deterministic PRNG so the strategy stays reproducible.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut b = MdpBuilder::new(n, 3);
        for s in 0..(n - 1) {
            let n_actions = 1 + next(3) as usize;
            for a in 0..n_actions.min(3) {
                let n_succ = 1 + next(3) as usize;
                for _ in 0..n_succ {
                    let to = next(n as u64) as usize;
                    let w = 1.0 + next(9) as f64;
                    let r = next(100) as f64 / 100.0;
                    b.transition(s, a, to, w, r);
                }
            }
        }
        b.build()
    })
}

fn arb_dist(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, n..=n).prop_filter_map("non-empty mass", |v| {
        let total: f64 = v.iter().sum();
        (total > 1e-9).then(|| v.iter().map(|x| x / total).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Value iteration respects the 1/(1-rho) ceiling for rewards in
    /// [0, 1].
    #[test]
    fn values_are_bounded(mdp in arb_mdp(), rho in 0.05f64..0.95) {
        let sol = solve(&mdp, rho, 1e-9);
        let ceiling = 1.0 / (1.0 - rho) + 1e-6;
        for v in &sol.values {
            prop_assert!((0.0..=ceiling).contains(v), "value {v} out of [0, {ceiling}]");
        }
    }

    /// The greedy policy's evaluation equals the optimal values.
    #[test]
    fn greedy_policy_is_optimal(mdp in arb_mdp()) {
        let rho = 0.7;
        let sol = solve(&mdp, rho, 1e-10);
        let v = capman_mdp::value_iteration::evaluate_policy(&mdp, &sol.policy, rho, 1e-10);
        for (a, b) in v.iter().zip(&sol.values) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// EMD is a pseudometric on distributions under a discrete metric.
    #[test]
    fn emd_metric_properties(p in arb_dist(5), q in arb_dist(5), r in arb_dist(5)) {
        let d = |i: usize, j: usize| if i == j { 0.0 } else { 1.0 };
        let pq = emd(&p, &q, d);
        let qp = emd(&q, &p, d);
        let qr = emd(&q, &r, d);
        let pr = emd(&p, &r, d);
        prop_assert!(emd(&p, &p, d) < 1e-9, "identity");
        prop_assert!((pq - qp).abs() < 1e-8, "symmetry: {pq} vs {qp}");
        prop_assert!(pr <= pq + qr + 1e-8, "triangle: {pr} > {pq} + {qr}");
        prop_assert!((0.0..=1.0 + 1e-9).contains(&pq), "bounded by ground metric");
    }

    /// EMD under the discrete metric equals total variation distance.
    #[test]
    fn emd_discrete_is_total_variation(p in arb_dist(6), q in arb_dist(6)) {
        let d = |i: usize, j: usize| if i == j { 0.0 } else { 1.0 };
        let tv: f64 = p.iter().zip(&q).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0;
        prop_assert!((emd(&p, &q, d) - tv).abs() < 1e-8);
    }

    /// Hausdorff distance is symmetric and zero on identical sets.
    #[test]
    fn hausdorff_properties(
        xs in prop::collection::vec(0usize..20, 1..6),
        ys in prop::collection::vec(0usize..20, 1..6),
    ) {
        let d = |i: usize, j: usize| (i as f64 - j as f64).abs();
        prop_assert!(hausdorff(&xs, &xs, d) < 1e-12);
        prop_assert!((hausdorff(&xs, &ys, d) - hausdorff(&ys, &xs, d)).abs() < 1e-12);
        prop_assert!(hausdorff(&xs, &ys, d) >= 0.0);
    }

    /// Algorithm 1 always terminates with matrices in [0, 1], symmetric,
    /// with unit diagonal; and the value-difference bound holds.
    #[test]
    fn similarity_invariants_and_bound(mdp in arb_mdp(), rho in 0.1f64..0.8) {
        let graph = MdpGraph::from_mdp(&mdp);
        let sim = structural_similarity(&graph, &SimilarityParams::paper(rho));
        prop_assert!(sim.converged, "must converge");
        prop_assert!(sim.sigma_s.all_within(0.0, 1.0));
        prop_assert!(sim.sigma_a.all_within(0.0, 1.0));
        prop_assert!(sim.sigma_s.is_symmetric(1e-9));
        for u in 0..mdp.n_states() {
            prop_assert!((sim.sigma_s.get(u, u) - 1.0).abs() < 1e-12);
        }
        let sol = solve(&mdp, rho, 1e-10);
        for u in 0..mdp.n_states() {
            for v in 0..mdp.n_states() {
                let gap = (sol.values[u] - sol.values[v]).abs();
                prop_assert!(gap <= sim.value_bound(u, v, rho) + 1e-6,
                    "bound violated for ({u}, {v}): {gap} > {}", sim.value_bound(u, v, rho));
            }
        }
    }

    /// Abstractions are idempotent and never increase the cluster count
    /// as the threshold grows.
    #[test]
    fn abstraction_monotone_in_threshold(mdp in arb_mdp()) {
        let graph = MdpGraph::from_mdp(&mdp);
        let sim = structural_similarity(&graph, &SimilarityParams::paper(0.3));
        let mut prev = usize::MAX;
        for theta in [0.0, 0.2, 0.5, 1.0] {
            let a = Abstraction::from_similarity(&sim.sigma_s, theta);
            prop_assert!(a.n_clusters() <= prev);
            prev = a.n_clusters();
            for u in 0..a.n_states() {
                let r = a.representative(u);
                prop_assert_eq!(a.representative(r), r, "representatives are fixed points");
            }
        }
    }
}
