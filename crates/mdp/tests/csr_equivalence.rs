//! Property tests pinning the CSR [`Mdp`] to the nested-Vec reference
//! it replaced.
//!
//! Three contracts, each over randomly generated transition tables:
//!
//! 1. the CSR structure is *observationally identical* to
//!    [`NestedMdp`] — same outcome slices, same action sets, same
//!    absorbing states;
//! 2. the CSR value-iteration solver is *bitwise* equal to the nested
//!    Jacobi oracle — values, Q table, policy and iteration count;
//! 3. the serial and parallel sweep schedules are *bitwise* equal to
//!    each other, the determinism contract `solve`'s auto-dispatch
//!    relies on.

use proptest::prelude::*;

use capman_mdp::mdp::{Mdp, MdpBuilder};
use capman_mdp::reference::{solve_nested_jacobi, NestedMdp};
use capman_mdp::value_iteration::{solve, solve_with_mode};
use capman_mdp::ExecutionMode;

const N_ACTIONS: usize = 5;
const EPS: f64 = 1e-9;

type Tx = (usize, usize, usize, f64, f64);

/// A state count and a raw transition table: `(state, action,
/// successor, weight, reward)` rows, duplicates and all — exactly what
/// the profiler feeds the builder. Sized to cross the solver's parallel
/// chunk boundary (64 states) in a good fraction of cases. Rows are
/// derived from a drawn seed with a splitmix-style generator, the same
/// trick `proptest_mdp.rs` uses to stay reproducible.
fn arb_transitions() -> impl Strategy<Value = (usize, Vec<Tx>)> {
    (2usize..160, 0u64..1_000_000, 0usize..300).prop_map(|(n, seed, len)| {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let txs = (0..len)
            .map(|_| {
                (
                    next(n as u64) as usize,
                    next(N_ACTIONS as u64) as usize,
                    next(n as u64) as usize,
                    0.1 + next(1000) as f64 / 200.0,
                    next(1000) as f64 / 1000.0,
                )
            })
            .collect();
        (n, txs)
    })
}

/// Feed the same transitions to the CSR builder and the nested
/// reference.
fn build_pair(n: usize, txs: &[Tx]) -> (Mdp, NestedMdp) {
    let mut b = MdpBuilder::new(n, N_ACTIONS);
    let mut r = NestedMdp::new(n, N_ACTIONS);
    for &(s, a, to, w, rew) in txs {
        b.transition(s, a, to, w, rew);
        r.transition(s, a, to, w, rew);
    }
    r.normalise();
    (b.build(), r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn csr_is_observationally_identical_to_nested((n, txs) in arb_transitions()) {
        let (csr, nested) = build_pair(n, &txs);
        prop_assert_eq!(csr.n_states(), nested.n_states());
        prop_assert_eq!(csr.n_actions(), nested.n_actions());
        let mut action_nodes = 0;
        let mut outcomes = 0;
        for s in 0..n {
            let packed: Vec<usize> = csr.available_actions(s).collect();
            let scanned: Vec<usize> = nested.available_actions(s).collect();
            prop_assert_eq!(&packed, &scanned, "available actions of state {}", s);
            prop_assert_eq!(csr.is_absorbing(s), scanned.is_empty(), "absorbing({})", s);
            action_nodes += packed.len();
            for a in 0..N_ACTIONS {
                // Outcome derives PartialEq, and both layouts normalise
                // in insertion order, so slices match exactly.
                prop_assert_eq!(
                    csr.outcomes(s, a),
                    nested.outcomes(s, a),
                    "outcomes of ({}, {})", s, a
                );
                outcomes += csr.outcomes(s, a).len();
            }
        }
        prop_assert_eq!(csr.n_action_nodes(), action_nodes);
        prop_assert_eq!(csr.n_outcomes(), outcomes);
    }

    #[test]
    fn csr_solve_is_bitwise_equal_to_the_nested_jacobi_oracle(
        (n, txs) in arb_transitions(),
        rho in 0.1f64..0.95,
    ) {
        let (csr, nested) = build_pair(n, &txs);
        let fast = solve(&csr, rho, EPS);
        let oracle = solve_nested_jacobi(&nested, rho, EPS);
        prop_assert_eq!(fast.iterations, oracle.iterations);
        prop_assert_eq!(&fast.policy, &oracle.policy);
        for (s, (a, b)) in fast.values.iter().zip(&oracle.values).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "V*({}): {} vs {}", s, a, b);
        }
        for (s, (qa, qb)) in fast.q.iter().zip(&oracle.q).enumerate() {
            prop_assert_eq!(qa.len(), qb.len());
            for (a, (x, y)) in qa.iter().zip(qb).enumerate() {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "Q*({}, {}): {} vs {}", s, a, x, y);
            }
        }
    }

    #[test]
    fn serial_and_parallel_schedules_are_bitwise_identical(
        (n, txs) in arb_transitions(),
        rho in 0.1f64..0.95,
    ) {
        let (csr, _) = build_pair(n, &txs);
        let serial = solve_with_mode(&csr, rho, EPS, ExecutionMode::Serial);
        let parallel = solve_with_mode(&csr, rho, EPS, ExecutionMode::Parallel);
        prop_assert_eq!(serial.iterations, parallel.iterations);
        prop_assert_eq!(&serial.policy, &parallel.policy);
        for (a, b) in serial.values.iter().zip(&parallel.values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (qa, qb) in serial.q.iter().zip(&parallel.q) {
            for (x, y) in qa.iter().zip(qb) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
