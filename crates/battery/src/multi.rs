//! Generalized N-cell packs — the paper's "fully mixed battery pack".
//!
//! Section II notes that "a fully mixed battery pack is complex to
//! schedule yet hard to reason about", which is why the paper's
//! design settles on exactly two cells. This module implements the
//! general pack so the claim can be explored: any number of cells of
//! any chemistry behind one switch, with the same per-flip costs, plus
//! a greedy marginal-efficiency selector that generalises the
//! big.LITTLE routing rule ("serve the demand from the cell that loses
//! the least on it, biased toward balanced depletion").

use serde::{Deserialize, Serialize};

use crate::cell::{Cell, CellStep};
use crate::switch::SwitchConfig;

/// Telemetry for one simulation step of a [`MultiPack`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiStep {
    /// Index of the cell that served.
    pub active: usize,
    /// The serving cell's step.
    pub cell: CellStep,
    /// Demand not served, watts.
    pub shortfall_w: f64,
    /// Total heat this step (cell + switch), watts.
    pub heat_w: f64,
}

/// An N-cell battery pack behind one switch facility.
///
/// # Examples
///
/// ```
/// use capman_battery::cell::Cell;
/// use capman_battery::chemistry::Chemistry;
/// use capman_battery::multi::MultiPack;
///
/// let mut pack = MultiPack::new(vec![
///     Cell::new(Chemistry::Nca, 2.0),
///     Cell::new(Chemistry::Lmo, 2.0),
///     Cell::new(Chemistry::Lto, 1.0),
/// ]);
/// let choice = pack.greedy_choice(6.0, 25.0); // a surge
/// pack.select(choice);
/// let step = pack.step(6.0, 1.0, 25.0);
/// assert!(step.cell.delivered_w > 5.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPack {
    cells: Vec<Cell>,
    active: usize,
    switch: SwitchConfig,
    flips: u64,
    pending_heat_j: f64,
    active_s: Vec<f64>,
}

impl MultiPack {
    /// Build a pack from cells; the first cell starts active.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty.
    pub fn new(cells: Vec<Cell>) -> Self {
        assert!(!cells.is_empty(), "a pack needs at least one cell");
        let n = cells.len();
        MultiPack {
            cells,
            active: 0,
            switch: SwitchConfig::default(),
            flips: 0,
            pending_heat_j: 0.0,
            active_s: vec![0.0; n],
        }
    }

    /// Select the serving cell. Returns `true` when a flip happened
    /// (its energy cost lands as heat on the next step).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn select(&mut self, idx: usize) -> bool {
        assert!(idx < self.cells.len(), "cell index out of range");
        if idx == self.active {
            return false;
        }
        self.active = idx;
        self.flips += 1;
        self.pending_heat_j += self.switch.flip_energy_j * self.switch.heat_fraction;
        true
    }

    /// Advance the pack by `dt` seconds under `demand_w` watts; the
    /// active cell serves, every other cell rests.
    ///
    /// # Panics
    ///
    /// Panics if `demand_w` is negative or `dt` is not positive.
    pub fn step(&mut self, demand_w: f64, dt: f64, temp_c: f64) -> MultiStep {
        assert!(demand_w >= 0.0, "demand must be non-negative");
        assert!(dt > 0.0, "dt must be positive");
        self.active_s[self.active] += dt;
        let mut rest_heat = 0.0;
        let mut served = CellStep {
            delivered_w: 0.0,
            delivered_j: 0.0,
            current_a: 0.0,
            voltage_v: 0.0,
            heat_w: 0.0,
            brownout: false,
            starved: false,
        };
        for (i, cell) in self.cells.iter_mut().enumerate() {
            if i == self.active {
                served = cell.step(demand_w, dt, temp_c);
            } else {
                rest_heat += cell.rest(dt, temp_c).heat_w;
            }
        }
        let switch_heat = self.pending_heat_j / dt;
        self.pending_heat_j = 0.0;
        MultiStep {
            active: self.active,
            cell: served,
            shortfall_w: (demand_w - served.delivered_w).max(0.0),
            heat_w: served.heat_w + rest_heat + switch_heat,
        }
    }

    /// Greedy selector: the usable cell that serves `demand_w` with the
    /// highest terminal voltage (lowest marginal loss), weighted by its
    /// remaining charge so depletion stays balanced. Returns the index.
    pub fn greedy_choice(&self, demand_w: f64, temp_c: f64) -> usize {
        let mut best = self.active;
        let mut best_score = f64::NEG_INFINITY;
        for (i, cell) in self.cells.iter().enumerate() {
            if !cell.is_usable() {
                continue;
            }
            let nominal = cell.chemistry().electrical().nominal_v;
            // Voltage margin above cut-off, normalised per chemistry —
            // a proxy for the marginal loss of serving this demand here.
            let margin = (cell.voltage_under(demand_w, temp_c)
                - cell.chemistry().electrical().cutoff_v)
                / nominal;
            // Depletion balance: prefer fuller cells.
            let score = margin + 0.3 * cell.soc();
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    /// The cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Index of the serving cell.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Capacity-weighted state of charge.
    pub fn soc(&self) -> f64 {
        let charge: f64 = self.cells.iter().map(|c| c.soc() * c.capacity_ah()).sum();
        let capacity: f64 = self.cells.iter().map(Cell::capacity_ah).sum();
        charge / capacity
    }

    /// Whether any cell can serve right now.
    pub fn any_usable(&self) -> bool {
        self.cells.iter().any(Cell::is_usable)
    }

    /// Whether every cell is permanently exhausted.
    pub fn is_depleted(&self) -> bool {
        self.cells.iter().all(Cell::is_exhausted)
    }

    /// Number of switches so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Seconds each cell has served.
    pub fn active_s(&self) -> &[f64] {
        &self.active_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chemistry::Chemistry;

    fn three_cell() -> MultiPack {
        MultiPack::new(vec![
            Cell::new(Chemistry::Nca, 2.0),
            Cell::new(Chemistry::Lmo, 2.0),
            Cell::new(Chemistry::Lto, 1.0),
        ])
    }

    #[test]
    fn first_cell_starts_active() {
        let p = three_cell();
        assert_eq!(p.active(), 0);
        assert!((p.soc() - 1.0).abs() < 1e-9);
        assert!(p.any_usable());
    }

    #[test]
    fn select_switches_and_counts() {
        let mut p = three_cell();
        assert!(p.select(2));
        assert!(!p.select(2));
        assert_eq!(p.flips(), 1);
        assert_eq!(p.active(), 2);
    }

    #[test]
    fn only_the_active_cell_discharges_meaningfully() {
        let mut p = three_cell();
        p.select(1);
        for _ in 0..120 {
            p.step(2.0, 1.0, 25.0);
        }
        assert!(p.cells()[1].soc() < 0.999);
        assert!(p.cells()[0].soc() > 0.999);
        assert!((p.active_s()[1] - 120.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_routes_surges_to_the_rate_capable_cell() {
        let p = three_cell();
        // A hard surge: the low-resistance LITTLE-class cells keep the
        // highest voltage margin.
        let choice = p.greedy_choice(8.0, 25.0);
        assert_ne!(choice, 0, "the big NCA cell should not take an 8 W surge");
    }

    #[test]
    fn greedy_skips_unusable_cells() {
        let mut p = three_cell();
        // Exhaust the LMO cell.
        p.select(1);
        let mut guard = 0;
        while p.cells()[1].is_usable() && guard < 500_000 {
            p.step(6.0, 1.0, 25.0);
            guard += 1;
        }
        let choice = p.greedy_choice(1.0, 25.0);
        assert_ne!(choice, 1, "an unusable cell must not be chosen");
    }

    #[test]
    fn depletion_is_reported() {
        let mut p = MultiPack::new(vec![Cell::new(Chemistry::Lmo, 0.02)]);
        for _ in 0..200_000 {
            p.step(1.0, 1.0, 25.0);
            if p.is_depleted() {
                break;
            }
        }
        assert!(p.is_depleted());
        assert!(!p.any_usable());
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn rejects_empty_pack() {
        let _ = MultiPack::new(vec![]);
    }
}
