//! Active cooling demo: the TEC holding the 45 degC hot spot.
//!
//! ```text
//! cargo run --release --example thermal_cooling
//! ```
//!
//! Runs a saturating (Geekbench-class) cycle with and without the TEC
//! facility and prints the hot-spot temperature timeline side by side —
//! the behaviour behind Figs. 13 and 14.

use capman::core::config::SimConfig;
use capman::core::experiments::{run_policy_with, PolicyKind};
use capman::device::phone::PhoneProfile;
use capman::workload::WorkloadKind;

fn main() {
    let horizon = 6000.0;
    let seed = 5;
    let run = |tec: bool| {
        let config = SimConfig {
            max_horizon_s: horizon,
            tec_enabled: tec,
            ..SimConfig::paper()
        };
        run_policy_with(
            PolicyKind::Capman,
            WorkloadKind::Geekbench,
            PhoneProfile::nexus(),
            seed,
            config,
        )
    };
    let with_tec = run(true);
    let without = run(false);

    println!("Geekbench hot-spot temperature, TEC vs passive cooling plate\n");
    println!(
        "{:>8} {:>10} {:>10} {:>8}",
        "t [s]", "TEC [C]", "none [C]", "TEC on"
    );
    for (a, b) in with_tec
        .telemetry
        .samples()
        .iter()
        .zip(without.telemetry.samples())
        .step_by(10)
    {
        println!(
            "{:>8.0} {:>10.1} {:>10.1} {:>8}",
            a.time_s,
            a.hotspot_c,
            b.hotspot_c,
            if a.tec_on { "yes" } else { "" }
        );
    }
    println!(
        "\npeak: {:.1} C with TEC vs {:.1} C without ({:.1} K reduction); TEC duty {:.0}%",
        with_tec.max_hotspot_c,
        without.max_hotspot_c,
        without.max_hotspot_c - with_tec.max_hotspot_c,
        with_tec.telemetry.tec_duty() * 100.0
    );
    println!(
        "TEC energy spent: {:.0} J (served by the LITTLE battery as an active-power surge)",
        with_tec.tec_energy_j
    );
}
