//! The lithium-ion chemistry feature database of Table I and Fig. 4.
//!
//! The paper surveys six widely used lithium chemistries and scores each on
//! cost efficiency, lifetime, discharge rate, energy density (Table I) and
//! safety (the fifth radar axis of Fig. 4). Energy density and discharge
//! rate drive the big/LITTLE classification: a cell that stores more energy
//! per volume but releases it gently is a *big* battery, a cell that can
//! release charge fast is a *LITTLE* battery.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The six lithium-ion chemistries surveyed in Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Chemistry {
    /// `LiCoO2` — lithium cobalt oxide.
    Lco,
    /// `LiNiCoAlO2` — lithium nickel cobalt aluminium oxide. The paper's
    /// **big** cell.
    Nca,
    /// `LiMn2O4` — lithium manganese oxide. The paper's **LITTLE** cell.
    Lmo,
    /// `LiNiMnCoO2` — lithium nickel manganese cobalt oxide.
    Nmc,
    /// `LiFePO4` — lithium iron phosphate.
    Lfp,
    /// `LiTi5O12` — lithium titanate.
    Lto,
}

impl Chemistry {
    /// All six chemistries in the order of Table I.
    pub const ALL: [Chemistry; 6] = [
        Chemistry::Lco,
        Chemistry::Nca,
        Chemistry::Lmo,
        Chemistry::Nmc,
        Chemistry::Lfp,
        Chemistry::Lto,
    ];

    /// The short symbol used in the paper, e.g. `"LMO"`.
    pub fn symbol(self) -> &'static str {
        match self {
            Chemistry::Lco => "LCO",
            Chemistry::Nca => "NCA",
            Chemistry::Lmo => "LMO",
            Chemistry::Nmc => "NMC",
            Chemistry::Lfp => "LFP",
            Chemistry::Lto => "LTO",
        }
    }

    /// The full chemical formula, e.g. `"LiMn2O4"`.
    pub fn formula(self) -> &'static str {
        match self {
            Chemistry::Lco => "LiCoO2",
            Chemistry::Nca => "LiNiCoAlO2",
            Chemistry::Lmo => "LiMn2O4",
            Chemistry::Nmc => "LiNiMnCoO2",
            Chemistry::Lfp => "LiFePO4",
            Chemistry::Lto => "LiTi5O12",
        }
    }

    /// The qualitative feature scores from Table I / Fig. 4.
    pub fn features(self) -> Features {
        match self {
            Chemistry::Lco => Features::new(2, 3, 2, 5, 2),
            Chemistry::Nca => Features::new(3, 2, 3, 5, 2),
            Chemistry::Lmo => Features::new(3, 2, 4, 3, 3),
            Chemistry::Nmc => Features::new(4, 4, 4, 3, 3),
            Chemistry::Lfp => Features::new(2, 4, 5, 2, 5),
            Chemistry::Lto => Features::new(1, 5, 5, 1, 5),
        }
    }

    /// Classify the chemistry as a big or LITTLE battery.
    ///
    /// The paper's rule (Section III-A): chemistries whose energy density
    /// dominates their discharge rate are *big*; those with large discharge
    /// rates are *LITTLE*. This reproduces the "Result" column of Table I.
    pub fn class(self) -> Class {
        let f = self.features();
        if f.energy_density > f.discharge_rate {
            Class::Big
        } else {
            Class::Little
        }
    }

    /// The electrical model parameters used by [`crate::cell::Cell`].
    ///
    /// The paper does not publish cell-level electrical constants; these are
    /// representative values chosen so that the *relative* behaviour matches
    /// Table I and public chemistry data: LITTLE chemistries have low
    /// internal resistance, a large available-charge fraction and fast
    /// diffusion (they serve surges cheaply); big chemistries store more
    /// energy per volume but pay heavy rate-capacity losses under surges.
    pub fn electrical(self) -> ElectricalParams {
        match self {
            Chemistry::Lco => ElectricalParams {
                nominal_v: 3.8,
                cutoff_v: 3.0,
                r0_ohm: 0.110,
                rc_r_ohm: 0.050,
                rc_tau_s: 18.0,
                kibam_c: 0.28,
                kibam_k: 5.0e-5,
                sag_coeff: 1.4,
                max_c_rate: 1.0,
                energy_density_wh_per_l: 560.0,
                leak_ref_w_per_ah: 2.0e-3,
            },
            Chemistry::Nca => ElectricalParams {
                nominal_v: 3.7,
                cutoff_v: 3.0,
                r0_ohm: 0.090,
                rc_r_ohm: 0.045,
                rc_tau_s: 15.0,
                kibam_c: 0.30,
                kibam_k: 6.0e-5,
                sag_coeff: 1.3,
                max_c_rate: 1.2,
                energy_density_wh_per_l: 600.0,
                leak_ref_w_per_ah: 2.2e-3,
            },
            Chemistry::Lmo => ElectricalParams {
                nominal_v: 3.7,
                cutoff_v: 3.0,
                r0_ohm: 0.030,
                rc_r_ohm: 0.015,
                rc_tau_s: 6.0,
                kibam_c: 0.75,
                kibam_k: 4.0e-3,
                sag_coeff: 0.45,
                max_c_rate: 10.0,
                energy_density_wh_per_l: 420.0,
                leak_ref_w_per_ah: 5.0e-2,
            },
            Chemistry::Nmc => ElectricalParams {
                nominal_v: 3.7,
                cutoff_v: 3.0,
                r0_ohm: 0.045,
                rc_r_ohm: 0.022,
                rc_tau_s: 8.0,
                kibam_c: 0.65,
                kibam_k: 2.5e-3,
                sag_coeff: 0.6,
                max_c_rate: 8.0,
                energy_density_wh_per_l: 450.0,
                leak_ref_w_per_ah: 2.2e-2,
            },
            Chemistry::Lfp => ElectricalParams {
                nominal_v: 3.2,
                cutoff_v: 2.5,
                r0_ohm: 0.025,
                rc_r_ohm: 0.012,
                rc_tau_s: 5.0,
                kibam_c: 0.80,
                kibam_k: 5.0e-3,
                sag_coeff: 0.35,
                max_c_rate: 12.0,
                energy_density_wh_per_l: 330.0,
                leak_ref_w_per_ah: 1.8e-2,
            },
            Chemistry::Lto => ElectricalParams {
                nominal_v: 2.4,
                cutoff_v: 1.8,
                r0_ohm: 0.015,
                rc_r_ohm: 0.008,
                rc_tau_s: 3.0,
                kibam_c: 0.90,
                kibam_k: 8.0e-3,
                sag_coeff: 0.3,
                max_c_rate: 20.0,
                energy_density_wh_per_l: 180.0,
                leak_ref_w_per_ah: 1.5e-2,
            },
        }
    }

    /// The five normalized radar-map metrics of Fig. 4, each in `[0, 1]`.
    ///
    /// Order: discharge rate, energy density, cost efficiency, lifetime,
    /// safety.
    pub fn radar(self) -> [f64; 5] {
        let f = self.features();
        [
            f64::from(f.discharge_rate) / 5.0,
            f64::from(f.energy_density) / 5.0,
            f64::from(f.cost_efficiency) / 5.0,
            f64::from(f.lifetime) / 5.0,
            f64::from(f.safety) / 5.0,
        ]
    }
}

impl fmt::Display for Chemistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.symbol(), self.formula())
    }
}

/// Qualitative 1–5 star feature scores for a chemistry (Table I + Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Features {
    /// Cost efficiency (higher is cheaper per Wh).
    pub cost_efficiency: u8,
    /// Cycle lifetime.
    pub lifetime: u8,
    /// Instantaneous discharge capability.
    pub discharge_rate: u8,
    /// Energy stored per volume.
    pub energy_density: u8,
    /// Thermal/chemical safety.
    pub safety: u8,
}

impl Features {
    fn new(
        cost_efficiency: u8,
        lifetime: u8,
        discharge_rate: u8,
        energy_density: u8,
        safety: u8,
    ) -> Self {
        Features {
            cost_efficiency,
            lifetime,
            discharge_rate,
            energy_density,
            safety,
        }
    }

    /// Render a score as the star string used in Table I, e.g. `"***"`.
    pub fn stars(score: u8) -> String {
        "*".repeat(usize::from(score))
    }
}

/// The big/LITTLE classification of a chemistry ("Result" column, Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Class {
    /// High energy density, gentle discharge.
    Big,
    /// High discharge rate, smaller energy density.
    Little,
}

impl Class {
    /// The other class.
    pub fn other(self) -> Class {
        match self {
            Class::Big => Class::Little,
            Class::Little => Class::Big,
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Class::Big => write!(f, "big"),
            Class::Little => write!(f, "LITTLE"),
        }
    }
}

/// Electrical model parameters for one chemistry.
///
/// These feed the KiBaM and Thevenin sub-models of [`crate::cell::Cell`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElectricalParams {
    /// Nominal terminal voltage in volts.
    pub nominal_v: f64,
    /// Cut-off voltage below which the cell counts as exhausted.
    pub cutoff_v: f64,
    /// Series (ohmic) resistance in ohms for a 2.5 Ah cell. Scaled
    /// inversely with capacity when a cell of another size is built.
    pub r0_ohm: f64,
    /// Resistance of the single RC polarization pair, in ohms.
    pub rc_r_ohm: f64,
    /// Time constant of the RC pair in seconds.
    pub rc_tau_s: f64,
    /// KiBaM available-charge fraction `c` in `(0, 1)`.
    pub kibam_c: f64,
    /// KiBaM diffusion rate constant `k` in 1/s.
    pub kibam_k: f64,
    /// Concentration-overpotential coefficient: how strongly a depleted
    /// available well sags the terminal voltage, as a multiple of the
    /// nominal-to-cutoff span. Big chemistries sag hard under surges.
    pub sag_coeff: f64,
    /// Maximum continuous discharge rate in multiples of capacity (C-rate).
    pub max_c_rate: f64,
    /// Volumetric energy density in Wh/L (for the radar map and packaging).
    pub energy_density_wh_per_l: f64,
    /// Self-discharge / leak power at 25 degC, in watts per Ah of capacity.
    pub leak_ref_w_per_ah: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_classification_matches_paper() {
        assert_eq!(Chemistry::Lco.class(), Class::Big);
        assert_eq!(Chemistry::Nca.class(), Class::Big);
        assert_eq!(Chemistry::Lmo.class(), Class::Little);
        assert_eq!(Chemistry::Nmc.class(), Class::Little);
        assert_eq!(Chemistry::Lfp.class(), Class::Little);
        assert_eq!(Chemistry::Lto.class(), Class::Little);
    }

    #[test]
    fn paper_prototype_pair_is_orthogonal() {
        // The paper picks LMO as LITTLE and NCA as big because they are
        // "almost orthogonal in important features".
        let lmo = Chemistry::Lmo.features();
        let nca = Chemistry::Nca.features();
        assert!(lmo.discharge_rate > nca.discharge_rate);
        assert!(nca.energy_density > lmo.energy_density);
    }

    #[test]
    fn radar_metrics_are_normalized() {
        for chem in Chemistry::ALL {
            for metric in chem.radar() {
                assert!((0.0..=1.0).contains(&metric), "{chem}: {metric}");
            }
        }
    }

    #[test]
    fn no_single_chemistry_dominates_all_dimensions() {
        // First observation from Fig. 4: no single battery covers all five
        // dimensions optimally.
        for chem in Chemistry::ALL {
            let all_max = chem.radar().iter().all(|&m| m >= 0.99);
            assert!(!all_max, "{chem} should not dominate every axis");
        }
    }

    #[test]
    fn little_cells_have_lower_resistance_than_big_cells() {
        for little in Chemistry::ALL.iter().filter(|c| c.class() == Class::Little) {
            for big in Chemistry::ALL.iter().filter(|c| c.class() == Class::Big) {
                assert!(
                    little.electrical().r0_ohm < big.electrical().r0_ohm,
                    "{little} should have lower r0 than {big}"
                );
            }
        }
    }

    #[test]
    fn big_cells_store_more_energy_per_volume() {
        for little in Chemistry::ALL.iter().filter(|c| c.class() == Class::Little) {
            for big in Chemistry::ALL.iter().filter(|c| c.class() == Class::Big) {
                assert!(
                    big.electrical().energy_density_wh_per_l
                        > little.electrical().energy_density_wh_per_l
                );
            }
        }
    }

    #[test]
    fn kibam_parameters_are_valid() {
        for chem in Chemistry::ALL {
            let e = chem.electrical();
            assert!(e.kibam_c > 0.0 && e.kibam_c < 1.0);
            assert!(e.kibam_k > 0.0);
            assert!(e.cutoff_v < e.nominal_v);
            assert!(e.max_c_rate > 0.0);
        }
    }

    #[test]
    fn symbols_and_formulas_are_unique() {
        let mut symbols: Vec<_> = Chemistry::ALL.iter().map(|c| c.symbol()).collect();
        symbols.sort_unstable();
        symbols.dedup();
        assert_eq!(symbols.len(), 6);
    }

    #[test]
    fn stars_render_expected_length() {
        assert_eq!(Features::stars(3), "***");
        assert_eq!(Features::stars(0), "");
    }

    #[test]
    fn class_other_is_involutive() {
        assert_eq!(Class::Big.other(), Class::Little);
        assert_eq!(Class::Little.other().other(), Class::Little);
    }

    #[test]
    fn display_mentions_symbol() {
        assert_eq!(Chemistry::Lmo.to_string(), "LMO (LiMn2O4)");
        assert_eq!(Class::Little.to_string(), "LITTLE");
        assert_eq!(Class::Big.to_string(), "big");
    }
}
