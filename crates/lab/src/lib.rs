//! Declarative experiment harness for the CAPMAN reproduction.
//!
//! A sweep is declared, not coded: an `experiment.yaml` names the
//! *variants* under comparison (policy, calibrator knobs, TEC, horizon)
//! and the design (repeats, seeds); a `tasks.jsonl` dataset lists the
//! rows to sweep them over (workload × phone scenarios, or whole fleet
//! cells). The runner expands the (task × variant × rep) grid, executes
//! scenario cells through [`capman_core::scenario::ScenarioRunner`] and
//! fleet cells through [`capman_fleet::FleetRunner`], and writes one
//! `result.json` per trial with the `outcome`/`objective`/`metrics`
//! schema, plus an aggregated analysis table. See `EXPERIMENTS.md` for
//! the file contract and a worked fig12 example.
//!
//! The crate also owns the statistics the perf gate needs (Welch's
//! t-test over benchmark rep samples, [`stats`]) and the format layer
//! that makes all of this possible offline: a strict JSON
//! parser/emitter ([`json`]) and a YAML-subset parser ([`yaml`]) — the
//! vendored serde stand-in has no format backend, so the harness reads
//! and writes its own documents.
//!
//! Module map:
//!
//! * [`json`], [`yaml`] — the value model and parsers.
//! * [`spec`] — `experiment.yaml` + `tasks.jsonl` → validated specs.
//! * [`runner`] — grid expansion and execution, `result.json` I/O.
//! * [`trial`] — the per-trial result schema.
//! * [`analysis`] — trials → analysis table (sketch quantiles).
//! * [`stats`] — Welch's t-test, Student-t CDF, incomplete beta.
//! * [`halving`] — successive-halving calibrator selection, the first
//!   consumer of the harness (two chained experiments replacing the
//!   oracle's flat grid).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod halving;
pub mod json;
pub mod runner;
pub mod spec;
pub mod stats;
pub mod trial;
pub mod yaml;

pub use analysis::{AnalysisRow, AnalysisTable};
pub use halving::{select_calibrator_halving, HalvingOutcome};
pub use json::Json;
pub use runner::{plan, read_results, run_experiment, run_to_dir, write_results, Cell};
pub use spec::{ExperimentSpec, Task, TaskKind, Variant};
pub use stats::{welch_t_test, Welch};
pub use trial::{TrialOutcome, TrialResult};
