//! Per-trial results: the `result.json` contract.
//!
//! Every trial cell the runner executes writes exactly one
//! `result.json` under `trials/<trial_id>/`, with the harness-standard
//! schema:
//!
//! ```json
//! {
//!   "outcome": "success",
//!   "objective": {"name": "service_time_s", "value": 147000.0},
//!   "metrics": {"work_served": 8.1e6, "switches": 42},
//!   "trial": {"task_id": "video", "variant": "capman", "rep": 0, "seed": 42}
//! }
//! ```
//!
//! `outcome` is `success` when the simulation completed its service
//! contract, `failure` when the device ended in sustained shortfall
//! (the run finished but the system under test failed its objective),
//! and `error` when the trial could not execute at all. `objective` is
//! the one headline number of the trial; `metrics` is a flat map of
//! secondary numbers. Analysis tooling aggregates trials purely from
//! these files — re-reading them reproduces the analysis without
//! re-running anything.

use crate::json::{obj, Json};

/// Trial completion status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialOutcome {
    /// The trial ran and met its service contract.
    Success,
    /// The trial ran but the system under test failed (sustained
    /// shortfall before the horizon).
    Failure,
    /// The trial could not execute; the string says why.
    Error(String),
}

impl TrialOutcome {
    /// The schema string (`success` / `failure` / `error`).
    pub fn label(&self) -> &'static str {
        match self {
            TrialOutcome::Success => "success",
            TrialOutcome::Failure => "failure",
            TrialOutcome::Error(_) => "error",
        }
    }
}

/// One executed trial cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// `t{task}-v{variant}-r{rep}` — the trial's directory name.
    pub trial_id: String,
    /// Dataset row this cell ran.
    pub task_id: String,
    /// Variant this cell ran under.
    pub variant: String,
    /// Repetition index, `0..repeats`.
    pub rep: usize,
    /// The seed the cell actually used (task seed or design base seed,
    /// shifted by `rep`).
    pub seed: u64,
    /// Completion status.
    pub outcome: TrialOutcome,
    /// Headline metric name.
    pub objective_name: String,
    /// Headline metric value.
    pub objective: f64,
    /// Secondary numeric metrics, in emission order.
    pub metrics: Vec<(String, f64)>,
}

impl TrialResult {
    /// A metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Render the `result.json` document.
    pub fn to_json(&self) -> Json {
        let mut members = vec![("outcome", Json::Str(self.outcome.label().to_string()))];
        if let TrialOutcome::Error(why) = &self.outcome {
            members.push(("error", Json::Str(why.clone())));
        }
        members.push((
            "objective",
            obj(vec![
                ("name", Json::Str(self.objective_name.clone())),
                ("value", Json::Num(self.objective)),
            ]),
        ));
        members.push((
            "metrics",
            Json::Obj(
                self.metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ));
        members.push((
            "trial",
            obj(vec![
                ("trial_id", Json::Str(self.trial_id.clone())),
                ("task_id", Json::Str(self.task_id.clone())),
                ("variant", Json::Str(self.variant.clone())),
                ("rep", Json::Num(self.rep as f64)),
                ("seed", Json::Num(self.seed as f64)),
            ]),
        ));
        obj(members)
    }

    /// Parse a `result.json` document back into a [`TrialResult`] —
    /// the read path analysis tooling uses.
    pub fn from_json(doc: &Json) -> Result<TrialResult, String> {
        let outcome = match doc.str("outcome") {
            Some("success") => TrialOutcome::Success,
            Some("failure") => TrialOutcome::Failure,
            Some("error") => {
                TrialOutcome::Error(doc.str("error").unwrap_or("unknown error").to_string())
            }
            Some(other) => return Err(format!("unknown outcome {other:?}")),
            None => return Err("missing `outcome`".into()),
        };
        let objective = doc.get("objective").ok_or("missing `objective`")?;
        let objective_name = objective
            .str("name")
            .ok_or("missing `objective.name`")?
            .to_string();
        let objective_value = objective.num("value").ok_or("missing `objective.value`")?;
        let metrics = doc
            .get("metrics")
            .and_then(Json::as_obj)
            .ok_or("missing `metrics` object")?
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|v| (k.clone(), v))
                    .ok_or_else(|| format!("metric {k:?} is not a number"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let trial = doc.get("trial").ok_or("missing `trial` block")?;
        let field = |key: &str| {
            trial
                .str(key)
                .map(str::to_string)
                .ok_or_else(|| format!("missing `trial.{key}`"))
        };
        Ok(TrialResult {
            trial_id: field("trial_id")?,
            task_id: field("task_id")?,
            variant: field("variant")?,
            rep: trial.num("rep").ok_or("missing `trial.rep`")? as usize,
            seed: trial.num("seed").ok_or("missing `trial.seed`")? as u64,
            outcome,
            objective_name,
            objective: objective_value,
            metrics,
        })
    }

    /// Parse a `result.json` source string.
    pub fn parse(src: &str) -> Result<TrialResult, String> {
        TrialResult::from_json(&crate::json::parse(src)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrialResult {
        TrialResult {
            trial_id: "t000-v01-r00".into(),
            task_id: "video".into(),
            variant: "capman".into(),
            rep: 0,
            seed: 42,
            outcome: TrialOutcome::Success,
            objective_name: "service_time_s".into(),
            objective: 147_000.5,
            metrics: vec![("work_served".into(), 8.1e6), ("switches".into(), 42.0)],
        }
    }

    #[test]
    fn result_json_round_trips() {
        let r = sample();
        let rendered = r.to_json().to_pretty();
        assert_eq!(TrialResult::parse(&rendered), Ok(r));
    }

    #[test]
    fn schema_shape_is_the_contract() {
        let doc = sample().to_json();
        assert_eq!(doc.str("outcome"), Some("success"));
        assert_eq!(
            doc.get("objective").unwrap().str("name"),
            Some("service_time_s")
        );
        assert_eq!(doc.get("metrics").unwrap().num("switches"), Some(42.0));
        assert_eq!(doc.get("trial").unwrap().num("seed"), Some(42.0));
    }

    #[test]
    fn error_outcomes_carry_the_reason() {
        let mut r = sample();
        r.outcome = TrialOutcome::Error("phone exploded".into());
        let parsed = TrialResult::parse(&r.to_json().to_compact()).unwrap();
        assert_eq!(parsed.outcome, TrialOutcome::Error("phone exploded".into()));
    }

    #[test]
    fn rejects_documents_off_schema() {
        for bad in [
            "{}",
            "{\"outcome\": \"great\"}",
            "{\"outcome\": \"success\", \"objective\": {\"name\": \"x\"}}",
            "{\"outcome\": \"success\", \"objective\": {\"name\": \"x\", \"value\": 1}, \"metrics\": {\"a\": \"str\"}, \"trial\": {}}",
        ] {
            assert!(TrialResult::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
