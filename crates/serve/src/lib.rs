//! capman-serve — the resident multi-tenant calibration service.
//!
//! `CalibrationPool` (crate `capman-fleet`) decouples solves from
//! device ticks for *one* simulation run; this crate promotes that
//! mechanism into a long-lived backend rationing solve budget across
//! tenants, which is the shape the ROADMAP's "heavy traffic from
//! millions of users" north star asks for. Four pieces:
//!
//! * [`admission`] — a bounded ingestion layer with per-cohort quotas
//!   per cadence window, explicit backpressure, and drop-oldest-per-
//!   cohort load shedding (a cohort's newest request replaces its
//!   queued one, so overload costs *freshness of the payload*, never a
//!   tenant's place in line).
//! * [`lanes`] — priority lanes computed from published-calibration
//!   staleness, with a skip-counting aging rule that provably bounds
//!   how long any admitted request can wait (no tenant is pinned out).
//! * [`slo`] — declarative SLO specs (p99 adoption staleness, queue
//!   depth, solve latency) evaluated over `capman-obs` registry
//!   snapshots by a [`SloMonitor`] that flips the service between
//!   normal / degraded / shedding modes. The enforcement predicate is
//!   the floor-guarded ratio of `bench::gate`'s `FloorAsBaseline`
//!   mode (a cross-check test in `capman-bench` pins the arithmetic).
//! * [`service`] + [`harness`] — the [`CalibrationService`] itself
//!   (implementing `capman_fleet::CalibrationBackend`, so the arena
//!   fleet drives it unmodified) and the soak harness that turns
//!   PR 7's `DeviceArena` into the service's load generator.
//!
//! The service's registry is always on (local values, not the
//! feature-gated global hooks), so a `/metrics`-shaped Prometheus
//! scrape and a Chrome trace come out of every run regardless of the
//! `obs` feature.
//!
//! Every submission additionally mints a **causal trace context**
//! (`capman_obs::TraceCtx`) that rides the request through admission,
//! the lanes, the solve, publication, and a device's adoption; the
//! cross-thread hops are recorded as flow links, so the Chrome trace
//! renders one connected arc per request. At adoption the service
//! closes the trace into a `capman_obs::CompletedTrace` whose four
//! critical-path phases ([`PHASE_NAMES`]) sum *identically* to the
//! served staleness, and feeds per-phase histograms carrying
//! slowest-trace exemplars. An attached `capman_obs::FlightRecorder`
//! retains recent traces, metric snapshots and SLO verdicts, and dumps
//! a postmortem bundle on panic or when the SLO flips the service into
//! Degraded/Shedding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod harness;
pub mod lanes;
pub mod policy;
pub mod service;
pub mod slo;

pub use admission::{AdmissionConfig, AdmissionOutcome};
pub use harness::{run_soak, SoakConfig, SoakReport};
pub use lanes::{Lane, LaneConfig};
pub use policy::ServePolicy;
pub use service::{CalibrationService, ServiceConfig, ServiceCounters, PHASE_NAMES};
pub use slo::{ServiceMode, SloConfig, SloMonitor, SloObjective, SloSpec, SloVerdict};
