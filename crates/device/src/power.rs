//! Component power models — Table II of the paper.
//!
//! * CPU: `P = gamma_freq * mu + C` — linear in utilisation `mu` at a
//!   given frequency index (Abdelmotalib & Wu).
//! * Screen: `P = (alpha_b + alpha_w)/2 * B_level + C` — linear in
//!   brightness (Ali et al.).
//! * WiFi: piecewise linear in the packet rate `p` with threshold `t`
//!   (Zhang et al.).
//! * TEC: `P = alpha I dT + I^2 R` — provided by `capman-thermal`; here we
//!   account the constant driver overhead of Table III.
//!
//! All models are calibrated so that, at the reference operating points,
//! they reproduce the measured Table III state powers exactly.

use serde::{Deserialize, Serialize};

use crate::constants;
use crate::states::{CpuState, DeviceState, ScreenState, TecState, WifiState};

/// The instantaneous software demand a workload places on the components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// CPU utilisation in percent, `0..=100`.
    pub cpu_util: f64,
    /// CPU frequency index, `0..n_freqs` (profile-dependent).
    pub freq_index: usize,
    /// Screen brightness level, `0..=255`.
    pub brightness: f64,
    /// WiFi packet rate, packets per second.
    pub packet_rate: f64,
}

impl Default for Demand {
    fn default() -> Self {
        Demand {
            cpu_util: 0.0,
            freq_index: 0,
            brightness: constants::SCREEN_REF_BRIGHTNESS,
            packet_rate: 0.0,
        }
    }
}

/// CPU power model: `P = gamma_freq * mu + C` in the C0 state, measured
/// constants otherwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuPowerModel {
    /// Per-frequency slope, mW per utilisation percent.
    gammas: Vec<f64>,
    /// Static active floor `C`, mW.
    c_mw: f64,
}

impl CpuPowerModel {
    /// Calibrate for `n_freqs` frequency levels so that full utilisation
    /// at the top level reproduces the Table III C0 power.
    ///
    /// # Panics
    ///
    /// Panics if `n_freqs == 0`.
    pub fn calibrated(n_freqs: usize) -> Self {
        assert!(n_freqs > 0, "need at least one frequency level");
        let c_mw = constants::CPU_C2_MW;
        let top_gamma = (constants::CPU_C0_MW - c_mw) / 100.0;
        let gammas = (0..n_freqs)
            .map(|f| {
                // Lower levels burn proportionally less per cycle.
                let scale = 0.45 + 0.55 * (f as f64 + 1.0) / n_freqs as f64;
                top_gamma * scale
            })
            .collect();
        CpuPowerModel { gammas, c_mw }
    }

    /// Power at the given state and demand, mW.
    ///
    /// The frequency index is clamped to the calibrated range and the
    /// utilisation to `[0, 100]`.
    pub fn power_mw(&self, state: CpuState, demand: &Demand) -> f64 {
        match state {
            CpuState::C0 => {
                let f = demand.freq_index.min(self.gammas.len() - 1);
                let mu = demand.cpu_util.clamp(0.0, 100.0);
                self.gammas[f] * mu + self.c_mw
            }
            CpuState::C1 => constants::CPU_C1_MW,
            CpuState::C2 => constants::CPU_C2_MW,
            CpuState::Sleep => constants::CPU_SLEEP_MW,
        }
    }

    /// Number of calibrated frequency levels.
    pub fn n_freqs(&self) -> usize {
        self.gammas.len()
    }
}

/// Screen power model: brightness-linear when on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScreenPowerModel {
    /// Combined brightness slope `(alpha_b + alpha_w) / 2`, mW per level.
    slope: f64,
    /// Static panel power `C_screen`, mW.
    c_mw: f64,
}

impl ScreenPowerModel {
    /// Calibrate so the reference brightness reproduces Table III.
    pub fn calibrated() -> Self {
        let c_mw = 200.0;
        let slope = (constants::SCREEN_ON_MW - c_mw) / constants::SCREEN_REF_BRIGHTNESS;
        ScreenPowerModel { slope, c_mw }
    }

    /// Power at the given state and demand, mW.
    pub fn power_mw(&self, state: ScreenState, demand: &Demand) -> f64 {
        match state {
            ScreenState::On => self.slope * demand.brightness.clamp(0.0, 255.0) + self.c_mw,
            ScreenState::Off => constants::SCREEN_OFF_MW,
        }
    }
}

/// WiFi power model: piecewise linear in the packet rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WifiPowerModel {
    /// Low-regime slope, mW per packet/s.
    gamma_l: f64,
    /// Low-regime intercept, mW.
    c_l: f64,
    /// High-regime slope, mW per packet/s.
    gamma_h: f64,
    /// High-regime intercept, mW.
    c_h: f64,
    /// Regime threshold `t`, packets/s.
    threshold: f64,
}

impl WifiPowerModel {
    /// Calibrate so the reference access/send rates reproduce Table III.
    pub fn calibrated() -> Self {
        let c_l = 300.0;
        let gamma_l = (constants::WIFI_ACCESS_MW - c_l) / constants::WIFI_REF_ACCESS_PPS;
        let c_h = 600.0;
        let gamma_h = (constants::WIFI_SEND_MW - c_h) / constants::WIFI_REF_SEND_PPS;
        WifiPowerModel {
            gamma_l,
            c_l,
            gamma_h,
            c_h,
            threshold: constants::WIFI_THRESHOLD_PPS,
        }
    }

    /// Power at the given state and demand, mW.
    ///
    /// In the idle state the radio draws the idle constant regardless of
    /// queued packets; in active states the piecewise model of Table II
    /// applies.
    pub fn power_mw(&self, state: WifiState, demand: &Demand) -> f64 {
        match state {
            WifiState::Idle => constants::WIFI_IDLE_MW,
            WifiState::Access | WifiState::Send => {
                let p = demand.packet_rate.max(0.0);
                if p <= self.threshold {
                    self.gamma_l * p + self.c_l
                } else {
                    self.gamma_h * p + self.c_h
                }
            }
        }
    }

    /// The regime threshold `t`, packets/s.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

/// The full device power model (Table II + Table III calibration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    cpu: CpuPowerModel,
    screen: ScreenPowerModel,
    wifi: WifiPowerModel,
    /// Per-phone scaling of the total (process/panel variation).
    scale: f64,
}

impl PowerModel {
    /// Calibrated model for a phone with `n_freqs` CPU levels and a
    /// device-wide power scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn calibrated(n_freqs: usize, scale: f64) -> Self {
        assert!(scale > 0.0, "power scale must be positive");
        PowerModel {
            cpu: CpuPowerModel::calibrated(n_freqs),
            screen: ScreenPowerModel::calibrated(),
            wifi: WifiPowerModel::calibrated(),
            scale,
        }
    }

    /// Total device power for a state and demand, mW (TEC driver power
    /// included when the TEC state is on; the module's pump power is
    /// accounted by the thermal model).
    pub fn device_power_mw(&self, state: &DeviceState, demand: &Demand) -> f64 {
        let tec = match state.tec {
            TecState::On => constants::TEC_ON_MW,
            TecState::Off => constants::TEC_OFF_MW,
        };
        (self.cpu.power_mw(state.cpu, demand)
            + self.screen.power_mw(state.screen, demand)
            + self.wifi.power_mw(state.wifi, demand)
            + tec)
            * self.scale
    }

    /// The CPU sub-model.
    pub fn cpu(&self) -> &CpuPowerModel {
        &self.cpu
    }

    /// The screen sub-model.
    pub fn screen(&self) -> &ScreenPowerModel {
        &self.screen
    }

    /// The WiFi sub-model.
    pub fn wifi(&self) -> &WifiPowerModel {
        &self.wifi
    }

    /// Per-phone power scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand_full() -> Demand {
        Demand {
            cpu_util: 100.0,
            freq_index: usize::MAX, // clamped to top
            brightness: constants::SCREEN_REF_BRIGHTNESS,
            packet_rate: 0.0,
        }
    }

    #[test]
    fn cpu_c0_full_util_matches_table_iii() {
        let m = CpuPowerModel::calibrated(8);
        let p = m.power_mw(CpuState::C0, &demand_full());
        assert!((p - constants::CPU_C0_MW).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn cpu_low_states_match_table_iii() {
        let m = CpuPowerModel::calibrated(8);
        let d = Demand::default();
        assert_eq!(m.power_mw(CpuState::C1, &d), constants::CPU_C1_MW);
        assert_eq!(m.power_mw(CpuState::C2, &d), constants::CPU_C2_MW);
        assert_eq!(m.power_mw(CpuState::Sleep, &d), constants::CPU_SLEEP_MW);
    }

    #[test]
    fn cpu_power_is_linear_in_utilization() {
        let m = CpuPowerModel::calibrated(4);
        let at = |mu: f64| {
            m.power_mw(
                CpuState::C0,
                &Demand {
                    cpu_util: mu,
                    freq_index: 3,
                    ..Demand::default()
                },
            )
        };
        let p0 = at(0.0);
        let p50 = at(50.0);
        let p100 = at(100.0);
        assert!(((p100 - p50) - (p50 - p0)).abs() < 1e-9);
    }

    #[test]
    fn lower_frequency_draws_less_at_same_utilization() {
        let m = CpuPowerModel::calibrated(8);
        let at = |f: usize| {
            m.power_mw(
                CpuState::C0,
                &Demand {
                    cpu_util: 80.0,
                    freq_index: f,
                    ..Demand::default()
                },
            )
        };
        assert!(at(0) < at(7));
    }

    #[test]
    fn screen_reference_brightness_matches_table_iii() {
        let m = ScreenPowerModel::calibrated();
        let p = m.power_mw(ScreenState::On, &Demand::default());
        assert!((p - constants::SCREEN_ON_MW).abs() < 1e-9);
        assert_eq!(
            m.power_mw(ScreenState::Off, &Demand::default()),
            constants::SCREEN_OFF_MW
        );
    }

    #[test]
    fn screen_power_grows_with_brightness() {
        let m = ScreenPowerModel::calibrated();
        let at = |b: f64| {
            m.power_mw(
                ScreenState::On,
                &Demand {
                    brightness: b,
                    ..Demand::default()
                },
            )
        };
        assert!(at(255.0) > at(100.0));
        assert!(at(0.0) > 0.0);
    }

    #[test]
    fn wifi_reference_rates_match_table_iii() {
        let m = WifiPowerModel::calibrated();
        let at = |state: WifiState, p: f64| {
            m.power_mw(
                state,
                &Demand {
                    packet_rate: p,
                    ..Demand::default()
                },
            )
        };
        assert!(
            (at(WifiState::Access, constants::WIFI_REF_ACCESS_PPS) - constants::WIFI_ACCESS_MW)
                .abs()
                < 1e-9
        );
        assert!(
            (at(WifiState::Send, constants::WIFI_REF_SEND_PPS) - constants::WIFI_SEND_MW).abs()
                < 1e-9
        );
        assert_eq!(at(WifiState::Idle, 500.0), constants::WIFI_IDLE_MW);
    }

    #[test]
    fn wifi_model_is_piecewise_with_threshold() {
        let m = WifiPowerModel::calibrated();
        let at = |p: f64| {
            m.power_mw(
                WifiState::Send,
                &Demand {
                    packet_rate: p,
                    ..Demand::default()
                },
            )
        };
        let below = at(m.threshold() - 1.0);
        let above = at(m.threshold() + 1.0);
        // Two different linear regimes.
        assert!((above - below).abs() > 1.0);
    }

    #[test]
    fn device_power_sums_components_and_tec() {
        let m = PowerModel::calibrated(8, 1.0);
        let mut s = DeviceState::awake();
        let d = Demand {
            cpu_util: 100.0,
            freq_index: 7,
            brightness: constants::SCREEN_REF_BRIGHTNESS,
            packet_rate: constants::WIFI_REF_ACCESS_PPS,
        };
        let without_tec = m.device_power_mw(&s, &d);
        s.tec = TecState::On;
        let with_tec = m.device_power_mw(&s, &d);
        assert!((with_tec - without_tec - constants::TEC_ON_MW).abs() < 1e-9);
        let expected = constants::CPU_C0_MW + constants::SCREEN_ON_MW + constants::WIFI_ACCESS_MW;
        assert!((without_tec - expected).abs() < 1e-6);
    }

    #[test]
    fn suspended_phone_draws_floor_power() {
        let m = PowerModel::calibrated(8, 1.0);
        let p = m.device_power_mw(&DeviceState::asleep(), &Demand::default());
        let expected = constants::CPU_SLEEP_MW + constants::SCREEN_OFF_MW + constants::WIFI_IDLE_MW;
        assert!((p - expected).abs() < 1e-9);
    }

    #[test]
    fn scale_multiplies_total() {
        let base = PowerModel::calibrated(8, 1.0);
        let scaled = PowerModel::calibrated(8, 1.1);
        let s = DeviceState::awake();
        let d = Demand::default();
        let ratio = scaled.device_power_mw(&s, &d) / base.device_power_mw(&s, &d);
        assert!((ratio - 1.1).abs() < 1e-9);
    }
}
