//! The profile-and-monitor layer (Fig. 8).
//!
//! CAPMAN observes `(state, action, state', reward)` tuples as the phone
//! runs and accumulates them into the MDP `M = {S, A, T, R}`: states are
//! the composite device power states, actions the system-call classes,
//! transition probabilities the normalised visit counts, and rewards the
//! measured per-step pack efficiency (normalised to `[0, 1]`). It also
//! maintains a per-state power estimate used for demand prediction.
//!
//! Consecutive profiling periods usually touch only a handful of rows,
//! so the profiler tracks *which* `(state, action)` rows changed since
//! any point in its history: [`Profiler::changes_since`] returns a
//! [`DirtySet`] and [`Profiler::to_mdp_incremental`] patches a cached
//! [`Mdp`] in place instead of rebuilding it — bitwise identical to a
//! full [`Profiler::to_mdp`], at a cost proportional to the drift.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use capman_device::fsm::Action;
use capman_device::states::{DeviceState, STATE_COUNT};
use capman_mdp::mdp::{Mdp, MdpBuilder, Outcome, RowPatch};

/// Exponential-moving-average smoothing for the per-state power.
const POWER_EMA_ALPHA: f64 = 0.2;

static NEXT_PROFILER_ID: AtomicU64 = AtomicU64::new(1);

/// One `(state, action)` row of accumulated visit statistics.
///
/// Outcomes are kept in first-seen order, which makes both
/// [`Profiler::to_mdp`] and the incremental patch path deterministic:
/// the CSR layout of a row depends only on the observation history, not
/// on hash-map iteration order.
#[derive(Debug, Clone)]
struct Row {
    /// `(to, visit count, reward sum)` per distinct successor.
    outs: Vec<(usize, f64, f64)>,
    /// Profiler version at which this row last changed.
    last_changed: u64,
}

/// The `(state, action)` rows that changed after a version snapshot,
/// as returned by [`Profiler::changes_since`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    rows: Vec<(usize, usize)>,
    states: Vec<usize>,
    total_rows: usize,
}

impl DirtySet {
    /// The dirty `(state, action)` rows, sorted.
    pub fn rows(&self) -> &[(usize, usize)] {
        &self.rows
    }

    /// All states a dirty row touches (owners and successors), sorted
    /// and deduplicated — the invalidation set for similarity caches.
    pub fn states(&self) -> &[usize] {
        &self.states
    }

    /// No rows changed since the snapshot.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Dirty rows as a fraction of all populated rows.
    pub fn dirty_fraction(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.rows.len() as f64 / self.total_rows as f64
        }
    }
}

/// Accumulates runtime observations into an MDP and power estimates.
///
/// # Lineage
///
/// Every profiler carries a process-unique `id()` which its clones
/// inherit, plus a `version()` bumped on each [`observe`]. A cached
/// model keyed by `(id, version)` can therefore be patched forward via
/// [`changes_since`] as long as the lineage is linear — snapshot, then
/// keep observing on the same profiler (or a clone that supersedes it).
/// Mutating two clones divergently and patching one cache from both is
/// unsupported and will trip the bit-identity proptests.
///
/// [`observe`]: Profiler::observe
/// [`changes_since`]: Profiler::changes_since
///
/// # Examples
///
/// ```
/// use capman_core::profiler::Profiler;
/// use capman_device::fsm::Action;
/// use capman_device::states::DeviceState;
///
/// let mut profiler = Profiler::new();
/// let asleep = DeviceState::asleep();
/// let awake = DeviceState::awake();
/// profiler.observe(asleep, Action::ScreenOn, awake, 0.9, 2.5);
/// let snapshot = profiler.version();
/// let mut mdp = profiler.to_mdp();
///
/// profiler.observe(awake, Action::ScreenOff, asleep, 0.7, 0.4);
/// let dirty = profiler.changes_since(snapshot);
/// assert_eq!(dirty.rows(), &[(awake.index(), Action::ScreenOff.index())]);
/// profiler.to_mdp_incremental(&mut mdp, &dirty);
/// assert_eq!(mdp, profiler.to_mdp());
/// ```
#[derive(Debug, Clone)]
pub struct Profiler {
    /// Process-unique lineage id, shared with clones.
    id: u64,
    /// `(from, action) -> row`, outcomes in first-seen order.
    rows: HashMap<(usize, usize), Row>,
    /// Smoothed measured power per device state, watts.
    power_w: Vec<Option<f64>>,
    /// Cached sorted list of states seen at least once.
    visited: Vec<usize>,
    observations: u64,
    /// Bumped once per `observe`; the dirty-tracking clock.
    version: u64,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// An empty profile.
    pub fn new() -> Self {
        Profiler {
            id: NEXT_PROFILER_ID.fetch_add(1, Ordering::Relaxed),
            rows: HashMap::new(),
            power_w: vec![None; STATE_COUNT],
            visited: Vec::new(),
            observations: 0,
            version: 0,
        }
    }

    /// Record one observed step.
    ///
    /// # Panics
    ///
    /// Panics if `reward` is outside `[0, 1]` or `power_w` is negative.
    pub fn observe(
        &mut self,
        from: DeviceState,
        action: Action,
        to: DeviceState,
        reward: f64,
        power_w: f64,
    ) {
        assert!(
            (0.0..=1.0).contains(&reward),
            "reward must be normalised to [0, 1]"
        );
        assert!(power_w >= 0.0, "power must be non-negative");
        self.version += 1;
        let (fi, ti) = (from.index(), to.index());
        let row = self.rows.entry((fi, action.index())).or_insert(Row {
            outs: Vec::new(),
            last_changed: 0,
        });
        match row.outs.iter_mut().find(|(t, _, _)| *t == ti) {
            Some((_, count, reward_sum)) => {
                *count += 1.0;
                *reward_sum += reward;
            }
            None => row.outs.push((ti, 1.0, reward)),
        }
        row.last_changed = self.version;
        let slot = &mut self.power_w[ti];
        *slot = Some(match *slot {
            Some(prev) => prev + POWER_EMA_ALPHA * (power_w - prev),
            None => power_w,
        });
        for s in [fi, ti] {
            if let Err(at) = self.visited.binary_search(&s) {
                self.visited.insert(at, s);
            }
        }
        self.observations += 1;
    }

    /// Process-unique lineage id, inherited by clones.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The dirty-tracking clock; bumped once per [`observe`](Self::observe).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of observations recorded.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Number of distinct `(state, action, state')` transitions seen.
    pub fn distinct_transitions(&self) -> usize {
        self.rows.values().map(|r| r.outs.len()).sum()
    }

    /// The smoothed measured power of a device state, if it was visited.
    pub fn state_power_w(&self, state: DeviceState) -> Option<f64> {
        self.power_w[state.index()]
    }

    /// Predict the power that follows taking `action` in `from`:
    /// the transition-probability-weighted mean of the successor states'
    /// measured powers. Falls back to the current state's power, then
    /// `None` if nothing was ever observed.
    pub fn predicted_power_w(&self, from: DeviceState, action: Action) -> Option<f64> {
        let fi = from.index();
        let mut total_w = 0.0;
        let mut total_count = 0.0;
        if let Some(row) = self.rows.get(&(fi, action.index())) {
            for &(to, count, _) in &row.outs {
                if let Some(p) = self.power_w[to] {
                    total_w += count * p;
                    total_count += count;
                }
            }
        }
        if total_count > 0.0 {
            Some(total_w / total_count)
        } else {
            self.power_w[fi]
        }
    }

    /// Materialise the observed statistics as the MDP of Fig. 8.
    ///
    /// Visit counts become (normalised) transition probabilities; the
    /// mean observed reward labels each edge.
    pub fn to_mdp(&self) -> Mdp {
        let mut b = MdpBuilder::new(STATE_COUNT, Action::ALL.len());
        for (&(from, action), row) in &self.rows {
            for &(to, count, reward_sum) in &row.outs {
                b.transition(
                    from,
                    action,
                    to,
                    count,
                    (reward_sum / count).clamp(0.0, 1.0),
                );
            }
        }
        b.build()
    }

    /// The rows that changed after the snapshot taken at `version`.
    pub fn changes_since(&self, version: u64) -> DirtySet {
        let mut rows: Vec<(usize, usize)> = Vec::new();
        let mut states: Vec<usize> = Vec::new();
        for (&key, row) in &self.rows {
            if row.last_changed > version {
                rows.push(key);
                states.push(key.0);
                states.extend(row.outs.iter().map(|&(to, _, _)| to));
            }
        }
        rows.sort_unstable();
        states.sort_unstable();
        states.dedup();
        DirtySet {
            rows,
            states,
            total_rows: self.rows.len(),
        }
    }

    /// Patch `cached` — a model previously produced by [`to_mdp`] on
    /// this lineage — forward to the current statistics, rebuilding only
    /// the rows in `dirty`. Bitwise identical to a fresh [`to_mdp`].
    ///
    /// Returns `true` when the zero-allocation in-place path was taken
    /// (every dirty row kept its successor count).
    ///
    /// [`to_mdp`]: Self::to_mdp
    pub fn to_mdp_incremental(&self, cached: &mut Mdp, dirty: &DirtySet) -> bool {
        let patches: Vec<RowPatch> = dirty
            .rows
            .iter()
            .map(|&(state, action)| {
                let outcomes = match self.rows.get(&(state, action)) {
                    Some(row) => row
                        .outs
                        .iter()
                        .map(|&(to, count, reward_sum)| Outcome {
                            next: to,
                            prob: count,
                            reward: (reward_sum / count).clamp(0.0, 1.0),
                        })
                        .collect(),
                    None => Vec::new(),
                };
                RowPatch {
                    state,
                    action,
                    outcomes,
                }
            })
            .collect();
        cached.patch_rows(&patches)
    }

    /// States that have been visited at least once, sorted ascending.
    ///
    /// The slice is maintained incrementally by `observe`; the tick
    /// path can call this without allocating.
    pub fn visited_states(&self) -> &[usize] {
        &self.visited
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_battery::chemistry::Class;

    fn awake_little() -> DeviceState {
        DeviceState::awake().with_battery(Class::Little)
    }

    #[test]
    fn observation_counts_accumulate() {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        p.observe(asleep, Action::ScreenOn, awake, 0.9, 2.0);
        p.observe(asleep, Action::ScreenOn, awake, 0.8, 2.2);
        assert_eq!(p.observations(), 2);
        assert_eq!(p.distinct_transitions(), 1);
        assert_eq!(p.visited_states().len(), 2);
    }

    #[test]
    fn power_estimate_smooths_toward_measurements() {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        p.observe(asleep, Action::ScreenOn, awake, 0.9, 2.0);
        assert!((p.state_power_w(awake).expect("seen") - 2.0).abs() < 1e-12);
        p.observe(asleep, Action::ScreenOn, awake, 0.9, 3.0);
        let est = p.state_power_w(awake).expect("seen");
        assert!(est > 2.0 && est < 3.0);
    }

    #[test]
    fn prediction_weighs_successors() {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        let little = awake_little();
        // ScreenOn leads to `awake` three times (2 W) and `little` once
        // (4 W).
        for _ in 0..3 {
            p.observe(asleep, Action::ScreenOn, awake, 0.9, 2.0);
        }
        p.observe(asleep, Action::ScreenOn, little, 0.9, 4.0);
        let pred = p.predicted_power_w(asleep, Action::ScreenOn).expect("pred");
        assert!((pred - 2.5).abs() < 1e-9, "pred = {pred}");
    }

    #[test]
    fn prediction_falls_back_to_current_state() {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        p.observe(asleep, Action::ScreenOn, awake, 0.9, 2.0);
        // Never saw AppLaunch from `awake`, but `awake` itself has a
        // power estimate.
        let pred = p.predicted_power_w(awake, Action::AppLaunch);
        assert!(pred.is_some());
        // Truly unseen state gives None.
        assert!(p
            .predicted_power_w(awake_little(), Action::AppExit)
            .is_none());
    }

    #[test]
    fn mdp_round_trip_normalises_counts() {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        for _ in 0..3 {
            p.observe(asleep, Action::ScreenOn, awake, 1.0, 2.0);
        }
        p.observe(asleep, Action::ScreenOn, asleep, 0.0, 0.1);
        let mdp = p.to_mdp();
        let outs = mdp.outcomes(asleep.index(), Action::ScreenOn.index());
        let total_p: f64 = outs.iter().map(|o| o.prob).sum();
        assert!((total_p - 1.0).abs() < 1e-12);
        assert_eq!(outs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "reward")]
    fn rejects_unnormalised_reward() {
        let mut p = Profiler::new();
        p.observe(
            DeviceState::asleep(),
            Action::Wake,
            DeviceState::awake(),
            1.5,
            1.0,
        );
    }

    #[test]
    fn dirty_set_names_exactly_the_rows_touched_after_the_snapshot() {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        p.observe(asleep, Action::ScreenOn, awake, 0.9, 2.0);
        let snap = p.version();
        assert!(p.changes_since(snap).is_empty());

        p.observe(awake, Action::ScreenOff, asleep, 0.7, 0.4);
        p.observe(awake, Action::AppLaunch, awake_little(), 0.6, 3.0);
        let dirty = p.changes_since(snap);
        assert_eq!(
            dirty.rows(),
            &[
                (awake.index(), Action::ScreenOff.index()),
                (awake.index(), Action::AppLaunch.index()),
            ]
        );
        let mut want_states = [asleep.index(), awake.index(), awake_little().index()];
        want_states.sort_unstable();
        assert_eq!(dirty.states(), &want_states[..]);
        assert!((dirty.dirty_fraction() - 2.0 / 3.0).abs() < 1e-12);
        // The pre-snapshot row stays clean even after re-observing it..
        p.observe(asleep, Action::ScreenOn, awake, 0.9, 2.0);
        // ..from the *old* snapshot it is dirty again, of course.
        assert_eq!(p.changes_since(p.version() - 1).rows().len(), 1);
    }

    #[test]
    fn incremental_rebuild_is_bitwise_the_full_rebuild() {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        for _ in 0..4 {
            p.observe(asleep, Action::ScreenOn, awake, 0.9, 2.0);
        }
        p.observe(awake, Action::ScreenOff, asleep, 0.7, 0.4);
        let snap = p.version();
        let mut cached = p.to_mdp();

        // Same-shape drift: revisit an existing row.
        p.observe(asleep, Action::ScreenOn, awake, 0.5, 2.1);
        // Widening drift: a brand-new successor and a brand-new row.
        p.observe(asleep, Action::ScreenOn, asleep, 0.2, 0.1);
        p.observe(awake, Action::AppLaunch, awake_little(), 0.6, 3.0);

        let dirty = p.changes_since(snap);
        p.to_mdp_incremental(&mut cached, &dirty);
        assert_eq!(cached, p.to_mdp());
    }

    #[test]
    fn same_shape_drift_takes_the_in_place_patch_path() {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        p.observe(asleep, Action::ScreenOn, awake, 0.9, 2.0);
        let snap = p.version();
        let mut cached = p.to_mdp();
        p.observe(asleep, Action::ScreenOn, awake, 0.4, 1.8);
        assert!(p.to_mdp_incremental(&mut cached, &p.changes_since(snap)));
        assert_eq!(cached, p.to_mdp());
    }

    #[test]
    fn clones_share_the_lineage_id_and_fresh_profilers_do_not() {
        let p = Profiler::new();
        let clone = p.clone();
        assert_eq!(p.id(), clone.id());
        assert_ne!(p.id(), Profiler::new().id());
    }

    #[test]
    fn visited_states_stays_sorted_and_deduplicated() {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        p.observe(awake, Action::AppLaunch, awake_little(), 0.6, 3.0);
        p.observe(asleep, Action::ScreenOn, awake, 0.9, 2.0);
        p.observe(asleep, Action::ScreenOn, awake, 0.9, 2.0);
        let mut want = [asleep.index(), awake.index(), awake_little().index()];
        want.sort_unstable();
        assert_eq!(p.visited_states(), &want[..]);
    }
}
