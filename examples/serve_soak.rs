//! Executable reference for the resident calibration service: ramp an
//! arena fleet from balanced load to 4x overload against per-cohort
//! admission quotas, and print each rung's shedding/starvation verdict
//! plus the final SLO evaluation.
//!
//! ```text
//! cargo run --release --example serve_soak
//! ```
//!
//! What to expect: at 1x every submission is admitted and nothing is
//! shed; at 2x and 4x the drop-oldest admission path sheds roughly
//! `(x-1)/x` of submissions — but *only* from the surplus, so every
//! cohort still adopts a fresh calibration once per cadence window
//! (`starvation_free=true` on every rung) and the p99 wait of served
//! requests stays inside the 300 s SLO objective. The service's own
//! registry and tracer are always on; the example ends with the
//! Prometheus scrape of the hottest rung so the metric families are
//! visible without any feature flag.

use capman::serve::{run_soak, SoakConfig};

fn main() {
    println!("serve_soak: overload ramp against a quota of 1 admission per cohort per window\n");
    let mut hottest = None;
    for overload_x in [1usize, 2, 4] {
        let config = SoakConfig {
            cohorts: 3,
            devices_per_cohort: overload_x,
            windows: 3,
            ..SoakConfig::default()
        };
        let report = run_soak(&config);
        println!("{overload_x}x overload: {}", report.verdict_line());
        for (i, w) in report.windows.iter().enumerate() {
            println!(
                "    window {i}: published {} (min cohort {}), mode={}, breached={}",
                w.published,
                w.min_cohort_published,
                w.mode.label(),
                w.breached
            );
        }
        assert!(
            report.starvation_free,
            "the no-starvation contract must hold at {overload_x}x"
        );
        hottest = Some(report);
    }
    let report = hottest.expect("the ramp ran");
    println!("\nfinal SLO mode at 4x: {}", report.final_mode.label());

    // Causal tracing (DESIGN.md §16): every served calibration closed
    // one connected trace whose phases decompose its staleness.
    println!(
        "\nserved traces at 4x: {} closed, phase p99s: queue {:.1} s, lane {:.1} s, \
         solve {:.1} s, publish→adopt {:.1} s",
        report.completed_traces.len(),
        report.phase_p99_s[0],
        report.phase_p99_s[1],
        report.phase_p99_s[2],
        report.phase_p99_s[3],
    );
    if let Some(worst) = report
        .completed_traces
        .iter()
        .max_by(|a, b| a.staleness_s().total_cmp(&b.staleness_s()))
    {
        println!("slowest served request: {}", worst.line());
    }
    println!("\nPrometheus scrape of the 4x rung:\n");
    // Trim the histogram bodies for the terminal: print families and
    // counters, elide per-bucket lines past the first two.
    let mut bucket_run = 0;
    for line in report.prometheus.lines() {
        if line.contains("_bucket") {
            bucket_run += 1;
            if bucket_run > 2 {
                continue;
            }
        } else {
            if bucket_run > 2 {
                println!("  ... ({} more buckets elided)", bucket_run - 2);
            }
            bucket_run = 0;
        }
        println!("{line}");
    }
}
