//! Trace import/export.
//!
//! Traces exchange as plain CSV (one row per segment) so real measured
//! traces — the paper profiles its workloads with a bench multimeter —
//! can be replayed through the simulator, and generated traces can be
//! inspected or plotted outside Rust. No extra dependencies: the format
//! is flat and the action list is `;`-separated action names.

use std::fmt;
use std::str::FromStr;

use capman_device::fsm::Action;
use capman_device::power::Demand;

use crate::trace::{Segment, Trace};

/// Errors produced when parsing a trace CSV.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceCsvError {
    /// The header row was missing or wrong.
    BadHeader(String),
    /// A row had the wrong number of fields.
    BadArity {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending field text.
        field: String,
    },
    /// An action name was unknown.
    BadAction {
        /// 1-based line number.
        line: usize,
        /// The offending name.
        name: String,
    },
    /// The rows do not form a contiguous trace from time zero.
    NotContiguous,
}

impl fmt::Display for TraceCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceCsvError::BadHeader(h) => write!(f, "unexpected trace csv header: {h}"),
            TraceCsvError::BadArity { line, found } => {
                write!(f, "line {line}: expected 7 fields, found {found}")
            }
            TraceCsvError::BadNumber { line, field } => {
                write!(f, "line {line}: not a number: {field}")
            }
            TraceCsvError::BadAction { line, name } => {
                write!(f, "line {line}: unknown action: {name}")
            }
            TraceCsvError::NotContiguous => {
                write!(f, "segments are not contiguous from time zero")
            }
        }
    }
}

impl std::error::Error for TraceCsvError {}

/// The CSV header used by [`trace_to_csv`] / [`trace_from_csv`].
pub const TRACE_CSV_HEADER: &str =
    "start_s,duration_s,cpu_util,freq_index,brightness,packet_rate,actions";

/// Render a trace as CSV.
pub fn trace_to_csv(trace: &Trace) -> String {
    let mut out = String::from(TRACE_CSV_HEADER);
    out.push('\n');
    for seg in trace.segments() {
        let actions: Vec<String> = seg.actions.iter().map(|a| a.to_string()).collect();
        out.push_str(&format!(
            "{:.3},{:.3},{:.3},{},{:.3},{:.3},{}\n",
            seg.start_s,
            seg.duration_s,
            seg.demand.cpu_util,
            seg.demand.freq_index.min(1_000_000),
            seg.demand.brightness,
            seg.demand.packet_rate,
            actions.join(";"),
        ));
    }
    out
}

/// Parse a trace from CSV produced by [`trace_to_csv`] (or measured
/// externally in the same format).
///
/// # Errors
///
/// Returns a [`TraceCsvError`] for malformed headers, rows, numbers,
/// action names, or non-contiguous segments.
pub fn trace_from_csv(name: impl Into<String>, csv: &str) -> Result<Trace, TraceCsvError> {
    let mut lines = csv.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == TRACE_CSV_HEADER => {}
        Some((_, header)) => return Err(TraceCsvError::BadHeader(header.to_string())),
        None => return Err(TraceCsvError::BadHeader(String::new())),
    }
    let mut segments = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            return Err(TraceCsvError::BadArity {
                line: line_no,
                found: fields.len(),
            });
        }
        let num = |s: &str| -> Result<f64, TraceCsvError> {
            s.trim().parse().map_err(|_| TraceCsvError::BadNumber {
                line: line_no,
                field: s.to_string(),
            })
        };
        let actions = fields[6]
            .split(';')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                Action::from_str(s.trim()).map_err(|_| TraceCsvError::BadAction {
                    line: line_no,
                    name: s.to_string(),
                })
            })
            .collect::<Result<Vec<Action>, TraceCsvError>>()?;
        segments.push(Segment {
            start_s: num(fields[0])?,
            duration_s: num(fields[1])?,
            demand: Demand {
                cpu_util: num(fields[2])?,
                freq_index: num(fields[3])? as usize,
                brightness: num(fields[4])?,
                packet_rate: num(fields[5])?,
            },
            actions,
        });
    }
    if segments.is_empty() || segments[0].start_s.abs() > 1e-6 {
        return Err(TraceCsvError::NotContiguous);
    }
    for w in segments.windows(2) {
        // The 3-decimal text rounding can skew each boundary by up to
        // ~1.5 ms; anything bigger is a genuine gap or overlap.
        if (w[0].start_s + w[0].duration_s - w[1].start_s).abs() > 5e-3 {
            return Err(TraceCsvError::NotContiguous);
        }
    }
    // Snap starts so Trace::new's strict contiguity check passes after
    // the 3-decimal rounding of the text format.
    let mut cursor = 0.0;
    for seg in &mut segments {
        seg.start_s = cursor;
        cursor += seg.duration_s;
    }
    Ok(Trace::new(name, segments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate, WorkloadKind};

    #[test]
    fn round_trip_preserves_structure() {
        let original = generate(WorkloadKind::Pcmark, 600.0, 4);
        let csv = trace_to_csv(&original);
        let parsed = trace_from_csv("replay", &csv).expect("parse");
        assert_eq!(parsed.segments().len(), original.segments().len());
        assert!((parsed.horizon_s() - original.horizon_s()).abs() < 0.5);
        for (a, b) in parsed.segments().iter().zip(original.segments()) {
            assert_eq!(a.actions, b.actions);
            assert!((a.demand.cpu_util - b.demand.cpu_util).abs() < 0.01);
            assert!((a.demand.packet_rate - b.demand.packet_rate).abs() < 0.01);
        }
    }

    #[test]
    fn rejects_wrong_header() {
        let err = trace_from_csv("x", "nope\n1,2,3").unwrap_err();
        assert!(matches!(err, TraceCsvError::BadHeader(_)));
    }

    #[test]
    fn rejects_bad_arity_and_numbers() {
        let header = TRACE_CSV_HEADER;
        let err = trace_from_csv("x", &format!("{header}\n0,1,2\n")).unwrap_err();
        assert!(matches!(err, TraceCsvError::BadArity { line: 2, found: 3 }));
        let err = trace_from_csv("x", &format!("{header}\n0,abc,50,0,180,0,\n")).unwrap_err();
        assert!(matches!(err, TraceCsvError::BadNumber { line: 2, .. }));
    }

    #[test]
    fn rejects_unknown_actions() {
        let err = trace_from_csv(
            "x",
            &format!("{TRACE_CSV_HEADER}\n0,10,50,0,180,0,FlyToTheMoon\n"),
        )
        .unwrap_err();
        assert!(matches!(err, TraceCsvError::BadAction { line: 2, .. }));
    }

    #[test]
    fn rejects_gappy_traces() {
        let csv = format!("{TRACE_CSV_HEADER}\n0,10,50,0,180,0,ScreenOn\n20,10,50,0,180,0,\n");
        assert_eq!(
            trace_from_csv("x", &csv).unwrap_err(),
            TraceCsvError::NotContiguous
        );
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = TraceCsvError::BadAction {
            line: 3,
            name: "Zap".into(),
        };
        let text = e.to_string();
        assert!(text.contains("line 3"));
        assert!(text.contains("Zap"));
    }
}
