//! The bipartite MDP graph `G_M = {V, Lambda, E, Psi, p, r}`.
//!
//! State nodes `V` connect through unweighted *decision edges* `E` to
//! action nodes `Lambda`, which connect back through *transition edges*
//! `Psi` weighted by probability `p` and reward `r` (Section III-B).
//! The graph corresponds one-to-one with the MDP, so solving the graph
//! solves the MDP; the structural-similarity recursion of Algorithm 1
//! operates on this representation.
//!
//! CAPMAN additionally prunes the graph: it "only generates" action nodes
//! that connect state nodes with *different battery states*, reducing the
//! node count the similarity recursion must handle. The pruning predicate
//! is supplied by the caller via [`MdpGraph::filtered`].

use serde::{Deserialize, Serialize};

use crate::mdp::Mdp;

/// An action node: a `(state, action)` pair with its transition edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionNode {
    /// The state node this action departs from.
    pub state: usize,
    /// The MDP action index.
    pub action: usize,
    /// Transition edges `Psi`: `(successor state, probability, reward)`.
    pub edges: Vec<(usize, f64, f64)>,
}

impl ActionNode {
    /// Expected immediate reward over the transition edges.
    pub fn expected_reward(&self) -> f64 {
        self.edges.iter().map(|&(_, p, r)| p * r).sum()
    }
}

/// The bipartite graph representation of an MDP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MdpGraph {
    n_states: usize,
    action_nodes: Vec<ActionNode>,
    /// Decision edges `E`: action-node ids leaving each state node.
    state_out: Vec<Vec<usize>>,
}

impl MdpGraph {
    /// Build the full graph of an MDP (every available action becomes an
    /// action node).
    pub fn from_mdp(mdp: &Mdp) -> Self {
        Self::filtered(mdp, |_, _| true)
    }

    /// Build a pruned graph containing only the action nodes for which
    /// `keep(state, action)` holds — CAPMAN keeps the actions that switch
    /// the battery state.
    pub fn filtered(mdp: &Mdp, mut keep: impl FnMut(usize, usize) -> bool) -> Self {
        let n_states = mdp.n_states();
        let mut action_nodes = Vec::new();
        let mut state_out = vec![Vec::new(); n_states];
        for (s, out) in state_out.iter_mut().enumerate() {
            for a in mdp.available_actions(s) {
                if !keep(s, a) {
                    continue;
                }
                let edges = mdp
                    .outcomes(s, a)
                    .iter()
                    .map(|o| (o.next, o.prob, o.reward))
                    .collect();
                out.push(action_nodes.len());
                action_nodes.push(ActionNode {
                    state: s,
                    action: a,
                    edges,
                });
            }
        }
        MdpGraph {
            n_states,
            action_nodes,
            state_out,
        }
    }

    /// Number of state nodes `|V|`.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of action nodes `|Lambda|`.
    pub fn n_action_nodes(&self) -> usize {
        self.action_nodes.len()
    }

    /// The action node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn action_node(&self, id: usize) -> &ActionNode {
        &self.action_nodes[id]
    }

    /// All action nodes.
    pub fn action_nodes(&self) -> &[ActionNode] {
        &self.action_nodes
    }

    /// Decision edges of a state node: ids of its out-neighbour action
    /// nodes (`N_u` in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn neighbors(&self, state: usize) -> &[usize] {
        &self.state_out[state]
    }

    /// Whether a state node is absorbing (out-degree zero) — the target
    /// states of battery scheduling.
    pub fn is_absorbing(&self, state: usize) -> bool {
        self.state_out[state].is_empty()
    }

    /// Maximum out-degree of action nodes (`K_max` in the complexity
    /// analysis).
    pub fn k_max(&self) -> usize {
        self.action_nodes
            .iter()
            .map(|a| a.edges.len())
            .max()
            .unwrap_or(0)
    }

    /// Maximum out-degree of state nodes (`L_max`).
    pub fn l_max(&self) -> usize {
        self.state_out.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;

    fn diamond() -> Mdp {
        // 0 -(a0)-> {1: 0.5, 2: 0.5}; 1 -(a1)-> 3; 2 -(a0)-> 3.
        let mut b = MdpBuilder::new(4, 2);
        b.transition(0, 0, 1, 0.5, 0.3);
        b.transition(0, 0, 2, 0.5, 0.6);
        b.transition(1, 1, 3, 1.0, 1.0);
        b.transition(2, 0, 3, 1.0, 0.0);
        b.build()
    }

    #[test]
    fn graph_mirrors_the_mdp() {
        let m = diamond();
        let g = MdpGraph::from_mdp(&m);
        assert_eq!(g.n_states(), 4);
        assert_eq!(g.n_action_nodes(), m.n_action_nodes());
        assert_eq!(g.neighbors(0).len(), 1);
        assert!(g.is_absorbing(3));
        assert!(!g.is_absorbing(0));
    }

    #[test]
    fn transition_edges_carry_p_and_r() {
        let g = MdpGraph::from_mdp(&diamond());
        let node = g.action_node(g.neighbors(0)[0]);
        assert_eq!(node.edges.len(), 2);
        let total_p: f64 = node.edges.iter().map(|&(_, p, _)| p).sum();
        assert!((total_p - 1.0).abs() < 1e-12);
        assert!((node.expected_reward() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn filtering_prunes_action_nodes() {
        let m = diamond();
        // Keep only action 0 nodes (CAPMAN's battery-switch pruning
        // analog).
        let g = MdpGraph::filtered(&m, |_, a| a == 0);
        assert_eq!(g.n_action_nodes(), 2);
        assert!(g.neighbors(1).is_empty());
        assert!(g.is_absorbing(1), "pruned state loses its out-edges");
    }

    #[test]
    fn degree_statistics() {
        let g = MdpGraph::from_mdp(&diamond());
        assert_eq!(g.k_max(), 2);
        assert_eq!(g.l_max(), 1);
    }

    #[test]
    fn one_to_one_correspondence_with_mdp() {
        // Every (state, action) pair with outcomes appears exactly once.
        let m = diamond();
        let g = MdpGraph::from_mdp(&m);
        for s in 0..m.n_states() {
            for a in m.available_actions(s) {
                let found = g
                    .action_nodes()
                    .iter()
                    .filter(|n| n.state == s && n.action == a)
                    .count();
                assert_eq!(found, 1, "({s}, {a}) should appear once");
            }
        }
    }
}
