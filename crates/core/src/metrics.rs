//! Per-cycle outcomes and comparison helpers.
//!
//! The evaluation reports service time (Fig. 12), energy use, performance
//! (work served), temperature behaviour (Figs. 13–14) and scheduler
//! overhead (Fig. 16); an [`Outcome`] collects all of them for one
//! discharge cycle.

use serde::{Deserialize, Serialize};

use crate::telemetry::Telemetry;

/// Why a discharge cycle ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EndReason {
    /// The pack failed to serve the demand for the configured window.
    SustainedShortfall,
    /// Every cell was fully exhausted.
    PackDepleted,
    /// The simulation horizon was reached with the pack still alive
    /// (censored observation).
    HorizonReached,
}

/// The measured outcome of one discharge cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Policy name.
    pub policy: String,
    /// Workload label.
    pub workload: String,
    /// Phone name.
    pub phone: String,
    /// Service time: seconds until the cycle ended.
    pub service_time_s: f64,
    /// Why it ended.
    pub end_reason: EndReason,
    /// Energy delivered to the load, joules.
    pub energy_delivered_j: f64,
    /// Energy dissipated as heat inside the pack (incl. switching), J.
    pub energy_heat_j: f64,
    /// Work served: integral of served CPU utilisation x frequency
    /// share, in utilisation-seconds (the performance metric).
    pub work_served: f64,
    /// Battery switches performed.
    pub switches: u64,
    /// Seconds the big cell carried the load.
    pub big_active_s: f64,
    /// Seconds the LITTLE cell carried the load.
    pub little_active_s: f64,
    /// Energy the big cell delivered over the cycle, joules.
    pub big_delivered_j: f64,
    /// Energy the LITTLE cell delivered over the cycle, joules (zero for
    /// single packs).
    pub little_delivered_j: f64,
    /// Seconds the TEC was energised.
    pub tec_on_s: f64,
    /// Energy drawn by the TEC, joules.
    pub tec_energy_j: f64,
    /// Peak hot-spot temperature, degC.
    pub max_hotspot_c: f64,
    /// Mean hot-spot temperature, degC.
    pub mean_hotspot_c: f64,
    /// Total scheduler computation overhead, microseconds (Fig. 16).
    pub scheduler_overhead_us: f64,
    /// Number of runtime recalibrations performed.
    pub recalibrations: u64,
    /// Sampled time series.
    pub telemetry: Telemetry,
}

impl Outcome {
    /// Service-time gain of `self` over `other`, as a percentage
    /// (`+114.0` means 114% longer service).
    pub fn service_gain_pct(&self, other: &Outcome) -> f64 {
        (self.service_time_s / other.service_time_s - 1.0) * 100.0
    }

    /// Performance (work) gain over `other`, percent.
    pub fn performance_gain_pct(&self, other: &Outcome) -> f64 {
        (self.work_served / other.work_served - 1.0) * 100.0
    }

    /// Energy used per unit of work, J per utilisation-second.
    pub fn energy_per_work(&self) -> f64 {
        let spent = self.energy_delivered_j + self.energy_heat_j;
        if self.work_served > 0.0 {
            spent / self.work_served
        } else {
            f64::INFINITY
        }
    }

    /// How much less energy `self` uses per unit work than `other`,
    /// percent (`+53.0` means 53% less energy).
    pub fn energy_saving_pct(&self, other: &Outcome) -> f64 {
        (1.0 - self.energy_per_work() / other.energy_per_work()) * 100.0
    }

    /// Ratio of big to LITTLE activation time (Fig. 14's x-axis), or
    /// `None` when the LITTLE cell never served.
    pub fn big_little_ratio(&self) -> Option<f64> {
        (self.little_active_s > 0.0).then(|| self.big_active_s / self.little_active_s)
    }

    /// Pack efficiency: delivered over delivered-plus-heat.
    pub fn efficiency(&self) -> f64 {
        let total = self.energy_delivered_j + self.energy_heat_j;
        if total > 0.0 {
            self.energy_delivered_j / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(service: f64, work: f64, delivered: f64, heat: f64) -> Outcome {
        Outcome {
            policy: "test".into(),
            workload: "w".into(),
            phone: "Nexus".into(),
            service_time_s: service,
            end_reason: EndReason::PackDepleted,
            energy_delivered_j: delivered,
            energy_heat_j: heat,
            work_served: work,
            switches: 0,
            big_active_s: 60.0,
            little_active_s: 30.0,
            big_delivered_j: delivered * 0.6,
            little_delivered_j: delivered * 0.4,
            tec_on_s: 0.0,
            tec_energy_j: 0.0,
            max_hotspot_c: 40.0,
            mean_hotspot_c: 35.0,
            scheduler_overhead_us: 0.0,
            recalibrations: 0,
            telemetry: Telemetry::new(),
        }
    }

    #[test]
    fn service_gain_matches_paper_arithmetic() {
        // 114% longer service time means 2.14x.
        let capman = outcome(2140.0, 100.0, 100.0, 10.0);
        let practice = outcome(1000.0, 100.0, 100.0, 10.0);
        assert!((capman.service_gain_pct(&practice) - 114.0).abs() < 1e-9);
    }

    #[test]
    fn energy_saving_definition() {
        let a = outcome(1.0, 100.0, 47.0, 0.0); // 0.47 J per work
        let b = outcome(1.0, 100.0, 100.0, 0.0); // 1.0 J per work
        assert!((a.energy_saving_pct(&b) - 53.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_and_ratio() {
        let o = outcome(1.0, 1.0, 90.0, 10.0);
        assert!((o.efficiency() - 0.9).abs() < 1e-12);
        assert!((o.big_little_ratio().expect("ratio") - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_work_is_infinite_energy_cost() {
        let o = outcome(1.0, 0.0, 10.0, 0.0);
        assert!(o.energy_per_work().is_infinite());
    }
}
