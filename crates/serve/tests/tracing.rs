//! End-to-end causal tracing acceptance: an overload soak must yield,
//! for every served calibration, one connected flow-linked trace whose
//! critical-path decomposition sums to the served staleness; the
//! slowest exemplar's trace id must resolve in the retained span
//! records; and an SLO flip into Degraded must leave a postmortem
//! flight bundle whose scrape and chrome trace both validate.

use std::collections::{HashMap, HashSet};

use capman_obs::export::validate_prometheus;
use capman_obs::trace::validate;
use capman_obs::RecordKind;
use capman_serve::{run_soak, ServiceMode, SoakConfig};

/// Union of parent edges and flow links over one trace id's records:
/// the number of connected components (records with that trace id are
/// the nodes; a link record joins its two endpoints and itself).
fn components(records: &[capman_obs::SpanRecord], trace: u64) -> usize {
    let nodes: Vec<&capman_obs::SpanRecord> = records.iter().filter(|r| r.trace == trace).collect();
    let index: HashMap<u64, usize> = nodes.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
    // Tiny union-find; path-halving is overkill at this size.
    let mut parent: Vec<usize> = (0..nodes.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let union = |parent: &mut [usize], a: u64, b: u64| {
        if let (Some(&i), Some(&j)) = (index.get(&a), index.get(&b)) {
            let (ri, rj) = (find(parent, i), find(parent, j));
            parent[ri] = rj;
        }
    };
    for r in &nodes {
        if r.parent != 0 {
            union(&mut parent, r.id, r.parent);
        }
        if let RecordKind::Link { from, to } = r.kind {
            union(&mut parent, r.id, from);
            union(&mut parent, r.id, to);
        }
    }
    let mut roots = HashSet::new();
    for i in 0..nodes.len() {
        roots.insert(find(&mut parent, i));
    }
    roots.len()
}

#[test]
fn every_served_calibration_is_one_connected_trace_that_decomposes_staleness() {
    let config = SoakConfig {
        cohorts: 2,
        devices_per_cohort: 4, // 4x overload: excess traffic sheds
        windows: 2,
        ..SoakConfig::default()
    };
    let report = run_soak(&config);
    assert!(
        !report.completed_traces.is_empty(),
        "an overload soak must serve (and close) some calibrations"
    );

    // The retained records are a merged multi-window view; they must
    // still pass structural validation.
    validate(&report.trace.records).expect("retained span records must validate");

    let mut seen = HashSet::new();
    for completed in &report.completed_traces {
        assert!(completed.trace != 0, "served traces carry a real id");
        assert!(
            seen.insert(completed.trace),
            "each served calibration closes its own trace exactly once"
        );

        // Critical-path decomposition: the four phases telescope to the
        // measured served staleness (same clamped timestamps, so the
        // tolerance is pure float-summation noise).
        let sum = completed.phase_sum();
        let staleness = completed.staleness_s();
        assert!(
            (sum - staleness).abs() <= 1e-9 * staleness.max(1.0),
            "phase decomposition leaked time: {sum} != {staleness} for {}",
            completed.line()
        );
        assert!(completed.phases().iter().all(|&p| p >= 0.0));

        // Connectivity: submission origin, pick, solve, publish and
        // adoption all reachable through parent edges + flow links.
        let n_records = report
            .trace
            .records
            .iter()
            .filter(|r| r.trace == completed.trace)
            .count();
        assert!(
            n_records >= 5,
            "trace {} retained only {n_records} records",
            completed.trace
        );
        assert!(
            report
                .trace
                .records
                .iter()
                .any(|r| r.trace == completed.trace && matches!(r.kind, RecordKind::Link { .. })),
            "trace {} has no flow links",
            completed.trace
        );
        assert_eq!(
            components(&report.trace.records, completed.trace),
            1,
            "trace {} is not one connected arc",
            completed.trace
        );
    }

    // The scrape and the chrome trace carry the same story.
    validate_prometheus(&report.prometheus).expect("soak scrape must validate");
    assert!(report.trace_json.contains("\"traceEvents\""));
    assert!(report.trace_json.contains("\"ph\": \"s\""), "flow starts");
    assert!(report.trace_json.contains("\"ph\": \"f\""), "flow finishes");

    // Phase histograms populated, and their p99s bounded by end-to-end
    // staleness p99 (each phase is a slice of the whole).
    assert!(report.phase_p99_s.iter().all(|&p| p >= 0.0));

    // The slowest exemplar advertised in the metrics JSON resolves to
    // retained span records of that very trace.
    let slowest = report
        .metrics_json
        .lines()
        .find(|l| l.contains("\"serve_staleness_s_slowest_trace\":"))
        .and_then(|l| {
            l.split(':')
                .nth(1)?
                .trim()
                .trim_end_matches(',')
                .parse::<u64>()
                .ok()
        })
        .expect("overloaded soak must export a staleness exemplar");
    assert!(slowest != 0);
    assert!(
        report.trace.records.iter().any(|r| r.trace == slowest),
        "exemplar trace {slowest} must resolve in the retained records"
    );
}

#[test]
fn an_slo_flip_into_degraded_dumps_a_bundle_that_validates() {
    let dir = std::env::temp_dir().join(format!("capman-tracing-flip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = SoakConfig {
        cohorts: 2,
        devices_per_cohort: 3,
        windows: 2,
        flight_dir: Some(dir.clone()),
        ..SoakConfig::default()
    };
    // An unmeetable solve-latency objective (any real solve takes more
    // than a nanosecond) with instant escalation: the first window's
    // evaluation flips the service to Degraded and dumps.
    config.service.slo.spec.solve_p99_us.objective = 1e-3;
    config.service.slo.spec.solve_p99_us.floor = 1e-3;
    config.service.slo.escalate_after = 1;

    let report = run_soak(&config);
    assert_ne!(report.final_mode, ServiceMode::Normal);
    assert!(report.any_breach);
    assert!(
        !report.flight_bundles.is_empty(),
        "the flip into Degraded must leave a postmortem bundle"
    );
    let first = &report.flight_bundles[0];
    assert!(
        first
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.contains("slo-degraded")),
        "first bundle names its reason: {}",
        first.display()
    );

    let prom = std::fs::read_to_string(first.join("metrics.prom")).expect("bundle scrape");
    validate_prometheus(&prom).expect("bundle scrape must validate");
    let trace_json = std::fs::read_to_string(first.join("trace.json")).expect("bundle trace");
    assert!(trace_json.contains("\"traceEvents\""));
    assert_eq!(
        trace_json.matches('{').count(),
        trace_json.matches('}').count()
    );
    assert!(
        trace_json.contains("\"name\": \"serve_submit\""),
        "the bundle trace holds the window's spans"
    );
    let manifest = std::fs::read_to_string(first.join("MANIFEST.json")).expect("manifest");
    assert!(manifest.contains("\"reason\": \"slo-degraded\""));
    for file in ["metrics.json", "traces.txt", "verdicts.txt"] {
        assert!(first.join(file).exists(), "bundle is missing {file}");
    }
    let verdicts = std::fs::read_to_string(first.join("verdicts.txt")).expect("verdicts");
    assert!(verdicts.contains("degraded"), "{verdicts}");

    let _ = std::fs::remove_dir_all(&dir);
}
