//! Fig. 14 bench: TEC temperature reduction vs big/LITTLE ratio.
//!
//! Times CAPMAN cycles with and without the TEC facility and prints the
//! bench-scale reduction per workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use capman_core::config::SimConfig;
use capman_core::experiments::{run_policy_with, PolicyKind};
use capman_device::phone::PhoneProfile;
use capman_workload::WorkloadKind;

const HORIZON_S: f64 = 3000.0;

fn run(workload: WorkloadKind, tec: bool) -> capman_core::metrics::Outcome {
    let config = SimConfig {
        max_horizon_s: HORIZON_S,
        tec_enabled: tec,
        ..SimConfig::paper()
    };
    run_policy_with(
        PolicyKind::Capman,
        workload,
        PhoneProfile::nexus(),
        42,
        config,
    )
}

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    for tec in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("geekbench_cycle", if tec { "tec" } else { "no_tec" }),
            &tec,
            |b, &tec| b.iter(|| run(WorkloadKind::Geekbench, tec)),
        );
    }
    group.finish();

    println!("\nfig14 (bench scale): TEC reduction per workload");
    for workload in WorkloadKind::fig12() {
        let with = run(workload, true);
        let without = run(workload, false);
        let ratio = with
            .big_little_ratio()
            .map(|r| format!("{r:.2}"))
            .unwrap_or_else(|| "inf".into());
        println!(
            "  {:<12} ratio={}  dT={:.1} K",
            workload.label(),
            ratio,
            without.max_hotspot_c - with.max_hotspot_c
        );
    }
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
