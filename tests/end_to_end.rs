//! End-to-end integration tests: full discharge cycles through the
//! public facade, checking the paper's qualitative results.

use capman::core::config::SimConfig;
use capman::core::experiments::{run_policy_with, PolicyKind};
use capman::core::metrics::{EndReason, Outcome};
use capman::device::phone::PhoneProfile;
use capman::workload::WorkloadKind;

fn cycle(kind: PolicyKind, workload: WorkloadKind, horizon: f64) -> Outcome {
    let config = SimConfig {
        max_horizon_s: horizon,
        tec_enabled: kind.has_tec(),
        ..SimConfig::paper()
    };
    run_policy_with(kind, workload, PhoneProfile::nexus(), 21, config)
}

#[test]
fn capman_outlives_the_original_phone_on_video() {
    // The headline claim at reduced horizon: the Practice phone dies
    // well before CAPMAN's pack.
    let capman = cycle(PolicyKind::Capman, WorkloadKind::Video, 20_000.0);
    let practice = cycle(PolicyKind::Practice, WorkloadKind::Video, 20_000.0);
    assert_eq!(practice.end_reason, EndReason::SustainedShortfall);
    assert!(
        capman.service_time_s > practice.service_time_s * 1.3,
        "CAPMAN {} s should clearly beat Practice {} s",
        capman.service_time_s,
        practice.service_time_s
    );
}

#[test]
fn capman_beats_the_reactive_heuristic_on_pcmark() {
    let capman = cycle(PolicyKind::Capman, WorkloadKind::Pcmark, 25_000.0);
    let heuristic = cycle(PolicyKind::Heuristic, WorkloadKind::Pcmark, 25_000.0);
    assert!(
        capman.service_time_s > heuristic.service_time_s,
        "CAPMAN {} vs Heuristic {}",
        capman.service_time_s,
        heuristic.service_time_s
    );
}

#[test]
fn capman_tracks_the_oracle() {
    // "within 9.6% less service time than the Oracle" — give it margin.
    let capman = cycle(
        PolicyKind::Capman,
        WorkloadKind::EtaStatic { eta: 50 },
        25_000.0,
    );
    let oracle = cycle(
        PolicyKind::Oracle,
        WorkloadKind::EtaStatic { eta: 50 },
        25_000.0,
    );
    let gap = 1.0 - capman.service_time_s / oracle.service_time_s;
    assert!(
        gap < 0.15,
        "CAPMAN should stay near the Oracle; gap = {:.1}%",
        gap * 100.0
    );
}

#[test]
fn capman_holds_the_hot_spot_near_the_threshold() {
    let capman = cycle(PolicyKind::Capman, WorkloadKind::Geekbench, 8000.0);
    assert!(
        capman.max_hotspot_c < 47.0,
        "TEC should pin the spot near 45 degC, got {:.1}",
        capman.max_hotspot_c
    );
    assert!(capman.tec_on_s > 0.0, "Geekbench must wake the TEC");
    // Without the TEC the same cycle runs hotter.
    let config = SimConfig {
        max_horizon_s: 8000.0,
        tec_enabled: false,
        ..SimConfig::paper()
    };
    let bare = run_policy_with(
        PolicyKind::Capman,
        WorkloadKind::Geekbench,
        PhoneProfile::nexus(),
        21,
        config,
    );
    // The bare phone crosses the throttling threshold (which then caps
    // its temperature by cutting performance); the TEC keeps the spot
    // below it without giving up utilisation.
    assert!(
        bare.max_hotspot_c > 47.0,
        "bare phone should cross the throttle threshold, got {:.1}",
        bare.max_hotspot_c
    );
    assert!(bare.max_hotspot_c > capman.max_hotspot_c + 0.5);
}

#[test]
fn dual_policies_share_the_identical_trace() {
    let a = cycle(PolicyKind::Dual, WorkloadKind::Video, 4000.0);
    let b = cycle(PolicyKind::Heuristic, WorkloadKind::Video, 4000.0);
    assert_eq!(a.workload, b.workload);
    // Both run the same pack hardware.
    assert_eq!(a.phone, b.phone);
}

#[test]
fn capman_switches_but_does_not_flap() {
    let o = cycle(PolicyKind::Capman, WorkloadKind::Pcmark, 10_000.0);
    assert!(o.switches > 10, "CAPMAN must actually schedule");
    // Bounded flapping: fewer than one switch per two seconds on
    // average.
    assert!(
        (o.switches as f64) < o.service_time_s / 2.0,
        "{} switches in {} s is flapping",
        o.switches,
        o.service_time_s
    );
}

#[test]
fn capman_recalibrates_in_the_background() {
    let o = cycle(PolicyKind::Capman, WorkloadKind::Pcmark, 6000.0);
    assert!(o.recalibrations >= 2, "expected background calibrations");
    assert!(o.scheduler_overhead_us > 0.0);
}

#[test]
fn outcomes_account_energy_consistently() {
    for kind in PolicyKind::ALL {
        let o = cycle(kind, WorkloadKind::Video, 3000.0);
        assert!(o.energy_delivered_j > 0.0, "{kind:?}");
        assert!(o.energy_heat_j >= 0.0, "{kind:?}");
        assert!(o.efficiency() > 0.5 && o.efficiency() <= 1.0, "{kind:?}");
        assert!(o.work_served > 0.0, "{kind:?}");
        let active = o.big_active_s + o.little_active_s;
        assert!(
            (active - o.service_time_s).abs() <= 1.5,
            "{kind:?}: active {} vs service {}",
            active,
            o.service_time_s
        );
    }
}
