//! Battery-level demo: the V-edge phenomenon, per chemistry.
//!
//! ```text
//! cargo run --release --example vedge_probe
//! ```
//!
//! Applies the same power-demand step to every Table I chemistry and
//! renders the terminal-voltage response as an ASCII strip, with the
//! D1/D2/D3 area decomposition of Fig. 3.

use capman::battery::cell::Cell;
use capman::battery::chemistry::Chemistry;
use capman::battery::vedge::VEdgeProbe;

fn sparkline(values: &[f64]) -> String {
    let ramp: Vec<char> = " .:-=+*#%@".chars().collect();
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    values
        .iter()
        .map(|v| {
            let idx = ((v - lo) / span * (ramp.len() - 1) as f64).round() as usize;
            ramp[idx.min(ramp.len() - 1)]
        })
        .collect()
}

fn main() {
    let probe = VEdgeProbe {
        base_w: 0.5,
        surge_w: 5.0,
        lead_s: 20.0,
        surge_s: 8.0,
        settle_s: 80.0,
        sample_dt: 2.0,
    };
    println!("V-edge response to a 5 W surge (0.5 W base), all chemistries\n");
    for chem in Chemistry::ALL {
        let mut cell = Cell::new(chem, 2.5);
        let trace = probe.run(&mut cell, 25.0);
        let a = trace.analysis();
        let volts: Vec<f64> = trace.samples.iter().map(|&(_, v)| v).collect();
        println!("{:<4} |{}|", chem.symbol(), sparkline(&volts));
        println!(
            "     V0={:.3}  Vmin={:.3}  Vss={:.3}  D1={:.2}  D3={:.1}  saving(D3-D1)={:.1} V*s",
            a.v_initial,
            a.v_min,
            a.v_steady,
            a.d1,
            a.d3,
            a.saving_potential()
        );
    }
    println!("\n(LITTLE chemistries barely dip — that is why surges are routed to them)");
}
