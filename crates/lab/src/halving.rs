//! Successive halving for calibrator selection — the first consumer of
//! the experiment harness.
//!
//! [`capman_core::oracle::select_calibrator`] scores every candidate
//! with a complete what-if rollout over the full horizon: a flat grid,
//! `n` full simulations. Successive halving spends most of that budget
//! on the contenders instead: **rung 1** runs the whole slate at a
//! fraction of the horizon (cheap, enough to expose clearly-worse
//! configurations), keeps the top half, and **rung 2** re-runs only the
//! survivors over the full horizon. Both rungs are ordinary experiments
//! — candidates become variants, the probe becomes a one-row dataset —
//! so every rollout leaves a `TrialResult` that can be persisted and
//! audited like any other sweep.
//!
//! The ranking key is the oracle's own comparator — most work served,
//! ties by service time, then candidate order — so when the eventual
//! winner survives rung 1 (the expected case: a configuration that wins
//! a full discharge rarely sits in the bottom half of a half-length
//! one), the halving result is identical to the flat grid's at roughly
//! `n/2 + n·fraction` full-rollout cost instead of `n`.

use capman_core::experiments::PolicyKind;
use capman_core::online::CalibratorSpec;
use capman_device::phone::PhoneProfile;
use capman_fleet::CalibrationMode;
use capman_workload::WorkloadKind;

use crate::runner;
use crate::spec::{ExperimentSpec, Task, TaskKind, Variant};
use crate::trial::TrialResult;

/// The audit trail of one halving run.
#[derive(Debug, Clone)]
pub struct HalvingOutcome {
    /// Winning index into the original candidate slate.
    pub winner: usize,
    /// Candidate indices that survived rung 1, in slate order.
    pub survivors: Vec<usize>,
    /// Rung-1 trials (whole slate, short horizon); trial `i` belongs to
    /// candidate `i`.
    pub rung1: Vec<TrialResult>,
    /// Rung-2 trials (survivors only, full horizon); trial `i` belongs
    /// to `survivors[i]`.
    pub rung2: Vec<TrialResult>,
}

/// The oracle's comparator over a trial: more work served wins, ties go
/// to longer service, then to the earlier candidate (via stable sort /
/// strict-greater scans).
fn key(t: &TrialResult) -> (f64, f64) {
    (t.metric("work_served").unwrap_or(0.0), t.objective)
}

/// Pick a calibrator by successive halving: two chained experiments in
/// place of the oracle's flat grid. Runs CAPMAN what-if rollouts with
/// the evaluation defaults (TEC on), `rung_fraction` of `horizon_s`
/// first, then the full horizon for the surviving half.
///
/// # Panics
///
/// Panics if `candidates` is empty, `horizon_s` is not positive, or
/// `rung_fraction` is outside `(0, 1]`.
pub fn select_calibrator_halving(
    candidates: &[CalibratorSpec],
    workload: WorkloadKind,
    phone: &PhoneProfile,
    seed: u64,
    horizon_s: f64,
    rung_fraction: f64,
) -> HalvingOutcome {
    assert!(!candidates.is_empty(), "need at least one candidate");
    assert!(horizon_s > 0.0, "horizon must be positive");
    assert!(
        rung_fraction > 0.0 && rung_fraction <= 1.0,
        "rung fraction must be in (0, 1]"
    );
    let probe = Task {
        id: "probe".into(),
        seed: Some(seed),
        horizon_s: None,
        kind: TaskKind::Scenario {
            workload,
            phone: phone.clone(),
        },
    };
    let experiment = |name: &str, slate: &[usize], horizon: f64| ExperimentSpec {
        name: name.into(),
        description: "calibrator halving rung".into(),
        repeats: 1,
        base_seed: seed,
        horizon_s: Some(horizon),
        variants: slate
            .iter()
            .map(|&i| Variant {
                name: format!("c{i:02}"),
                policy: PolicyKind::Capman,
                calibrator: Some(candidates[i]),
                tec: None,
                horizon_s: None,
                calibration: CalibrationMode::Pool,
                arena: false,
                serve: false,
            })
            .collect(),
    };

    // Rung 1: the whole slate at the short horizon.
    let slate: Vec<usize> = (0..candidates.len()).collect();
    let rung1 = runner::run_experiment(
        &experiment("halving-rung1", &slate, horizon_s * rung_fraction),
        std::slice::from_ref(&probe),
    );

    // Keep the top half (ceil), ties to the earlier candidate.
    let keep = candidates.len().div_ceil(2);
    let mut order = slate.clone();
    order.sort_by(|&a, &b| {
        key(&rung1[b])
            .partial_cmp(&key(&rung1[a]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut survivors: Vec<usize> = order[..keep].to_vec();
    survivors.sort_unstable();

    // Rung 2: survivors over the full horizon.
    let rung2 = runner::run_experiment(
        &experiment("halving-rung2", &survivors, horizon_s),
        std::slice::from_ref(&probe),
    );
    let mut best = 0;
    for i in 1..rung2.len() {
        if key(&rung2[i]) > key(&rung2[best]) {
            best = i;
        }
    }
    HalvingOutcome {
        winner: survivors[best],
        survivors,
        rung1,
        rung2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_core::config::SimConfig;
    use capman_core::oracle;

    fn slate() -> Vec<CalibratorSpec> {
        let paper = CalibratorSpec::paper();
        vec![
            CalibratorSpec {
                every_s: 300.0,
                ..paper
            },
            paper,
            CalibratorSpec {
                every_s: 2400.0,
                ..paper
            },
            CalibratorSpec {
                rho: 0.5,
                every_s: 600.0,
                ..paper
            },
        ]
    }

    #[test]
    fn halving_keeps_the_top_half_and_picks_from_it() {
        let candidates = slate();
        let out = select_calibrator_halving(
            &candidates,
            WorkloadKind::Pcmark,
            &PhoneProfile::nexus(),
            17,
            2000.0,
            0.5,
        );
        assert_eq!(out.rung1.len(), candidates.len());
        assert_eq!(out.survivors.len(), 2, "ceil(4/2)");
        assert_eq!(out.rung2.len(), out.survivors.len());
        assert!(out.survivors.contains(&out.winner));
        // The audit trail carries real rollouts.
        assert!(out.rung1.iter().all(|t| t.objective > 0.0));
        assert!(out.rung2.iter().all(|t| t.objective > 0.0));
    }

    #[test]
    fn halving_agrees_with_the_flat_oracle_grid() {
        let candidates = slate();
        let horizon = 2000.0;
        let (oracle_winner, _) = oracle::select_calibrator(
            &candidates,
            WorkloadKind::Pcmark,
            &PhoneProfile::nexus(),
            17,
            SimConfig {
                max_horizon_s: horizon,
                ..SimConfig::paper_with_tec()
            },
        );
        let out = select_calibrator_halving(
            &candidates,
            WorkloadKind::Pcmark,
            &PhoneProfile::nexus(),
            17,
            horizon,
            0.5,
        );
        assert_eq!(
            out.winner,
            oracle_winner,
            "survivors: {:?}, rung2 keys: {:?}",
            out.survivors,
            out.rung2.iter().map(key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn a_single_candidate_wins_by_default() {
        let out = select_calibrator_halving(
            &[CalibratorSpec::paper()],
            WorkloadKind::Video,
            &PhoneProfile::nexus(),
            3,
            900.0,
            0.25,
        );
        assert_eq!(out.winner, 0);
        assert_eq!(out.survivors, vec![0]);
    }
}
