//! CC-CV charging.
//!
//! The paper measures service per *discharge cycle* — "duration between
//! two device charges". This module closes the loop with the standard
//! constant-current / constant-voltage protocol used by phone chargers:
//! charge at a fixed C-rate until the terminal voltage reaches the
//! full-charge limit, then hold the voltage and let the current taper
//! until it falls below the termination threshold.

use serde::{Deserialize, Serialize};

use crate::cell::Cell;
use crate::chemistry::Class;
use crate::pack::BatteryPack;

/// A CC-CV charger configuration.
///
/// # Examples
///
/// ```
/// use capman_battery::cell::Cell;
/// use capman_battery::charging::Charger;
/// use capman_battery::chemistry::Chemistry;
///
/// let mut cell = Cell::new(Chemistry::Lmo, 2.5);
/// cell.step(5.0, 600.0, 25.0); // drain a little
/// let report = Charger::default().charge_cell(&mut cell, 20_000.0);
/// assert!(report.final_soc > 0.95);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Charger {
    /// Constant-current phase rate, as a multiple of cell capacity
    /// (C-rate). Phone chargers typically run 0.5–1 C.
    pub cc_rate: f64,
    /// Constant-voltage phase limit, volts. Defaults to the chemistry's
    /// full-charge voltage when charging through [`Charger::charge_cell`].
    pub cv_limit_v: Option<f64>,
    /// Termination current as a fraction of the CC current.
    pub termination_fraction: f64,
}

impl Default for Charger {
    fn default() -> Self {
        Charger {
            cc_rate: 0.7,
            cv_limit_v: None,
            termination_fraction: 0.05,
        }
    }
}

/// Telemetry for one charging step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargeStep {
    /// Charging current, amperes.
    pub current_a: f64,
    /// Terminal voltage during the step, volts.
    pub voltage_v: f64,
    /// Charge accepted, coulombs.
    pub accepted_c: f64,
    /// Whether the termination condition was met.
    pub done: bool,
    /// Which CC-CV phase the step ran in.
    pub phase: ChargePhase,
}

/// The CC-CV phase of a charging step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChargePhase {
    /// Constant current (voltage rising).
    ConstantCurrent,
    /// Constant voltage (current tapering).
    ConstantVoltage,
}

/// Summary of a full charge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargeReport {
    /// Wall time to full, seconds.
    pub duration_s: f64,
    /// Total charge accepted, coulombs.
    pub accepted_c: f64,
    /// Final state of charge.
    pub final_soc: f64,
}

impl Charger {
    /// Advance one charging step on a cell.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn step_cell(&self, cell: &mut Cell, dt: f64) -> ChargeStep {
        assert!(dt > 0.0, "dt must be positive");
        let params = cell.chemistry().electrical();
        let cv = self.cv_limit_v.unwrap_or(params.nominal_v * 1.12);
        let cc_current = self.cc_rate * cell.capacity_ah();
        // Terminal voltage while charging is EMF plus the ohmic rise.
        let emf = cell.emf();
        let r0 = 2.5 / cell.capacity_ah() * params.r0_ohm;
        let (current, phase) = if emf + cc_current * r0 < cv {
            (cc_current, ChargePhase::ConstantCurrent)
        } else {
            // Hold the terminal at the CV limit: I = (CV - EMF) / R0.
            (((cv - emf) / r0).max(0.0), ChargePhase::ConstantVoltage)
        };
        let accepted = cell.charge(current, dt, 25.0);
        let done = phase == ChargePhase::ConstantVoltage
            && current <= cc_current * self.termination_fraction;
        ChargeStep {
            current_a: current,
            voltage_v: (emf + current * r0).min(cv),
            accepted_c: accepted,
            done,
            phase,
        }
    }

    /// Charge a cell to full (or until `max_s` elapses), returning the
    /// report.
    ///
    /// # Panics
    ///
    /// Panics if `max_s` is not positive.
    pub fn charge_cell(&self, cell: &mut Cell, max_s: f64) -> ChargeReport {
        assert!(max_s > 0.0, "time budget must be positive");
        let dt = 10.0;
        let mut t = 0.0;
        let mut accepted = 0.0;
        while t < max_s {
            let step = self.step_cell(cell, dt);
            accepted += step.accepted_c;
            t += dt;
            if step.done {
                break;
            }
        }
        ChargeReport {
            duration_s: t,
            accepted_c: accepted,
            final_soc: cell.soc(),
        }
    }

    /// Charge both cells of a pack (the phone charges them in sequence
    /// through the switch facility: LITTLE first so the surge cell is
    /// ready soonest).
    pub fn charge_pack(&self, pack: &mut BatteryPack, max_s: f64) -> ChargeReport {
        let mut total = ChargeReport {
            duration_s: 0.0,
            accepted_c: 0.0,
            final_soc: 0.0,
        };
        for class in [Class::Little, Class::Big] {
            if let Some(cell) = pack.cell_mut(class) {
                let r = self.charge_cell(cell, max_s);
                total.duration_s += r.duration_s;
                total.accepted_c += r.accepted_c;
            }
        }
        total.final_soc = pack.soc();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chemistry::Chemistry;

    fn drained(chem: Chemistry) -> Cell {
        let mut cell = Cell::new(chem, 2.5);
        // Pull out roughly half the charge.
        for _ in 0..3000 {
            cell.step(2.0, 1.0, 25.0);
        }
        cell
    }

    #[test]
    fn charging_raises_soc_to_near_full() {
        let mut cell = drained(Chemistry::Lmo);
        let before = cell.soc();
        let report = Charger::default().charge_cell(&mut cell, 50_000.0);
        assert!(cell.soc() > before);
        assert!(
            report.final_soc > 0.95,
            "should reach near-full, got {}",
            report.final_soc
        );
        assert!(report.accepted_c > 0.0);
    }

    #[test]
    fn cc_phase_precedes_cv_phase() {
        let mut cell = drained(Chemistry::Lmo);
        let charger = Charger::default();
        let first = charger.step_cell(&mut cell, 10.0);
        assert_eq!(first.phase, ChargePhase::ConstantCurrent);
        // Push to full: eventually the CV phase engages and tapers.
        let mut saw_cv = false;
        for _ in 0..10_000 {
            let s = charger.step_cell(&mut cell, 10.0);
            if s.phase == ChargePhase::ConstantVoltage {
                saw_cv = true;
                assert!(s.current_a <= charger.cc_rate * cell.capacity_ah() + 1e-9);
            }
            if s.done {
                break;
            }
        }
        assert!(saw_cv, "the CV phase must engage near full");
    }

    #[test]
    fn current_tapers_in_cv_phase() {
        let mut cell = drained(Chemistry::Nca);
        let charger = Charger::default();
        let mut last_cv_current = f64::INFINITY;
        for _ in 0..20_000 {
            let s = charger.step_cell(&mut cell, 10.0);
            if s.phase == ChargePhase::ConstantVoltage {
                assert!(s.current_a <= last_cv_current + 0.05);
                last_cv_current = s.current_a;
            }
            if s.done {
                break;
            }
        }
        assert!(last_cv_current < charger.cc_rate * 2.5);
    }

    #[test]
    fn charging_a_full_cell_terminates_quickly() {
        let mut cell = Cell::new(Chemistry::Lmo, 2.5);
        let report = Charger::default().charge_cell(&mut cell, 50_000.0);
        assert!(
            report.duration_s < 2000.0,
            "already full: {} s",
            report.duration_s
        );
    }

    #[test]
    fn pack_charge_fills_both_cells() {
        let mut pack = BatteryPack::paper_prototype();
        for _ in 0..2000 {
            pack.step(2.0, 1.0, 25.0);
        }
        pack.select(Class::Little);
        for _ in 0..2000 {
            pack.step(2.0, 1.0, 25.0);
        }
        let report = Charger::default().charge_pack(&mut pack, 50_000.0);
        assert!(report.final_soc > 0.9, "pack soc {}", report.final_soc);
        assert!(pack.big().soc() > 0.9);
        assert!(pack.little().expect("dual").soc() > 0.9);
    }

    #[test]
    fn faster_chargers_finish_sooner() {
        let slow = Charger {
            cc_rate: 0.3,
            ..Charger::default()
        };
        let fast = Charger {
            cc_rate: 1.0,
            ..Charger::default()
        };
        let t_slow = slow
            .charge_cell(&mut drained(Chemistry::Lmo), 100_000.0)
            .duration_s;
        let t_fast = fast
            .charge_cell(&mut drained(Chemistry::Lmo), 100_000.0)
            .duration_s;
        assert!(t_fast < t_slow, "fast {t_fast} vs slow {t_slow}");
    }
}
