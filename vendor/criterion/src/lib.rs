//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use —
//! `bench_function`, `benchmark_group`/`bench_with_input`,
//! `criterion_group!`/`criterion_main!`, `black_box` — with honest
//! wall-clock measurement: each benchmark is warmed up, then timed over
//! several samples, and the per-iteration mean/min/max are printed.
//! There is no statistical analysis, plotting, or baseline storage.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement settings shared by a run.
#[derive(Debug, Clone)]
pub struct Criterion {
    /// Samples per benchmark (criterion's `sample_size`).
    sample_size: usize,
    /// Target measuring time per sample.
    sample_time: Duration,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            sample_time: Duration::from_millis(40),
            warmup: Duration::from_millis(40),
        }
    }
}

impl Criterion {
    /// Set the number of samples (fluent, like criterion).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, id, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &full, &mut f);
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &full, &mut |b| f(b, input));
        self
    }

    /// Finish the group (a no-op here, kept for API compatibility).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier from a function name and parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to the benchmark closure; owns the measurement loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(config: &Criterion, id: &str, f: &mut F) {
    // Calibrate: grow the iteration count until one sample is long
    // enough to time reliably, also serving as warm-up.
    let mut iters: u64 = 1;
    let warmup_start = Instant::now();
    let mut per_iter = loop {
        let elapsed = time_once(f, iters);
        if elapsed >= config.sample_time || warmup_start.elapsed() >= config.warmup {
            break elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(2);
    };
    if per_iter <= 0.0 {
        per_iter = 1e-9;
    }
    let sample_iters =
        ((config.sample_time.as_secs_f64() / per_iter).ceil() as u64).clamp(1, u64::MAX);

    let mut times: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let elapsed = time_once(f, sample_iters);
        times.push(elapsed.as_secs_f64() / sample_iters as f64);
    }
    times.sort_by(f64::total_cmp);
    let min = times[0];
    let max = times[times.len() - 1];
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{id:<56} time: [{} {} {}]",
        format_time(min),
        format_time(mean),
        format_time(max),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion {
            sample_size: 3,
            sample_time: Duration::from_millis(2),
            warmup: Duration::from_millis(2),
        };
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        let id = BenchmarkId::new("emd", 256);
        assert_eq!(id.to_string(), "emd/256");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            sample_size: 2,
            sample_time: Duration::from_millis(1),
            warmup: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("double", 21), &21u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
