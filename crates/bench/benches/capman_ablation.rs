//! Ablation: which CAPMAN ingredient earns the gains?
//!
//! Runs the scheduler with one mechanism removed at a time (prediction,
//! depletion balance, head guard, hysteresis) on the eta-50% mix and
//! reports the service time each ingredient is worth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use capman_battery::pack::BatteryPack;
use capman_core::capman::{CapmanFeatures, CapmanPolicy};
use capman_core::config::SimConfig;
use capman_core::metrics::Outcome;
use capman_core::sim::Simulator;
use capman_device::phone::PhoneProfile;
use capman_workload::{generate, WorkloadKind};

const HORIZON_S: f64 = 3000.0;

fn run_on(features: CapmanFeatures, horizon_s: f64, workload: WorkloadKind) -> Outcome {
    let config = SimConfig {
        max_horizon_s: horizon_s,
        tec_enabled: true,
        ..SimConfig::paper()
    };
    let trace = generate(workload, horizon_s, 42);
    let phone = PhoneProfile::nexus();
    let policy = Box::new(CapmanPolicy::with_features(phone.compute_speed, features));
    Simulator::new(phone, trace, BatteryPack::paper_prototype(), policy, config).run()
}

fn run(features: CapmanFeatures, horizon_s: f64) -> Outcome {
    run_on(features, horizon_s, WorkloadKind::EtaStatic { eta: 50 })
}

fn bench_capman_ablation(c: &mut Criterion) {
    let arms: [(&str, CapmanFeatures); 5] = [
        ("full", CapmanFeatures::all()),
        ("no_prediction", CapmanFeatures::without("prediction")),
        ("no_balance", CapmanFeatures::without("balance")),
        ("no_head_guard", CapmanFeatures::without("head_guard")),
        ("no_hysteresis", CapmanFeatures::without("hysteresis")),
    ];

    let mut group = c.benchmark_group("capman_ablation");
    group.sample_size(10);
    for (name, features) in arms {
        group.bench_with_input(BenchmarkId::new("eta50_cycle", name), &features, |b, &f| {
            b.iter(|| run(f, HORIZON_S))
        });
    }
    group.finish();

    // Full-cycle ablation tables (longer horizon so cells actually die).
    // Measured: the depletion-balance controller is the dominant single
    // ingredient (~9-12% of service); the others contribute little in
    // isolation because they overlap — the Heuristic baseline, which
    // lacks all four at once, is what collapses (Fig. 12).
    for workload in [WorkloadKind::EtaStatic { eta: 50 }, WorkloadKind::Pcmark] {
        println!(
            "\ncapman_ablation: full discharge cycles, {}",
            workload.label()
        );
        let full = run_on(CapmanFeatures::all(), 40_000.0, workload);
        println!(
            "  {:<14} service={:>6.0}s switches={:<6} (reference)",
            "full", full.service_time_s, full.switches
        );
        for (name, features) in &arms[1..] {
            let o = run_on(*features, 40_000.0, workload);
            println!(
                "  {:<14} service={:>6.0}s switches={:<6} delta={:+.1}%",
                name,
                o.service_time_s,
                o.switches,
                (o.service_time_s / full.service_time_s - 1.0) * 100.0
            );
        }
    }
}

criterion_group!(benches, bench_capman_ablation);
criterion_main!(benches);
