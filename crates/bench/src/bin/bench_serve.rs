//! Soak the resident calibration service at an overload ladder and
//! write `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p capman-bench --bin bench_serve                  # 1x/2x/4x ladder
//! cargo run --release -p capman-bench --bin bench_serve -- --quick       # CI smoke sizes
//! cargo run --release -p capman-bench --bin bench_serve -- --overloads 4,8
//! cargo run --release -p capman-bench --bin bench_serve -- --reps 5
//! cargo run --release -p capman-bench --bin bench_serve -- --require-no-starvation
//! cargo run --release -p capman-bench --bin bench_serve -- --prom-out serve.prom --trace-out serve.trace.json
//! cargo run --release -p capman-bench --bin bench_serve -- --metrics-out serve.metrics.json --flight-dir flight/
//! ```
//!
//! Each ladder rung runs [`run_soak`]: a multi-cohort arena fleet with
//! `overload_x` devices per cohort drives the service against a
//! per-cohort admission quota of one calibration per cadence window, so
//! the rung's devices-per-cohort *is* its overload factor and the
//! expected shed fraction is `(x-1)/x`. Before any number is reported
//! the rung asserts the service's correctness envelope:
//!
//! * **admission identity** — every submission got exactly one of the
//!   five admission outcomes;
//! * **solve identity** — everything admitted was either solved and
//!   published or (counted) abandoned at shutdown;
//! * **overload sheds** — rungs above 1x shed a nonzero fraction (the
//!   quota is real).
//!
//! `--require-no-starvation` additionally asserts every rung's
//! starvation verdict: each cohort publishes at least once per cadence
//! window even while its own excess traffic is being dropped (the CI
//! soak leg turns this on).
//!
//! `--prom-out` / `--trace-out` / `--metrics-out` write the Prometheus
//! scrape, Chrome trace (flow-linked causal traces included), and flat
//! metrics JSON of the hottest rung's last rep — the service's registry
//! and tracer are always on, so these work without `--features obs`.
//! `--flight-dir DIR` points every rung's flight recorder at `DIR`;
//! a panic or an SLO flip into Degraded/Shedding leaves a postmortem
//! bundle there (one subdirectory per rung and rep).

use std::path::PathBuf;
use std::time::Instant;

use capman_bench::perf_report::{ServeReport, ServeRow};
use capman_serve::{run_soak, SoakConfig, SoakReport};

/// Tenant cohorts per rung (mixed workloads, see the soak harness).
const COHORTS: usize = 3;
/// Cadence windows per soak.
const WINDOWS: u32 = 3;

fn serve_row(
    overload_x: usize,
    reps: usize,
    flight_dir: Option<&PathBuf>,
    last: &mut Option<SoakReport>,
) -> ServeRow {
    let mut wall_ms_samples = Vec::with_capacity(reps);
    let mut staleness_samples = Vec::with_capacity(reps);
    let mut report = None;
    for rep in 0..reps {
        let config = SoakConfig {
            cohorts: COHORTS,
            devices_per_cohort: overload_x,
            windows: WINDOWS,
            // One bundle directory per rung and rep, so dumps never
            // collide across the ladder.
            flight_dir: flight_dir.map(|dir| dir.join(format!("{overload_x}x-rep{rep}"))),
            ..SoakConfig::default()
        };
        let rep_report = run_soak(&config);
        wall_ms_samples.push(rep_report.wall_ms);
        staleness_samples.push(rep_report.staleness_p99_s);
        report = Some(rep_report);
    }
    let report = report.expect("reps >= 1");
    let c = report.counters;
    assert_eq!(
        c.submitted,
        c.admitted + c.coalesced + c.replaced + c.shed + c.backpressure,
        "admission identity violated at {overload_x}x"
    );
    assert_eq!(
        c.admitted,
        c.completed + c.abandoned,
        "solve identity violated at {overload_x}x"
    );
    if overload_x > 1 {
        assert!(
            report.shed_fraction > 0.0,
            "{overload_x}x overload must shed something"
        );
    }
    let wall_ms = wall_ms_samples
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let row = ServeRow {
        overload_x,
        cohorts: COHORTS,
        devices: COHORTS * overload_x,
        windows: report.windows.len() as u32,
        wall_ms,
        wall_ms_samples,
        staleness_p99_s: report.staleness_p99_s,
        staleness_p99_s_samples: staleness_samples,
        staleness_hot_p99_s: report.lane_p99_s[0],
        staleness_normal_p99_s: report.lane_p99_s[1],
        staleness_cold_p99_s: report.lane_p99_s[2],
        shed_fraction: report.shed_fraction,
        submitted: c.submitted,
        admitted: c.admitted,
        coalesced: c.coalesced,
        replaced: c.replaced,
        shed: c.shed,
        backpressure: c.backpressure,
        completed: c.completed,
        abandoned: c.abandoned,
        max_gap_windows: report.max_gap_windows,
        starvation_free: report.starvation_free,
        phase_queue_p99_s: report.phase_p99_s[0],
        phase_lane_p99_s: report.phase_p99_s[1],
        phase_solve_p99_s: report.phase_p99_s[2],
        phase_publish_adopt_p99_s: report.phase_p99_s[3],
    };
    *last = Some(report);
    row
}

fn main() {
    let started = Instant::now();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let require_no_starvation = args.iter().any(|a| a == "--require-no-starvation");
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let reps: usize = flag("--reps")
        .map(|n| n.parse().expect("--reps takes a number"))
        .unwrap_or(if quick { 2 } else { 3 });
    assert!(reps >= 1, "--reps must be at least 1");
    let overloads: Vec<usize> = match flag("--overloads") {
        Some(list) => list
            .split(',')
            .map(|n| n.trim().parse().expect("--overloads takes numbers"))
            .collect(),
        None if quick => vec![1, 4],
        None => vec![1, 2, 4],
    };
    assert!(
        overloads.iter().all(|&x| x >= 1),
        "--overloads takes factors >= 1"
    );

    let defaults = SoakConfig::default();
    let mut report = ServeReport {
        threads: rayon::current_num_threads(),
        reps,
        window_s: defaults.window_s,
        windows: WINDOWS,
        ..ServeReport::default()
    };

    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>8} {:>9} {:>10} {:>8}",
        "over", "devices", "wall_ms", "submitted", "shed%", "stale_p99", "max_gap", "starve"
    );
    let flight_dir = flag("--flight-dir").map(PathBuf::from);
    let mut hottest: Option<SoakReport> = None;
    for &overload_x in &overloads {
        let mut last = None;
        let row = serve_row(overload_x, reps, flight_dir.as_ref(), &mut last);
        println!(
            "{:>5}x {:>8} {:>10.1} {:>10} {:>7.1}% {:>8.1}s {:>10} {:>8}",
            row.overload_x,
            row.devices,
            row.wall_ms,
            row.submitted,
            row.shed_fraction * 100.0,
            row.staleness_p99_s,
            row.max_gap_windows,
            if row.starvation_free { "no" } else { "YES" }
        );
        if require_no_starvation {
            assert!(
                row.starvation_free,
                "starvation at {}x overload: worst publication gap {} windows",
                row.overload_x, row.max_gap_windows
            );
        }
        report.rows.push(row);
        hottest = last.or(hottest);
    }

    if let Some(soak) = &hottest {
        println!("hottest rung: {}", soak.verdict_line());
        if let Some(path) = flag("--prom-out") {
            std::fs::write(&path, &soak.prometheus).unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("wrote {path}");
        }
        if let Some(path) = flag("--trace-out") {
            std::fs::write(&path, &soak.trace_json).unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("wrote {path}");
        }
        if let Some(path) = flag("--metrics-out") {
            std::fs::write(&path, &soak.metrics_json)
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("wrote {path}");
        }
        for bundle in &soak.flight_bundles {
            println!("flight bundle: {}", bundle.display());
        }
    }

    let json = report.to_json();
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!(
        "wrote {out_path} ({} rungs, {reps} reps, {:.1} s)",
        report.rows.len(),
        started.elapsed().as_secs_f64()
    );
}
