//! Hot-spot detection.
//!
//! The paper defines a hot spot as a surface temperature exceeding 45 degC
//! (citing the local thermal stress tolerance of human skin) and boots the
//! TEC whenever the spot passes this threshold.

use crate::network::{NodeId, ThermalNetwork};

/// The hot-spot threshold used throughout the paper, degrees Celsius.
pub const HOT_SPOT_THRESHOLD_C: f64 = 45.0;

/// A detected hot spot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotSpot {
    /// The node that is too hot.
    pub node: NodeId,
    /// Its temperature, degC.
    pub temp_c: f64,
    /// How far above the threshold it is, Kelvin.
    pub excess_k: f64,
}

/// Find all nodes above `threshold_c`, hottest first.
pub fn detect(network: &ThermalNetwork, threshold_c: f64) -> Vec<HotSpot> {
    let mut spots: Vec<HotSpot> = NodeId::ALL
        .iter()
        .filter_map(|&node| {
            let temp_c = network.temp_c(node);
            (temp_c > threshold_c).then_some(HotSpot {
                node,
                temp_c,
                excess_k: temp_c - threshold_c,
            })
        })
        .collect();
    spots.sort_by(|a, b| b.temp_c.total_cmp(&a.temp_c));
    spots
}

/// Whether any node is above the paper's 45 degC threshold.
pub fn any_hot(network: &ThermalNetwork) -> bool {
    !detect(network, HOT_SPOT_THRESHOLD_C).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_phone_has_no_hot_spots() {
        let n = ThermalNetwork::phone();
        assert!(detect(&n, HOT_SPOT_THRESHOLD_C).is_empty());
        assert!(!any_hot(&n));
    }

    #[test]
    fn detects_and_orders_hot_spots() {
        let mut n = ThermalNetwork::phone();
        n.set_temp_c(NodeId::HotSpot, 55.0);
        n.set_temp_c(NodeId::Cpu, 48.0);
        let spots = detect(&n, HOT_SPOT_THRESHOLD_C);
        assert_eq!(spots.len(), 2);
        assert_eq!(spots[0].node, NodeId::HotSpot);
        assert!((spots[0].excess_k - 10.0).abs() < 1e-9);
        assert_eq!(spots[1].node, NodeId::Cpu);
        assert!(any_hot(&n));
    }

    #[test]
    fn threshold_is_exclusive() {
        let mut n = ThermalNetwork::phone();
        n.set_temp_c(NodeId::Cpu, HOT_SPOT_THRESHOLD_C);
        assert!(detect(&n, HOT_SPOT_THRESHOLD_C).is_empty());
    }
}
