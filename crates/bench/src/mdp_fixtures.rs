//! Device-like MDP fixtures shared by the `mdp_solve` bench, the
//! `bench_mdp` binary and the solver smoke checks.
//!
//! The generated graphs mimic the structure the profiler actually emits
//! for a discharge cycle: states ordered by remaining charge (so
//! transition edges point "forward" toward the absorbing
//! battery-depleted states), a self-loop per action (timer ticks that
//! leave the charge level alone), and an action set that is *sparse* —
//! each state offers only a handful of the device's syscall/switch
//! actions. That sparsity is exactly what the CSR layout exploits: the
//! nested layout's `available_actions` filter must scan all `N_ACTIONS`
//! per state per sweep, while the packed list touches only the live
//! ones.
//!
//! Because every non-self edge points forward and self-loops read the
//! state's own previous value, an ascending in-place Gauss–Seidel sweep
//! performs the same arithmetic as a Jacobi sweep on these graphs, so
//! the pre-CSR and CSR solvers run identical iteration counts and the
//! measured speedup isolates the storage layout, not the sweep order.

use std::collections::HashSet;

use capman_mdp::matrix::SquareMatrix;
use capman_mdp::mdp::{Mdp, MdpBuilder, Outcome, RowPatch};
use capman_mdp::reference::NestedMdp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Actions the device FSM exposes (screen, wifi, CPU, switches, ticks).
pub const N_ACTIONS: usize = 16;

/// One raw transition: `(state, action, next, weight, reward)`.
pub type Transition = (usize, usize, usize, f64, f64);

/// Generate the transition list of a device-like discharge MDP with
/// `n_states` states. Deterministic in `seed`; the final state is
/// absorbing.
pub fn device_like_transitions(n_states: usize, seed: u64) -> Vec<Transition> {
    assert!(n_states >= 8, "too small to be device-like");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut txs = Vec::new();
    for s in 0..n_states - 1 {
        let n_avail = rng.gen_range(2..=5usize);
        // Pick distinct available actions, ascending.
        let mut actions = [false; N_ACTIONS];
        let mut picked = 0;
        while picked < n_avail {
            let a = rng.gen_range(0..N_ACTIONS);
            if !actions[a] {
                actions[a] = true;
                picked += 1;
            }
        }
        for (a, &avail) in actions.iter().enumerate() {
            if !avail {
                continue;
            }
            // The tick outcome: stay at this charge level.
            let r_self = rng.gen_range(0.0..1.0);
            txs.push((s, a, s, rng.gen_range(0.5..2.0), r_self));
            // Forward outcomes: deeper discharge.
            for _ in 0..rng.gen_range(1..=3usize) {
                let next = rng.gen_range(s + 1..n_states);
                let w = rng.gen_range(0.5..2.0);
                let r = rng.gen_range(0.0..1.0);
                txs.push((s, a, next, w, r));
            }
        }
    }
    txs
}

/// Build the CSR [`Mdp`] from a transition list.
pub fn build_csr(n_states: usize, txs: &[Transition]) -> Mdp {
    let mut b = MdpBuilder::new(n_states, N_ACTIONS);
    for &(s, a, next, w, r) in txs {
        b.transition(s, a, next, w, r);
    }
    b.build()
}

/// States per (fine) similarity cluster of the hierarchical fixture.
pub const CLUSTER_SIZE: usize = 8;

/// Fine clusters per supercluster of the hierarchical fixture.
pub const CLUSTERS_PER_SUPER: usize = 4;

/// Pairwise similarity of states in the same fine cluster.
pub const SIGMA_SAME_CLUSTER: f64 = 0.98;

/// Pairwise similarity of states in the same supercluster only.
pub const SIGMA_SAME_SUPER: f64 = 0.85;

/// Pairwise similarity of unrelated states.
pub const SIGMA_UNRELATED: f64 = 0.4;

/// A similarity-threshold ladder for the hierarchical fixture, coarse →
/// fine: 0.3 merges whole superclusters (distance `1 - 0.85 = 0.15`),
/// 0.05 merges only fine clusters (distance `1 - 0.98 = 0.02`).
pub const RECAL_THETAS: [f64; 2] = [0.3, 0.05];

/// Generate a *hierarchically clustered* device MDP plus the similarity
/// matrix its structure implies — the recalibration-pipeline fixture.
///
/// States come in fine clusters of [`CLUSTER_SIZE`], grouped into
/// superclusters of [`CLUSTERS_PER_SUPER`] clusters. All members of a
/// fine cluster share their cluster's transition template (edges target
/// the *first member* of other clusters, so aggregating a cluster onto
/// its representative loses almost nothing), with a small per-member
/// reward jitter; templates within a supercluster are themselves
/// perturbed copies of the supercluster's template. The graph is
/// recurrent (self-loop plus cross-cluster edges per action), so a cold
/// solve at discount `rho` needs the full `O(log(eps)/log(rho))` sweep
/// budget — exactly the regime where a coarse-to-fine warm start pays.
///
/// The returned `sigma` mirrors the hierarchy ([`SIGMA_SAME_CLUSTER`] /
/// [`SIGMA_SAME_SUPER`] / [`SIGMA_UNRELATED`]), so thresholding it at
/// [`RECAL_THETAS`] yields quotients of `n/32` and `n/8` states.
///
/// # Panics
///
/// Panics unless `n_states` is a positive multiple of
/// `CLUSTER_SIZE * CLUSTERS_PER_SUPER` (= 32).
pub fn clustered_device_mdp(n_states: usize, seed: u64) -> (Mdp, SquareMatrix) {
    let (txs, sigma) = clustered_device_transitions(n_states, seed);
    (build_csr(n_states, &txs), sigma)
}

/// The raw transition list of [`clustered_device_mdp`], in builder
/// insertion order, plus the implied similarity matrix. Building the
/// list with [`build_csr`] is bitwise identical to the fixture MDP —
/// the drift-ladder bench mutates this list and compares an in-place
/// [`Mdp::patch_rows`] against a full rebuild.
///
/// # Panics
///
/// Panics unless `n_states` is a positive multiple of
/// `CLUSTER_SIZE * CLUSTERS_PER_SUPER` (= 32).
pub fn clustered_device_transitions(n_states: usize, seed: u64) -> (Vec<Transition>, SquareMatrix) {
    let span = CLUSTER_SIZE * CLUSTERS_PER_SUPER;
    assert!(
        n_states > 0 && n_states.is_multiple_of(span),
        "n_states must be a positive multiple of {span}"
    );
    let n_clusters = n_states / CLUSTER_SIZE;
    let n_supers = n_clusters / CLUSTERS_PER_SUPER;
    let mut rng = StdRng::seed_from_u64(seed);

    // Supercluster templates: per action, a few target clusters with
    // weights and rewards.
    let actions_used = 3usize;
    type Edge = (usize, f64, f64); // (target cluster, weight, reward)
    let super_templates: Vec<Vec<Vec<Edge>>> = (0..n_supers)
        .map(|_| {
            (0..actions_used)
                .map(|_| {
                    let n_targets = rng.gen_range(2..=4usize);
                    (0..n_targets)
                        .map(|_| {
                            (
                                rng.gen_range(0..n_clusters),
                                rng.gen_range(0.5..2.0),
                                rng.gen_range(0.1..0.9),
                            )
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    // Fine-cluster templates: the supercluster template with perturbed
    // rewards (members of one supercluster are similar, not identical).
    let cluster_templates: Vec<Vec<Vec<Edge>>> = (0..n_clusters)
        .map(|c| {
            super_templates[c / CLUSTERS_PER_SUPER]
                .iter()
                .map(|edges| {
                    edges
                        .iter()
                        .map(|&(t, w, r)| {
                            let dr: f64 = rng.gen_range(-0.05..0.05);
                            (t, w, (r + dr).clamp(0.0, 1.0))
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    let mut txs = Vec::new();
    for s in 0..n_states {
        let c = s / CLUSTER_SIZE;
        for (a, edges) in cluster_templates[c].iter().enumerate() {
            // The tick self-loop keeps the graph recurrent.
            let jitter: f64 = rng.gen_range(-0.01..0.01);
            txs.push((s, a, s, 1.0, (0.5 + jitter).clamp(0.0, 1.0)));
            for &(target, w, r) in edges {
                // Target the cluster's first member: quotienting onto
                // representatives is then near-exact.
                let next = target * CLUSTER_SIZE;
                let jitter: f64 = rng.gen_range(-0.01..0.01);
                txs.push((s, a, next, w, (r + jitter).clamp(0.0, 1.0)));
            }
        }
    }

    let mut sigma = SquareMatrix::identity(n_states);
    for u in 0..n_states {
        for v in 0..u {
            let s = if u / CLUSTER_SIZE == v / CLUSTER_SIZE {
                SIGMA_SAME_CLUSTER
            } else if u / span == v / span {
                SIGMA_SAME_SUPER
            } else {
                SIGMA_UNRELATED
            };
            sigma.set(u, v, s);
            sigma.set(v, u, s);
        }
    }
    (txs, sigma)
}

/// Jitter the weights and rewards of a `dirty_frac` fraction of the
/// populated rows of the clustered fixture, *in place*, and return the
/// dirty `(state, action)` rows (sorted).
///
/// Only **member-state** rows drift (states that are not cluster
/// heads). Cross-cluster edges target cluster heads exclusively, so a
/// member state's sole predecessor is itself: the backward closure of a
/// member-row drift is the dirty states themselves, which is exactly
/// the locality real profiler drift exhibits (heads play the shared
/// template; members accumulate per-device jitter). Successor sets are
/// never changed, so the incremental model update stays on the
/// zero-allocation in-place patch path. At `dirty_frac = 1.0` the
/// request exceeds the member-row population and clamps to all of it —
/// ~87.5% of rows, driving the pipeline into its honest full-solve
/// fallback (the parity point of the drift ladder).
///
/// # Panics
///
/// Panics if `dirty_frac` is outside `[0, 1]`.
pub fn drift_clustered_rows(
    txs: &mut [Transition],
    dirty_frac: f64,
    seed: u64,
) -> Vec<(usize, usize)> {
    assert!(
        (0.0..=1.0).contains(&dirty_frac),
        "dirty_frac must be in [0, 1]"
    );
    let mut seen = HashSet::new();
    let mut total_rows = 0usize;
    let mut member_rows: Vec<(usize, usize)> = Vec::new();
    for &(s, a, ..) in txs.iter() {
        if seen.insert((s, a)) {
            total_rows += 1;
            if !s.is_multiple_of(CLUSTER_SIZE) {
                member_rows.push((s, a));
            }
        }
    }
    let k = ((dirty_frac * total_rows as f64).round() as usize).min(member_rows.len());
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher–Yates: the first k entries become the dirty rows.
    for i in 0..k {
        let j = rng.gen_range(i..member_rows.len());
        member_rows.swap(i, j);
    }
    let mut dirty = member_rows;
    dirty.truncate(k);
    dirty.sort_unstable();
    let dirty_set: HashSet<(usize, usize)> = dirty.iter().copied().collect();
    for tx in txs.iter_mut() {
        if dirty_set.contains(&(tx.0, tx.1)) {
            tx.3 *= rng.gen_range(0.85..1.15f64);
            tx.4 = (tx.4 + rng.gen_range(-0.02..0.02f64)).clamp(0.0, 1.0);
        }
    }
    dirty
}

/// Assemble the full-row [`RowPatch`]es for `rows` from a (drifted)
/// transition list — what a profiler's dirty-set snapshot hands to
/// [`Mdp::patch_rows`]. Outcomes keep the list's insertion order, so
/// the patched MDP is bitwise the full rebuild.
pub fn row_patches(txs: &[Transition], rows: &[(usize, usize)]) -> Vec<RowPatch> {
    rows.iter()
        .map(|&(state, action)| RowPatch {
            state,
            action,
            outcomes: txs
                .iter()
                .filter(|t| t.0 == state && t.1 == action)
                .map(|&(_, _, next, prob, reward)| Outcome { next, prob, reward })
                .collect(),
        })
        .collect()
}

/// Build the nested-Vec reference [`NestedMdp`] from the same list.
pub fn build_nested(n_states: usize, txs: &[Transition]) -> NestedMdp {
    let mut m = NestedMdp::new(n_states, N_ACTIONS);
    for &(s, a, next, w, r) in txs {
        m.transition(s, a, next, w, r);
    }
    m.normalise();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_mdp::reference::solve_nested;
    use capman_mdp::value_iteration::solve;

    #[test]
    fn fixture_is_deterministic_and_absorbing() {
        let a = device_like_transitions(64, 3);
        let b = device_like_transitions(64, 3);
        assert_eq!(a.len(), b.len());
        let mdp = build_csr(64, &a);
        assert!(mdp.is_absorbing(63));
        assert!(!mdp.is_absorbing(0));
    }

    #[test]
    fn clustered_fixture_compresses_at_the_ladder_thresholds() {
        use capman_mdp::abstraction::Abstraction;
        let (mdp, sigma) = clustered_device_mdp(128, 5);
        assert_eq!(mdp.n_states(), 128);
        let coarse = Abstraction::from_similarity(&sigma, RECAL_THETAS[0]);
        let fine = Abstraction::from_similarity(&sigma, RECAL_THETAS[1]);
        assert_eq!(
            coarse.n_clusters(),
            128 / (CLUSTER_SIZE * CLUSTERS_PER_SUPER)
        );
        assert_eq!(fine.n_clusters(), 128 / CLUSTER_SIZE);
        // Deterministic in the seed.
        let (again, _) = clustered_device_mdp(128, 5);
        assert_eq!(mdp.n_outcomes(), again.n_outcomes());
    }

    #[test]
    fn clustered_transitions_rebuild_the_fixture_bitwise() {
        let (mdp, sigma) = clustered_device_mdp(96, 7);
        let (txs, sigma2) = clustered_device_transitions(96, 7);
        assert_eq!(mdp, build_csr(96, &txs));
        assert_eq!(sigma, sigma2);
    }

    #[test]
    fn drift_touches_only_member_rows_and_patches_bitwise() {
        let (txs, _) = clustered_device_transitions(96, 7);
        let mut drifted = txs.clone();
        let dirty = drift_clustered_rows(&mut drifted, 0.1, 13);
        assert!(!dirty.is_empty());
        assert!(
            dirty.iter().all(|&(s, _)| s % CLUSTER_SIZE != 0),
            "cluster heads carry the shared template and must stay clean"
        );
        // Same successors, drifted weights/rewards.
        assert_eq!(txs.len(), drifted.len());
        assert!(txs
            .iter()
            .zip(&drifted)
            .all(|(a, b)| (a.0, a.1, a.2) == (b.0, b.1, b.2)));
        // In-place patch == full rebuild, bitwise.
        let mut patched = build_csr(96, &txs);
        let in_place = patched.patch_rows(&row_patches(&drifted, &dirty));
        assert!(in_place, "same-shape drift must stay on the in-place path");
        assert_eq!(patched, build_csr(96, &drifted));
        // Deterministic in the seed.
        let mut again = txs.clone();
        assert_eq!(drift_clustered_rows(&mut again, 0.1, 13), dirty);
        assert_eq!(again, drifted);
    }

    #[test]
    fn drift_fraction_scales_and_clamps_to_member_rows() {
        let (txs, _) = clustered_device_transitions(96, 7);
        let mut none = txs.clone();
        assert!(drift_clustered_rows(&mut none, 0.0, 1).is_empty());
        assert_eq!(none, txs);
        let mut all = txs.clone();
        let dirty = drift_clustered_rows(&mut all, 1.0, 1);
        // Every member row drifts; head rows never do. 84 member states
        // of 96, 3 actions each.
        assert_eq!(dirty.len(), 84 * 3);
    }

    #[test]
    fn nested_and_csr_solvers_agree_on_the_fixture() {
        let txs = device_like_transitions(96, 11);
        let csr = build_csr(96, &txs);
        let nested = build_nested(96, &txs);
        let a = solve(&csr, 0.9, 1e-10);
        let b = solve_nested(&nested, 0.9, 1e-10);
        assert_eq!(a.iterations, b.iterations, "sweep-identical graphs");
        for (x, y) in a.values.iter().zip(&b.values) {
            assert!((x - y).abs() < 1e-9);
        }
        assert_eq!(a.policy, b.policy);
    }
}
