//! Offline stand-in for the `arc-swap` crate.
//!
//! Implements the subset of the arc-swap 1.x surface the fleet
//! simulation service uses — [`ArcSwap::load_full`], [`ArcSwap::store`]
//! and [`ArcSwap::swap`] — without `unsafe` code (the workspace forbids
//! it), so the real crate can be dropped back in as a manifest-only
//! change.
//!
//! # Protocol
//!
//! The real crate juggles raw pointers with hazard-pointer-style debt
//! tracking. This stand-in gets the same *observable* contract — a
//! reader always obtains a fully constructed `Arc<T>` snapshot, never a
//! torn or partially written one, and never waits on a writer's
//! in-progress publication — from a slot ring:
//!
//! * `SLOTS` mutex-guarded cells each hold one complete `Arc<T>`.
//! * An atomic `current` index names the latest *published* slot.
//! * A writer serialises on `writer`, builds the new `Arc<T>` fully,
//!   installs it into a slot **different** from `current` (so no reader
//!   is directed at the cell being written), and only then publishes the
//!   new index with a release store.
//!
//! A reader loads `current` (acquire), locks that slot for the duration
//! of one `Arc::clone`, and returns. The slot a reader locks is never
//! the slot a writer is concurrently filling — a reader can only
//! contend with a writer if it slept between loading `current` and
//! locking the slot for `SLOTS - 1` intervening publications, and even
//! then it merely waits for one complete store and reads a complete
//! (older or newer) snapshot. Torn reads are impossible by
//! construction: slot contents are only ever replaced wholesale under
//! the slot lock, and the index is only advanced after the store
//! completes (release/acquire pairing makes the written `Arc` visible
//! before the index naming it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Slots in the publication ring. Two would be correct; a few more keep
/// the pathological reader-sleeps-across-many-publications case from
/// ever colliding with the write path in practice.
const SLOTS: usize = 4;

/// An `Arc<T>` that can be atomically replaced while readers
/// concurrently take complete snapshots of the latest published value.
#[derive(Debug)]
pub struct ArcSwap<T> {
    slots: [Mutex<Arc<T>>; SLOTS],
    /// Index of the latest published slot.
    current: AtomicUsize,
    /// Serialises writers; holds nothing — the lock *is* the token.
    writer: Mutex<()>,
}

impl<T> ArcSwap<T> {
    /// A swap cell publishing `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        ArcSwap {
            slots: std::array::from_fn(|_| Mutex::new(Arc::clone(&initial))),
            current: AtomicUsize::new(0),
            writer: Mutex::new(()),
        }
    }

    /// A swap cell publishing `Arc::new(value)` (mirrors
    /// `arc_swap::ArcSwap::from_pointee`).
    pub fn from_pointee(value: T) -> Self {
        ArcSwap::new(Arc::new(value))
    }

    /// A complete snapshot of the latest published value.
    ///
    /// Never blocks on a writer's in-progress publication; the returned
    /// `Arc` is always one that a writer finished installing.
    pub fn load_full(&self) -> Arc<T> {
        let idx = self.current.load(Ordering::Acquire);
        let slot = self.slots[idx]
            .lock()
            .expect("arc-swap stand-in: slot lock poisoned");
        Arc::clone(&slot)
    }

    /// Publish `new` as the latest value.
    pub fn store(&self, new: Arc<T>) {
        let _ = self.swap(new);
    }

    /// Publish `new`, returning the previously published value.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let _token = self
            .writer
            .lock()
            .expect("arc-swap stand-in: writer lock poisoned");
        let published = self.current.load(Ordering::Relaxed);
        let target = (published + 1) % SLOTS;
        {
            let mut slot = self.slots[target]
                .lock()
                .expect("arc-swap stand-in: slot lock poisoned");
            *slot = new;
        }
        // The new value is fully installed; only now direct readers at it.
        self.current.store(target, Ordering::Release);
        let prev = self.slots[published]
            .lock()
            .expect("arc-swap stand-in: slot lock poisoned");
        Arc::clone(&prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_the_initial_value() {
        let cell = ArcSwap::from_pointee(41);
        assert_eq!(*cell.load_full(), 41);
    }

    #[test]
    fn store_publishes_and_swap_returns_the_previous() {
        let cell = ArcSwap::from_pointee(1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load_full(), 2);
        let prev = cell.swap(Arc::new(3));
        assert_eq!(*prev, 2);
        assert_eq!(*cell.load_full(), 3);
    }

    /// A snapshot whose internal consistency is checkable: every word
    /// equals `tag`, and the checksum ties them together. A torn read —
    /// a reader observing a half-written snapshot — would surface as a
    /// mixed payload or a checksum mismatch.
    struct Consistent {
        tag: u64,
        payload: [u64; 64],
        checksum: u64,
    }

    impl Consistent {
        fn new(tag: u64) -> Self {
            Consistent {
                tag,
                payload: [tag; 64],
                checksum: tag.wrapping_mul(65),
            }
        }

        fn verify(&self) {
            let sum: u64 = self
                .payload
                .iter()
                .fold(self.tag, |acc, &w| acc.wrapping_add(w));
            assert_eq!(sum, self.checksum, "torn snapshot observed");
            assert!(self.payload.iter().all(|&w| w == self.tag));
        }
    }

    #[test]
    fn concurrent_readers_never_observe_a_partial_snapshot() {
        let cell = Arc::new(ArcSwap::from_pointee(Consistent::new(0)));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last_tag = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.load_full();
                        snap.verify();
                        // Publications are observed in order, never
                        // rolled back.
                        assert!(snap.tag >= last_tag, "snapshot went backwards");
                        last_tag = snap.tag;
                    }
                });
            }
            for tag in 1..=2000 {
                cell.store(Arc::new(Consistent::new(tag)));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.load_full().tag, 2000);
    }

    #[test]
    fn old_snapshots_stay_valid_after_further_publications() {
        let cell = ArcSwap::from_pointee(Consistent::new(7));
        let old = cell.load_full();
        for tag in 8..20 {
            cell.store(Arc::new(Consistent::new(tag)));
        }
        // The reader's Arc keeps the superseded snapshot alive and
        // intact regardless of ring reuse.
        old.verify();
        assert_eq!(old.tag, 7);
        assert_eq!(cell.load_full().tag, 19);
    }
}
