//! Exporters: Chrome `trace_event` JSON for span drains, Prometheus
//! text format and a flat JSON snapshot for the metrics registry.
//!
//! All three are hand-written strings (the vendored serde stand-in has
//! no format backend). The JSON snapshot deliberately mirrors the
//! `BENCH_*.json` shape — one named section holding an array of flat
//! `"key": number` objects — so `capman_bench::perf_report::parse_rows`
//! reads it without a real JSON parser.

use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;
use crate::trace::{RecordKind, TraceDrain};

/// Escape a string for a JSON literal. Metric names and span labels are
/// ASCII identifiers in practice; this keeps the exporters honest if one
/// ever is not.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON-safe float: finite values as written, non-finite as 0 (JSON
/// has no NaN/Inf literal).
fn json_f64(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Render a span drain as Chrome `trace_event` JSON (the format
/// `chrome://tracing` and <https://ui.perfetto.dev> open directly).
/// Spans become `ph:"X"` complete events, instants become `ph:"i"`;
/// timestamps are microseconds since the tracer epoch, one `tid` per
/// recording thread. Flow links ([`RecordKind::Link`]) become paired
/// `ph:"s"` / `ph:"f"` flow events anchored at their endpoint records,
/// so Perfetto draws one connected arc per request across threads; a
/// link whose endpoint was dropped by ring overflow is skipped (the
/// arc has nowhere to land).
pub fn chrome_trace(drain: &TraceDrain) -> String {
    use std::collections::HashMap;
    let by_id: HashMap<u64, &crate::trace::SpanRecord> =
        drain.records.iter().map(|r| (r.id, r)).collect();
    let mut events: Vec<String> = Vec::with_capacity(drain.records.len());
    for r in &drain.records {
        match r.kind {
            RecordKind::Span => {
                events.push(format!(
                    "{{\"name\": \"{}\", \"cat\": \"obs\", \"ph\": \"X\", \"ts\": {:.3}, \
                     \"dur\": {:.3}, \"pid\": 1, \"tid\": {}, \"args\": {{\"span_id\": {}, \
                     \"parent\": {}, \"arg\": {}, \"trace\": {}}}}}",
                    json_escape(r.label),
                    r.start_ns as f64 / 1e3,
                    (r.end_ns - r.start_ns) as f64 / 1e3,
                    r.thread,
                    r.id,
                    r.parent,
                    r.arg,
                    r.trace
                ));
            }
            RecordKind::Event => {
                events.push(format!(
                    "{{\"name\": \"{}\", \"cat\": \"obs\", \"ph\": \"i\", \"ts\": {:.3}, \
                     \"s\": \"t\", \"pid\": 1, \"tid\": {}, \"args\": {{\"span_id\": {}, \
                     \"parent\": {}, \"arg\": {}, \"trace\": {}}}}}",
                    json_escape(r.label),
                    r.start_ns as f64 / 1e3,
                    r.thread,
                    r.id,
                    r.parent,
                    r.arg,
                    r.trace
                ));
            }
            RecordKind::Link { from, to } => {
                let (Some(src), Some(dst)) = (by_id.get(&from), by_id.get(&to)) else {
                    continue; // endpoint dropped: no arc to draw
                };
                events.push(format!(
                    "{{\"name\": \"{}\", \"cat\": \"flow\", \"ph\": \"s\", \"id\": {}, \
                     \"ts\": {:.3}, \"pid\": 1, \"tid\": {}, \"args\": {{\"trace\": {}}}}}",
                    json_escape(r.label),
                    r.id,
                    src.end_ns as f64 / 1e3,
                    src.thread,
                    r.trace
                ));
                events.push(format!(
                    "{{\"name\": \"{}\", \"cat\": \"flow\", \"ph\": \"f\", \"bp\": \"e\", \
                     \"id\": {}, \"ts\": {:.3}, \"pid\": 1, \"tid\": {}, \"args\": {{\"trace\": {}}}}}",
                    json_escape(r.label),
                    r.id,
                    dst.start_ns as f64 / 1e3,
                    dst.thread,
                    r.trace
                ));
            }
        }
    }
    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n");
    let _ = writeln!(out, "  \"droppedSpans\": {},", drain.dropped);
    out.push_str("  \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        let _ = write!(out, "    {e}");
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Escape a `# HELP` line per the Prometheus text exposition rules:
/// backslash and newline must be escaped (`\\`, `\n`) so a multi-line
/// help string cannot inject bogus sample lines into the scrape.
fn help_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a metrics snapshot in Prometheus text exposition format:
/// `# HELP` (escaped) / `# TYPE` per family, cumulative `le`-labelled
/// buckets with the explicit `+Inf` bucket plus `_sum` / `_count` for
/// histograms. [`validate_prometheus`] checks exactly these rules and
/// the golden scrape tests hold every export to them.
///
/// Histogram buckets additionally carry OpenMetrics-style **exemplars**
/// (` # {trace_id="N"} value`): each bucket line is suffixed with the
/// slowest retained exemplar whose value falls in that bucket's range,
/// so a bad p99 in the scrape names a concrete trace id to pull up in
/// the chrome trace.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, help, value) in &snap.counters {
        let _ = writeln!(out, "# HELP {name} {}", help_escape(help));
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, help, value) in &snap.gauges {
        let _ = writeln!(out, "# HELP {name} {}", help_escape(help));
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for h in &snap.histograms {
        let _ = writeln!(out, "# HELP {} {}", h.name, help_escape(&h.help));
        let _ = writeln!(out, "# TYPE {} histogram", h.name);
        // The slowest exemplar falling in (lo, hi]: exemplars are sorted
        // slowest-first, so the first hit wins.
        let exemplar_in = |lo: f64, hi: f64| -> Option<&(f64, u64)> {
            h.exemplars.iter().find(|&&(v, _)| v > lo && v <= hi)
        };
        let suffix = |ex: Option<&(f64, u64)>| -> String {
            ex.map_or(String::new(), |&(v, trace)| {
                format!(" # {{trace_id=\"{trace}\"}} {}", json_f64(v))
            })
        };
        let mut cumulative = 0u64;
        let mut lo = f64::NEG_INFINITY;
        for (bound, count) in h.bounds.iter().zip(&h.counts) {
            cumulative += count;
            let _ = writeln!(
                out,
                "{}_bucket{{le=\"{}\"}} {}{}",
                h.name,
                bound,
                cumulative,
                suffix(exemplar_in(lo, *bound))
            );
            lo = *bound;
        }
        let _ = writeln!(
            out,
            "{}_bucket{{le=\"+Inf\"}} {}{}",
            h.name,
            h.count,
            suffix(exemplar_in(lo, f64::INFINITY))
        );
        let _ = writeln!(out, "{}_sum {}", h.name, json_f64(h.sum));
        let _ = writeln!(out, "{}_count {}", h.name, h.count);
    }
    out
}

/// Is `name` a legal Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`)?
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Strict structural check of a Prometheus text exposition — the rules
/// the satellite scrape contract is stated in terms of:
///
/// * every sample belongs to a family announced by a preceding
///   `# HELP` **and** `# TYPE` line with a legal metric name;
/// * counter/gauge families expose exactly one sample under the family
///   name; histogram families expose `_bucket` / `_sum` / `_count`;
/// * bucket series are **cumulative** (non-decreasing in order of
///   appearance), end in an explicit `le="+Inf"` bucket, and that
///   bucket equals the family's `_count`;
/// * every sample value parses as a finite float (integers included).
///
/// Returns the first violation as `Err(description)`.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    #[derive(Default)]
    struct Family {
        help: bool,
        typed: Option<String>,
        buckets: Vec<(String, f64)>, // (le label, value) in order
        sum: Option<f64>,
        count: Option<f64>,
        samples: u64, // plain samples under the family name
    }
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let base_of = |name: &str| -> (String, &'static str) {
        for (suffix, kind) in [("_bucket", "bucket"), ("_sum", "sum"), ("_count", "count")] {
            if let Some(base) = name.strip_suffix(suffix) {
                return (base.to_string(), kind);
            }
        }
        (name.to_string(), "plain")
    };
    for (lineno, line) in text.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if !valid_metric_name(name) {
                        return Err(at(format!("HELP for invalid metric name {name:?}")));
                    }
                    families.entry(name.to_string()).or_default().help = true;
                }
                "TYPE" => {
                    let kind = parts.next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return Err(at(format!("TYPE for invalid metric name {name:?}")));
                    }
                    if !matches!(kind, "counter" | "gauge" | "histogram") {
                        return Err(at(format!("unknown TYPE {kind:?} for {name}")));
                    }
                    let fam = families.entry(name.to_string()).or_default();
                    if fam.typed.is_some() {
                        return Err(at(format!("duplicate TYPE for {name}")));
                    }
                    fam.typed = Some(kind.to_string());
                }
                _ => return Err(at(format!("unknown comment keyword {keyword:?}"))),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // bare comment
        }
        // A sample: `name value` or `name{labels} value`, optionally
        // suffixed with an OpenMetrics exemplar: ` # {labels} value`.
        let (line, exemplar) = match line.split_once(" # ") {
            Some((sample, ex)) => (sample, Some(ex)),
            None => (line, None),
        };
        if let Some(ex) = exemplar {
            let (labels, ex_value) = ex
                .rsplit_once(' ')
                .ok_or_else(|| at(format!("exemplar without a value: {ex:?}")))?;
            if !labels.starts_with('{') || !labels.ends_with('}') {
                return Err(at(format!("exemplar without a label set: {ex:?}")));
            }
            let v: f64 = ex_value
                .parse()
                .map_err(|_| at(format!("unparseable exemplar value {ex_value:?}")))?;
            if !v.is_finite() {
                return Err(at(format!("non-finite exemplar value {ex_value:?}")));
            }
        }
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => return Err(at(format!("sample without a value: {line:?}"))),
        };
        let value: f64 = value_part
            .parse()
            .map_err(|_| at(format!("unparseable sample value {value_part:?}")))?;
        if !value.is_finite() {
            return Err(at(format!("non-finite sample value {value_part:?}")));
        }
        let (name, label) = match name_part.split_once('{') {
            Some((n, rest)) => {
                let label = rest
                    .strip_suffix('}')
                    .ok_or_else(|| at(format!("unterminated label set: {name_part:?}")))?;
                (n, Some(label))
            }
            None => (name_part, None),
        };
        if !valid_metric_name(name) {
            return Err(at(format!("invalid metric name {name:?}")));
        }
        let (base, kind) = base_of(name);
        // A histogram series name resolves to its base family; anything
        // else must be a family of its own.
        let fam_name = if families.contains_key(&base) && kind != "plain" {
            base
        } else {
            name.to_string()
        };
        let fam = families
            .get_mut(&fam_name)
            .ok_or_else(|| at(format!("sample {name:?} before its HELP/TYPE lines")))?;
        let typed = fam
            .typed
            .clone()
            .ok_or_else(|| at(format!("sample {name:?} with HELP but no TYPE")))?;
        if !fam.help {
            return Err(at(format!("sample {name:?} without a HELP line")));
        }
        if exemplar.is_some() && !(typed == "histogram" && kind == "bucket") {
            return Err(at(format!("exemplar on a non-bucket sample of {name:?}")));
        }
        match (typed.as_str(), kind, label) {
            ("histogram", "bucket", Some(label)) => {
                let le = label
                    .strip_prefix("le=\"")
                    .and_then(|l| l.strip_suffix('"'))
                    .ok_or_else(|| at(format!("bucket without an le label: {line:?}")))?;
                fam.buckets.push((le.to_string(), value));
            }
            ("histogram", "sum", None) => fam.sum = Some(value),
            ("histogram", "count", None) => fam.count = Some(value),
            ("counter", "plain", None) | ("gauge", "plain", None) => fam.samples += 1,
            _ => {
                return Err(at(format!(
                    "sample {name:?} does not fit its family type {typed:?}"
                )))
            }
        }
    }
    for (name, fam) in &families {
        let typed = fam
            .typed
            .as_deref()
            .ok_or_else(|| format!("family {name} has HELP but no TYPE"))?;
        if !fam.help {
            return Err(format!("family {name} has TYPE but no HELP"));
        }
        match typed {
            "counter" | "gauge" => {
                if fam.samples != 1 {
                    return Err(format!(
                        "family {name}: expected exactly one sample, saw {}",
                        fam.samples
                    ));
                }
            }
            "histogram" => {
                let count = fam
                    .count
                    .ok_or_else(|| format!("histogram {name} has no _count"))?;
                if fam.sum.is_none() {
                    return Err(format!("histogram {name} has no _sum"));
                }
                match fam.buckets.last() {
                    Some((le, last)) if le == "+Inf" => {
                        if *last != count {
                            return Err(format!(
                                "histogram {name}: +Inf bucket {last} != _count {count}"
                            ));
                        }
                    }
                    _ => return Err(format!("histogram {name} does not end in an +Inf bucket")),
                }
                if fam.buckets.windows(2).any(|w| w[0].1 > w[1].1) {
                    return Err(format!("histogram {name}: buckets are not cumulative"));
                }
            }
            _ => unreachable!("TYPE already validated"),
        }
    }
    Ok(())
}

/// Render a metrics snapshot as flat JSON: a single `"metrics"` section
/// holding one row of `"key": number` pairs — counters and gauges by
/// name, histograms flattened to `<name>_count` / `<name>_sum` /
/// `<name>_p50` / `<name>_p95` / `<name>_p99`. Parseable with
/// `perf_report::parse_rows(json, "metrics")`, so `perf_gate` can
/// consume registry output like any other bench report.
pub fn metrics_json(snap: &MetricsSnapshot) -> String {
    let mut pairs: Vec<(String, String)> = Vec::new();
    for (name, _, value) in &snap.counters {
        pairs.push((name.clone(), value.to_string()));
    }
    for (name, _, value) in &snap.gauges {
        pairs.push((name.clone(), value.to_string()));
    }
    for h in &snap.histograms {
        pairs.push((format!("{}_count", h.name), h.count.to_string()));
        pairs.push((format!("{}_sum", h.name), format!("{:.4}", json_f64(h.sum))));
        for (suffix, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            pairs.push((
                format!("{}_{suffix}", h.name),
                format!("{:.4}", json_f64(h.quantile(q))),
            ));
        }
        if let Some(&(v, trace)) = h.exemplars.first() {
            // The slowest traced observation: value + the trace id to
            // pull up in the chrome trace.
            pairs.push((
                format!("{}_slowest_value", h.name),
                format!("{:.4}", json_f64(v)),
            ));
            pairs.push((format!("{}_slowest_trace", h.name), trace.to_string()));
        }
    }
    let mut out = String::new();
    out.push_str("{\n  \"generated_by\": \"capman-obs\",\n  \"metrics\": [\n    {\n");
    for (i, (key, value)) in pairs.iter().enumerate() {
        let _ = write!(out, "      \"{}\": {}", json_escape(key), value);
        out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
    }
    out.push_str("    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::trace::Tracer;

    fn balanced(json: &str) {
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_trace_renders_spans_and_events() {
        let t = Tracer::new(64);
        {
            let _outer = t.span("solve", 3);
            t.event("publish", 7);
        }
        let json = chrome_trace(&t.drain());
        balanced(&json);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\": \"solve\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"publish\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"droppedSpans\": 0"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn chrome_trace_renders_flow_links_as_paired_arcs() {
        let t = Tracer::new(64);
        let ctx = t.begin_trace("submit", 1);
        let pick = t.event_in("pick", 1, ctx.trace);
        let link_id = t.link("queue_flow", ctx.origin, pick, ctx.trace);
        assert_ne!(link_id, 0);
        let json = chrome_trace(&t.drain());
        balanced(&json);
        assert!(json.contains("\"ph\": \"s\""), "flow start, got:\n{json}");
        assert!(json.contains("\"ph\": \"f\""), "flow finish");
        assert!(json.contains("\"bp\": \"e\""), "finish binds enclosing");
        assert!(json.contains(&format!("\"id\": {link_id}")));
        assert!(
            json.contains(&format!("\"trace\": {}", ctx.trace)),
            "records carry their trace id"
        );
        assert_eq!(
            json.matches("\"cat\": \"flow\"").count(),
            2,
            "one link, two flow events"
        );
    }

    #[test]
    fn chrome_trace_skips_links_whose_endpoints_were_dropped() {
        let t = Tracer::new(64);
        // Endpoint ids that exist in the id space but not in this drain
        // (simulating ring overflow having evicted them).
        t.link("dangling", 1_000_001, 1_000_002, 5);
        let json = chrome_trace(&t.drain());
        balanced(&json);
        assert!(!json.contains("\"cat\": \"flow\""), "no arc to draw");
    }

    #[test]
    fn chrome_trace_of_empty_drain_is_well_formed() {
        let t = Tracer::new(64);
        let json = chrome_trace(&t.drain());
        balanced(&json);
        assert!(json.contains("\"traceEvents\": [\n  ]"));
    }

    #[test]
    fn prometheus_text_has_cumulative_buckets() {
        let r = Registry::new();
        r.counter("solves_total", "Solves").add(4);
        r.gauge("queue_depth", "Depth").set(2);
        let h = r.histogram("lat_ms", "Latency", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("# TYPE solves_total counter"));
        assert!(text.contains("solves_total 4"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 2"));
        assert!(text.contains("lat_ms_bucket{le=\"1\"} 1"));
        assert!(
            text.contains("lat_ms_bucket{le=\"10\"} 2"),
            "buckets cumulate"
        );
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ms_count 3"));
        assert!(text.contains("lat_ms_sum 55.5"));
    }

    #[test]
    fn metrics_json_flattens_histograms() {
        let r = Registry::new();
        r.counter("hits_total", "Hits").add(9);
        let h = r.histogram("stale_s", "Staleness", &[0.1, 1.0, 10.0]);
        for _ in 0..99 {
            h.observe(0.05);
        }
        h.observe(5.0);
        let json = metrics_json(&r.snapshot());
        balanced(&json);
        assert!(json.contains("\"metrics\": ["));
        assert!(json.contains("\"hits_total\": 9"));
        assert!(json.contains("\"stale_s_count\": 100"));
        assert!(json.contains("\"stale_s_p50\": 0.1000"));
        assert!(json.contains("\"stale_s_p99\": 0.1000"));
    }

    #[test]
    fn empty_snapshot_exports_are_valid() {
        let snap = Registry::new().snapshot();
        assert_eq!(prometheus_text(&snap), "");
        balanced(&metrics_json(&snap));
    }

    #[test]
    fn snapshot_quantile_matches_live_histogram() {
        let r = Registry::new();
        let h = r.histogram("q", "Q", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.6, 3.0, 9.0] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let hs = &snap.histograms[0];
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(hs.quantile(q), h.quantile(q), "q = {q}");
        }
        let empty = crate::metrics::HistogramSnapshot {
            name: "e".into(),
            help: String::new(),
            bounds: vec![1.0],
            counts: vec![0, 0],
            sum: 0.0,
            count: 0,
            exemplars: Vec::new(),
        };
        assert_eq!(empty.quantile(0.5), 0.0);
    }

    #[test]
    fn exports_validate_and_help_lines_are_escaped() {
        let r = Registry::new();
        r.counter("solves_total", "Solves\nwith a newline and a \\ slash")
            .add(4);
        r.gauge("queue_depth", "Depth").set(-2);
        let h = r.histogram("lat_ms", "Latency", &[1.0, 10.0]);
        for v in [0.5, 5.0, 50.0] {
            h.observe(v);
        }
        let text = prometheus_text(&r.snapshot());
        assert!(
            text.contains("# HELP solves_total Solves\\nwith a newline and a \\\\ slash"),
            "help text must be escaped, got:\n{text}"
        );
        validate_prometheus(&text).expect("export must pass its own validator");
        // An empty export is trivially valid.
        validate_prometheus("").expect("empty scrape is valid");
    }

    #[test]
    fn help_escape_round_trips_the_hostile_cases() {
        // Satellite: backslash, newline, and quote in help strings must
        // survive export without corrupting the scrape. Quotes are legal
        // verbatim in HELP text; backslash and newline must be escaped.
        let cases: [(&str, &str); 4] = [
            ("tricky_a_total", "a \\ lone backslash"),
            ("tricky_b_total", "line one\nline two"),
            ("tricky_c_total", "says \"quoted\" things"),
            ("tricky_d_total", "all three: \\ then\nthen \"q\""),
        ];
        let r = Registry::new();
        for (name, help) in cases {
            r.counter(name, help).add(1);
        }
        let text = prometheus_text(&r.snapshot());
        validate_prometheus(&text).expect("hostile help strings still validate");
        assert!(text.contains("# HELP tricky_a_total a \\\\ lone backslash"));
        assert!(text.contains("# HELP tricky_b_total line one\\nline two"));
        assert!(
            text.contains("# HELP tricky_c_total says \"quoted\" things"),
            "quotes pass through verbatim in help text"
        );
        assert!(text.contains("# HELP tricky_d_total all three: \\\\ then\\nthen \"q\""));
        // Round-trip: un-escaping each exported HELP line recovers the
        // original string exactly.
        for (name, help) in cases {
            let line = text
                .lines()
                .find(|l| l.starts_with(&format!("# HELP {name} ")))
                .expect("HELP line exported");
            let escaped = line
                .strip_prefix(&format!("# HELP {name} "))
                .expect("prefix checked");
            let mut unescaped = String::new();
            let mut chars = escaped.chars();
            while let Some(c) = chars.next() {
                if c == '\\' {
                    match chars.next() {
                        Some('\\') => unescaped.push('\\'),
                        Some('n') => unescaped.push('\n'),
                        other => panic!("unknown escape \\{other:?} in {line:?}"),
                    }
                } else {
                    unescaped.push(c);
                }
            }
            assert_eq!(unescaped, help, "round trip for {name}");
        }
    }

    #[test]
    fn bucket_exemplars_export_and_validate() {
        let r = Registry::new();
        let h = r.histogram("stale_s", "Staleness", &[1.0, 10.0]);
        h.observe_with_exemplar(0.5, 41); // le="1" bucket
        h.observe_with_exemplar(50.0, 42); // +Inf bucket
        let snap = r.snapshot();
        let text = prometheus_text(&snap);
        assert!(
            text.contains("stale_s_bucket{le=\"1\"} 1 # {trace_id=\"41\"} 0.5"),
            "finite bucket carries its exemplar, got:\n{text}"
        );
        assert!(
            text.contains("stale_s_bucket{le=\"+Inf\"} 2 # {trace_id=\"42\"} 50"),
            "+Inf bucket carries the overflow exemplar, got:\n{text}"
        );
        validate_prometheus(&text).expect("exemplar suffixes validate");
        let json = metrics_json(&snap);
        balanced(&json);
        assert!(json.contains("\"stale_s_slowest_value\": 50.0000"));
        assert!(json.contains("\"stale_s_slowest_trace\": 42"));
    }

    #[test]
    fn validator_rejects_the_documented_violations() {
        // Sample before any HELP/TYPE.
        assert!(validate_prometheus("orphan 1\n").is_err());
        // HELP but no TYPE.
        assert!(validate_prometheus("# HELP a_total A\na_total 1\n").is_err());
        // Non-cumulative buckets.
        let shrinking = "# HELP h H\n# TYPE h histogram\n\
             h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
             h_sum 9\nh_count 5\n";
        assert!(validate_prometheus(shrinking)
            .unwrap_err()
            .contains("not cumulative"));
        // Missing +Inf bucket.
        let no_inf = "# HELP h H\n# TYPE h histogram\n\
             h_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_prometheus(no_inf).unwrap_err().contains("+Inf"));
        // +Inf disagreeing with _count.
        let mismatch = "# HELP h H\n# TYPE h histogram\n\
             h_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n";
        assert!(validate_prometheus(mismatch)
            .unwrap_err()
            .contains("_count"));
        // Missing _sum.
        let no_sum = "# HELP h H\n# TYPE h histogram\n\
             h_bucket{le=\"+Inf\"} 5\nh_count 5\n";
        assert!(validate_prometheus(no_sum).unwrap_err().contains("_sum"));
        // Unparseable value.
        assert!(
            validate_prometheus("# HELP g G\n# TYPE g gauge\ng one\n").is_err(),
            "words are not sample values"
        );
        // An unescaped multi-line help string leaks a bogus sample line.
        assert!(validate_prometheus("# HELP a_total first\nsecond line\n").is_err());
        // Exemplars are only legal on histogram bucket lines.
        assert!(
            validate_prometheus(
                "# HELP c_total C\n# TYPE c_total counter\nc_total 1 # {trace_id=\"9\"} 1\n"
            )
            .unwrap_err()
            .contains("non-bucket"),
            "counter exemplar rejected"
        );
        // A malformed exemplar (no label set) is rejected.
        let bad_ex = "# HELP h H\n# TYPE h histogram\n\
             h_bucket{le=\"+Inf\"} 1 # trace_id 0.5\nh_sum 0.5\nh_count 1\n";
        assert!(validate_prometheus(bad_ex)
            .unwrap_err()
            .contains("exemplar"));
        // A non-finite exemplar value is rejected.
        let inf_ex = "# HELP h H\n# TYPE h histogram\n\
             h_bucket{le=\"+Inf\"} 1 # {trace_id=\"9\"} inf\nh_sum 0.5\nh_count 1\n";
        assert!(validate_prometheus(inf_ex)
            .unwrap_err()
            .contains("non-finite exemplar"));
    }
}
