//! Error types for battery model construction and operation.

use std::error::Error;
use std::fmt;

/// Errors produced by battery model constructors and operations.
#[derive(Debug, Clone, PartialEq)]
pub enum BatteryError {
    /// A capacity of zero or a negative capacity was requested.
    NonPositiveCapacity(f64),
    /// A model parameter was outside its valid domain.
    InvalidParameter {
        /// The parameter name.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A negative power demand was requested from a discharging cell.
    NegativeDemand(f64),
    /// A non-positive simulation step was requested.
    NonPositiveStep(f64),
}

impl fmt::Display for BatteryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatteryError::NonPositiveCapacity(c) => {
                write!(f, "battery capacity must be positive, got {c} Ah")
            }
            BatteryError::InvalidParameter { name, value } => {
                write!(f, "invalid battery parameter {name}: {value}")
            }
            BatteryError::NegativeDemand(p) => {
                write!(f, "power demand must be non-negative, got {p} W")
            }
            BatteryError::NonPositiveStep(dt) => {
                write!(f, "simulation step must be positive, got {dt} s")
            }
        }
    }
}

impl Error for BatteryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            BatteryError::NonPositiveCapacity(-1.0),
            BatteryError::InvalidParameter {
                name: "r0",
                value: -0.5,
            },
            BatteryError::NegativeDemand(-2.0),
            BatteryError::NonPositiveStep(0.0),
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BatteryError>();
    }
}
