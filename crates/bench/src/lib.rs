//! Shared helpers for the CAPMAN benchmark harness.
//!
//! The Criterion benches run discharge cycles at a reduced horizon so a
//! bench iteration completes in milliseconds-to-seconds; the `figures`
//! binary runs the full-scale cycles the paper reports.

use capman_core::config::SimConfig;
use capman_core::experiments::{run_policy_with, PolicyKind};
use capman_core::metrics::Outcome;
use capman_device::phone::PhoneProfile;
use capman_workload::WorkloadKind;

pub mod gate;
pub mod mdp_fixtures;
pub mod perf_report;
pub mod rss;
pub mod trials;

/// A reduced-horizon configuration for bench iterations.
pub fn short_config(kind: PolicyKind, horizon_s: f64) -> SimConfig {
    SimConfig {
        max_horizon_s: horizon_s,
        tec_enabled: kind.has_tec(),
        ..SimConfig::paper()
    }
}

/// Run one reduced-horizon discharge cycle on the Nexus.
pub fn quick_cycle(kind: PolicyKind, workload: WorkloadKind, horizon_s: f64, seed: u64) -> Outcome {
    run_policy_with(
        kind,
        workload,
        PhoneProfile::nexus(),
        seed,
        short_config(kind, horizon_s),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cycle_runs() {
        let o = quick_cycle(PolicyKind::Dual, WorkloadKind::Video, 600.0, 1);
        assert!(o.service_time_s > 0.0);
    }

    #[test]
    fn short_config_sets_tec_by_policy() {
        assert!(short_config(PolicyKind::Capman, 100.0).tec_enabled);
        assert!(!short_config(PolicyKind::Dual, 100.0).tec_enabled);
    }
}
