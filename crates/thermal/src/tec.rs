//! Thermoelectric cooler (TEC) physics — Eq. (1) and Fig. 6.
//!
//! The heat pumped through a TEC is
//!
//! ```text
//! Qc = S_T * Tc * I - I^2 R / 2 - K (Th - Tc)        (Eq. 1)
//! ```
//!
//! with thermoelectric coefficient `S_T`, operating current `I`, electrical
//! resistance `R`, thermal conductivity `K`, and cold/hot-side temperatures
//! `Tc`/`Th` in Kelvin. The electrical power drawn is
//! `P = S_T I (Th - Tc) + I^2 R` (Table II). The steady temperature
//! difference first grows with `I`, peaks at the rated current
//! `I* = S_T Tc / R` (1.0 A for the paper's module) and then falls —
//! the curve in the bottom half of Fig. 6. CAPMAN therefore always drives
//! the TEC at its rated current, as an on/off device.

use serde::{Deserialize, Serialize};

use crate::hotspot::HOT_SPOT_THRESHOLD_C;
use crate::network::{NodeId, ThermalNetwork};

/// Celsius-to-Kelvin offset.
const KELVIN: f64 = 273.15;

/// A thermoelectric cooler module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tec {
    /// Thermoelectric (Seebeck) coefficient, V/K.
    s_t: f64,
    /// Electrical resistance, ohms.
    r_ohm: f64,
    /// Thermal conductivity between the faces, W/K.
    k_w_per_k: f64,
    /// Reference cold-side temperature for the rated-current definition, K.
    ref_tc_k: f64,
}

impl Tec {
    /// The ATE-31-2.2A-class miniature module of the prototype (< 2 g),
    /// parameterised so the Fig. 6 curve peaks at 1.0 A.
    pub fn ate31() -> Self {
        let ref_tc_k = 25.0 + KELVIN;
        let r_ohm = 0.9;
        Tec {
            s_t: r_ohm / ref_tc_k, // puts the rated current at exactly 1 A
            r_ohm,
            k_w_per_k: 0.0075,
            ref_tc_k,
        }
    }

    /// Build a module from raw physical constants.
    ///
    /// # Panics
    ///
    /// Panics if any constant is not positive.
    pub fn new(s_t: f64, r_ohm: f64, k_w_per_k: f64, ref_tc_c: f64) -> Self {
        assert!(s_t > 0.0, "S_T must be positive");
        assert!(r_ohm > 0.0, "R must be positive");
        assert!(k_w_per_k > 0.0, "K must be positive");
        Tec {
            s_t,
            r_ohm,
            k_w_per_k,
            ref_tc_k: ref_tc_c + KELVIN,
        }
    }

    /// The rated operating current `I* = S_T Tc / R`, amperes — the
    /// maximum of the Fig. 6 curve, where CAPMAN always drives the module.
    pub fn rated_current_a(&self) -> f64 {
        self.s_t * self.ref_tc_k / self.r_ohm
    }

    /// Heat pumped from the cold side at current `I`, Eq. (1), watts.
    ///
    /// Temperatures are in degrees Celsius; they are converted internally.
    /// The result can be negative when conduction back through the module
    /// exceeds the Peltier pumping.
    pub fn cooling_w(&self, current_a: f64, cold_c: f64, hot_c: f64) -> f64 {
        let tc = cold_c + KELVIN;
        let th = hot_c + KELVIN;
        self.s_t * tc * current_a
            - 0.5 * current_a * current_a * self.r_ohm
            - self.k_w_per_k * (th - tc)
    }

    /// Electrical power drawn at current `I` with face temperatures
    /// `cold_c`/`hot_c`, watts (Table II row for the TEC).
    pub fn power_w(&self, current_a: f64, cold_c: f64, hot_c: f64) -> f64 {
        let delta = (hot_c - cold_c).max(0.0);
        self.s_t * current_a * delta + current_a * current_a * self.r_ohm
    }

    /// The steady-state temperature difference sustained at current `I`
    /// with the cold side at the reference temperature — the Fig. 6 curve.
    ///
    /// Solves `Qc = 0`: `delta_T = (S_T Tc I - I^2 R / 2) / K`.
    pub fn delta_t_steady(&self, current_a: f64) -> f64 {
        (self.s_t * self.ref_tc_k * current_a - 0.5 * current_a * current_a * self.r_ohm)
            / self.k_w_per_k
    }

    /// Pump heat from `cold` to `hot` on a [`ThermalNetwork`] for one step
    /// at the given current, injecting the waste heat on the hot side.
    ///
    /// Returns the step telemetry. Call before [`ThermalNetwork::step`].
    pub fn pump(
        &self,
        network: &mut ThermalNetwork,
        cold: NodeId,
        hot: NodeId,
        current_a: f64,
    ) -> TecStep {
        let cold_c = network.temp_c(cold);
        let hot_c = network.temp_c(hot);
        let cooling_w = self.cooling_w(current_a, cold_c, hot_c);
        let power_w = self.power_w(current_a, cold_c, hot_c);
        network.inject(cold, -cooling_w);
        network.inject(hot, cooling_w + power_w);
        TecStep {
            cooling_w,
            power_w,
            on: current_a > 0.0,
        }
    }

    /// Thermoelectric coefficient, V/K.
    pub fn s_t(&self) -> f64 {
        self.s_t
    }

    /// Electrical resistance, ohms.
    pub fn r_ohm(&self) -> f64 {
        self.r_ohm
    }

    /// Thermal conductivity, W/K.
    pub fn k_w_per_k(&self) -> f64 {
        self.k_w_per_k
    }
}

/// Telemetry for one TEC step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TecStep {
    /// Heat removed from the cold side, watts (negative means back-flow).
    pub cooling_w: f64,
    /// Electrical power drawn, watts.
    pub power_w: f64,
    /// Whether the module was energised.
    pub on: bool,
}

impl TecStep {
    /// A step with the module off.
    pub fn off() -> Self {
        TecStep {
            cooling_w: 0.0,
            power_w: 0.0,
            on: false,
        }
    }
}

/// Bang-bang controller: boot the TEC above the threshold, drop it once
/// the spot has cooled by the hysteresis band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TecController {
    /// Turn-on threshold, degC (45 in the paper).
    pub threshold_c: f64,
    /// Hysteresis band, Kelvin.
    pub hysteresis_k: f64,
    on: bool,
}

impl TecController {
    /// The paper's controller: 45 degC threshold, 2 K hysteresis.
    pub fn paper() -> Self {
        TecController {
            threshold_c: HOT_SPOT_THRESHOLD_C,
            hysteresis_k: 2.0,
            on: false,
        }
    }

    /// Create a controller with a custom threshold and hysteresis.
    ///
    /// # Panics
    ///
    /// Panics if `hysteresis_k` is negative.
    pub fn new(threshold_c: f64, hysteresis_k: f64) -> Self {
        assert!(hysteresis_k >= 0.0, "hysteresis must be non-negative");
        TecController {
            threshold_c,
            hysteresis_k,
            on: false,
        }
    }

    /// Update with the current hot-spot temperature; returns whether the
    /// TEC should run this step.
    pub fn update(&mut self, spot_c: f64) -> bool {
        if spot_c > self.threshold_c {
            self.on = true;
        } else if spot_c < self.threshold_c - self.hysteresis_k {
            self.on = false;
        }
        self.on
    }

    /// Whether the TEC is currently commanded on.
    pub fn is_on(&self) -> bool {
        self.on
    }
}

impl Default for TecController {
    fn default() -> Self {
        TecController::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rated_current_is_one_ampere() {
        let tec = Tec::ate31();
        assert!((tec.rated_current_a() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig6_curve_peaks_at_rated_current() {
        let tec = Tec::ate31();
        let rated = tec.rated_current_a();
        let peak = tec.delta_t_steady(rated);
        // Sample the sweep of Fig. 6 (0 to 2.2 A).
        for i in 0..=22 {
            let current = f64::from(i) * 0.1;
            assert!(
                tec.delta_t_steady(current) <= peak + 1e-9,
                "curve must peak at rated current, exceeded at {current} A"
            );
        }
        // Rising then falling.
        assert!(tec.delta_t_steady(0.5) > tec.delta_t_steady(0.1));
        assert!(tec.delta_t_steady(2.0) < peak);
        assert!(tec.delta_t_steady(0.0).abs() < 1e-12);
    }

    #[test]
    fn cooling_decreases_with_hotter_hot_side() {
        let tec = Tec::ate31();
        let near = tec.cooling_w(1.0, 45.0, 46.0);
        let far = tec.cooling_w(1.0, 45.0, 60.0);
        assert!(far < near);
    }

    #[test]
    fn power_includes_joule_and_peltier_terms() {
        let tec = Tec::ate31();
        let p = tec.power_w(1.0, 40.0, 50.0);
        assert!(p > 1.0 * 1.0 * tec.r_ohm()); // at least the Joule term
        let p0 = tec.power_w(1.0, 50.0, 50.0);
        assert!((p0 - tec.r_ohm()).abs() < 1e-9);
    }

    #[test]
    fn pump_cools_the_spot_on_a_network() {
        let tec = Tec::ate31();
        let mut with_tec = ThermalNetwork::phone();
        let mut without = ThermalNetwork::phone();
        for _ in 0..1800 {
            for n in [&mut with_tec, &mut without] {
                n.inject(NodeId::Cpu, 2.0);
                n.inject(NodeId::HotSpot, 0.8);
            }
            tec.pump(&mut with_tec, NodeId::HotSpot, NodeId::Shell, 1.0);
            with_tec.step(1.0);
            without.step(1.0);
        }
        assert!(
            with_tec.temp_c(NodeId::HotSpot) < without.temp_c(NodeId::HotSpot) - 5.0,
            "TEC should cut the hot spot substantially: {} vs {}",
            with_tec.temp_c(NodeId::HotSpot),
            without.temp_c(NodeId::HotSpot)
        );
    }

    #[test]
    fn controller_has_hysteresis() {
        let mut c = TecController::paper();
        assert!(!c.update(44.0));
        assert!(c.update(45.5));
        // Stays on within the band.
        assert!(c.update(44.0));
        assert!(c.update(43.5));
        // Drops below threshold - hysteresis.
        assert!(!c.update(42.5));
        assert!(!c.is_on());
    }

    #[test]
    fn controller_threshold_matches_paper() {
        let c = TecController::default();
        assert_eq!(c.threshold_c, 45.0);
    }

    #[test]
    #[should_panic(expected = "S_T")]
    fn new_rejects_bad_seebeck() {
        let _ = Tec::new(0.0, 1.0, 0.1, 25.0);
    }
}
