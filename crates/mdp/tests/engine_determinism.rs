//! Determinism guarantees of the similarity engine.
//!
//! The engine promises: (1) its plain serial mode reproduces the
//! reference `structural_similarity` bit for bit; (2) serial and
//! parallel scheduling of the full engine are bit-identical; (3) a warm
//! memo cache returns bit-identical results to a cold one; (4) the
//! memoized/pruned fast path stays within fixpoint tolerance of the
//! reference. All on randomized seeded MDP graphs.

use proptest::prelude::*;

use capman_mdp::engine::{ExecutionMode, SimilarityEngine};
use capman_mdp::graph::MdpGraph;
use capman_mdp::mdp::{Mdp, MdpBuilder};
use capman_mdp::similarity::{structural_similarity, SimilarityParams};

/// A random small MDP with duplicated successor distributions (several
/// actions share a target), so the memo cache and bounds get exercised.
fn arb_mdp() -> impl Strategy<Value = Mdp> {
    (3usize..8, 0u64..10_000).prop_map(|(n, seed)| {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut b = MdpBuilder::new(n, 3);
        for s in 0..(n - 1) {
            let shared_target = next(n as u64) as usize;
            for a in 0..(1 + next(3) as usize).min(3) {
                // Half the actions reuse the state's shared target with
                // unit weight: identical successor distributions.
                if next(2) == 0 {
                    b.transition(s, a, shared_target, 1.0, next(100) as f64 / 100.0);
                } else {
                    for _ in 0..(1 + next(2)) {
                        let to = next(n as u64) as usize;
                        let w = 1.0 + next(9) as f64;
                        let r = next(100) as f64 / 100.0;
                        b.transition(s, a, to, w, r);
                    }
                }
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Plain serial engine == reference implementation, bit for bit.
    #[test]
    fn serial_engine_reproduces_reference(mdp in arb_mdp(), rho in 0.1f64..0.9) {
        let g = MdpGraph::from_mdp(&mdp);
        let params = SimilarityParams::paper(rho);
        let seed = structural_similarity(&g, &params);
        let r = SimilarityEngine::serial().compute(&g, &params);
        prop_assert_eq!(&r.sigma_s, &seed.sigma_s);
        prop_assert_eq!(&r.sigma_a, &seed.sigma_a);
        prop_assert_eq!(r.iterations, seed.iterations);
        prop_assert_eq!(r.converged, seed.converged);
        prop_assert_eq!(r.ssp_augmentations, seed.ssp_augmentations);
    }

    /// Serial and parallel scheduling of the full engine agree bitwise.
    #[test]
    fn parallel_schedule_is_bit_identical(mdp in arb_mdp(), rho in 0.1f64..0.9) {
        let g = MdpGraph::from_mdp(&mdp);
        let params = SimilarityParams::paper(rho);
        let serial =
            SimilarityEngine::with_options(ExecutionMode::Serial, true, true).compute(&g, &params);
        let parallel = SimilarityEngine::with_options(ExecutionMode::Parallel, true, true)
            .compute(&g, &params);
        prop_assert_eq!(&serial.sigma_s, &parallel.sigma_s);
        prop_assert_eq!(&serial.sigma_a, &parallel.sigma_a);
        prop_assert_eq!(serial.iterations, parallel.iterations);
    }

    /// A warm cache changes nothing but the work done.
    #[test]
    fn warm_cache_is_bit_identical_to_cold(mdp in arb_mdp(), rho in 0.1f64..0.9) {
        let g = MdpGraph::from_mdp(&mdp);
        let params = SimilarityParams::paper(rho);
        let mut engine = SimilarityEngine::parallel();
        let cold = engine.compute(&g, &params);
        let cold_solves = engine.stats().last_run.emd_solves;
        let warm = engine.compute(&g, &params);
        let warm_solves = engine.stats().last_run.emd_solves;
        prop_assert_eq!(&cold.sigma_s, &warm.sigma_s);
        prop_assert_eq!(&cold.sigma_a, &warm.sigma_a);
        prop_assert_eq!(cold.iterations, warm.iterations);
        prop_assert!(warm_solves <= cold_solves,
            "warm run solved more: {warm_solves} > {cold_solves}");
    }

    /// Memoization and pruning stay within fixpoint tolerance of the
    /// reference, and never break the matrix invariants.
    #[test]
    fn fast_path_stays_within_tolerance(mdp in arb_mdp(), rho in 0.1f64..0.9) {
        let g = MdpGraph::from_mdp(&mdp);
        let params = SimilarityParams::paper(rho);
        let seed = structural_similarity(&g, &params);
        let r = SimilarityEngine::parallel().compute(&g, &params);
        prop_assert!(r.sigma_s.max_abs_diff(&seed.sigma_s) < 1e-9);
        prop_assert!(r.sigma_a.max_abs_diff(&seed.sigma_a) < 1e-9);
        prop_assert!(r.sigma_s.all_within(0.0, 1.0));
        prop_assert!(r.sigma_a.all_within(0.0, 1.0));
        prop_assert!(r.sigma_s.is_symmetric(0.0));
        prop_assert!(r.sigma_a.is_symmetric(0.0));
    }
}
