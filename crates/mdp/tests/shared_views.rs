//! The fleet's sharing contract over solver artefacts.
//!
//! A fleet run hands the *same* solved artefacts to many threads at
//! once: calibration pool workers publish `Solution`s and
//! `Abstraction`s behind snapshot swaps, and every shard reads them
//! concurrently while ticking devices. That only stays safe as long as
//! the solver's read-only views are `Send + Sync` — a regression here
//! (say an `Rc` or a raw-pointer cache sneaking into `Solution`) would
//! surface as a distant, confusing compile error inside the fleet
//! crate. These assertions pin the contract where it belongs.

use capman_mdp::abstraction::Abstraction;
use capman_mdp::{Mdp, MdpGraph, SimilarityResult, Solution, SquareMatrix};

fn assert_shared_view<T: Send + Sync + 'static>() {}

#[test]
fn solver_artefacts_are_shareable_across_shards() {
    assert_shared_view::<Solution>();
    assert_shared_view::<Abstraction>();
    assert_shared_view::<SimilarityResult>();
    assert_shared_view::<SquareMatrix>();
    assert_shared_view::<Mdp>();
    assert_shared_view::<MdpGraph>();
}
