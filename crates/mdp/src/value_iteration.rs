//! Exact Bellman solving (Eqs. 8–9).
//!
//! ```text
//! V*(u) = max_{a in N_u} Q*(a)
//! Q*(a) = sum_u p(a, u) (r(a, u) + rho * V*(u))
//! ```
//!
//! The *Oracle* baseline is built on this solver; the structural-
//! similarity bound of Section III-D is verified against it in tests.
//!
//! # Sweep discipline
//!
//! [`solve`] iterates *Jacobi* sweeps: every state's backup in sweep
//! `k + 1` reads only the value vector of sweep `k`, never a value
//! written earlier in the same sweep. That makes the sweep
//! embarrassingly parallel over disjoint state chunks, and — because
//! each state's backup is the exact same sequence of floating-point
//! operations regardless of which chunk (or thread) computes it — the
//! serial and parallel schedules produce **bit-identical** solutions.
//! The residual is the sup norm of `V_{k+1} - V_k`, reduced with
//! `f64::max` (order-independent for the non-NaN values produced here),
//! so the iteration counts agree too. This is the same determinism
//! contract the similarity engine established for its row sweeps.
//!
//! The sweep itself runs over the MDP's structure-of-arrays solver view
//! (see the layout notes in [`crate::mdp`]): with the expected immediate
//! reward of every action node precomputed, a backup is
//! `max_a R(a) + rho * sum_i p_i * V[succ_i]` — one contiguous pass over
//! the successor/probability arrays, no reward loads, no action-id
//! indirection.
//!
//! # Warm starts
//!
//! [`solve_warm`] seeds the Jacobi iteration from a caller-supplied
//! value vector instead of zeros. Because value iteration is a
//! `rho`-contraction toward the unique fixed point `V*`, any seed
//! converges to the same solution; a seed within distance `d` of `V*`
//! needs only `O(log(d / eps) / log(1 / rho))` sweeps instead of
//! `O(log(||V*|| / eps) / log(1 / rho))`. The coarse-to-fine
//! recalibration pipeline ([`crate::pipeline`]) exploits this by
//! lifting each quotient level's solution into the next level's seed.
//!
//! # Precision policy
//!
//! The default sweep runs in `f64` and stays bitwise-contracted against
//! the nested Jacobi oracle. [`Precision::F32`] is an opt-in
//! structure-of-arrays variant for the gathered `p * V[succ]` kernel:
//! successor probabilities, expected rewards and the value buffer are
//! converted to `f32` once per solve and every sweep runs in single
//! precision (half the memory traffic per outcome, and a layout the
//! compiler can keep in wider SIMD lanes). Because `f32` cannot resolve
//! residuals much below the ULP of the value magnitudes, the requested
//! `eps` is clamped to at least [`F32_EPS_FLOOR`] and a stall guard
//! stops the sweep when the residual plateaus; the result is within
//! about `1e-3` of the `f64` fixed point for `rho <= 0.9` device
//! graphs (pinned by the `warm_equivalence` proptests). Q-values and
//! the greedy policy are always extracted in `f64`.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::engine::ExecutionMode;
use crate::mdp::{Mdp, SolverView};

/// States per parallel work unit. Fixed (not derived from the thread
/// count) so the chunk boundaries — and therefore the work partition —
/// are stable across machines; bit-identity does not depend on this, it
/// only keeps scheduling deterministic.
const PAR_CHUNK: usize = 64;

/// Below this state count a parallel sweep costs more in fan-out than
/// it recovers; [`solve`] picks the serial schedule.
const PAR_MIN_STATES: usize = 256;

/// Sweep-count ceiling: with valid `(rho, eps)` the contraction always
/// converges long before this; it only bounds a runaway loop on
/// pathological inputs.
const MAX_SWEEPS: usize = 1_000_000;

/// The smallest effective `eps` the `f32` sweep will chase. Below this
/// the residual is dominated by single-precision rounding of values up
/// to `1 / (1 - rho)` and the iteration would never terminate on its
/// own.
pub const F32_EPS_FLOOR: f64 = 1e-4;

/// Consecutive non-improving `f32` sweeps tolerated before the stall
/// guard stops the iteration at the best residual reached.
const F32_STALL_SWEEPS: usize = 50;

/// Floating-point width of the Bellman sweep kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Double precision — the bitwise-contracted default.
    #[default]
    F64,
    /// Opt-in single-precision structure-of-arrays sweep for devices
    /// where ~1e-3 value precision suffices (see the module docs for
    /// the exact contract).
    F32,
}

/// Panic with a clear message unless `rho` and `eps` parameterise a
/// contracting Bellman operator that can actually converge.
///
/// `rho = 0` is rejected too: the paper's discounted MDP assumes a
/// strictly positive discount, and accepting it would silently turn the
/// solve into a one-step bandit.
pub(crate) fn validate_solver_params(rho: f64, eps: f64) {
    assert!(
        rho.is_finite() && rho > 0.0 && rho < 1.0,
        "discount rho must be in (0, 1) for a contracting Bellman operator, got {rho}"
    );
    assert!(
        eps.is_finite() && eps > 0.0,
        "precision eps must be positive and finite, got {eps}"
    );
}

/// The serial/parallel dispatch [`solve`] uses, exposed to the
/// recalibration pipeline so every level picks the same heuristic.
pub(crate) fn auto_mode(n_states: usize) -> ExecutionMode {
    if n_states >= PAR_MIN_STATES && rayon::current_num_threads() > 1 {
        ExecutionMode::Parallel
    } else {
        ExecutionMode::Serial
    }
}

/// An exact solution of a discounted MDP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Optimal state values `V*`.
    pub values: Vec<f64>,
    /// Optimal action values `Q*[s][a]` (`f64::NEG_INFINITY` where the
    /// action is unavailable).
    pub q: Vec<Vec<f64>>,
    /// Greedy policy: the maximising action per state, `None` for
    /// absorbing states.
    pub policy: Vec<Option<usize>>,
    /// Bellman sweeps performed.
    pub iterations: usize,
}

/// One Jacobi backup of `state`: the best available action value under
/// the previous sweep's `values`, zero when the state is absorbing.
#[inline]
fn backup(view: &SolverView<'_>, rho: f64, values: &[f64], state: usize) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for k in view.action_ptr[state]..view.action_ptr[state + 1] {
        let (lo, hi) = (view.node_ptr[k], view.node_ptr[k + 1]);
        let mut pv = 0.0;
        for (&n, &p) in view.succ[lo..hi].iter().zip(&view.prob[lo..hi]) {
            pv += p * values[n as usize];
        }
        best = best.max(view.node_reward[k] + rho * pv);
    }
    if best.is_finite() {
        best
    } else {
        0.0
    }
}

/// One full Jacobi sweep: `next[s] = backup(s)` for every state, reading
/// only `values`. The parallel schedule deals disjoint `PAR_CHUNK`-state
/// chunks across the cores; per-state arithmetic is identical either
/// way.
fn jacobi_sweep(
    view: &SolverView<'_>,
    rho: f64,
    values: &[f64],
    next: &mut [f64],
    mode: ExecutionMode,
) {
    match mode {
        ExecutionMode::Serial => {
            for (s, slot) in next.iter_mut().enumerate() {
                *slot = backup(view, rho, values, s);
            }
        }
        ExecutionMode::Parallel => {
            next.par_chunks_mut(PAR_CHUNK)
                .enumerate()
                .for_each(|chunk_idx, chunk| {
                    let base = chunk_idx * PAR_CHUNK;
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = backup(view, rho, values, base + i);
                    }
                });
        }
    }
}

/// Run Jacobi sweeps in `f64` from the seed in `values` until the sup
/// residual drops under `eps`. `values` holds the fixed point on
/// return; `scratch` is the double buffer (resized as needed). Returns
/// the sweep count.
fn converge_f64(
    view: &SolverView<'_>,
    rho: f64,
    eps: f64,
    values: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
    mode: ExecutionMode,
) -> usize {
    let n = values.len();
    scratch.clear();
    scratch.resize(n, 0.0);
    let mut sweeps = 0;
    loop {
        sweeps += 1;
        jacobi_sweep(view, rho, values, scratch, mode);
        let mut residual: f64 = 0.0;
        for s in 0..n {
            residual = residual.max((scratch[s] - values[s]).abs());
        }
        std::mem::swap(values, scratch);
        if residual < eps || sweeps > MAX_SWEEPS {
            return sweeps;
        }
    }
}

/// The gathered kernel's columns with the probability / expected-reward
/// arrays mirrored to `f32` — what [`backup_f32`] sweeps over.
struct ViewF32<'a> {
    succ: &'a [u32],
    prob: Vec<f32>,
    node_ptr: &'a [usize],
    node_reward: Vec<f32>,
    action_ptr: &'a [usize],
}

impl<'a> ViewF32<'a> {
    fn from_view(view: &SolverView<'a>) -> Self {
        ViewF32 {
            succ: view.succ,
            prob: view.prob.iter().map(|&p| p as f32).collect(),
            node_ptr: view.node_ptr,
            node_reward: view.node_reward.iter().map(|&r| r as f32).collect(),
            action_ptr: view.action_ptr,
        }
    }
}

/// The single-precision mirror of [`backup`], over a [`ViewF32`].
#[inline]
fn backup_f32(view: &ViewF32<'_>, rho: f32, values: &[f32], state: usize) -> f32 {
    let mut best = f32::NEG_INFINITY;
    for k in view.action_ptr[state]..view.action_ptr[state + 1] {
        let (lo, hi) = (view.node_ptr[k], view.node_ptr[k + 1]);
        let mut pv = 0.0f32;
        for (&n, &p) in view.succ[lo..hi].iter().zip(&view.prob[lo..hi]) {
            pv += p * values[n as usize];
        }
        best = best.max(view.node_reward[k] + rho * pv);
    }
    if best.is_finite() {
        best
    } else {
        0.0
    }
}

/// Run the opt-in `f32` sweep from the `f64` seed in `values`,
/// converting at the boundaries. Chases `eps.max(F32_EPS_FLOOR)` with a
/// plateau guard (see the module docs). `values` holds the (converted
/// back) result on return.
fn converge_f32(
    view: &SolverView<'_>,
    rho: f64,
    eps: f64,
    values: &mut [f64],
    mode: ExecutionMode,
) -> usize {
    let n = values.len();
    // One-time f32 mirrors of the gathered kernel's columns.
    let view32 = ViewF32::from_view(view);
    let mut v: Vec<f32> = values.iter().map(|&x| x as f32).collect();
    let mut next = vec![0.0f32; n];
    let rho32 = rho as f32;
    let eps32 = eps.max(F32_EPS_FLOOR) as f32;

    let sweep = |v: &[f32], next: &mut [f32]| match mode {
        ExecutionMode::Serial => {
            for (s, slot) in next.iter_mut().enumerate() {
                *slot = backup_f32(&view32, rho32, v, s);
            }
        }
        ExecutionMode::Parallel => {
            next.par_chunks_mut(PAR_CHUNK)
                .enumerate()
                .for_each(|chunk_idx, chunk| {
                    let base = chunk_idx * PAR_CHUNK;
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = backup_f32(&view32, rho32, v, base + i);
                    }
                });
        }
    };

    let mut sweeps = 0;
    let mut best_residual = f32::INFINITY;
    let mut stalled = 0;
    loop {
        sweeps += 1;
        sweep(&v, &mut next);
        let mut residual: f32 = 0.0;
        for s in 0..n {
            residual = residual.max((next[s] - v[s]).abs());
        }
        std::mem::swap(&mut v, &mut next);
        if residual < best_residual {
            best_residual = residual;
            stalled = 0;
        } else {
            stalled += 1;
        }
        if residual < eps32 || stalled >= F32_STALL_SWEEPS || sweeps > MAX_SWEEPS {
            break;
        }
    }
    for (slot, &x) in values.iter_mut().zip(&v) {
        *slot = f64::from(x);
    }
    sweeps
}

/// Converge `values` (the warm-start seed, fixed point on return) on a
/// raw solver view — the entry the recalibration pipeline drives for
/// quotient levels that never materialise an [`Mdp`]. Returns the sweep
/// count. `scratch` is only used by the `f64` path.
pub(crate) fn converge_view(
    view: &SolverView<'_>,
    rho: f64,
    eps: f64,
    values: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
    mode: ExecutionMode,
    precision: Precision,
) -> usize {
    let sweeps = match precision {
        Precision::F64 => converge_f64(view, rho, eps, values, scratch, mode),
        Precision::F32 => converge_f32(view, rho, eps, values, mode),
    };
    if capman_obs::enabled() {
        capman_obs::counter!(
            "bellman_solves_total",
            "Value-iteration solves run to convergence"
        )
        .inc();
        capman_obs::counter!("bellman_sweeps_total", "Jacobi sweeps across all solves")
            .add(sweeps as u64);
    }
    sweeps
}

/// Converge only the states listed in `active` (ascending, unique),
/// leaving every other entry of `values` frozen — the restricted sweep
/// behind [`crate::pipeline::RecalibrationPipeline::solve_incremental`].
///
/// The residual is the sup norm over the *active* states only. That is
/// sound exactly when the frozen states' backups are already below
/// `eps` and stay there, i.e. when `active` is closed under
/// predecessors of every state whose Bellman operator changed: a frozen
/// state then reads only frozen successors, so its residual is whatever
/// the previous converged solve left it at. The pipeline constructs
/// `active` as that backward closure.
///
/// Runs serially in `f64` regardless of the session's execution mode:
/// the whole point of the mask is that the active set is small, where
/// parallel fan-out costs more than it recovers (large dirty fractions
/// take the pipeline's full-solve fallback instead, which parallelises
/// as usual).
///
/// Returns the sweep count (0 for an empty active set).
pub(crate) fn converge_view_masked(
    view: &SolverView<'_>,
    rho: f64,
    eps: f64,
    values: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
    active: &[usize],
) -> usize {
    if active.is_empty() {
        return 0;
    }
    // Both buffers agree on the frozen states for the whole solve; each
    // sweep rewrites every active slot, so swapping stays a plain
    // Jacobi double buffer restricted to `active`.
    scratch.clear();
    scratch.extend_from_slice(values);
    let mut sweeps = 0;
    loop {
        sweeps += 1;
        let mut residual: f64 = 0.0;
        for &s in active {
            let v = backup(view, rho, values, s);
            residual = residual.max((v - values[s]).abs());
            scratch[s] = v;
        }
        std::mem::swap(values, scratch);
        if residual < eps || sweeps > MAX_SWEEPS {
            break;
        }
    }
    if capman_obs::enabled() {
        capman_obs::counter!(
            "bellman_solves_total",
            "Value-iteration solves run to convergence"
        )
        .inc();
        capman_obs::counter!("bellman_sweeps_total", "Jacobi sweeps across all solves")
            .add(sweeps as u64);
    }
    sweeps
}

/// Extract `Q*` and the greedy policy from converged `values`, in
/// `f64`. Walks only the packed action nodes — unavailable actions
/// default to `NEG_INFINITY` without probing their empty rows. Each Q
/// value uses the same expected-reward-hoisted arithmetic as the sweep,
/// so Q*, V* and the greedy policy agree bitwise with the nested Jacobi
/// oracle on the default path.
pub(crate) fn extract_q_policy(
    mdp: &Mdp,
    view: &SolverView<'_>,
    rho: f64,
    values: &[f64],
) -> (Vec<Vec<f64>>, Vec<Option<usize>>) {
    let n = mdp.n_states();
    let mut q = vec![Vec::new(); n];
    let mut policy = vec![None; n];
    for s in 0..n {
        let mut row = vec![f64::NEG_INFINITY; mdp.n_actions()];
        for (k, &a) in (view.action_ptr[s]..view.action_ptr[s + 1]).zip(mdp.action_list(s)) {
            let (lo, hi) = (view.node_ptr[k], view.node_ptr[k + 1]);
            let mut pv = 0.0;
            for (&nx, &p) in view.succ[lo..hi].iter().zip(&view.prob[lo..hi]) {
                pv += p * values[nx as usize];
            }
            row[a as usize] = view.node_reward[k] + rho * pv;
        }
        policy[s] = mdp
            .available_actions(s)
            .max_by(|&a, &b| row[a].total_cmp(&row[b]));
        q[s] = row;
    }
    (q, policy)
}

/// Solve the MDP by value iteration to precision `eps` (sup norm of the
/// Bellman residual).
///
/// Absorbing states have value zero, matching the paper's convention that
/// target states terminate the accumulation.
///
/// Dispatches to the parallel sweep on large state spaces when more than
/// one core is available; both schedules return bit-identical solutions
/// (see the module docs), so the dispatch is unobservable apart from
/// wall clock.
///
/// # Panics
///
/// Panics if `rho` is not in `(0, 1)` or `eps` is not positive.
pub fn solve(mdp: &Mdp, rho: f64, eps: f64) -> Solution {
    solve_with_mode(mdp, rho, eps, auto_mode(mdp.n_states()))
}

/// [`solve`] with an explicit sweep schedule — the form the equivalence
/// proptests and the `mdp_solve` bench pin down.
///
/// # Panics
///
/// Panics if `rho` is not in `(0, 1)` or `eps` is not positive.
pub fn solve_with_mode(mdp: &Mdp, rho: f64, eps: f64, mode: ExecutionMode) -> Solution {
    let zeros = vec![0.0; mdp.n_states()];
    solve_warm_with(mdp, rho, eps, &zeros, mode, Precision::F64)
}

/// [`solve_with_mode`] seeded from a prior value vector `v0` instead of
/// zeros — the warm-start entry of the coarse-to-fine recalibration
/// pipeline. Converges to the same fixed point as the cold solve (the
/// Bellman operator has a unique one); only the sweep count depends on
/// how close the seed already is.
///
/// # Panics
///
/// Panics if `rho` is not in `(0, 1)`, `eps` is not positive, or `v0`
/// is not `n_states` finite values.
pub fn solve_warm(mdp: &Mdp, rho: f64, eps: f64, v0: &[f64], mode: ExecutionMode) -> Solution {
    solve_warm_with(mdp, rho, eps, v0, mode, Precision::F64)
}

/// [`solve_warm`] with an explicit kernel [`Precision`]. `F64` is the
/// bitwise-contracted default; `F32` trades ~1e-3 value precision for a
/// narrower sweep (see the module docs for the exact contract).
///
/// # Panics
///
/// Panics if `rho` is not in `(0, 1)`, `eps` is not positive, or `v0`
/// is not `n_states` finite values.
pub fn solve_warm_with(
    mdp: &Mdp,
    rho: f64,
    eps: f64,
    v0: &[f64],
    mode: ExecutionMode,
    precision: Precision,
) -> Solution {
    validate_solver_params(rho, eps);
    assert!(
        v0.len() == mdp.n_states(),
        "warm-start vector has {} values for {} states",
        v0.len(),
        mdp.n_states()
    );
    assert!(
        v0.iter().all(|v| v.is_finite()),
        "warm-start values must be finite"
    );
    let view = mdp.solver_view();
    let mut values = v0.to_vec();
    let mut scratch = Vec::new();
    let iterations = converge_view(&view, rho, eps, &mut values, &mut scratch, mode, precision);
    let (q, policy) = extract_q_policy(mdp, &view, rho, &values);
    Solution {
        values,
        q,
        policy,
        iterations,
    }
}

/// Evaluate a fixed (deterministic) policy's state values.
///
/// States where the policy provides no action (or an unavailable one)
/// are treated as absorbing.
///
/// # Panics
///
/// Panics if `rho` is not in `(0, 1)` or `eps` is not positive, or the
/// policy is shorter than the state space.
pub fn evaluate_policy(mdp: &Mdp, policy: &[Option<usize>], rho: f64, eps: f64) -> Vec<f64> {
    validate_solver_params(rho, eps);
    assert!(policy.len() >= mdp.n_states(), "policy too short");
    let n = mdp.n_states();
    let mut values = vec![0.0; n];
    loop {
        let mut residual: f64 = 0.0;
        for s in 0..n {
            let new = match policy[s] {
                Some(a) if !mdp.outcomes(s, a).is_empty() => mdp
                    .outcomes(s, a)
                    .iter()
                    .map(|o| o.prob * (o.reward + rho * values[o.next]))
                    .sum(),
                _ => 0.0,
            };
            residual = residual.max((new - values[s]).abs());
            values[s] = new;
        }
        if residual < eps {
            return values;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;

    fn two_armed() -> Mdp {
        // State 0 chooses between a low arm (r=0.2) and a high arm
        // (r=0.9), both leading to the absorbing state 1.
        let mut b = MdpBuilder::new(2, 2);
        b.transition(0, 0, 1, 1.0, 0.2);
        b.transition(0, 1, 1, 1.0, 0.9);
        b.build()
    }

    #[test]
    fn picks_the_better_arm() {
        let sol = solve(&two_armed(), 0.9, 1e-10);
        assert_eq!(sol.policy[0], Some(1));
        assert!((sol.values[0] - 0.9).abs() < 1e-9);
        assert_eq!(sol.values[1], 0.0);
        assert_eq!(sol.policy[1], None);
    }

    #[test]
    fn geometric_series_on_a_self_loop() {
        // A self-loop with reward 1 has value 1/(1-rho).
        let mut b = MdpBuilder::new(1, 1);
        b.transition(0, 0, 0, 1.0, 1.0);
        let m = b.build();
        let rho = 0.8;
        let sol = solve(&m, rho, 1e-12);
        assert!((sol.values[0] - 1.0 / (1.0 - rho)).abs() < 1e-6);
    }

    #[test]
    fn values_bounded_by_one_over_one_minus_rho() {
        // With rewards in [0,1], V* <= 1/(1-rho) always.
        let mut b = MdpBuilder::new(4, 3);
        b.transition(0, 0, 1, 0.5, 1.0);
        b.transition(0, 0, 2, 0.5, 0.7);
        b.transition(1, 1, 0, 1.0, 0.9);
        b.transition(2, 2, 3, 1.0, 1.0);
        b.transition(3, 0, 0, 1.0, 1.0);
        let m = b.build();
        let rho = 0.95;
        let sol = solve(&m, rho, 1e-10);
        for v in &sol.values {
            assert!(*v <= 1.0 / (1.0 - rho) + 1e-6);
            assert!(*v >= 0.0);
        }
    }

    #[test]
    fn policy_evaluation_matches_optimal_for_optimal_policy() {
        let m = two_armed();
        let sol = solve(&m, 0.9, 1e-10);
        let v = evaluate_policy(&m, &sol.policy, 0.9, 1e-10);
        for (a, b) in v.iter().zip(&sol.values) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn suboptimal_policy_has_lower_value() {
        let m = two_armed();
        let v = evaluate_policy(&m, &[Some(0), None], 0.9, 1e-10);
        assert!((v[0] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn stochastic_transitions_average_rewards() {
        let mut b = MdpBuilder::new(3, 1);
        b.transition(0, 0, 1, 0.5, 0.0);
        b.transition(0, 0, 2, 0.5, 1.0);
        let sol = solve(&b.build(), 0.5, 1e-12);
        assert!((sol.values[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn higher_discount_raises_values_on_recurrent_chains() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 1, 1.0, 0.5);
        b.transition(1, 0, 0, 1.0, 0.5);
        let m = b.build();
        let lo = solve(&m, 0.5, 1e-12).values[0];
        let hi = solve(&m, 0.95, 1e-12).values[0];
        assert!(hi > lo);
    }

    #[test]
    #[should_panic(expected = "discount")]
    fn rejects_discount_of_one() {
        let _ = solve(&two_armed(), 1.0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "discount")]
    fn rejects_discount_of_zero() {
        let _ = solve(&two_armed(), 0.0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn rejects_non_positive_eps() {
        let _ = solve(&two_armed(), 0.9, 0.0);
    }

    #[test]
    #[should_panic(expected = "warm-start vector")]
    fn rejects_missized_warm_start() {
        let _ = solve_warm(&two_armed(), 0.9, 1e-9, &[0.0], ExecutionMode::Serial);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_warm_start() {
        let _ = solve_warm(
            &two_armed(),
            0.9,
            1e-9,
            &[0.0, f64::NAN],
            ExecutionMode::Serial,
        );
    }

    /// A deterministic pseudo-random MDP big enough to span several
    /// parallel chunks (and a ragged tail chunk).
    fn chunky_mdp(n_states: usize) -> Mdp {
        let mut b = MdpBuilder::new(n_states, 4);
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for s in 0..n_states - 1 {
            for a in 0..4 {
                if rand() % 4 == 0 {
                    continue; // leave some actions unavailable
                }
                for _ in 0..1 + rand() % 3 {
                    let next = (rand() as usize) % n_states;
                    let w = 1.0 + (rand() % 100) as f64 / 10.0;
                    let r = (rand() % 1000) as f64 / 1000.0;
                    b.transition(s, a, next, w, r);
                }
            }
        }
        b.build()
    }

    #[test]
    fn parallel_schedule_is_bit_identical_to_serial() {
        let m = chunky_mdp(3 * PAR_CHUNK + 17);
        for rho in [0.5, 0.95] {
            let serial = solve_with_mode(&m, rho, 1e-9, ExecutionMode::Serial);
            let parallel = solve_with_mode(&m, rho, 1e-9, ExecutionMode::Parallel);
            assert_eq!(serial.iterations, parallel.iterations);
            assert_eq!(serial.policy, parallel.policy);
            for (a, b) in serial.values.iter().zip(&parallel.values) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn auto_dispatch_matches_explicit_modes() {
        let m = chunky_mdp(300);
        let auto = solve(&m, 0.9, 1e-9);
        let serial = solve_with_mode(&m, 0.9, 1e-9, ExecutionMode::Serial);
        for (a, b) in auto.values.iter().zip(&serial.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn warm_start_from_the_solution_converges_in_one_sweep() {
        let m = chunky_mdp(120);
        let cold = solve_with_mode(&m, 0.9, 1e-9, ExecutionMode::Serial);
        let warm = solve_warm(&m, 0.9, 1e-9, &cold.values, ExecutionMode::Serial);
        assert_eq!(warm.iterations, 1, "a fixed-point seed needs one sweep");
        assert_eq!(warm.policy, cold.policy);
        for (a, b) in warm.values.iter().zip(&cold.values) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn warm_start_reaches_the_cold_fixed_point_from_a_bad_seed() {
        let m = chunky_mdp(120);
        let rho = 0.9;
        let cold = solve_with_mode(&m, rho, 1e-10, ExecutionMode::Serial);
        // Adversarial seed: the value ceiling everywhere.
        let seed = vec![1.0 / (1.0 - rho); m.n_states()];
        let warm = solve_warm(&m, rho, 1e-10, &seed, ExecutionMode::Serial);
        assert_eq!(warm.policy, cold.policy);
        for (a, b) in warm.values.iter().zip(&cold.values) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_seed_warm_solve_is_bitwise_the_cold_solve() {
        let m = chunky_mdp(90);
        let cold = solve_with_mode(&m, 0.8, 1e-9, ExecutionMode::Serial);
        let warm = solve_warm(
            &m,
            0.8,
            1e-9,
            &vec![0.0; m.n_states()],
            ExecutionMode::Serial,
        );
        assert_eq!(warm.iterations, cold.iterations);
        for (a, b) in warm.values.iter().zip(&cold.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f32_sweep_tracks_the_f64_oracle() {
        let m = chunky_mdp(200);
        for rho in [0.5, 0.9] {
            let oracle = solve_with_mode(&m, rho, 1e-10, ExecutionMode::Serial);
            let fast = solve_warm_with(
                &m,
                rho,
                1e-10,
                &vec![0.0; m.n_states()],
                ExecutionMode::Serial,
                Precision::F32,
            );
            for (s, (a, b)) in fast.values.iter().zip(&oracle.values).enumerate() {
                assert!((a - b).abs() < 1e-3, "rho {rho} state {s}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fully_active_masked_converge_is_bitwise_the_plain_converge() {
        let m = chunky_mdp(150);
        let view = m.solver_view();
        let seed = vec![0.25; m.n_states()];
        let all: Vec<usize> = (0..m.n_states()).collect();

        let mut plain = seed.clone();
        let mut scratch = Vec::new();
        let plain_sweeps = converge_f64(
            &view,
            0.9,
            1e-9,
            &mut plain,
            &mut scratch,
            ExecutionMode::Serial,
        );

        let mut masked = seed;
        let mut scratch2 = Vec::new();
        let masked_sweeps =
            converge_view_masked(&view, 0.9, 1e-9, &mut masked, &mut scratch2, &all);

        assert_eq!(plain_sweeps, masked_sweeps);
        for (a, b) in plain.iter().zip(&masked) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn masked_converge_freezes_inactive_states() {
        let m = chunky_mdp(120);
        let view = m.solver_view();
        let cold = solve_with_mode(&m, 0.9, 1e-9, ExecutionMode::Serial);
        let mut values = cold.values.clone();
        // Poison a handful of inactive entries; they must come back
        // bit-for-bit untouched.
        values[3] = 7.5;
        values[77] = -2.0;
        let active: Vec<usize> = (10..40).collect();
        let mut scratch = Vec::new();
        let sweeps = converge_view_masked(&view, 0.9, 1e-9, &mut values, &mut scratch, &active);
        assert!(sweeps >= 1);
        assert_eq!(values[3].to_bits(), 7.5f64.to_bits());
        assert_eq!(values[77].to_bits(), (-2.0f64).to_bits());
        assert_eq!(
            converge_view_masked(&view, 0.9, 1e-9, &mut values, &mut scratch, &[]),
            0,
            "an empty active set is a no-op"
        );
    }

    #[test]
    fn f32_parallel_and_serial_schedules_agree() {
        let m = chunky_mdp(3 * PAR_CHUNK + 5);
        let zeros = vec![0.0; m.n_states()];
        let serial = solve_warm_with(&m, 0.9, 1e-9, &zeros, ExecutionMode::Serial, Precision::F32);
        let parallel = solve_warm_with(
            &m,
            0.9,
            1e-9,
            &zeros,
            ExecutionMode::Parallel,
            Precision::F32,
        );
        assert_eq!(serial.iterations, parallel.iterations);
        for (a, b) in serial.values.iter().zip(&parallel.values) {
            assert_eq!(a.to_bits(), b.to_bits(), "f32 sweeps are chunk-invariant");
        }
    }
}
