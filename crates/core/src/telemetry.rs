//! Time-series telemetry (the signals behind Figs. 13 and 15), plus the
//! background-calibration event log fed by the similarity engine.

use serde::{Deserialize, Serialize};

use capman_battery::chemistry::Class;

/// One telemetry sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Simulation time, seconds.
    pub time_s: f64,
    /// Total active power drawn from the pack, milliwatts.
    pub power_mw: f64,
    /// Hot-spot temperature, degC.
    pub hotspot_c: f64,
    /// Shell (skin) temperature, degC.
    pub shell_c: f64,
    /// Battery node temperature, degC.
    pub battery_c: f64,
    /// State of charge of the big cell.
    pub big_soc: f64,
    /// State of charge of the LITTLE cell (1.0 for single packs).
    pub little_soc: f64,
    /// The cell carrying the load.
    pub active: Class,
    /// Whether the TEC was energised.
    pub tec_on: bool,
    /// Terminal voltage of the active cell, volts.
    pub voltage_v: f64,
}

/// One background-calibration event: when it ran and what the similarity
/// engine did (sweeps, exact EMD solves, memo-cache hits, bound-pruned
/// pairs, wall time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationSample {
    /// Simulation time the calibration ran, seconds.
    pub time_s: f64,
    /// Fixpoint sweeps of Algorithm 1.
    pub sweeps: usize,
    /// Exact SSP solves performed by the engine.
    pub emd_solves: usize,
    /// Pairs served from the EMD memo cache.
    pub cache_hits: usize,
    /// Pairs decided by the EMD bounds without a solve.
    pub bound_pruned: usize,
    /// Wall time of the engine run, microseconds.
    pub wall_us: f64,
    /// Action nodes in the pruned calibration graph.
    pub graph_action_nodes: usize,
    /// Jacobi sweeps of the coarse-to-fine Bellman pipeline (quotient
    /// levels plus the final full-space solve).
    pub bellman_sweeps: usize,
    /// Quotient levels the pipeline solved before the full space.
    pub bellman_levels: usize,
    /// Whether the solve was seeded from the previous calibration.
    pub warm_started: bool,
    /// Simulated seconds between the calibration being requested and
    /// the first scheduling tick that observed its result. Zero for
    /// inline (blocking) calibrations; positive when the work ran on an
    /// asynchronous pool while the device kept ticking.
    pub staleness_s: f64,
}

impl CalibrationSample {
    /// Fraction of non-pruned pair evaluations served by the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let looked_up = self.cache_hits + self.emd_solves;
        if looked_up == 0 {
            0.0
        } else {
            self.cache_hits as f64 / looked_up as f64
        }
    }
}

/// Throughput counters of one fleet shard: how many devices a worker
/// carried through how many scheduling ticks, and the wall-clock it
/// took. The fleet runner fills one per shard and the report derives
/// devices/sec and ticks/sec from the sums; they live here (rather than
/// in the fleet crate) so single-run tooling can emit the same counter
/// shape for a "fleet of one".
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ShardThroughput {
    /// Shard index within the run.
    pub shard: usize,
    /// Devices simulated by this shard.
    pub devices: u64,
    /// Scheduling ticks executed across those devices.
    pub ticks: u64,
    /// Wall-clock the shard took, milliseconds.
    pub wall_ms: f64,
}

impl ShardThroughput {
    /// Devices per wall-clock second (0.0 for a zero-duration shard).
    pub fn devices_per_s(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.devices as f64 / (self.wall_ms / 1e3)
    }

    /// Scheduling ticks per wall-clock second (0.0 for a zero-duration
    /// shard).
    pub fn ticks_per_s(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.ticks as f64 / (self.wall_ms / 1e3)
    }
}

/// Where the simulation engine delivers telemetry: the full time series
/// ([`Telemetry`]) or the fleet arena's counters ([`LeanTelemetry`]).
///
/// The engine constructs samples identically for every sink; a sink only
/// chooses what to *retain*, so swapping sinks cannot change simulation
/// results.
pub trait TelemetrySink {
    /// Deliver one time-series sample.
    fn record_sample(&mut self, sample: Sample);
    /// Deliver one background-calibration event.
    fn record_calibration(&mut self, sample: CalibrationSample);
}

/// A constant-memory telemetry sink for fleet-scale runs: counts samples
/// and folds the calibration staleness maximum instead of retaining the
/// series.
///
/// The counters match the full sink exactly: `samples` equals
/// [`Telemetry::len`] and `max_staleness_s` equals
/// [`Telemetry::max_calibration_staleness_s`] for the same delivery
/// sequence.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LeanTelemetry {
    /// Number of samples delivered (the device's scheduling-tick count
    /// as fleet summaries define it).
    pub samples: u64,
    /// Number of calibration events delivered.
    pub calibrations: u64,
    /// Largest calibration staleness observed, simulated seconds (0.0
    /// when no calibration ran or all were inline).
    pub max_staleness_s: f64,
}

impl TelemetrySink for LeanTelemetry {
    fn record_sample(&mut self, _sample: Sample) {
        self.samples += 1;
    }

    fn record_calibration(&mut self, sample: CalibrationSample) {
        self.calibrations += 1;
        self.max_staleness_s = f64::max(self.max_staleness_s, sample.staleness_s);
    }
}

/// A sampled time series with summary statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Telemetry {
    samples: Vec<Sample>,
    calibrations: Vec<CalibrationSample>,
}

impl TelemetrySink for Telemetry {
    fn record_sample(&mut self, sample: Sample) {
        self.push(sample);
    }

    fn record_calibration(&mut self, sample: CalibrationSample) {
        self.push_calibration(sample);
    }
}

impl Telemetry {
    /// An empty series.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Append a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Append a background-calibration event.
    pub fn push_calibration(&mut self, sample: CalibrationSample) {
        self.calibrations.push(sample);
    }

    /// All calibration events in time order.
    pub fn calibrations(&self) -> &[CalibrationSample] {
        &self.calibrations
    }

    /// Mean engine wall time per calibration, microseconds (0.0 when no
    /// calibration ran — fleet aggregation folds empty shards, so every
    /// aggregate here is total on empty sample sets).
    pub fn mean_calibration_wall_us(&self) -> f64 {
        if self.calibrations.is_empty() {
            return 0.0;
        }
        self.calibrations.iter().map(|c| c.wall_us).sum::<f64>() / self.calibrations.len() as f64
    }

    /// Largest calibration staleness observed, simulated seconds (0.0
    /// when no calibration ran or all were inline).
    pub fn max_calibration_staleness_s(&self) -> f64 {
        self.calibrations
            .iter()
            .map(|c| c.staleness_s)
            .fold(0.0, f64::max)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Maximum hot-spot temperature seen, degC (0.0 on an empty series
    /// — an empty shard must fold to a finite aggregate, not -inf).
    pub fn max_hotspot_c(&self) -> f64 {
        self.samples.iter().map(|s| s.hotspot_c).fold(0.0, f64::max)
    }

    /// Mean hot-spot temperature, degC (0.0 on an empty series).
    pub fn mean_hotspot_c(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.hotspot_c).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean active power, milliwatts (0.0 on an empty series).
    pub fn mean_power_mw(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.power_mw).sum::<f64>() / self.samples.len() as f64
    }

    /// Peak active power, milliwatts (0.0 on an empty series).
    pub fn max_power_mw(&self) -> f64 {
        self.samples.iter().map(|s| s.power_mw).fold(0.0, f64::max)
    }

    /// Fraction of samples with the TEC energised.
    pub fn tec_duty(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.tec_on).count() as f64 / self.samples.len() as f64
    }

    /// Fraction of samples with the LITTLE cell active.
    pub fn little_share(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .filter(|s| s.active == Class::Little)
            .count() as f64
            / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, power: f64, hot: f64, tec: bool, active: Class) -> Sample {
        Sample {
            time_s: t,
            power_mw: power,
            hotspot_c: hot,
            shell_c: 30.0,
            battery_c: 28.0,
            big_soc: 0.8,
            little_soc: 0.7,
            active,
            tec_on: tec,
            voltage_v: 3.7,
        }
    }

    #[test]
    fn summary_statistics() {
        let mut t = Telemetry::new();
        t.push(sample(0.0, 1000.0, 40.0, false, Class::Big));
        t.push(sample(30.0, 2000.0, 50.0, true, Class::Little));
        assert_eq!(t.len(), 2);
        assert!((t.mean_power_mw() - 1500.0).abs() < 1e-9);
        assert_eq!(t.max_power_mw(), 2000.0);
        assert_eq!(t.max_hotspot_c(), 50.0);
        assert!((t.mean_hotspot_c() - 45.0).abs() < 1e-9);
        assert!((t.tec_duty() - 0.5).abs() < 1e-12);
        assert!((t.little_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_series_aggregates_to_zero_not_nan() {
        // Fleet aggregation folds empty shards through these; every
        // aggregate must be a number, not NaN.
        let t = Telemetry::new();
        assert!(t.is_empty());
        assert_eq!(t.tec_duty(), 0.0);
        assert_eq!(t.little_share(), 0.0);
        assert_eq!(t.mean_power_mw(), 0.0);
        assert_eq!(t.mean_hotspot_c(), 0.0);
        assert!(t.calibrations().is_empty());
        assert_eq!(t.mean_calibration_wall_us(), 0.0);
        assert_eq!(t.max_calibration_staleness_s(), 0.0);
        assert_eq!(t.max_power_mw(), 0.0, "peak of nothing is 0, not -inf");
        assert_eq!(t.max_hotspot_c(), 0.0, "peak of nothing is 0, not -inf");
    }

    #[test]
    fn zero_denominator_ratios_are_zero_not_nan() {
        // Every ratio helper on this type must survive a zero
        // denominator: a calibration that never looked a pair up, and a
        // shard that finished in under the clock's resolution.
        let no_lookups = CalibrationSample {
            time_s: 0.0,
            sweeps: 0,
            emd_solves: 0,
            cache_hits: 0,
            bound_pruned: 5,
            wall_us: 0.0,
            graph_action_nodes: 0,
            bellman_sweeps: 0,
            bellman_levels: 0,
            warm_started: false,
            staleness_s: 0.0,
        };
        assert_eq!(no_lookups.cache_hit_rate(), 0.0);
        let instant = ShardThroughput {
            shard: 0,
            devices: 64,
            ticks: 64_000,
            wall_ms: 0.0,
        };
        assert_eq!(instant.devices_per_s(), 0.0);
        assert_eq!(instant.ticks_per_s(), 0.0);
        let negative_wall = ShardThroughput {
            wall_ms: -1.0,
            ..instant
        };
        assert_eq!(negative_wall.devices_per_s(), 0.0);
        assert_eq!(negative_wall.ticks_per_s(), 0.0);
    }

    #[test]
    fn shard_throughput_rates_handle_zero_wall() {
        let idle = ShardThroughput::default();
        assert_eq!(idle.devices_per_s(), 0.0);
        assert_eq!(idle.ticks_per_s(), 0.0);
        let busy = ShardThroughput {
            shard: 1,
            devices: 128,
            ticks: 128_000,
            wall_ms: 2000.0,
        };
        assert!((busy.devices_per_s() - 64.0).abs() < 1e-9);
        assert!((busy.ticks_per_s() - 64_000.0).abs() < 1e-9);
    }

    #[test]
    fn lean_sink_matches_full_sink_counters() {
        let mut full = Telemetry::new();
        let mut lean = LeanTelemetry::default();
        for i in 0..5 {
            let s = sample(f64::from(i) * 30.0, 1000.0, 40.0, false, Class::Big);
            full.record_sample(s);
            lean.record_sample(s);
        }
        for staleness in [0.0, 4.5, 2.0] {
            let cal = CalibrationSample {
                time_s: 100.0,
                sweeps: 1,
                emd_solves: 0,
                cache_hits: 0,
                bound_pruned: 0,
                wall_us: 10.0,
                graph_action_nodes: 1,
                bellman_sweeps: 1,
                bellman_levels: 0,
                warm_started: false,
                staleness_s: staleness,
            };
            full.record_calibration(cal.clone());
            lean.record_calibration(cal);
        }
        assert_eq!(lean.samples as usize, full.len());
        assert_eq!(lean.calibrations as usize, full.calibrations().len());
        assert_eq!(lean.max_staleness_s, full.max_calibration_staleness_s());
    }

    #[test]
    fn calibration_events_accumulate() {
        let mut t = Telemetry::new();
        t.push_calibration(CalibrationSample {
            time_s: 1200.0,
            sweeps: 5,
            emd_solves: 40,
            cache_hits: 60,
            bound_pruned: 10,
            wall_us: 300.0,
            graph_action_nodes: 8,
            bellman_sweeps: 120,
            bellman_levels: 2,
            warm_started: false,
            staleness_s: 0.0,
        });
        t.push_calibration(CalibrationSample {
            time_s: 2400.0,
            sweeps: 3,
            emd_solves: 0,
            cache_hits: 100,
            bound_pruned: 10,
            wall_us: 100.0,
            graph_action_nodes: 8,
            bellman_sweeps: 9,
            bellman_levels: 2,
            warm_started: true,
            staleness_s: 3.0,
        });
        assert_eq!(t.calibrations().len(), 2);
        assert!((t.mean_calibration_wall_us() - 200.0).abs() < 1e-9);
        assert_eq!(t.max_calibration_staleness_s(), 3.0);
        assert!((t.calibrations()[0].cache_hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(t.calibrations()[1].cache_hit_rate(), 1.0);
        // The warm second calibration spends far fewer Bellman sweeps.
        assert!(t.calibrations()[1].warm_started);
        assert!(t.calibrations()[1].bellman_sweeps < t.calibrations()[0].bellman_sweeps);
    }
}
