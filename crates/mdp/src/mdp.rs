//! The finite Markov decision process `M = {S, A, T, R}`.
//!
//! States and actions are dense indices; the transition function `T` and
//! reward function `R` are stored per `(state, action)` pair as a sparse
//! list of `(successor, probability, reward)` entries, with rewards
//! normalised to `[0, 1]` as in the paper.
//!
//! # Storage layout
//!
//! Internally the MDP is a CSR (compressed sparse row) structure: every
//! outcome lives in one contiguous arena, indexed by a `row_ptr` table
//! with one row per `(state, action)` pair, and the available actions of
//! each state are packed into a second arena indexed per state. The
//! Bellman solvers, the q-learning driver and the similarity engine all
//! sweep these rows millions of times per calibration, so the layout
//! buys three things over the naive `Vec<Vec<Vec<Outcome>>>` nesting:
//!
//! * `outcomes(s, a)` is two loads into one flat allocation instead of a
//!   three-level pointer chase through per-pair heap vectors;
//! * `available_actions(s)` walks a packed slice instead of filtering
//!   all `|A|` actions through `Vec::is_empty` on every sweep;
//! * `is_absorbing(s)` and `n_action_nodes()` are O(1) pointer
//!   arithmetic.
//!
//! On top of the arena the builder lays out a structure-of-arrays mirror
//! for the Bellman sweep itself ([`SolverView`]): successor indices and
//! probabilities in two dense arrays (12 bytes per outcome instead of
//! the 24-byte [`Outcome`]), plus the expected immediate reward of every
//! action node precomputed once. A sweep then reduces to the SpMV-shaped
//! `R(a) + rho * sum_i p_i * V[succ_i]` with no reward loads at all.
//!
//! The public API is unchanged from the nested layout;
//! [`crate::reference::NestedMdp`] keeps the old representation alive as
//! a test/bench oracle.

use serde::{Deserialize, Serialize};

/// One probabilistic outcome of taking an action.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Successor state index.
    pub next: usize,
    /// Transition probability.
    pub prob: f64,
    /// Reward in `[0, 1]`.
    pub reward: f64,
}

/// A finite MDP with dense state/action indices, stored in CSR form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mdp {
    n_states: usize,
    n_actions: usize,
    /// All outcomes, contiguous, rows ordered by `(state, action)`.
    arena: Vec<Outcome>,
    /// Row bounds: the outcomes of `(s, a)` live in
    /// `arena[row_ptr[s * n_actions + a]..row_ptr[s * n_actions + a + 1]]`.
    row_ptr: Vec<usize>,
    /// Packed available actions, rows ordered by state.
    actions: Vec<u32>,
    /// State bounds: the available actions of `s` live in
    /// `actions[action_ptr[s]..action_ptr[s + 1]]`.
    action_ptr: Vec<usize>,
    /// Successor per outcome, arena order (structure-of-arrays mirror).
    succ: Vec<u32>,
    /// Probability per outcome, arena order (structure-of-arrays mirror).
    prob: Vec<f64>,
    /// Arena offsets per action node: the outcomes of the `k`-th packed
    /// action node live in `arena[node_ptr[k]..node_ptr[k + 1]]`. Valid
    /// because empty rows contribute nothing to the arena, so non-empty
    /// rows are contiguous in packed-action order.
    node_ptr: Vec<usize>,
    /// Expected immediate reward per action node, precomputed from the
    /// normalised probabilities in arena order.
    node_reward: Vec<f64>,
}

/// Borrowed structure-of-arrays view of the Bellman hot path, indexed by
/// packed action node: the `k`-th node of state `s` (for `k` in
/// `action_ptr[s]..action_ptr[s + 1]`) has outcomes
/// `(succ[i], prob[i])` for `i` in `node_ptr[k]..node_ptr[k + 1]` and
/// expected immediate reward `node_reward[k]`.
pub(crate) struct SolverView<'a> {
    pub succ: &'a [u32],
    pub prob: &'a [f64],
    pub node_ptr: &'a [usize],
    pub node_reward: &'a [f64],
    pub action_ptr: &'a [usize],
}

impl Mdp {
    /// Number of states `|S|`.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions `|A|`.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// The outcomes of taking `action` in `state` (empty if unavailable).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn outcomes(&self, state: usize, action: usize) -> &[Outcome] {
        assert!(state < self.n_states, "state out of range");
        assert!(action < self.n_actions, "action out of range");
        let row = state * self.n_actions + action;
        &self.arena[self.row_ptr[row]..self.row_ptr[row + 1]]
    }

    /// Actions available in `state`, ascending.
    pub fn available_actions(&self, state: usize) -> impl Iterator<Item = usize> + '_ {
        self.action_list(state).iter().map(|&a| a as usize)
    }

    /// The packed list of actions available in `state`, ascending — the
    /// zero-cost form of [`available_actions`](Mdp::available_actions)
    /// for hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn action_list(&self, state: usize) -> &[u32] {
        assert!(state < self.n_states, "state out of range");
        &self.actions[self.action_ptr[state]..self.action_ptr[state + 1]]
    }

    /// A state with no available actions is *absorbing* (the paper's
    /// target states for battery scheduling). O(1).
    pub fn is_absorbing(&self, state: usize) -> bool {
        assert!(state < self.n_states, "state out of range");
        self.action_ptr[state] == self.action_ptr[state + 1]
    }

    /// Expected immediate reward of `(state, action)`.
    pub fn expected_reward(&self, state: usize, action: usize) -> f64 {
        self.outcomes(state, action)
            .iter()
            .map(|o| o.prob * o.reward)
            .sum()
    }

    /// Total number of `(state, action)` pairs with outcomes — the number
    /// of action nodes in the graph representation. O(1).
    pub fn n_action_nodes(&self) -> usize {
        self.actions.len()
    }

    /// Total number of outcomes (transition edges) across all pairs. O(1).
    pub fn n_outcomes(&self) -> usize {
        self.arena.len()
    }

    /// The structure-of-arrays view the Bellman sweep iterates.
    pub(crate) fn solver_view(&self) -> SolverView<'_> {
        SolverView {
            succ: &self.succ,
            prob: &self.prob,
            node_ptr: &self.node_ptr,
            node_reward: &self.node_reward,
            action_ptr: &self.action_ptr,
        }
    }
}

/// A validating builder for [`Mdp`].
#[derive(Debug, Clone)]
pub struct MdpBuilder {
    n_states: usize,
    n_actions: usize,
    outcomes: Vec<Vec<Vec<Outcome>>>,
}

impl MdpBuilder {
    /// Start a builder for `n_states` states and `n_actions` actions.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(n_states: usize, n_actions: usize) -> Self {
        assert!(n_states > 0, "need at least one state");
        assert!(n_actions > 0, "need at least one action");
        MdpBuilder {
            n_states,
            n_actions,
            outcomes: vec![vec![Vec::new(); n_actions]; n_states],
        }
    }

    /// Add an outcome: taking `action` in `state` reaches `next` with
    /// weight `prob` (a probability or a raw visit count — weights are
    /// normalised per `(state, action)` at [`build`](MdpBuilder::build))
    /// and reward `reward`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range, `prob` is not positive and
    /// finite, or `reward` is not in `[0, 1]`.
    pub fn transition(
        &mut self,
        state: usize,
        action: usize,
        next: usize,
        prob: f64,
        reward: f64,
    ) -> &mut Self {
        assert!(state < self.n_states, "state out of range");
        assert!(action < self.n_actions, "action out of range");
        assert!(next < self.n_states, "successor out of range");
        assert!(
            prob > 0.0 && prob.is_finite(),
            "probability/count weight must be positive and finite"
        );
        assert!(
            (0.0..=1.0).contains(&reward),
            "reward must be normalised to [0, 1]"
        );
        self.outcomes[state][action].push(Outcome { next, prob, reward });
        self
    }

    /// Finish the MDP, flattening the accumulated nesting into CSR form.
    ///
    /// Outcome probabilities of each `(state, action)` are normalised to
    /// sum to one, so callers may supply raw visit counts (this is how the
    /// profiler feeds observed transition statistics in). Normalisation
    /// happens per pair in insertion order, so the stored probabilities
    /// are bitwise identical to what the nested layout produced.
    pub fn build(mut self) -> Mdp {
        assert!(
            u32::try_from(self.n_states).is_ok(),
            "state indices must fit in u32 for the packed successor array"
        );
        for per_state in &mut self.outcomes {
            for outs in per_state {
                let total: f64 = outs.iter().map(|o| o.prob).sum();
                if total > 0.0 {
                    for o in outs.iter_mut() {
                        o.prob /= total;
                    }
                }
            }
        }
        let n_edges: usize = self
            .outcomes
            .iter()
            .flat_map(|per_state| per_state.iter().map(Vec::len))
            .sum();
        let mut arena = Vec::with_capacity(n_edges);
        let mut row_ptr = Vec::with_capacity(self.n_states * self.n_actions + 1);
        let mut actions = Vec::new();
        let mut action_ptr = Vec::with_capacity(self.n_states + 1);
        let mut succ = Vec::with_capacity(n_edges);
        let mut prob = Vec::with_capacity(n_edges);
        let mut node_ptr = Vec::new();
        let mut node_reward = Vec::new();
        row_ptr.push(0);
        action_ptr.push(0);
        for per_state in &self.outcomes {
            for (a, outs) in per_state.iter().enumerate() {
                if !outs.is_empty() {
                    actions.push(a as u32);
                    node_ptr.push(arena.len());
                    node_reward.push(outs.iter().map(|o| o.prob * o.reward).sum());
                }
                arena.extend_from_slice(outs);
                succ.extend(outs.iter().map(|o| o.next as u32));
                prob.extend(outs.iter().map(|o| o.prob));
                row_ptr.push(arena.len());
            }
            action_ptr.push(actions.len());
        }
        node_ptr.push(arena.len());
        Mdp {
            n_states: self.n_states,
            n_actions: self.n_actions,
            arena,
            row_ptr,
            actions,
            action_ptr,
            succ,
            prob,
            node_ptr,
            node_reward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Mdp {
        // 0 --a0--> 1 --a0--> 2 (absorbing)
        let mut b = MdpBuilder::new(3, 2);
        b.transition(0, 0, 1, 1.0, 0.5);
        b.transition(1, 0, 2, 1.0, 1.0);
        b.build()
    }

    #[test]
    fn absorbing_detection() {
        let m = chain();
        assert!(!m.is_absorbing(0));
        assert!(!m.is_absorbing(1));
        assert!(m.is_absorbing(2));
    }

    #[test]
    fn available_actions_are_sparse() {
        let m = chain();
        assert_eq!(m.available_actions(0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(m.available_actions(2).count(), 0);
    }

    #[test]
    fn probabilities_are_normalised_from_counts() {
        let mut b = MdpBuilder::new(2, 1);
        // Raw counts: 3 visits to state 0, 1 to state 1.
        b.transition(0, 0, 0, 0.75, 0.0);
        b.transition(0, 0, 1, 0.25, 1.0);
        let m = b.build();
        let total: f64 = m.outcomes(0, 0).iter().map(|o| o.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_reward_weighs_probabilities() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 0, 0.5, 0.0);
        b.transition(0, 0, 1, 0.5, 1.0);
        let m = b.build();
        assert!((m.expected_reward(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn action_node_count() {
        assert_eq!(chain().n_action_nodes(), 2);
    }

    #[test]
    fn packed_action_lists_mirror_the_iterator() {
        let m = chain();
        for s in 0..m.n_states() {
            let packed: Vec<usize> = m.action_list(s).iter().map(|&a| a as usize).collect();
            let iterated: Vec<usize> = m.available_actions(s).collect();
            assert_eq!(packed, iterated, "state {s}");
        }
        assert_eq!(m.n_outcomes(), 2);
    }

    #[test]
    fn empty_rows_are_empty_slices() {
        let m = chain();
        assert!(m.outcomes(0, 1).is_empty());
        assert!(m.outcomes(2, 0).is_empty());
        assert!(m.outcomes(2, 1).is_empty());
    }

    #[test]
    fn solver_view_mirrors_the_arena() {
        let mut b = MdpBuilder::new(4, 3);
        b.transition(0, 0, 1, 2.0, 0.5);
        b.transition(0, 0, 2, 1.0, 0.25);
        b.transition(0, 2, 3, 1.0, 1.0);
        b.transition(1, 1, 3, 1.0, 0.75);
        b.transition(2, 0, 3, 1.0, 0.0);
        let m = b.build();
        let v = m.solver_view();
        assert_eq!(v.succ.len(), m.n_outcomes());
        assert_eq!(v.prob.len(), m.n_outcomes());
        assert_eq!(v.node_ptr.len(), m.n_action_nodes() + 1);
        for s in 0..m.n_states() {
            for (k, &a) in (v.action_ptr[s]..v.action_ptr[s + 1]).zip(m.action_list(s)) {
                let outs = m.outcomes(s, a as usize);
                assert_eq!(v.node_ptr[k + 1] - v.node_ptr[k], outs.len());
                for (i, o) in (v.node_ptr[k]..v.node_ptr[k + 1]).zip(outs) {
                    assert_eq!(v.succ[i] as usize, o.next);
                    assert_eq!(v.prob[i], o.prob);
                }
                let r: f64 = outs.iter().map(|o| o.prob * o.reward).sum();
                assert_eq!(v.node_reward[k], r);
            }
        }
    }

    #[test]
    #[should_panic(expected = "reward")]
    fn rejects_unnormalised_reward() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 1, 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_zero_probability() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 1, 0.0, 0.5);
    }
}
