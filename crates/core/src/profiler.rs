//! The profile-and-monitor layer (Fig. 8).
//!
//! CAPMAN observes `(state, action, state', reward)` tuples as the phone
//! runs and accumulates them into the MDP `M = {S, A, T, R}`: states are
//! the composite device power states, actions the system-call classes,
//! transition probabilities the normalised visit counts, and rewards the
//! measured per-step pack efficiency (normalised to `[0, 1]`). It also
//! maintains a per-state power estimate used for demand prediction.

use std::collections::HashMap;

use capman_device::fsm::Action;
use capman_device::states::{DeviceState, STATE_COUNT};
use capman_mdp::mdp::{Mdp, MdpBuilder};

/// Exponential-moving-average smoothing for the per-state power.
const POWER_EMA_ALPHA: f64 = 0.2;

/// Accumulates runtime observations into an MDP and power estimates.
///
/// # Examples
///
/// ```
/// use capman_core::profiler::Profiler;
/// use capman_device::fsm::Action;
/// use capman_device::states::DeviceState;
///
/// let mut profiler = Profiler::new();
/// let asleep = DeviceState::asleep();
/// let awake = DeviceState::awake();
/// profiler.observe(asleep, Action::ScreenOn, awake, 0.9, 2.5);
/// let mdp = profiler.to_mdp();
/// assert_eq!(mdp.outcomes(asleep.index(), Action::ScreenOn.index()).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    /// `(from, action, to) -> (visit count, reward sum)`.
    counts: HashMap<(usize, usize, usize), (f64, f64)>,
    /// Smoothed measured power per device state, watts.
    power_w: Vec<Option<f64>>,
    observations: u64,
}

impl Profiler {
    /// An empty profile.
    pub fn new() -> Self {
        Profiler {
            counts: HashMap::new(),
            power_w: vec![None; STATE_COUNT],
            observations: 0,
        }
    }

    /// Record one observed step.
    ///
    /// # Panics
    ///
    /// Panics if `reward` is outside `[0, 1]` or `power_w` is negative.
    pub fn observe(
        &mut self,
        from: DeviceState,
        action: Action,
        to: DeviceState,
        reward: f64,
        power_w: f64,
    ) {
        assert!(
            (0.0..=1.0).contains(&reward),
            "reward must be normalised to [0, 1]"
        );
        assert!(power_w >= 0.0, "power must be non-negative");
        let key = (from.index(), action.index(), to.index());
        let entry = self.counts.entry(key).or_insert((0.0, 0.0));
        entry.0 += 1.0;
        entry.1 += reward;
        let slot = &mut self.power_w[to.index()];
        *slot = Some(match *slot {
            Some(prev) => prev + POWER_EMA_ALPHA * (power_w - prev),
            None => power_w,
        });
        self.observations += 1;
    }

    /// Number of observations recorded.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Number of distinct `(state, action, state')` transitions seen.
    pub fn distinct_transitions(&self) -> usize {
        self.counts.len()
    }

    /// The smoothed measured power of a device state, if it was visited.
    pub fn state_power_w(&self, state: DeviceState) -> Option<f64> {
        self.power_w[state.index()]
    }

    /// Predict the power that follows taking `action` in `from`:
    /// the transition-probability-weighted mean of the successor states'
    /// measured powers. Falls back to the current state's power, then
    /// `None` if nothing was ever observed.
    pub fn predicted_power_w(&self, from: DeviceState, action: Action) -> Option<f64> {
        let fi = from.index();
        let ai = action.index();
        let mut total_w = 0.0;
        let mut total_count = 0.0;
        for (&(f, a, to), &(count, _)) in &self.counts {
            if f == fi && a == ai {
                if let Some(p) = self.power_w[to] {
                    total_w += count * p;
                    total_count += count;
                }
            }
        }
        if total_count > 0.0 {
            Some(total_w / total_count)
        } else {
            self.power_w[fi]
        }
    }

    /// Materialise the observed statistics as the MDP of Fig. 8.
    ///
    /// Visit counts become (normalised) transition probabilities; the
    /// mean observed reward labels each edge.
    pub fn to_mdp(&self) -> Mdp {
        let mut b = MdpBuilder::new(STATE_COUNT, Action::ALL.len());
        for (&(from, action, to), &(count, reward_sum)) in &self.counts {
            let mean_reward = (reward_sum / count).clamp(0.0, 1.0);
            b.transition(from, action, to, count, mean_reward);
        }
        b.build()
    }

    /// States that have been visited at least once.
    pub fn visited_states(&self) -> Vec<usize> {
        let mut seen: Vec<usize> = self.counts.keys().flat_map(|&(f, _, t)| [f, t]).collect();
        seen.sort_unstable();
        seen.dedup();
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_battery::chemistry::Class;

    fn awake_little() -> DeviceState {
        DeviceState::awake().with_battery(Class::Little)
    }

    #[test]
    fn observation_counts_accumulate() {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        p.observe(asleep, Action::ScreenOn, awake, 0.9, 2.0);
        p.observe(asleep, Action::ScreenOn, awake, 0.8, 2.2);
        assert_eq!(p.observations(), 2);
        assert_eq!(p.distinct_transitions(), 1);
        assert_eq!(p.visited_states().len(), 2);
    }

    #[test]
    fn power_estimate_smooths_toward_measurements() {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        p.observe(asleep, Action::ScreenOn, awake, 0.9, 2.0);
        assert!((p.state_power_w(awake).expect("seen") - 2.0).abs() < 1e-12);
        p.observe(asleep, Action::ScreenOn, awake, 0.9, 3.0);
        let est = p.state_power_w(awake).expect("seen");
        assert!(est > 2.0 && est < 3.0);
    }

    #[test]
    fn prediction_weighs_successors() {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        let little = awake_little();
        // ScreenOn leads to `awake` three times (2 W) and `little` once
        // (4 W).
        for _ in 0..3 {
            p.observe(asleep, Action::ScreenOn, awake, 0.9, 2.0);
        }
        p.observe(asleep, Action::ScreenOn, little, 0.9, 4.0);
        let pred = p.predicted_power_w(asleep, Action::ScreenOn).expect("pred");
        assert!((pred - 2.5).abs() < 1e-9, "pred = {pred}");
    }

    #[test]
    fn prediction_falls_back_to_current_state() {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        p.observe(asleep, Action::ScreenOn, awake, 0.9, 2.0);
        // Never saw AppLaunch from `awake`, but `awake` itself has a
        // power estimate.
        let pred = p.predicted_power_w(awake, Action::AppLaunch);
        assert!(pred.is_some());
        // Truly unseen state gives None.
        assert!(p
            .predicted_power_w(awake_little(), Action::AppExit)
            .is_none());
    }

    #[test]
    fn mdp_round_trip_normalises_counts() {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        for _ in 0..3 {
            p.observe(asleep, Action::ScreenOn, awake, 1.0, 2.0);
        }
        p.observe(asleep, Action::ScreenOn, asleep, 0.0, 0.1);
        let mdp = p.to_mdp();
        let outs = mdp.outcomes(asleep.index(), Action::ScreenOn.index());
        let total_p: f64 = outs.iter().map(|o| o.prob).sum();
        assert!((total_p - 1.0).abs() < 1e-12);
        assert_eq!(outs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "reward")]
    fn rejects_unnormalised_reward() {
        let mut p = Profiler::new();
        p.observe(
            DeviceState::asleep(),
            Action::Wake,
            DeviceState::awake(),
            1.5,
            1.0,
        );
    }
}
