//! Admission control: quotas, windows, and the outcome taxonomy.
//!
//! Admission decides what happens to a submission *before* any solve
//! is scheduled. Each cohort gets a quota of admissions per cadence
//! window; the service-wide pending-slot count is bounded; and because
//! every cohort owns at most **one** pending slot, "drop-oldest per
//! cohort" degenerates to the cheapest possible form — the newest
//! request replaces the queued one in place ([`AdmissionOutcome::
//! Replaced`]), keeping its age and its position in the priority
//! order. Overload therefore costs payload freshness, never a
//! tenant's place in line, which is half of the no-starvation
//! argument (the other half is lane aging, see [`crate::lanes`]).
//!
//! Every submission gets exactly one outcome, giving the service
//! counter identity `submitted == admitted + coalesced + replaced +
//! shed + backpressure` that the overload tests pin.

use crate::slo::ServiceMode;

/// Admission-layer sizing and cadence.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Service-wide bound on pending (admitted, unsolved) requests.
    /// Submissions that would exceed it get
    /// [`AdmissionOutcome::Backpressure`].
    pub queue_bound: usize,
    /// Admissions allowed per cohort per window in
    /// [`ServiceMode::Normal`]. Degraded mode halves it, shedding mode
    /// forces 1 (see [`effective_quota`]).
    pub quota_per_window: u32,
    /// The cadence window, simulated seconds. Aligns with the cohorts'
    /// calibration cadence so "one adoption per cadence window" is the
    /// natural starvation unit.
    pub window_s: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_bound: 64,
            quota_per_window: 4,
            window_s: 600.0,
        }
    }
}

/// What happened to one submission. Exactly one per submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Admitted into the cohort's pending slot; a solve will run.
    Admitted,
    /// The cohort's calibration is being solved right now; this
    /// request is absorbed by it (same as pool coalescing).
    Coalesced,
    /// Drop-oldest: the cohort already had a pending request, whose
    /// payload this newer submission replaced in place. The older
    /// payload is the one shed.
    Replaced,
    /// The cohort exhausted its admission quota for this window.
    Shed,
    /// The service-wide pending bound is reached; the caller should
    /// back off (nothing of this cohort's was displaced).
    Backpressure,
}

impl AdmissionOutcome {
    /// Did this submission's payload fail to reach a solve? (The
    /// replaced case sheds the *older* payload; both count as shed
    /// work when measuring load-shedding.)
    pub fn is_shed(self) -> bool {
        matches!(
            self,
            AdmissionOutcome::Replaced | AdmissionOutcome::Shed | AdmissionOutcome::Backpressure
        )
    }

    /// Stable lowercase label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionOutcome::Admitted => "admitted",
            AdmissionOutcome::Coalesced => "coalesced",
            AdmissionOutcome::Replaced => "replaced",
            AdmissionOutcome::Shed => "shed",
            AdmissionOutcome::Backpressure => "backpressure",
        }
    }
}

/// Per-cohort admission ledger: which window we are in and how much of
/// the quota is spent there.
#[derive(Debug, Clone, Copy, Default)]
pub struct CohortLedger {
    window_index: u64,
    admitted_in_window: u32,
}

impl CohortLedger {
    /// Roll the ledger to the window containing `now_s`, resetting the
    /// spent quota on a boundary crossing. Returns `true` if a new
    /// window began.
    pub fn roll(&mut self, now_s: f64, window_s: f64) -> bool {
        let index = if window_s > 0.0 && now_s >= 0.0 {
            (now_s / window_s) as u64
        } else {
            0
        };
        if index != self.window_index {
            self.window_index = index;
            self.admitted_in_window = 0;
            return true;
        }
        false
    }

    /// Spend one unit of quota if any remains in this window.
    pub fn try_admit(&mut self, quota: u32) -> bool {
        if self.admitted_in_window < quota {
            self.admitted_in_window += 1;
            return true;
        }
        false
    }

    /// Admissions spent in the current window.
    pub fn admitted_in_window(&self) -> u32 {
        self.admitted_in_window
    }
}

/// The quota actually enforced under `mode`: the SLO monitor's mode
/// feeds back into admission. Never below 1 — a zero quota would
/// starve by construction, which the no-starvation contract forbids.
pub fn effective_quota(base: u32, mode: ServiceMode) -> u32 {
    match mode {
        ServiceMode::Normal => base.max(1),
        ServiceMode::Degraded => (base / 2).max(1),
        ServiceMode::Shedding => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_rolls_on_window_boundaries_and_resets_quota() {
        let mut ledger = CohortLedger::default();
        assert!(!ledger.roll(10.0, 600.0), "still window 0");
        assert!(ledger.try_admit(2));
        assert!(ledger.try_admit(2));
        assert!(!ledger.try_admit(2), "quota spent");
        assert_eq!(ledger.admitted_in_window(), 2);
        assert!(ledger.roll(650.0, 600.0), "crossed into window 1");
        assert_eq!(ledger.admitted_in_window(), 0);
        assert!(ledger.try_admit(2), "fresh quota");
    }

    #[test]
    fn effective_quota_degrades_but_never_hits_zero() {
        assert_eq!(effective_quota(4, ServiceMode::Normal), 4);
        assert_eq!(effective_quota(4, ServiceMode::Degraded), 2);
        assert_eq!(effective_quota(4, ServiceMode::Shedding), 1);
        assert_eq!(effective_quota(1, ServiceMode::Degraded), 1);
        assert_eq!(effective_quota(0, ServiceMode::Normal), 1);
        assert_eq!(effective_quota(0, ServiceMode::Shedding), 1);
    }

    #[test]
    fn shed_taxonomy_is_what_reports_expect() {
        assert!(!AdmissionOutcome::Admitted.is_shed());
        assert!(!AdmissionOutcome::Coalesced.is_shed());
        assert!(AdmissionOutcome::Replaced.is_shed());
        assert!(AdmissionOutcome::Shed.is_shed());
        assert!(AdmissionOutcome::Backpressure.is_shed());
        assert_eq!(AdmissionOutcome::Backpressure.label(), "backpressure");
    }
}
