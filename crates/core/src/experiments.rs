//! The experiment harness: one entry point per evaluation figure.
//!
//! Everything the figures binary and the Criterion benches print flows
//! through these functions, so tests, benches and documentation all see
//! the same numbers. Every multi-scenario figure fans its grid of
//! independent simulations out through [`ScenarioRunner`], so the
//! harness wall clock scales with cores while outcomes stay ordered by
//! scenario index (see [`crate::scenario`] for the determinism
//! contract).

use serde::{Deserialize, Serialize};

use capman_battery::chemistry::Chemistry;
use capman_battery::pack::BatteryPack;
use capman_device::phone::PhoneProfile;
use capman_workload::{generate, Trace, WorkloadKind};

use crate::baselines::{DualPolicy, HeuristicPolicy, PracticePolicy};
use crate::capman::CapmanPolicy;
use crate::config::SimConfig;
use crate::metrics::Outcome;
use crate::online::Calibrator;
use crate::oracle::OraclePolicy;
use crate::policy::Policy;
use crate::scenario::{Scenario, ScenarioRunner};

/// The five scheduling policies of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// The CAPMAN scheduler (with TEC).
    Capman,
    /// The clairvoyant offline baseline (with TEC).
    Oracle,
    /// One battery of the same total capacity, no scheduling, no TEC.
    Practice,
    /// big.LITTLE, LITTLE first, no TEC.
    Dual,
    /// big.LITTLE with reactive utilisation prediction, no TEC.
    Heuristic,
}

impl PolicyKind {
    /// All policies in the figure order of the paper.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Oracle,
        PolicyKind::Capman,
        PolicyKind::Heuristic,
        PolicyKind::Dual,
        PolicyKind::Practice,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Capman => "CAPMAN",
            PolicyKind::Oracle => "Oracle",
            PolicyKind::Practice => "Practice",
            PolicyKind::Dual => "Dual",
            PolicyKind::Heuristic => "Heuristic",
        }
    }

    /// Whether this policy's prototype carries the TEC facility.
    pub fn has_tec(self) -> bool {
        matches!(self, PolicyKind::Capman | PolicyKind::Oracle)
    }

    /// Parse a policy by its figure label, case-insensitively — the form
    /// experiment variants name policies in (`policy: CAPMAN`).
    pub fn parse(name: &str) -> Result<PolicyKind, String> {
        let name = name.trim();
        PolicyKind::ALL
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                format!("unknown policy {name:?} (expected one of Oracle, CAPMAN, Heuristic, Dual, Practice)")
            })
    }
}

/// The original phone's stock battery capacity, ampere-hours (Nexus 6
/// ships a 3220 mAh cell). The *Practice* baseline is "the original
/// phone": one stock battery, no switch facility, no TEC. The paper's
/// "same capacity" claim refers to the prototype pack fitting the same
/// battery volume budget thanks to the big cell's higher energy density;
/// see EXPERIMENTS.md for the discussion.
pub const STOCK_BATTERY_AH: f64 = 3.6;

/// Build the battery pack a policy runs on: the paper's dual prototype,
/// or the original phone's single stock cell for *Practice*.
pub fn build_pack(kind: PolicyKind) -> BatteryPack {
    match kind {
        PolicyKind::Practice => BatteryPack::single(Chemistry::Nca, STOCK_BATTERY_AH),
        _ => BatteryPack::paper_prototype(),
    }
}

/// Build a policy instance for a trace and phone.
pub fn build_policy(kind: PolicyKind, trace: &Trace, phone: &PhoneProfile) -> Box<dyn Policy> {
    match kind {
        PolicyKind::Capman => Box::new(CapmanPolicy::new(phone.compute_speed)),
        PolicyKind::Oracle => Box::new(OraclePolicy::new(trace.clone(), phone.power_model())),
        PolicyKind::Practice => Box::new(PracticePolicy),
        PolicyKind::Dual => Box::new(DualPolicy),
        PolicyKind::Heuristic => Box::new(HeuristicPolicy::new()),
    }
}

/// Run one discharge cycle with the evaluation defaults.
pub fn run_policy(
    kind: PolicyKind,
    workload: WorkloadKind,
    phone: PhoneProfile,
    seed: u64,
) -> Outcome {
    let config = if kind.has_tec() {
        SimConfig::paper_with_tec()
    } else {
        SimConfig::paper()
    };
    run_policy_with(kind, workload, phone, seed, config)
}

/// Run one discharge cycle with an explicit configuration (used by the
/// ablation benches and tests).
pub fn run_policy_with(
    kind: PolicyKind,
    workload: WorkloadKind,
    phone: PhoneProfile,
    seed: u64,
    config: SimConfig,
) -> Outcome {
    Scenario::new(kind, workload, phone, seed, config).run()
}

/// The scenario behind one cell of the evaluation grids: `kind` on
/// `workload` with the evaluation-default configuration.
fn default_scenario(
    kind: PolicyKind,
    workload: WorkloadKind,
    phone: PhoneProfile,
    seed: u64,
) -> Scenario {
    let config = if kind.has_tec() {
        SimConfig::paper_with_tec()
    } else {
        SimConfig::paper()
    };
    Scenario::new(kind, workload, phone, seed, config)
}

/// One row of Fig. 12: every policy on one workload (same seed, so all
/// policies see the identical trace), fanned out concurrently.
pub fn fig12_row(workload: WorkloadKind, seed: u64) -> Vec<Outcome> {
    let scenarios: Vec<Scenario> = PolicyKind::ALL
        .iter()
        .map(|&kind| default_scenario(kind, workload, PhoneProfile::nexus(), seed))
        .collect();
    ScenarioRunner::new().run(&scenarios)
}

/// The full Fig. 12 grid: six workloads x five policies, run as one
/// concurrent batch and reassembled row-major.
pub fn fig12(seed: u64) -> Vec<Vec<Outcome>> {
    let workloads = WorkloadKind::fig12();
    let scenarios: Vec<Scenario> = workloads
        .iter()
        .flat_map(|&w| {
            PolicyKind::ALL
                .iter()
                .map(move |&kind| default_scenario(kind, w, PhoneProfile::nexus(), seed))
        })
        .collect();
    let mut outcomes = ScenarioRunner::new().run(&scenarios).into_iter();
    workloads
        .iter()
        .map(|_| {
            (0..PolicyKind::ALL.len())
                .map(|_| outcomes.next().expect("grid size"))
                .collect()
        })
        .collect()
}

/// Fig. 13: CAPMAN's power/temperature telemetry per workload.
pub fn fig13(seed: u64) -> Vec<Outcome> {
    let scenarios: Vec<Scenario> = WorkloadKind::fig12()
        .iter()
        .map(|&w| default_scenario(PolicyKind::Capman, w, PhoneProfile::nexus(), seed))
        .collect();
    ScenarioRunner::new().run(&scenarios)
}

/// One Fig. 14 point: big/LITTLE activation ratio and the temperature
/// reduction the TEC achieves versus the same run without it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14Point {
    /// Workload label.
    pub workload: String,
    /// big:LITTLE activation-time ratio.
    pub big_little_ratio: f64,
    /// Peak-hot-spot reduction vs the no-TEC run, Kelvin.
    pub temp_reduction_k: f64,
}

/// Fig. 14: temperature reduction vs big/LITTLE ratio per workload.
/// Each workload contributes a with-TEC and a without-TEC scenario; the
/// full set of pairs runs as one concurrent batch.
pub fn fig14(seed: u64) -> Vec<Fig14Point> {
    let workloads = WorkloadKind::fig12();
    let scenarios: Vec<Scenario> = workloads
        .iter()
        .flat_map(|&w| {
            [
                default_scenario(PolicyKind::Capman, w, PhoneProfile::nexus(), seed),
                Scenario::new(
                    PolicyKind::Capman,
                    w,
                    PhoneProfile::nexus(),
                    seed,
                    SimConfig::paper(), // TEC disabled
                ),
            ]
        })
        .collect();
    let outcomes = ScenarioRunner::new().run(&scenarios);
    workloads
        .iter()
        .zip(outcomes.chunks_exact(2))
        .map(|(&w, pair)| {
            let (with_tec, without) = (&pair[0], &pair[1]);
            Fig14Point {
                workload: w.label(),
                big_little_ratio: with_tec.big_little_ratio().unwrap_or(f64::INFINITY),
                temp_reduction_k: without.max_hotspot_c - with_tec.max_hotspot_c,
            }
        })
        .collect()
}

/// Fig. 15: a CAPMAN snapshot (telemetry) on each of the three phones
/// under the same workload trace.
pub fn fig15(workload: WorkloadKind, seed: u64) -> Vec<Outcome> {
    let scenarios: Vec<Scenario> = PhoneProfile::all()
        .into_iter()
        .map(|phone| default_scenario(PolicyKind::Capman, workload, phone, seed))
        .collect();
    ScenarioRunner::new().run(&scenarios)
}

/// Run one discharge cycle on an explicit pack (ablations that swap the
/// battery hardware while keeping the policy).
pub fn run_with_pack(
    kind: PolicyKind,
    workload: WorkloadKind,
    phone: PhoneProfile,
    seed: u64,
    config: SimConfig,
    pack: BatteryPack,
) -> Outcome {
    Scenario::new(kind, workload, phone, seed, config)
        .with_pack(pack)
        .run()
}

/// Mean and standard deviation of service time over several seeds — the
/// scatter behind the paper's "green dots ... collected from multiple
/// simulation experiments" in Fig. 12.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Policy label.
    pub policy: String,
    /// Mean service time, seconds.
    pub mean_s: f64,
    /// Standard deviation of the service time, seconds.
    pub std_s: f64,
    /// Number of seeds.
    pub runs: usize,
}

/// Fig. 12 with seed scatter: every policy on one workload across the
/// given seeds.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn fig12_stats(workload: WorkloadKind, seeds: &[u64]) -> Vec<ServiceStats> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let scenarios: Vec<Scenario> = PolicyKind::ALL
        .iter()
        .flat_map(|&kind| {
            seeds
                .iter()
                .map(move |&seed| default_scenario(kind, workload, PhoneProfile::nexus(), seed))
        })
        .collect();
    let outcomes = ScenarioRunner::new().run(&scenarios);
    PolicyKind::ALL
        .iter()
        .zip(outcomes.chunks_exact(seeds.len()))
        .map(|(&kind, per_policy)| {
            let times: Vec<f64> = per_policy.iter().map(|o| o.service_time_s).collect();
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            let var = times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64;
            ServiceStats {
                policy: kind.label().to_string(),
                mean_s: mean,
                std_s: var.sqrt(),
                runs: times.len(),
            }
        })
        .collect()
}

/// One point of the ambient-temperature sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AmbientPoint {
    /// Ambient temperature, degC.
    pub ambient_c: f64,
    /// Service time achieved, seconds.
    pub service_time_s: f64,
    /// Seconds the TEC ran.
    pub tec_on_s: f64,
    /// Peak hot-spot temperature, degC.
    pub max_hotspot_c: f64,
}

/// Ambient sensitivity: the paper claims CAPMAN "maintains the ambient
/// temperature even under skewed loads"; this sweep runs the eta-50%
/// mix at several ambients and reports how the TEC and service respond.
pub fn ambient_sweep(ambients: &[f64], seed: u64, horizon_s: f64) -> Vec<AmbientPoint> {
    let scenarios: Vec<Scenario> = ambients
        .iter()
        .map(|&ambient_c| {
            let config = SimConfig {
                ambient_c,
                max_horizon_s: horizon_s,
                tec_enabled: true,
                ..SimConfig::paper()
            };
            Scenario::new(
                PolicyKind::Capman,
                WorkloadKind::EtaStatic { eta: 50 },
                PhoneProfile::nexus(),
                seed,
                config,
            )
        })
        .collect();
    ambients
        .iter()
        .zip(ScenarioRunner::new().run(&scenarios))
        .map(|(&ambient_c, o)| AmbientPoint {
            ambient_c,
            service_time_s: o.service_time_s,
            tec_on_s: o.tec_on_s,
            max_hotspot_c: o.max_hotspot_c,
        })
        .collect()
}

/// One Fig. 16 point: scheduler overhead at a discount factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig16Point {
    /// Phone name.
    pub phone: String,
    /// Discount factor `rho`.
    pub rho: f64,
    /// Mean calibration overhead, microseconds (compute-speed
    /// normalised).
    pub overhead_us: f64,
    /// Similarity iterations per calibration.
    pub iterations: usize,
}

/// Fig. 16: calibration overhead versus the discount factor `rho`, per
/// phone. Profiles a short PCMark run once, then measures calibration
/// cost on the resulting MDP at each `rho`.
pub fn fig16(rhos: &[f64], seed: u64) -> Vec<Fig16Point> {
    use crate::policy::{DecisionContext, Observation};
    use capman_device::states::DeviceState;

    // Build a realistic profile by replaying a short PCMark cycle
    // through a CAPMAN policy on the Nexus.
    let mut seeding = CapmanPolicy::new(1.0);
    {
        let trace = generate(WorkloadKind::Pcmark, 1800.0, seed);
        let mut state = DeviceState::asleep();
        let mut t = 0.0;
        while t < 1800.0 {
            let prev = state;
            let mut first = None;
            for seg in trace.segments_starting_in(t, t + 1.0) {
                for &a in &seg.actions {
                    state = state.apply(a);
                    first.get_or_insert(a);
                }
            }
            let demand = trace.at(t).demand;
            let power = PhoneProfile::nexus()
                .power_model()
                .device_power_mw(&state, &demand)
                / 1000.0;
            seeding.observe(&Observation {
                time_s: t,
                prev_state: prev,
                action: first.unwrap_or(capman_device::fsm::Action::TimerTick),
                new_state: state,
                reward: 0.9,
                power_w: power,
            });
            // Emulate the scheduler's own switching so the graph has
            // battery-switch action nodes.
            let ctx = DecisionContext {
                time_s: t,
                state,
                actions: &[],
                last_power_w: power,
                big_soc: 0.8,
                little_soc: 0.8,
                big_usable: true,
                little_usable: true,
                big_head: 1.0,
                little_head: 1.0,
                hotspot_c: 30.0,
                tec_on: false,
                dual: true,
            };
            let chosen = seeding.decide(&ctx);
            let switch = if chosen == state.battery {
                None
            } else {
                Some(chosen)
            };
            if let Some(class) = switch {
                let action = match class {
                    capman_battery::chemistry::Class::Big => {
                        capman_device::fsm::Action::SwitchToBig
                    }
                    capman_battery::chemistry::Class::Little => {
                        capman_device::fsm::Action::SwitchToLittle
                    }
                };
                let next = state.apply(action);
                seeding.observe(&Observation {
                    time_s: t,
                    prev_state: state,
                    action,
                    new_state: next,
                    reward: 0.9,
                    power_w: power,
                });
                state = next;
            }
            t += 1.0;
        }
    }
    let profiler = seeding.profiler();

    let mut points = Vec::new();
    for phone in PhoneProfile::all() {
        for &rho in rhos {
            let mut cal = Calibrator::new(rho, 0.1, 1.0);
            cal.recalibrate(0.0, profiler, phone.compute_speed);
            let calibration = cal.calibration().expect("calibrated");
            points.push(Fig16Point {
                phone: phone.name.to_string(),
                rho,
                overhead_us: cal.overhead_us(),
                iterations: calibration.similarity_iterations,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: PolicyKind, workload: WorkloadKind) -> Outcome {
        let config = SimConfig {
            max_horizon_s: 1500.0,
            tec_enabled: kind.has_tec(),
            ..SimConfig::paper()
        };
        run_policy_with(kind, workload, PhoneProfile::nexus(), 11, config)
    }

    #[test]
    fn all_policies_run_a_short_cycle() {
        for kind in PolicyKind::ALL {
            let o = quick(kind, WorkloadKind::Video);
            assert!(o.service_time_s > 0.0, "{:?}", kind);
            assert_eq!(o.policy, kind.label());
        }
    }

    #[test]
    fn practice_gets_a_single_pack_others_dual() {
        assert!(build_pack(PolicyKind::Practice).little().is_none());
        assert!(build_pack(PolicyKind::Capman).little().is_some());
        assert_eq!(
            build_pack(PolicyKind::Practice).capacity_ah(),
            STOCK_BATTERY_AH
        );
        assert_eq!(build_pack(PolicyKind::Dual).capacity_ah(), 5.0);
    }

    #[test]
    fn fig16_overhead_grows_with_rho() {
        let points = fig16(&[0.05, 0.9], 5);
        let nexus: Vec<&Fig16Point> = points.iter().filter(|p| p.phone == "Nexus").collect();
        assert_eq!(nexus.len(), 2);
        assert!(
            nexus[1].iterations >= nexus[0].iterations,
            "iterations at rho=0.9 ({}) should be >= rho=0.05 ({})",
            nexus[1].iterations,
            nexus[0].iterations
        );
    }

    #[test]
    fn hotter_ambient_works_the_tec_harder() {
        let points = ambient_sweep(&[20.0, 38.0], 5, 2500.0);
        assert_eq!(points.len(), 2);
        assert!(
            points[1].tec_on_s >= points[0].tec_on_s,
            "TEC time at 38C ({}) should be >= at 20C ({})",
            points[1].tec_on_s,
            points[0].tec_on_s
        );
    }

    #[test]
    fn policy_parse_round_trips_every_label() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.label()), Ok(kind));
            assert_eq!(PolicyKind::parse(&kind.label().to_lowercase()), Ok(kind));
        }
        assert!(PolicyKind::parse("fifo").is_err());
    }

    #[test]
    fn same_seed_gives_identical_traces_across_policies() {
        let a = quick(PolicyKind::Dual, WorkloadKind::Pcmark);
        let b = quick(PolicyKind::Heuristic, WorkloadKind::Pcmark);
        assert_eq!(a.workload, b.workload);
    }
}
