//! Priority lanes: route solve budget to the stalest calibrations,
//! with aging so nothing waits forever.
//!
//! A pending request's **base lane** comes from how stale its cohort's
//! *published* calibration is — the same request→adoption staleness
//! the fleet pool measures. Stale cohorts are exactly the ones whose
//! devices are deciding from old models, so they get the budget first.
//!
//! Base lanes alone can starve: a perpetually-fresh cohort's request
//! would lose every pick to stale competitors. The aging rule fixes
//! that — every time a pending request is passed over, its skip count
//! rises, and `promote_after` skips buy one lane promotion. The
//! service's pick order is `(effective lane, skips, staleness)`, so:
//!
//! 1. after at most `2 × promote_after` skips any request rides the
//!    Hot lane;
//! 2. within a lane, the most-skipped request wins, and a served
//!    request leaves the queue while new arrivals start at zero skips
//!    — so a request that has waited `k` rounds can only lose to
//!    requests that have also waited ≥ `k` rounds, a set that only
//!    shrinks.
//!
//! Hence every admitted request is solved within
//! `2 × promote_after + pending_cohorts` pick rounds — the bounded-
//! wait guarantee the no-starvation soak asserts end to end.

/// The three priority lanes, hottest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lane {
    /// Stalest calibrations: picked first.
    Hot,
    /// The steady-state middle.
    Normal,
    /// Fresh calibrations: picked last.
    Cold,
}

impl Lane {
    /// All lanes, hottest first — iteration order for reports.
    pub const ALL: [Lane; 3] = [Lane::Hot, Lane::Normal, Lane::Cold];

    /// Rank for ordering: 0 is hottest.
    pub fn rank(self) -> usize {
        match self {
            Lane::Hot => 0,
            Lane::Normal => 1,
            Lane::Cold => 2,
        }
    }

    /// Stable lowercase label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            Lane::Hot => "hot",
            Lane::Normal => "normal",
            Lane::Cold => "cold",
        }
    }

    /// One lane hotter (saturates at [`Lane::Hot`]).
    pub fn promote(self) -> Lane {
        match self {
            Lane::Hot | Lane::Normal => Lane::Hot,
            Lane::Cold => Lane::Normal,
        }
    }
}

/// Lane thresholds and the aging rate.
#[derive(Debug, Clone, Copy)]
pub struct LaneConfig {
    /// Published-calibration staleness at or above which a cohort's
    /// request rides the Hot lane. Cohorts with no published
    /// calibration at all (seq 0) are infinitely stale, hence Hot.
    pub hot_staleness_s: f64,
    /// Staleness at or below which the request rides Cold.
    pub cold_staleness_s: f64,
    /// Skips that buy one lane promotion. Lower = faster aging.
    pub promote_after: u32,
}

impl Default for LaneConfig {
    fn default() -> Self {
        LaneConfig {
            hot_staleness_s: 300.0,
            cold_staleness_s: 30.0,
            promote_after: 4,
        }
    }
}

/// The base lane for a cohort whose published calibration is
/// `staleness_s` old (`f64::INFINITY` for never-calibrated cohorts).
pub fn classify(staleness_s: f64, config: &LaneConfig) -> Lane {
    if staleness_s >= config.hot_staleness_s {
        Lane::Hot
    } else if staleness_s <= config.cold_staleness_s {
        Lane::Cold
    } else {
        Lane::Normal
    }
}

/// The lane a request with `skips` passed-over rounds actually
/// competes in: its base lane promoted once per `promote_after` skips.
pub fn effective(base: Lane, skips: u32, promote_after: u32) -> Lane {
    let promotions = skips / promote_after.max(1);
    let mut lane = base;
    for _ in 0..promotions.min(2) {
        lane = lane.promote();
    }
    lane
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_staleness() {
        let config = LaneConfig::default();
        assert_eq!(classify(f64::INFINITY, &config), Lane::Hot);
        assert_eq!(classify(300.0, &config), Lane::Hot);
        assert_eq!(classify(150.0, &config), Lane::Normal);
        assert_eq!(classify(30.0, &config), Lane::Cold);
        assert_eq!(classify(0.0, &config), Lane::Cold);
    }

    #[test]
    fn aging_promotes_to_hot_within_two_cycles() {
        assert_eq!(effective(Lane::Cold, 0, 4), Lane::Cold);
        assert_eq!(effective(Lane::Cold, 3, 4), Lane::Cold);
        assert_eq!(effective(Lane::Cold, 4, 4), Lane::Normal);
        assert_eq!(effective(Lane::Cold, 8, 4), Lane::Hot);
        assert_eq!(effective(Lane::Cold, 800, 4), Lane::Hot, "saturates");
        assert_eq!(effective(Lane::Normal, 4, 4), Lane::Hot);
        assert_eq!(effective(Lane::Hot, 100, 4), Lane::Hot);
        // promote_after 0 is treated as 1, not a division by zero.
        assert_eq!(effective(Lane::Cold, 2, 0), Lane::Hot);
    }

    #[test]
    fn rank_orders_hottest_first() {
        assert!(Lane::Hot.rank() < Lane::Normal.rank());
        assert!(Lane::Normal.rank() < Lane::Cold.rank());
        assert_eq!(Lane::ALL.map(Lane::label), ["hot", "normal", "cold"]);
        assert_eq!(Lane::Cold.promote().promote(), Lane::Hot);
    }
}
