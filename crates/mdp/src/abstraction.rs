//! Similarity-based state abstraction.
//!
//! CAPMAN's runtime calibration "extracts the decision from history
//! patterns without actually recomputing the entire graph": states whose
//! structural distance is below a threshold share a representative whose
//! cached decision they reuse. By the bound of Section III-D, following a
//! representative within distance `theta` costs at most
//! `theta / (1 - rho)` in value — the online algorithm's
//! competitiveness.

use serde::{Deserialize, Serialize};

use crate::matrix::SquareMatrix;

/// A threshold clustering of states under a similarity matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Abstraction {
    /// Representative state per state.
    representative: Vec<usize>,
    /// The threshold used, on the *distance* scale (`1 - sigma`).
    theta: f64,
}

impl Abstraction {
    /// Greedily cluster states: scan in index order; a state joins the
    /// first earlier representative within distance `theta`, else becomes
    /// a representative itself.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not in `[0, 1]`.
    pub fn from_similarity(sigma: &SquareMatrix, theta: f64) -> Self {
        assert!((0.0..=1.0).contains(&theta), "theta must be in [0, 1]");
        let n = sigma.n();
        let mut representative = Vec::with_capacity(n);
        let mut reps: Vec<usize> = Vec::new();
        for u in 0..n {
            let found = reps
                .iter()
                .copied()
                .find(|&r| 1.0 - sigma.get(u, r) <= theta);
            match found {
                Some(r) => representative.push(r),
                None => {
                    reps.push(u);
                    representative.push(u);
                }
            }
        }
        Abstraction {
            representative,
            theta,
        }
    }

    /// The representative of state `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn representative(&self, u: usize) -> usize {
        self.representative[u]
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.representative.len()
    }

    /// Number of clusters (distinct representatives).
    pub fn n_clusters(&self) -> usize {
        let mut reps: Vec<usize> = self.representative.clone();
        reps.sort_unstable();
        reps.dedup();
        reps.len()
    }

    /// The clustering threshold on the distance scale.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The worst-case value loss of reusing representatives,
    /// `theta / (1 - rho)`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not in `[0, 1)`.
    pub fn value_loss_bound(&self, rho: f64) -> f64 {
        assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
        self.theta / (1.0 - rho)
    }

    /// Compression ratio: clusters over states (1.0 = no compression).
    pub fn compression(&self) -> f64 {
        self.n_clusters() as f64 / self.n_states().max(1) as f64
    }

    /// Dense renumbering of the clustering — the form the quotient-MDP
    /// construction consumes. Cluster ids are assigned in representative
    /// index order (the greedy scan makes every state's representative
    /// no larger than the state itself, so this is also first-appearance
    /// order).
    pub fn cluster_map(&self) -> ClusterMap {
        let n = self.representative.len();
        let mut id_of = vec![usize::MAX; n];
        let mut reps = Vec::new();
        for u in 0..n {
            let r = self.representative[u];
            if id_of[r] == usize::MAX {
                id_of[r] = reps.len();
                reps.push(r);
            }
        }
        let cluster_of = self.representative.iter().map(|&r| id_of[r]).collect();
        ClusterMap { cluster_of, reps }
    }
}

/// A dense renumbering of an [`Abstraction`]: cluster ids are contiguous
/// `0..n_clusters`, in representative index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMap {
    /// Dense cluster id per state.
    pub cluster_of: Vec<usize>,
    /// Representative state per cluster id (each representative maps to
    /// its own cluster: `cluster_of[reps[c]] == c`).
    pub reps: Vec<usize>,
}

impl ClusterMap {
    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.reps.len()
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.cluster_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_two_groups() -> SquareMatrix {
        // States {0, 1} similar, {2, 3} similar, groups dissimilar.
        let mut m = SquareMatrix::identity(4);
        let mut set = |i: usize, j: usize, v: f64| {
            m.set(i, j, v);
            m.set(j, i, v);
        };
        set(0, 1, 0.95);
        set(2, 3, 0.9);
        set(0, 2, 0.1);
        set(0, 3, 0.1);
        set(1, 2, 0.1);
        set(1, 3, 0.1);
        m
    }

    #[test]
    fn clusters_similar_states() {
        let a = Abstraction::from_similarity(&sim_two_groups(), 0.2);
        assert_eq!(a.n_clusters(), 2);
        assert_eq!(a.representative(0), a.representative(1));
        assert_eq!(a.representative(2), a.representative(3));
        assert_ne!(a.representative(0), a.representative(2));
    }

    #[test]
    fn zero_threshold_keeps_all_states() {
        let a = Abstraction::from_similarity(&sim_two_groups(), 0.0);
        assert_eq!(a.n_clusters(), 4);
        assert!((a.compression() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_threshold_collapses_everything() {
        let a = Abstraction::from_similarity(&sim_two_groups(), 1.0);
        assert_eq!(a.n_clusters(), 1);
        for u in 0..4 {
            assert_eq!(a.representative(u), 0);
        }
    }

    #[test]
    fn representatives_are_their_own_representative() {
        let a = Abstraction::from_similarity(&sim_two_groups(), 0.2);
        for u in 0..a.n_states() {
            let r = a.representative(u);
            assert_eq!(a.representative(r), r);
        }
    }

    #[test]
    fn value_loss_bound_scales_with_rho() {
        let a = Abstraction::from_similarity(&sim_two_groups(), 0.1);
        assert!((a.value_loss_bound(0.0) - 0.1).abs() < 1e-12);
        assert!((a.value_loss_bound(0.9) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cluster_map_is_a_dense_consistent_renumbering() {
        let a = Abstraction::from_similarity(&sim_two_groups(), 0.2);
        let cm = a.cluster_map();
        assert_eq!(cm.n_states(), a.n_states());
        assert_eq!(cm.n_clusters(), a.n_clusters());
        for u in 0..a.n_states() {
            let c = cm.cluster_of[u];
            assert!(c < cm.n_clusters());
            // The cluster's representative is the state's representative.
            assert_eq!(cm.reps[c], a.representative(u));
        }
        for (c, &r) in cm.reps.iter().enumerate() {
            assert_eq!(cm.cluster_of[r], c);
        }
        // Ids are assigned in representative index order.
        assert!(cm.reps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_bad_threshold() {
        let _ = Abstraction::from_similarity(&sim_two_groups(), 1.5);
    }
}
