//! Device-like MDP fixtures shared by the `mdp_solve` bench, the
//! `bench_mdp` binary and the solver smoke checks.
//!
//! The generated graphs mimic the structure the profiler actually emits
//! for a discharge cycle: states ordered by remaining charge (so
//! transition edges point "forward" toward the absorbing
//! battery-depleted states), a self-loop per action (timer ticks that
//! leave the charge level alone), and an action set that is *sparse* —
//! each state offers only a handful of the device's syscall/switch
//! actions. That sparsity is exactly what the CSR layout exploits: the
//! nested layout's `available_actions` filter must scan all `N_ACTIONS`
//! per state per sweep, while the packed list touches only the live
//! ones.
//!
//! Because every non-self edge points forward and self-loops read the
//! state's own previous value, an ascending in-place Gauss–Seidel sweep
//! performs the same arithmetic as a Jacobi sweep on these graphs, so
//! the pre-CSR and CSR solvers run identical iteration counts and the
//! measured speedup isolates the storage layout, not the sweep order.

use capman_mdp::mdp::{Mdp, MdpBuilder};
use capman_mdp::reference::NestedMdp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Actions the device FSM exposes (screen, wifi, CPU, switches, ticks).
pub const N_ACTIONS: usize = 16;

/// One raw transition: `(state, action, next, weight, reward)`.
pub type Transition = (usize, usize, usize, f64, f64);

/// Generate the transition list of a device-like discharge MDP with
/// `n_states` states. Deterministic in `seed`; the final state is
/// absorbing.
pub fn device_like_transitions(n_states: usize, seed: u64) -> Vec<Transition> {
    assert!(n_states >= 8, "too small to be device-like");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut txs = Vec::new();
    for s in 0..n_states - 1 {
        let n_avail = rng.gen_range(2..=5usize);
        // Pick distinct available actions, ascending.
        let mut actions = [false; N_ACTIONS];
        let mut picked = 0;
        while picked < n_avail {
            let a = rng.gen_range(0..N_ACTIONS);
            if !actions[a] {
                actions[a] = true;
                picked += 1;
            }
        }
        for (a, &avail) in actions.iter().enumerate() {
            if !avail {
                continue;
            }
            // The tick outcome: stay at this charge level.
            let r_self = rng.gen_range(0.0..1.0);
            txs.push((s, a, s, rng.gen_range(0.5..2.0), r_self));
            // Forward outcomes: deeper discharge.
            for _ in 0..rng.gen_range(1..=3usize) {
                let next = rng.gen_range(s + 1..n_states);
                let w = rng.gen_range(0.5..2.0);
                let r = rng.gen_range(0.0..1.0);
                txs.push((s, a, next, w, r));
            }
        }
    }
    txs
}

/// Build the CSR [`Mdp`] from a transition list.
pub fn build_csr(n_states: usize, txs: &[Transition]) -> Mdp {
    let mut b = MdpBuilder::new(n_states, N_ACTIONS);
    for &(s, a, next, w, r) in txs {
        b.transition(s, a, next, w, r);
    }
    b.build()
}

/// Build the nested-Vec reference [`NestedMdp`] from the same list.
pub fn build_nested(n_states: usize, txs: &[Transition]) -> NestedMdp {
    let mut m = NestedMdp::new(n_states, N_ACTIONS);
    for &(s, a, next, w, r) in txs {
        m.transition(s, a, next, w, r);
    }
    m.normalise();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_mdp::reference::solve_nested;
    use capman_mdp::value_iteration::solve;

    #[test]
    fn fixture_is_deterministic_and_absorbing() {
        let a = device_like_transitions(64, 3);
        let b = device_like_transitions(64, 3);
        assert_eq!(a.len(), b.len());
        let mdp = build_csr(64, &a);
        assert!(mdp.is_absorbing(63));
        assert!(!mdp.is_absorbing(0));
    }

    #[test]
    fn nested_and_csr_solvers_agree_on_the_fixture() {
        let txs = device_like_transitions(96, 11);
        let csr = build_csr(96, &txs);
        let nested = build_nested(96, &txs);
        let a = solve(&csr, 0.9, 1e-10);
        let b = solve_nested(&nested, 0.9, 1e-10);
        assert_eq!(a.iterations, b.iterations, "sweep-identical graphs");
        for (x, y) in a.values.iter().zip(&b.values) {
            assert!((x - y).abs() < 1e-9);
        }
        assert_eq!(a.policy, b.policy);
    }
}
