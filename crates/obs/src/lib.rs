//! Lock-free observability substrate for the CAPMAN reproduction.
//!
//! Three parts (see DESIGN.md §12 for the architecture):
//!
//! * [`trace`] — a span tracer built on per-thread ring buffers,
//!   drained to Chrome `trace_event` JSON ([`export::chrome_trace`]).
//! * [`metrics`] — a registry of sharded atomic counters, gauges, and
//!   fixed-bucket histograms, exported as Prometheus text
//!   ([`export::prometheus_text`]) or flat JSON
//!   ([`export::metrics_json`]) that `perf_report::parse_rows` reads.
//! * the **kill switch** — a compile-time `obs` cargo feature layered
//!   under a runtime toggle ([`set_enabled`]) and a span sampling ratio
//!   ([`set_span_sampling`]).
//!
//! # Cost model
//!
//! Instrumentation sites in `core`/`mdp`/`fleet` all follow one shape:
//!
//! ```ignore
//! if capman_obs::enabled() {
//!     capman_obs::counter!("fleet_ticks_total", "Scheduler ticks").add(n);
//! }
//! let _span = capman_obs::span("calibrate", cohort as u64);
//! ```
//!
//! With the `obs` feature **off** (the default), [`enabled`] is
//! `const false` — the branch and everything behind it fold away and
//! the tick path is exactly the uninstrumented code. With the feature
//! **on** but the runtime switch off, each site costs one relaxed
//! atomic load and a predictable branch. With both on, counters are one
//! wait-free RMW on a thread-sticky shard and spans are two `Instant`
//! reads plus a push to an uncontended per-thread ring.
//! `bench_fleet --obs-overhead` measures this contract.
//!
//! The data structures themselves ([`Registry`](metrics::Registry),
//! [`Tracer`](trace::Tracer)) are always compiled and can be
//! instantiated locally regardless of the feature; the feature only
//! gates the *global* hooks below.

pub mod export;
pub mod flight;
pub mod metrics;
pub mod trace;

pub use flight::{CompletedTrace, FlightConfig, FlightRecorder};
pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
pub use trace::{RecordKind, SpanGuard, SpanRecord, TraceCtx, TraceDrain, Tracer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Whether instrumentation was compiled in (`--features obs`). A
/// `const fn`, so `enabled()` folds to `false` at compile time in the
/// default configuration.
#[inline]
pub const fn compiled() -> bool {
    cfg!(feature = "obs")
}

/// Runtime kill switch. Starts enabled so `--features obs` observes by
/// default; flipped by [`set_enabled`].
static RUNTIME_ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether instrumentation sites should record right now: compiled in
/// *and* runtime-enabled. This is the one check every site performs.
#[inline]
pub fn enabled() -> bool {
    compiled() && RUNTIME_ENABLED.load(Ordering::Relaxed)
}

/// Flip the runtime kill switch. A no-op signal when the feature is
/// compiled out ([`enabled`] stays `false` regardless).
pub fn set_enabled(on: bool) {
    RUNTIME_ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide metrics registry every `counter!` / `gauge!` /
/// `histogram!` site registers into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// The process-wide tracer behind [`span`] / [`event`].
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(Tracer::default)
}

/// Open a span on the global tracer, or `None` when observability is
/// disabled or the span was sampled out. Bind it:
/// `let _span = capman_obs::span("calibrate", cohort);`.
#[inline]
pub fn span(label: &'static str, arg: u64) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    tracer().span(label, arg)
}

/// Record an instant event on the global tracer (no-op when disabled).
#[inline]
pub fn event(label: &'static str, arg: u64) {
    if enabled() {
        tracer().event(label, arg);
    }
}

/// Mint a trace context on the global tracer, recording its origin
/// event (see [`Tracer::begin_trace`]). Returns [`TraceCtx::NONE`]
/// when observability is disabled, so carrying the context is free in
/// the uninstrumented build.
#[inline]
pub fn begin_trace(label: &'static str, arg: u64) -> TraceCtx {
    if !enabled() {
        return TraceCtx::NONE;
    }
    tracer().begin_trace(label, arg)
}

/// Open a span belonging to `trace` on the global tracer (see
/// [`Tracer::span_in`]; `None` when disabled or sampled out).
#[inline]
pub fn span_in(label: &'static str, arg: u64, trace: u64) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    tracer().span_in(label, arg, trace)
}

/// Record an instant event belonging to `trace` on the global tracer.
/// Returns the record id (0 when disabled or sampled out) for use as a
/// flow-link endpoint.
#[inline]
pub fn event_in(label: &'static str, arg: u64, trace: u64) -> u64 {
    if !enabled() {
        return 0;
    }
    tracer().event_in(label, arg, trace)
}

/// Record a cross-thread flow link on the global tracer (see
/// [`Tracer::link`]; no-op returning 0 when disabled or either
/// endpoint is 0).
#[inline]
pub fn link(label: &'static str, from: u64, to: u64, trace: u64) -> u64 {
    if !enabled() {
        return 0;
    }
    tracer().link(label, from, to, trace)
}

/// Record every `every`-th span per thread on the global tracer
/// (1 = all, 0 = none).
pub fn set_span_sampling(every: u32) {
    tracer().set_sample_every(every);
}

/// Drain the global tracer (see [`Tracer::drain`]).
pub fn drain() -> TraceDrain {
    tracer().drain()
}

/// Snapshot the global registry (see [`Registry::snapshot`]).
pub fn snapshot() -> MetricsSnapshot {
    registry().snapshot()
}

/// A counter on the global registry, resolved once per call site: the
/// `Arc` handle is cached in a per-site `OnceLock`, so the registry
/// mutex is touched only on the first hit.
#[macro_export]
macro_rules! counter {
    ($name:expr, $help:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().counter($name, $help))
    }};
}

/// A gauge on the global registry, cached per call site like
/// [`counter!`].
#[macro_export]
macro_rules! gauge {
    ($name:expr, $help:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().gauge($name, $help))
    }};
}

/// A histogram on the global registry, cached per call site like
/// [`counter!`]. `$bounds` (first registration wins) must be strictly
/// increasing and finite.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $help:expr, $bounds:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().histogram($name, $help, $bounds))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn compiled_tracks_the_cargo_feature() {
        assert_eq!(super::compiled(), cfg!(feature = "obs"));
    }

    #[test]
    fn kill_switch_gates_the_global_hooks() {
        // Whatever the feature config, the runtime switch must make the
        // hooks inert...
        super::set_enabled(false);
        assert!(!super::enabled());
        assert!(super::span("gated", 0).is_none());
        super::event("gated", 0);
        // ...and restoring it restores `enabled()` to the compile-time
        // capability.
        super::set_enabled(true);
        assert_eq!(super::enabled(), super::compiled());
    }

    #[test]
    fn macros_cache_one_handle_per_site() {
        let a = counter!("macro_cached_total", "Cache check");
        let b = counter!("macro_cached_total", "Cache check");
        // Two *sites*, one metric: increments land in the same cells.
        a.add(2);
        b.inc();
        assert_eq!(a.value(), 3);
        assert_eq!(b.value(), 3);
        let g = gauge!("macro_gauge", "Gauge site");
        g.set(5);
        assert_eq!(g.value(), 5);
        let h = histogram!("macro_hist", "Histogram site", &[1.0, 2.0]);
        h.observe(1.5);
        assert_eq!(h.count(), 1);
    }
}
