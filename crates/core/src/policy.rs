//! The battery-scheduling policy interface.
//!
//! Once per simulation step the engine asks the policy which cell should
//! carry the load. The decision context contains exactly what a real
//! scheduler could observe at that instant: the device power state, the
//! system-call actions that just fired, the *measured* power of the
//! previous step, cell states of charge, and the thermal situation. The
//! upcoming demand itself is not observable — predicting it is the whole
//! game (the Oracle baseline is explicitly allowed to cheat).

use capman_battery::chemistry::Class;
use capman_device::fsm::Action;
use capman_device::states::DeviceState;

use crate::telemetry::CalibrationSample;

/// Everything a (non-clairvoyant) policy can see when deciding.
#[derive(Debug, Clone)]
pub struct DecisionContext<'a> {
    /// Current simulation time, seconds.
    pub time_s: f64,
    /// Device power state after this step's actions fired.
    pub state: DeviceState,
    /// The system-call actions fired at this step boundary.
    pub actions: &'a [Action],
    /// Measured total pack power of the previous step, watts.
    pub last_power_w: f64,
    /// State of charge of the big cell.
    pub big_soc: f64,
    /// State of charge of the LITTLE cell (1.0 for single packs).
    pub little_soc: f64,
    /// Whether the big cell can currently serve load.
    pub big_usable: bool,
    /// Whether the LITTLE cell can currently serve load.
    pub little_usable: bool,
    /// Fill level of the big cell's immediately available charge well.
    pub big_head: f64,
    /// Fill level of the LITTLE cell's immediately available charge well.
    pub little_head: f64,
    /// Hot-spot temperature, degC.
    pub hotspot_c: f64,
    /// Whether the TEC is currently energised.
    pub tec_on: bool,
    /// Whether the pack actually has two cells.
    pub dual: bool,
}

/// What the engine reports back after each step (for learning policies).
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// Time at the *end* of the observed step, seconds.
    pub time_s: f64,
    /// Device state before the step's actions.
    pub prev_state: DeviceState,
    /// The primary action that fired (TimerTick when none did).
    pub action: Action,
    /// Device state after the actions.
    pub new_state: DeviceState,
    /// Pack efficiency of the step in `[0, 1]` (delivered over
    /// delivered-plus-losses, zeroed on shortfall).
    pub reward: f64,
    /// Measured total power of the step, watts.
    pub power_w: f64,
}

/// A battery-scheduling policy.
pub trait Policy {
    /// Short name used in figures ("CAPMAN", "Oracle", ...).
    fn name(&self) -> &'static str;

    /// Digest the previous step's outcome (learning policies override).
    fn observe(&mut self, _obs: &Observation) {}

    /// Choose the cell to carry the upcoming step's load.
    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Class;

    /// Accumulated decision/calibration overhead in microseconds,
    /// normalised to the Nexus compute speed (Fig. 16).
    fn overhead_us(&self) -> f64 {
        0.0
    }

    /// Number of background recalibrations performed.
    fn recalibrations(&self) -> u64 {
        0
    }

    /// Hand over the calibration events accumulated since the last call
    /// (the simulator forwards them into [`crate::telemetry::Telemetry`]).
    /// Policies without background calibration return nothing.
    fn drain_calibrations(&mut self) -> Vec<CalibrationSample> {
        Vec::new()
    }
}

/// Fallback shared by every dual-cell policy: honour the preferred class
/// when its cell is usable, otherwise take whichever cell still works.
pub fn usable_or_fallback(preferred: Class, ctx: &DecisionContext<'_>) -> Class {
    let usable = |class: Class| match class {
        Class::Big => ctx.big_usable,
        Class::Little => ctx.little_usable && ctx.dual,
    };
    if usable(preferred) {
        preferred
    } else if usable(preferred.other()) {
        preferred.other()
    } else {
        preferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(big_usable: bool, little_usable: bool) -> DecisionContext<'static> {
        DecisionContext {
            time_s: 0.0,
            state: DeviceState::awake(),
            actions: &[],
            last_power_w: 1.0,
            big_soc: 0.5,
            little_soc: 0.5,
            big_usable,
            little_usable,
            big_head: 1.0,
            little_head: 1.0,
            hotspot_c: 30.0,
            tec_on: false,
            dual: true,
        }
    }

    #[test]
    fn fallback_honours_preference_when_usable() {
        assert_eq!(
            usable_or_fallback(Class::Little, &ctx(true, true)),
            Class::Little
        );
        assert_eq!(usable_or_fallback(Class::Big, &ctx(true, true)), Class::Big);
    }

    #[test]
    fn fallback_switches_when_preferred_cell_is_dead() {
        assert_eq!(
            usable_or_fallback(Class::Little, &ctx(true, false)),
            Class::Big
        );
        assert_eq!(
            usable_or_fallback(Class::Big, &ctx(false, true)),
            Class::Little
        );
    }

    #[test]
    fn fallback_keeps_preference_when_everything_is_dead() {
        assert_eq!(
            usable_or_fallback(Class::Big, &ctx(false, false)),
            Class::Big
        );
    }

    #[test]
    fn single_pack_never_selects_little() {
        let mut c = ctx(true, true);
        c.dual = false;
        assert_eq!(usable_or_fallback(Class::Little, &c), Class::Big);
    }
}
