//! The parallel, memoized similarity engine.
//!
//! [`SimilarityEngine`] computes the same `(sigma_S*, sigma_A*)` fixpoint
//! as [`crate::similarity::structural_similarity`] — that function stays
//! as the reference implementation — but restructures each sweep for
//! speed:
//!
//! * **Row-parallel sweeps.** Each iteration is a Jacobi sweep: every
//!   pair reads only the *previous* matrices, so the upper triangle can
//!   be filled row-by-row in parallel. Rows are written through disjoint
//!   row chunks of the backing slice and mirrored afterwards, which makes
//!   the serial and parallel schedules produce bit-identical matrices.
//! * **EMD memoization.** An EMD solve is a pure function of the two
//!   successor distributions and the ground-distance entries they touch.
//!   Solutions are cached under a 128-bit fingerprint of exactly those
//!   inputs, so duplicate distribution pairs within a sweep, unchanged
//!   pairs across sweeps, and repeated recalibrations on a slowly
//!   changing graph all skip the successive-shortest-path solver.
//! * **Bound pruning.** Cheap EMD bounds ([`crate::emd::emd_bounds`])
//!   decide many pairs outright: when the upper bound is zero the
//!   transport is free and `sigma` needs no solve; when even the lower
//!   bound already drives `sigma` to the clamp at zero, the exact
//!   distance is irrelevant. Both shortcuts reproduce the exact clamped
//!   value, so pruning does not perturb the fixpoint.
//!
//! Determinism contract: for a fixed configuration, `compute` is a pure
//! function of the graph and parameters. Serial and parallel modes return
//! bit-identical matrices, and a warm cache returns bit-identical results
//! to a cold one (cached values are exactly the values a solve would
//! recompute).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::emd::{emd_bounds_on_support, emd_detailed};
use crate::graph::MdpGraph;
use crate::hausdorff::hausdorff;
use crate::matrix::SquareMatrix;
use crate::similarity::{apply_base_cases, SimilarityParams, SimilarityResult};

/// How sweeps are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// One thread fills every row in order.
    Serial,
    /// Rows are dealt across the available cores.
    Parallel,
}

/// Counters and timings from the most recent [`SimilarityEngine::compute`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Fixpoint sweeps executed (equals `SimilarityResult::iterations`).
    pub sweeps: usize,
    /// Action-node pairs evaluated across all sweeps.
    pub pair_evaluations: usize,
    /// Exact SSP solves performed (cache misses that survived pruning).
    pub emd_solves: usize,
    /// Pairs answered from the memo cache.
    pub cache_hits: usize,
    /// Pairs decided by the EMD bounds without a solve or cache lookup.
    pub bound_pruned: usize,
    /// Wall time of each sweep, in microseconds.
    pub sweep_us: Vec<f64>,
    /// Total wall time of the run, in microseconds.
    pub wall_us: f64,
}

impl RunStats {
    /// Fraction of non-pruned pair evaluations served by the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let looked_up = self.cache_hits + self.emd_solves;
        if looked_up == 0 {
            0.0
        } else {
            self.cache_hits as f64 / looked_up as f64
        }
    }

    /// Mean sweep wall time in microseconds (zero before any sweep).
    pub fn mean_sweep_us(&self) -> f64 {
        if self.sweep_us.is_empty() {
            0.0
        } else {
            self.sweep_us.iter().sum::<f64>() / self.sweep_us.len() as f64
        }
    }
}

/// Lifetime counters for a [`SimilarityEngine`], accumulated across runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Completed `compute` runs.
    pub runs: usize,
    /// Action-node pairs evaluated across all runs.
    pub pair_evaluations: usize,
    /// Exact SSP solves across all runs.
    pub emd_solves: usize,
    /// Memo-cache hits across all runs.
    pub cache_hits: usize,
    /// Bound-pruned pairs across all runs.
    pub bound_pruned: usize,
    /// Memo entries evicted by targeted invalidation
    /// ([`SimilarityEngine::invalidate_states`]) across all runs.
    pub cache_evictions: usize,
    /// Targeted-invalidation calls across all runs.
    pub invalidations: usize,
    /// Total wall time across all runs, in microseconds.
    pub wall_us: f64,
    /// Statistics of the most recent run.
    pub last_run: RunStats,
}

impl EngineStats {
    /// Lifetime fraction of non-pruned pair evaluations served by cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let looked_up = self.cache_hits + self.emd_solves;
        if looked_up == 0 {
            0.0
        } else {
            self.cache_hits as f64 / looked_up as f64
        }
    }
}

const CACHE_SHARDS: usize = 32;
/// Per-shard entry cap; a full shard is flushed wholesale. Bounds the
/// cache at `CACHE_SHARDS * MAX_ENTRIES_PER_SHARD` entries.
const MAX_ENTRIES_PER_SHARD: usize = 8192;

/// One memoized EMD solution: the exact distance plus the states whose
/// `sigma_S` entries or distribution weights the solve read (the sorted
/// union of both supports). The state list is what makes *targeted*
/// invalidation possible: a profiler drift that dirties state `d` can
/// evict exactly the entries with `d` in their support instead of
/// flushing the whole cache.
#[derive(Debug, Clone)]
struct CacheEntry {
    distance: f64,
    states: Box<[u32]>,
}

/// Sharded memo cache from EMD-problem fingerprints to exact distances.
#[derive(Debug)]
struct EmdCache {
    shards: Vec<Mutex<HashMap<u128, CacheEntry>>>,
}

impl EmdCache {
    fn new() -> Self {
        EmdCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: u128) -> &Mutex<HashMap<u128, CacheEntry>> {
        &self.shards[(key as u64 ^ (key >> 64) as u64) as usize % CACHE_SHARDS]
    }

    fn get(&self, key: u128) -> Option<f64> {
        self.shard(key)
            .lock()
            .unwrap()
            .get(&key)
            .map(|e| e.distance)
    }

    fn insert(&self, key: u128, distance: f64, states: Box<[u32]>) {
        let mut shard = self.shard(key).lock().unwrap();
        if shard.len() >= MAX_ENTRIES_PER_SHARD {
            shard.clear();
        }
        shard.insert(key, CacheEntry { distance, states });
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Evict every entry whose involved-state list intersects `dirty`
    /// (ascending, deduplicated). Returns the number evicted.
    fn invalidate(&self, dirty: &[u32]) -> usize {
        if dirty.is_empty() {
            return 0;
        }
        let mut evicted = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            let before = shard.len();
            shard.retain(|_, e| !sorted_intersects(&e.states, dirty));
            evicted += before - shard.len();
        }
        evicted
    }
}

/// Whether two ascending `u32` slices share an element (two-pointer walk).
fn sorted_intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// The sorted union of two ascending support lists, as the `u32` state
/// ids a [`CacheEntry`] stores.
fn support_union(supp_p: &[usize], supp_q: &[usize]) -> Box<[u32]> {
    let mut out = Vec::with_capacity(supp_p.len() + supp_q.len());
    let (mut i, mut j) = (0, 0);
    while i < supp_p.len() && j < supp_q.len() {
        match supp_p[i].cmp(&supp_q[j]) {
            std::cmp::Ordering::Less => {
                out.push(supp_p[i] as u32);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(supp_q[j] as u32);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(supp_p[i] as u32);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend(supp_p[i..].iter().map(|&x| x as u32));
    out.extend(supp_q[j..].iter().map(|&x| x as u32));
    out.into_boxed_slice()
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Two independent FNV-1a lanes giving a 128-bit fingerprint.
struct Fingerprint {
    a: u64,
    b: u64,
}

impl Fingerprint {
    fn new() -> Self {
        Fingerprint {
            a: FNV_OFFSET,
            b: FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn mix(&mut self, x: u64) {
        self.a = (self.a ^ x).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ x.rotate_left(29)).wrapping_mul(FNV_PRIME);
    }

    fn value(&self) -> u128 {
        ((self.a as u128) << 64) | self.b as u128
    }
}

/// Fingerprint of an EMD problem: both supports with their raw weights,
/// plus the ground-distance entries (as `sigma_S` bits) the solver can
/// read. Equal fingerprint inputs make `emd_detailed` return the same
/// value, so a hit is exact, not approximate.
fn emd_fingerprint(
    p: &[f64],
    q: &[f64],
    supp_p: &[usize],
    supp_q: &[usize],
    s: &SquareMatrix,
) -> u128 {
    let mut fp = Fingerprint::new();
    fp.mix(supp_p.len() as u64);
    for &i in supp_p {
        fp.mix(i as u64);
        fp.mix(p[i].to_bits());
    }
    fp.mix(supp_q.len() as u64);
    for &j in supp_q {
        fp.mix(j as u64);
        fp.mix(q[j].to_bits());
    }
    for &i in supp_p {
        for &j in supp_q {
            fp.mix(s.get(i, j).to_bits());
        }
    }
    fp.value()
}

/// Shared read-only context for one action sweep, plus its counters.
struct ActionSweepCtx<'a> {
    s: &'a SquareMatrix,
    dists: &'a [Vec<f64>],
    supports: &'a [Vec<usize>],
    rewards: &'a [f64],
    params: &'a SimilarityParams,
    cache: Option<&'a EmdCache>,
    prune: bool,
    emd_solves: &'a AtomicUsize,
    cache_hits: &'a AtomicUsize,
    bound_pruned: &'a AtomicUsize,
    ssp_augmentations: &'a AtomicUsize,
}

/// `sigma_A` for one pair, with pruning and memoization. Pure in the
/// context (counters aside), so the schedule cannot change the value.
fn action_pair_sigma(ctx: &ActionSweepCtx<'_>, ai: usize, bi: usize) -> f64 {
    let params = ctx.params;
    let delta_rwd = (ctx.rewards[ai] - ctx.rewards[bi]).abs();
    // sigma = available - C_A * d, clamped to [0, 1].
    let available = 1.0 - (1.0 - params.c_a) * delta_rwd;
    let ground = |u: usize, v: usize| 1.0 - ctx.s.get(u, v);

    if ctx.prune {
        let b = emd_bounds_on_support(
            &ctx.dists[ai],
            &ctx.dists[bi],
            &ctx.supports[ai],
            &ctx.supports[bi],
            ground,
        );
        if b.upper <= 0.0 {
            // The optimal transport is free, so d = 0 exactly.
            ctx.bound_pruned.fetch_add(1, Ordering::Relaxed);
            return available.clamp(0.0, 1.0);
        }
        if available - params.c_a * b.lower <= 0.0 {
            // Even the cheapest possible transport clamps sigma to 0.
            ctx.bound_pruned.fetch_add(1, Ordering::Relaxed);
            return 0.0;
        }
    }

    let distance = match ctx.cache {
        Some(cache) => {
            let key = emd_fingerprint(
                &ctx.dists[ai],
                &ctx.dists[bi],
                &ctx.supports[ai],
                &ctx.supports[bi],
                ctx.s,
            );
            match cache.get(key) {
                Some(d) => {
                    ctx.cache_hits.fetch_add(1, Ordering::Relaxed);
                    d
                }
                None => {
                    let r = emd_detailed(&ctx.dists[ai], &ctx.dists[bi], ground);
                    ctx.emd_solves.fetch_add(1, Ordering::Relaxed);
                    ctx.ssp_augmentations
                        .fetch_add(r.augmentations, Ordering::Relaxed);
                    cache.insert(
                        key,
                        r.distance,
                        support_union(&ctx.supports[ai], &ctx.supports[bi]),
                    );
                    r.distance
                }
            }
        }
        None => {
            let r = emd_detailed(&ctx.dists[ai], &ctx.dists[bi], ground);
            ctx.emd_solves.fetch_add(1, Ordering::Relaxed);
            ctx.ssp_augmentations
                .fetch_add(r.augmentations, Ordering::Relaxed);
            r.distance
        }
    };
    (available - params.c_a * distance).clamp(0.0, 1.0)
}

/// Fill the strict upper triangle of row `ai` of `A_next`.
fn fill_action_row(ctx: &ActionSweepCtx<'_>, ai: usize, row: &mut [f64]) {
    for (bi, cell) in row.iter_mut().enumerate().skip(ai + 1) {
        *cell = action_pair_sigma(ctx, ai, bi);
    }
}

/// Fill the strict upper triangle of row `u` of `S_next`. Rows touching
/// absorbing states are left for the base cases.
fn fill_state_row(
    graph: &MdpGraph,
    params: &SimilarityParams,
    a_next: &SquareMatrix,
    u: usize,
    row: &mut [f64],
) {
    if graph.is_absorbing(u) {
        return;
    }
    for (v, cell) in row.iter_mut().enumerate().skip(u + 1) {
        if graph.is_absorbing(v) {
            continue;
        }
        let h = hausdorff(graph.neighbors(u), graph.neighbors(v), |x, y| {
            1.0 - a_next.get(x, y)
        });
        *cell = (params.c_s * (1.0 - h)).clamp(0.0, 1.0);
    }
}

/// A reusable Algorithm 1 solver with scheduling, memoization, and
/// pruning knobs. See the module docs for the determinism contract.
#[derive(Debug)]
pub struct SimilarityEngine {
    mode: ExecutionMode,
    memoize: bool,
    prune: bool,
    cache: EmdCache,
    stats: EngineStats,
}

impl SimilarityEngine {
    /// A single-threaded engine with memoization and pruning off — the
    /// engine-scheduled equivalent of the reference
    /// [`crate::similarity::structural_similarity`] path.
    pub fn serial() -> Self {
        SimilarityEngine::with_options(ExecutionMode::Serial, false, false)
    }

    /// The full engine: parallel sweeps, memoization, and bound pruning.
    pub fn parallel() -> Self {
        SimilarityEngine::with_options(ExecutionMode::Parallel, true, true)
    }

    /// An engine with every knob explicit (used by tests and benches to
    /// isolate the contribution of each optimisation).
    pub fn with_options(mode: ExecutionMode, memoize: bool, prune: bool) -> Self {
        SimilarityEngine {
            mode,
            memoize,
            prune,
            cache: EmdCache::new(),
            stats: EngineStats::default(),
        }
    }

    /// The configured scheduling mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Whether EMD solutions are memoized.
    pub fn is_memoizing(&self) -> bool {
        self.memoize
    }

    /// Whether EMD bound pruning is enabled.
    pub fn is_pruning(&self) -> bool {
        self.prune
    }

    /// Lifetime statistics, including the most recent run.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of memoized EMD solutions currently held.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drop every memoized EMD solution (statistics are kept).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Evict only the memoized EMD solutions whose fingerprint involves
    /// one of `dirty_states` — i.e. entries whose support union contains
    /// a state whose successor distribution or similarity row may have
    /// drifted. Everything else stays warm for the next `compute`.
    ///
    /// This is a hit-rate optimisation, not a correctness requirement:
    /// fingerprints cover every input of a solve, so a stale entry can
    /// never be *returned* for a changed problem — it would merely rot
    /// in the shard until displaced. Targeted eviction reclaims that
    /// memory and keeps the shards from flushing wholesale at the cap.
    ///
    /// Returns the number of entries evicted; the running totals land in
    /// [`EngineStats::cache_evictions`] and, with `obs` enabled, on the
    /// `emd_cache_evictions_total` counter.
    pub fn invalidate_states(&mut self, dirty_states: &[usize]) -> usize {
        let mut dirty: Vec<u32> = dirty_states.iter().map(|&s| s as u32).collect();
        dirty.sort_unstable();
        dirty.dedup();
        let evicted = self.cache.invalidate(&dirty);
        self.stats.cache_evictions += evicted;
        self.stats.invalidations += 1;
        if capman_obs::enabled() {
            capman_obs::counter!(
                "emd_cache_invalidations_total",
                "Targeted EMD-cache invalidation passes"
            )
            .inc();
            capman_obs::counter!(
                "emd_cache_evictions_total",
                "EMD memo entries evicted by targeted invalidation"
            )
            .add(evicted as u64);
        }
        evicted
    }

    /// Run Algorithm 1. Matrices match the reference implementation (the
    /// pruning shortcuts reproduce the exact clamped values), and the
    /// run's counters land in [`SimilarityEngine::stats`].
    ///
    /// `SimilarityResult::emd_calls` counts exact SSP solves only; pairs
    /// served by the cache or the bounds are in the engine statistics.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of their domains.
    pub fn compute(&mut self, graph: &MdpGraph, params: &SimilarityParams) -> SimilarityResult {
        params.validate();
        let t_run = Instant::now();
        let nv = graph.n_states();
        let na = graph.n_action_nodes();

        let mut s = SquareMatrix::identity(nv);
        let mut a_m = SquareMatrix::identity(na);
        apply_base_cases(graph, params, &mut s);

        // Successor distributions, their supports, and expected rewards.
        let dists: Vec<Vec<f64>> = (0..na)
            .map(|ai| {
                let mut p = vec![0.0; nv];
                for &(next, prob, _) in &graph.action_node(ai).edges {
                    p[next] += prob;
                }
                p
            })
            .collect();
        let supports: Vec<Vec<usize>> = dists
            .iter()
            .map(|p| (0..nv).filter(|&i| p[i] > 0.0).collect())
            .collect();
        let rewards: Vec<f64> = (0..na)
            .map(|ai| graph.action_node(ai).expected_reward())
            .collect();

        let emd_solves = AtomicUsize::new(0);
        let cache_hits = AtomicUsize::new(0);
        let bound_pruned = AtomicUsize::new(0);
        let ssp_augmentations = AtomicUsize::new(0);

        let mut run = RunStats::default();
        let mut iterations = 0;
        let mut converged = false;

        while iterations < params.max_iterations {
            iterations += 1;
            let t_sweep = Instant::now();

            // Action sweep: reads the previous S only.
            let mut a_next = SquareMatrix::identity(na);
            {
                let ctx = ActionSweepCtx {
                    s: &s,
                    dists: &dists,
                    supports: &supports,
                    rewards: &rewards,
                    params,
                    cache: if self.memoize {
                        Some(&self.cache)
                    } else {
                        None
                    },
                    prune: self.prune,
                    emd_solves: &emd_solves,
                    cache_hits: &cache_hits,
                    bound_pruned: &bound_pruned,
                    ssp_augmentations: &ssp_augmentations,
                };
                match self.mode {
                    ExecutionMode::Serial => {
                        for (ai, row) in a_next.as_mut_slice().chunks_mut(na.max(1)).enumerate() {
                            fill_action_row(&ctx, ai, row);
                        }
                    }
                    ExecutionMode::Parallel => {
                        a_next
                            .as_mut_slice()
                            .par_chunks_mut(na.max(1))
                            .enumerate()
                            .for_each(|ai, row| fill_action_row(&ctx, ai, row));
                    }
                }
            }
            a_next.mirror_upper_to_lower();
            run.pair_evaluations += na.saturating_sub(1) * na / 2;

            // State sweep: reads the new A only.
            let mut s_next = SquareMatrix::identity(nv);
            match self.mode {
                ExecutionMode::Serial => {
                    for (u, row) in s_next.as_mut_slice().chunks_mut(nv.max(1)).enumerate() {
                        fill_state_row(graph, params, &a_next, u, row);
                    }
                }
                ExecutionMode::Parallel => {
                    s_next
                        .as_mut_slice()
                        .par_chunks_mut(nv.max(1))
                        .enumerate()
                        .for_each(|u, row| fill_state_row(graph, params, &a_next, u, row));
                }
            }
            s_next.mirror_upper_to_lower();
            apply_base_cases(graph, params, &mut s_next);

            let change = s.max_abs_diff(&s_next).max(a_m.max_abs_diff(&a_next));
            s = s_next;
            a_m = a_next;
            run.sweep_us.push(t_sweep.elapsed().as_secs_f64() * 1e6);
            if change < params.tolerance {
                converged = true;
                break;
            }
        }

        run.sweeps = iterations;
        run.emd_solves = emd_solves.load(Ordering::Relaxed);
        run.cache_hits = cache_hits.load(Ordering::Relaxed);
        run.bound_pruned = bound_pruned.load(Ordering::Relaxed);
        run.wall_us = t_run.elapsed().as_secs_f64() * 1e6;
        if capman_obs::enabled() {
            capman_obs::counter!("similarity_runs_total", "Similarity-engine runs").inc();
            capman_obs::counter!("emd_solves_total", "EMD transport problems solved")
                .add(run.emd_solves as u64);
            capman_obs::counter!(
                "emd_cache_hits_total",
                "EMD results served from the memo table"
            )
            .add(run.cache_hits as u64);
            capman_obs::counter!(
                "emd_bound_pruned_total",
                "EMD solves skipped by the Hausdorff bound"
            )
            .add(run.bound_pruned as u64);
        }

        self.stats.runs += 1;
        self.stats.pair_evaluations += run.pair_evaluations;
        self.stats.emd_solves += run.emd_solves;
        self.stats.cache_hits += run.cache_hits;
        self.stats.bound_pruned += run.bound_pruned;
        self.stats.wall_us += run.wall_us;
        self.stats.last_run = run;

        SimilarityResult {
            sigma_s: s,
            sigma_a: a_m,
            iterations,
            converged,
            emd_calls: self.stats.last_run.emd_solves,
            ssp_augmentations: ssp_augmentations.load(Ordering::Relaxed),
        }
    }
}

impl Default for SimilarityEngine {
    /// The full engine, as [`SimilarityEngine::parallel`].
    fn default() -> Self {
        SimilarityEngine::parallel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;
    use crate::similarity::structural_similarity;

    fn twin_graph() -> MdpGraph {
        let mut b = MdpBuilder::new(5, 2);
        b.transition(0, 0, 1, 1.0, 0.4);
        b.transition(0, 1, 2, 1.0, 0.4);
        b.transition(1, 0, 3, 1.0, 0.8);
        b.transition(2, 0, 4, 1.0, 0.8);
        MdpGraph::from_mdp(&b.build())
    }

    #[test]
    fn plain_serial_engine_matches_reference_bitwise() {
        let g = twin_graph();
        let p = SimilarityParams::paper(0.5);
        let seed = structural_similarity(&g, &p);
        let r = SimilarityEngine::serial().compute(&g, &p);
        assert_eq!(r.sigma_s, seed.sigma_s);
        assert_eq!(r.sigma_a, seed.sigma_a);
        assert_eq!(r.iterations, seed.iterations);
        assert_eq!(r.converged, seed.converged);
        assert_eq!(r.emd_calls, seed.emd_calls);
        assert_eq!(r.ssp_augmentations, seed.ssp_augmentations);
    }

    #[test]
    fn full_engine_matches_reference_closely() {
        let g = twin_graph();
        let p = SimilarityParams::paper(0.5);
        let seed = structural_similarity(&g, &p);
        let r = SimilarityEngine::parallel().compute(&g, &p);
        assert!(r.converged);
        assert!(r.sigma_s.max_abs_diff(&seed.sigma_s) < 1e-12);
        assert!(r.sigma_a.max_abs_diff(&seed.sigma_a) < 1e-12);
    }

    #[test]
    fn serial_and_parallel_full_engines_agree_bitwise() {
        let g = twin_graph();
        let p = SimilarityParams::paper(0.5);
        let a = SimilarityEngine::with_options(ExecutionMode::Serial, true, true).compute(&g, &p);
        let b = SimilarityEngine::with_options(ExecutionMode::Parallel, true, true).compute(&g, &p);
        assert_eq!(a.sigma_s, b.sigma_s);
        assert_eq!(a.sigma_a, b.sigma_a);
    }

    #[test]
    fn warm_cache_reproduces_cold_results_bitwise() {
        let g = twin_graph();
        let p = SimilarityParams::paper(0.5);
        let mut engine = SimilarityEngine::parallel();
        let cold = engine.compute(&g, &p);
        let warm = engine.compute(&g, &p);
        assert_eq!(cold.sigma_s, warm.sigma_s);
        assert_eq!(cold.sigma_a, warm.sigma_a);
        assert!(
            engine.stats().last_run.emd_solves < cold.emd_calls || cold.emd_calls == 0,
            "warm run should re-solve less: warm {} vs cold {}",
            engine.stats().last_run.emd_solves,
            cold.emd_calls
        );
    }

    #[test]
    fn memoization_records_hits_on_duplicate_pairs() {
        // Two states with two identical-successor actions each, plus a
        // distinct branch: duplicate EMD problems within one sweep.
        let mut b = MdpBuilder::new(4, 2);
        b.transition(0, 0, 2, 1.0, 0.2);
        b.transition(0, 1, 2, 1.0, 0.7);
        b.transition(1, 0, 3, 1.0, 0.2);
        b.transition(1, 1, 3, 1.0, 0.7);
        let g = MdpGraph::from_mdp(&b.build());
        let p = SimilarityParams::paper(0.5);
        let mut engine = SimilarityEngine::with_options(ExecutionMode::Serial, true, false);
        let _ = engine.compute(&g, &p);
        let stats = engine.stats();
        assert!(
            stats.cache_hits > 0,
            "duplicate distribution pairs must hit the cache"
        );
        assert_eq!(
            stats.cache_hits + stats.emd_solves,
            stats.pair_evaluations,
            "without pruning every pair is either solved or served"
        );
    }

    #[test]
    fn pruning_skips_identical_distribution_pairs() {
        let mut b = MdpBuilder::new(3, 2);
        // Same state, two actions with identical successor distributions
        // but different rewards: EMD is zero by the upper bound.
        b.transition(0, 0, 2, 1.0, 0.1);
        b.transition(0, 1, 2, 1.0, 0.9);
        b.transition(1, 0, 2, 1.0, 0.5);
        let g = MdpGraph::from_mdp(&b.build());
        let p = SimilarityParams::paper(0.5);
        let mut engine = SimilarityEngine::parallel();
        let seed = structural_similarity(&g, &p);
        let r = engine.compute(&g, &p);
        assert!(engine.stats().bound_pruned > 0, "bounds should fire");
        assert_eq!(r.sigma_s, seed.sigma_s, "pruning must not change S");
        assert_eq!(r.sigma_a, seed.sigma_a, "pruning must not change A");
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let g = twin_graph();
        let p = SimilarityParams::paper(0.5);
        let mut engine = SimilarityEngine::parallel();
        let _ = engine.compute(&g, &p);
        let after_one = engine.stats().clone();
        let _ = engine.compute(&g, &p);
        let after_two = engine.stats();
        assert_eq!(after_two.runs, 2);
        assert_eq!(
            after_two.pair_evaluations,
            after_one.pair_evaluations + after_two.last_run.pair_evaluations
        );
        assert!(after_two.wall_us >= after_one.wall_us);
        assert!(after_two.last_run.sweeps > 0);
        assert_eq!(after_two.last_run.sweep_us.len(), after_two.last_run.sweeps);
    }

    #[test]
    fn cache_can_be_cleared() {
        let g = twin_graph();
        let p = SimilarityParams::paper(0.5);
        let mut engine = SimilarityEngine::parallel();
        let _ = engine.compute(&g, &p);
        assert!(engine.cache_len() > 0);
        engine.clear_cache();
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn cache_shard_flushes_when_full() {
        let cache = EmdCache::new();
        // Hammer one shard far past its cap; len must stay bounded.
        for i in 0..(3 * MAX_ENTRIES_PER_SHARD as u128) {
            cache.insert(i * CACHE_SHARDS as u128, i as f64, Box::new([]));
        }
        assert!(cache.len() <= CACHE_SHARDS * MAX_ENTRIES_PER_SHARD);
        assert!(cache.len() > 0);
    }

    #[test]
    fn cache_invalidation_evicts_exactly_the_intersecting_entries() {
        let cache = EmdCache::new();
        cache.insert(1, 0.1, Box::new([0, 2, 5]));
        cache.insert(2, 0.2, Box::new([1, 3]));
        cache.insert(3, 0.3, Box::new([5, 9]));
        cache.insert(4, 0.4, Box::new([]));
        assert_eq!(cache.invalidate(&[5]), 2, "entries 1 and 3 involve state 5");
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_none());
        assert_eq!(cache.get(2), Some(0.2));
        assert!(cache.get(3).is_none());
        assert_eq!(cache.get(4), Some(0.4));
        assert_eq!(cache.invalidate(&[]), 0, "no dirt, no evictions");
        assert_eq!(cache.invalidate(&[7]), 0, "uninvolved state evicts nothing");
    }

    #[test]
    fn engine_invalidation_counts_and_keeps_uninvolved_entries() {
        let g = twin_graph();
        let p = SimilarityParams::paper(0.5);
        let mut engine = SimilarityEngine::with_options(ExecutionMode::Serial, true, false);
        let _ = engine.compute(&g, &p);
        let full = engine.cache_len();
        assert!(full > 0);
        // A state id outside every support evicts nothing.
        assert_eq!(engine.invalidate_states(&[99]), 0);
        assert_eq!(engine.cache_len(), full);
        // State 3 is the successor of exactly one action node (1 -> 3),
        // so only entries pairing that node can go.
        let evicted = engine.invalidate_states(&[3]);
        assert!(evicted > 0, "state 3 appears in cached supports");
        assert!(evicted < full, "uninvolved entries must survive");
        assert_eq!(engine.cache_len(), full - evicted);
        assert_eq!(engine.stats().cache_evictions, evicted);
        assert_eq!(engine.stats().invalidations, 2);
    }

    #[test]
    fn recompute_after_invalidation_is_bitwise_the_cold_result() {
        let g = twin_graph();
        let p = SimilarityParams::paper(0.5);
        let cold =
            SimilarityEngine::with_options(ExecutionMode::Serial, true, false).compute(&g, &p);
        let mut engine = SimilarityEngine::with_options(ExecutionMode::Serial, true, false);
        let _ = engine.compute(&g, &p);
        engine.invalidate_states(&[0, 3]);
        let hits_before = engine.stats().cache_hits;
        let warm = engine.compute(&g, &p);
        assert_eq!(warm.sigma_s, cold.sigma_s);
        assert_eq!(warm.sigma_a, cold.sigma_a);
        assert_eq!(warm.iterations, cold.iterations);
        // Entries whose supports avoided the dirty states survived the
        // invalidation and still serve the recompute.
        assert!(
            engine.stats().cache_hits > hits_before,
            "untouched-pair entries must still hit the cache"
        );
    }

    #[test]
    fn support_union_merges_sorted_supports() {
        assert_eq!(
            support_union(&[0, 2, 5], &[1, 2, 9]).as_ref(),
            &[0, 1, 2, 5, 9]
        );
        assert_eq!(support_union(&[], &[4]).as_ref(), &[4]);
        assert_eq!(support_union(&[], &[]).as_ref(), &[] as &[u32]);
    }

    #[test]
    fn fingerprint_distinguishes_swapped_supports() {
        let p = [0.5, 0.5, 0.0];
        let q = [0.0, 0.5, 0.5];
        let s = SquareMatrix::identity(3);
        let fp_pq = emd_fingerprint(&p, &q, &[0, 1], &[1, 2], &s);
        let fp_qp = emd_fingerprint(&q, &p, &[1, 2], &[0, 1], &s);
        assert_ne!(fp_pq, fp_qp);
    }

    #[test]
    fn engine_handles_graph_with_single_state() {
        let b = MdpBuilder::new(1, 1);
        let g = MdpGraph::from_mdp(&b.build());
        let p = SimilarityParams::paper(0.5);
        let r = SimilarityEngine::parallel().compute(&g, &p);
        assert!(r.converged);
        assert_eq!(r.sigma_s.n(), 1);
    }
}
