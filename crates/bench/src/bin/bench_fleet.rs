//! Measure fleet throughput with inline vs pooled calibration and
//! write `BENCH_fleet.json`.
//!
//! ```text
//! cargo run --release -p capman-bench --bin bench_fleet                    # 1k/4k/16k ladder
//! cargo run --release -p capman-bench --bin bench_fleet -- --devices 1024  # one size
//! cargo run --release -p capman-bench --bin bench_fleet -- --quick         # CI smoke sizes
//! cargo run --release -p capman-bench --bin bench_fleet -- --require-async-win
//! ```
//!
//! Per fleet size the binary instantiates the same two-cohort CAPMAN
//! fleet twice — once with inline (blocking, per-device) calibration,
//! once with the async calibration pool — and measures devices/sec for
//! both. Before any number is reported it asserts the async mode's
//! correctness envelope:
//!
//! * **no lost ticks** — every device executes exactly as many
//!   scheduling ticks as under inline calibration (the calibration path
//!   must not change how long a device runs);
//! * **zero dropped calibrations** — the bounded pool queue never
//!   overflowed;
//! * **bounded staleness** — no device waited past its own horizon for
//!   a calibration it requested.
//!
//! `--require-async-win` additionally asserts the pool beats inline by
//! at least 2x at 4096+ devices (the multicore CI leg turns this on;
//! the win comes from cohort coalescing — one background solve serves
//! every device of a cohort — so it holds even single-core).

use std::time::Instant;

use capman_bench::perf_report::{FleetReport, FleetRow};
use capman_fleet::{
    CalibrationMode, Fleet, FleetConfig, FleetProfile, FleetResult, FleetRunner, PoolConfig,
};
use capman_workload::WorkloadKind;

// A compressed fixture: a 25-minute discharge with a 5-minute
// calibration cadence packs four calibration intervals into a horizon
// short enough to sweep 16k devices. (The paper's 20-minute cadence
// over a full-day discharge has the same solve-to-tick ratio; only the
// absolute wall time differs.)
const HORIZON_S: f64 = 1500.0;
const EVERY_S: f64 = 300.0;
const BATCH: usize = 64;

fn build_fleet(devices: usize) -> Fleet {
    let mut video = FleetProfile::capman("video", WorkloadKind::Video, 41);
    let mut pcmark = FleetProfile::capman("pcmark", WorkloadKind::Pcmark, 43);
    for profile in [&mut video, &mut pcmark] {
        profile.config.max_horizon_s = HORIZON_S;
        profile.calibrator.every_s = EVERY_S;
    }
    assert!(
        devices >= 2 && devices.is_multiple_of(2),
        "need an even device count"
    );
    Fleet::build(vec![video, pcmark], devices / 2)
}

fn run_mode(fleet: &Fleet, mode: CalibrationMode) -> (FleetResult, f64) {
    let runner = FleetRunner::new(FleetConfig {
        mode,
        batch: BATCH,
        pool: PoolConfig {
            workers: 2,
            queue_depth: 64,
        },
        parallel: true,
    });
    let t0 = Instant::now();
    let result = runner.run(fleet);
    (result, t0.elapsed().as_secs_f64() * 1e3)
}

fn fleet_row(devices: usize, require_async_win: bool) -> FleetRow {
    let fleet = build_fleet(devices);
    let (inline, inline_wall_ms) = run_mode(&fleet, CalibrationMode::Inline);
    let (pool, pool_wall_ms) = run_mode(&fleet, CalibrationMode::Pool);

    // --- Correctness envelope before any throughput number ------------
    let ticks = |r: &FleetResult| r.summaries.iter().map(|s| s.ticks).collect::<Vec<_>>();
    assert_eq!(
        ticks(&inline),
        ticks(&pool),
        "async calibration must not change how long devices tick"
    );
    let counters = pool.aggregate.pool;
    assert_eq!(
        counters.dropped, 0,
        "pool queue overflowed — no tick may lose its calibration"
    );
    assert_eq!(
        counters.completed, counters.enqueued,
        "every enqueued calibration must complete"
    );
    let staleness_max_s = pool.aggregate.staleness_s.max();
    assert!(
        staleness_max_s <= HORIZON_S,
        "staleness {staleness_max_s} s exceeds the device horizon"
    );

    let row = FleetRow {
        devices,
        cohorts: fleet.profiles.len(),
        ticks: pool.aggregate.ticks,
        inline_wall_ms,
        pool_wall_ms,
        inline_recalibrations: inline.aggregate.recalibrations,
        pool_completed: counters.completed,
        pool_submitted: counters.submitted,
        pool_coalesced: counters.coalesced,
        pool_dropped: counters.dropped,
        staleness_p50_s: pool.aggregate.staleness_s.p50(),
        staleness_p95_s: pool.aggregate.staleness_s.p95(),
        staleness_p99_s: pool.aggregate.staleness_s.p99(),
        staleness_max_s,
        lifetime_p50_s: pool.aggregate.lifetime_s.p50(),
        hotspot_p95_c: pool.aggregate.hotspot_c.p95(),
    };
    if require_async_win && devices >= 4096 {
        assert!(
            row.speedup() >= 2.0,
            "async pool must be >= 2x inline at {devices} devices, got {:.2}x",
            row.speedup()
        );
    }
    row
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let require_async_win = args.iter().any(|a| a == "--require-async-win");
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let sizes: Vec<usize> = match flag("--devices") {
        Some(n) => vec![n.parse().expect("--devices takes a number")],
        None if quick => vec![256],
        None => vec![1024, 4096, 16384],
    };

    let mut report = FleetReport {
        threads: rayon::current_num_threads(),
        batch: BATCH,
        horizon_s: HORIZON_S,
        every_s: EVERY_S,
        ..FleetReport::default()
    };

    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "devices",
        "inline_ms",
        "pool_ms",
        "inl_dev/s",
        "pool_dev/s",
        "speedup",
        "solves",
        "stale_p99"
    );
    for &devices in &sizes {
        let row = fleet_row(devices, require_async_win);
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>10.1} {:>10.1} {:>7.1}x {:>10} {:>9.1}s",
            row.devices,
            row.inline_wall_ms,
            row.pool_wall_ms,
            row.inline_devices_per_s(),
            row.pool_devices_per_s(),
            row.speedup(),
            row.pool_completed,
            row.staleness_p99_s
        );
        report.rows.push(row);
    }

    let json = report.to_json();
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
}
