//! Portability demo: CAPMAN on the three evaluation phones (Fig. 15).
//!
//! ```text
//! cargo run --release --example three_phones
//! ```
//!
//! Runs the same PCMark trace on the Nexus, Honor and Lenovo profiles
//! and prints per-phone service, power and scheduler overhead — the
//! stability/scalability story of Section V.

use capman::core::config::SimConfig;
use capman::core::experiments::{run_policy_with, PolicyKind};
use capman::device::phone::PhoneProfile;
use capman::workload::WorkloadKind;

fn main() {
    let horizon = 10_000.0;
    let seed = 3;
    println!("CAPMAN on three phones, PCMark trace ({horizon} s horizon)\n");
    println!(
        "{:<8} {:<8} {:>10} {:>12} {:>10} {:>13} {:>8}",
        "phone", "android", "service", "mean P [mW]", "max T", "overhead [us]", "recals"
    );
    for phone in PhoneProfile::all() {
        let config = SimConfig {
            max_horizon_s: horizon,
            tec_enabled: true,
            ..SimConfig::paper()
        };
        let o = run_policy_with(
            PolicyKind::Capman,
            WorkloadKind::Pcmark,
            phone.clone(),
            seed,
            config,
        );
        println!(
            "{:<8} {:<8} {:>9.0}s {:>12.0} {:>9.1}C {:>13.0} {:>8}",
            phone.name,
            phone.android_version,
            o.service_time_s,
            o.telemetry.mean_power_mw(),
            o.max_hotspot_c,
            o.scheduler_overhead_us,
            o.recalibrations
        );
    }
    println!("\n(the slower Honor pays proportionally more calibration overhead — Fig. 16)");
}
