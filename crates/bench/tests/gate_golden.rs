//! Golden verdict tests for the `perf_gate` binary: committed fixture
//! report pairs must map to exactly the documented exit codes —
//! `0` pass/skip, `1` regression, `2` usage, `3` corrupt report. These
//! pin the gate's CLI contract; the statistics behind the verdicts are
//! covered in `gate_stats.rs` and the `capman_bench::gate` unit tests.

use std::process::Command;

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn run_gate(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_perf_gate"))
        .args(args)
        .output()
        .expect("spawn perf_gate");
    (
        out.status.code().expect("perf_gate must exit, not signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn a_clear_regression_exits_1() {
    let (code, stdout, stderr) = run_gate(&[
        &fixture("baseline.json"),
        &fixture("candidate_regression.json"),
    ]);
    assert_eq!(code, 1, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(
        stdout.contains("Welch"),
        "verdict must come from the t-test: {stdout}"
    );
    assert!(stderr.contains("regressed"), "{stderr}");
}

#[test]
fn a_clear_win_exits_0() {
    let (code, stdout, _) = run_gate(&[&fixture("baseline.json"), &fixture("candidate_win.json")]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("within limits"), "{stdout}");
    assert!(!stdout.contains("REGRESSION"), "{stdout}");
}

#[test]
fn within_noise_differences_exit_0() {
    let (code, stdout, _) =
        run_gate(&[&fixture("baseline.json"), &fixture("candidate_noise.json")]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("Welch"), "{stdout}");
    assert!(stdout.contains("within limits"), "{stdout}");
}

#[test]
fn a_missing_section_skips_cleanly_with_exit_0() {
    let (code, stdout, _) =
        run_gate(&[&fixture("baseline.json"), &fixture("missing_section.json")]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("SKIP"), "{stdout}");
    assert!(stdout.contains("absent from fresh report"), "{stdout}");
}

#[test]
fn a_missing_file_skips_cleanly_with_exit_0() {
    let (code, stdout, _) = run_gate(&[
        &fixture("does_not_exist.json"),
        &fixture("candidate_noise.json"),
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("SKIP"), "{stdout}");
}

#[test]
fn a_corrupt_report_exits_3_instead_of_skipping() {
    let (code, stdout, stderr) = run_gate(&[&fixture("baseline.json"), &fixture("corrupt.json")]);
    assert_eq!(code, 3, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stderr.contains("CORRUPT"), "{stderr}");
    assert!(
        stderr.contains("fresh report"),
        "names the offending role: {stderr}"
    );
    // And symmetrically for a rotten baseline.
    let (code, _, stderr) = run_gate(&[&fixture("corrupt.json"), &fixture("baseline.json")]);
    assert_eq!(code, 3);
    assert!(stderr.contains("committed report"), "{stderr}");
}

#[test]
fn wrong_arity_is_a_usage_error() {
    let (code, _, stderr) = run_gate(&[&fixture("baseline.json")]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn tighter_alpha_and_effect_flags_are_honoured() {
    // The regression pair still fails under a stricter alpha...
    let (code, _, _) = run_gate(&[
        &fixture("baseline.json"),
        &fixture("candidate_regression.json"),
        "--alpha",
        "0.001",
    ]);
    assert_eq!(code, 1);
    // ...and passes once the practical-effect floor exceeds the ~2x
    // shift the fixture encodes.
    let (code, stdout, _) = run_gate(&[
        &fixture("baseline.json"),
        &fixture("candidate_regression.json"),
        "--min-effect",
        "1.5",
    ]);
    assert_eq!(code, 0, "{stdout}");
}

#[test]
fn seeded_live_aa_passes_and_a_seeded_slowdown_fails() {
    // Live interleaved mode, deterministic via --ab-seed: A/A passes...
    let (code, stdout, _) = run_gate(&["--alpha", "0.05", "--ab-seed", "7", "--reps", "10"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("Welch"), "{stdout}");
    assert!(stdout.contains("live/interleaved"), "{stdout}");
    // ...and a synthetic 2x candidate arm fails.
    let (code, stdout, _) = run_gate(&[
        "--alpha",
        "0.05",
        "--ab-seed",
        "7",
        "--reps",
        "10",
        "--ab-slowdown",
        "2.0",
    ]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("REGRESSION"), "{stdout}");
}
