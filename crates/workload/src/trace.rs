//! The workload trace format.
//!
//! A trace is a sorted sequence of segments covering `[0, horizon)`. Each
//! segment fixes the component demand for its duration and fires a list
//! of device actions at its start (screen events, app launches, network
//! transitions) — exactly the signals CAPMAN's profiler observes.

use serde::{Deserialize, Serialize};

use capman_device::fsm::Action;
use capman_device::power::Demand;

/// One homogeneous stretch of software behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment start time, seconds.
    pub start_s: f64,
    /// Segment duration, seconds.
    pub duration_s: f64,
    /// Component demand throughout the segment.
    pub demand: Demand,
    /// Actions fired at the segment boundary.
    pub actions: Vec<Action>,
}

impl Segment {
    /// The segment end time, seconds.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }
}

/// A complete workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    segments: Vec<Segment>,
}

impl Trace {
    /// Build a trace from contiguous segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, does not start at zero, or has gaps
    /// or overlaps.
    pub fn new(name: impl Into<String>, segments: Vec<Segment>) -> Self {
        assert!(!segments.is_empty(), "trace needs at least one segment");
        assert!(
            segments[0].start_s.abs() < 1e-9,
            "trace must start at time zero"
        );
        for w in segments.windows(2) {
            assert!(
                (w[0].end_s() - w[1].start_s).abs() < 1e-6,
                "segments must be contiguous: {} ends at {}, next starts at {}",
                w[0].start_s,
                w[0].end_s(),
                w[1].start_s
            );
            assert!(w[0].duration_s > 0.0, "segments need positive duration");
        }
        assert!(
            segments.last().expect("non-empty").duration_s > 0.0,
            "segments need positive duration"
        );
        Trace {
            name: name.into(),
            segments,
        }
    }

    /// The workload name (used in figure labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total covered time, seconds.
    pub fn horizon_s(&self) -> f64 {
        self.segments.last().expect("non-empty").end_s()
    }

    /// The segment active at time `t` (clamped to the final segment past
    /// the horizon).
    pub fn at(&self, t: f64) -> &Segment {
        let idx = self
            .segments
            .partition_point(|s| s.end_s() <= t)
            .min(self.segments.len() - 1);
        &self.segments[idx]
    }

    /// All segments whose start lies in `[t0, t1)` — used to fire their
    /// boundary actions during a simulation step.
    pub fn segments_starting_in(&self, t0: f64, t1: f64) -> &[Segment] {
        let lo = self.segments.partition_point(|s| s.start_s < t0);
        let hi = self.segments.partition_point(|s| s.start_s < t1);
        &self.segments[lo..hi]
    }

    /// All segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Mean CPU utilisation over the horizon, duration-weighted.
    pub fn mean_cpu_util(&self) -> f64 {
        let total: f64 = self
            .segments
            .iter()
            .map(|s| s.demand.cpu_util * s.duration_s)
            .sum();
        total / self.horizon_s()
    }

    /// Number of demand surges: boundaries where CPU utilisation jumps by
    /// at least `jump` percentage points. A proxy for the paper's "power
    /// demand surge frequency".
    pub fn surge_count(&self, jump: f64) -> usize {
        self.segments
            .windows(2)
            .filter(|w| w[1].demand.cpu_util - w[0].demand.cpu_util >= jump)
            .count()
    }
}

/// A convenience builder that appends contiguous segments.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    segments: Vec<Segment>,
    cursor_s: f64,
}

impl TraceBuilder {
    /// Start an empty builder at time zero.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Append a segment of `duration_s` with the given demand and actions.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not positive.
    pub fn push(&mut self, duration_s: f64, demand: Demand, actions: Vec<Action>) -> &mut Self {
        assert!(duration_s > 0.0, "duration must be positive");
        self.segments.push(Segment {
            start_s: self.cursor_s,
            duration_s,
            demand,
            actions,
        });
        self.cursor_s += duration_s;
        self
    }

    /// Current end time, seconds.
    pub fn cursor_s(&self) -> f64 {
        self.cursor_s
    }

    /// Finish the trace.
    ///
    /// # Panics
    ///
    /// Panics if no segments were pushed.
    pub fn build(self, name: impl Into<String>) -> Trace {
        Trace::new(name, self.segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(util: f64) -> Demand {
        Demand {
            cpu_util: util,
            ..Demand::default()
        }
    }

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        b.push(10.0, demand(20.0), vec![Action::ScreenOn]);
        b.push(5.0, demand(90.0), vec![Action::AppLaunch]);
        b.push(15.0, demand(10.0), vec![Action::AppExit]);
        b.build("sample")
    }

    #[test]
    fn lookup_finds_correct_segment() {
        let t = sample();
        assert_eq!(t.at(0.0).demand.cpu_util, 20.0);
        assert_eq!(t.at(9.999).demand.cpu_util, 20.0);
        assert_eq!(t.at(10.0).demand.cpu_util, 90.0);
        assert_eq!(t.at(14.9).demand.cpu_util, 90.0);
        assert_eq!(t.at(15.0).demand.cpu_util, 10.0);
        // Past the horizon clamps to the last segment.
        assert_eq!(t.at(1e9).demand.cpu_util, 10.0);
    }

    #[test]
    fn horizon_is_total_duration() {
        assert!((sample().horizon_s() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn segments_starting_in_window() {
        let t = sample();
        let within = t.segments_starting_in(0.0, 30.0);
        assert_eq!(within.len(), 3);
        let step = t.segments_starting_in(9.5, 10.5);
        assert_eq!(step.len(), 1);
        assert_eq!(step[0].actions, vec![Action::AppLaunch]);
        assert!(t.segments_starting_in(20.0, 25.0).is_empty());
    }

    #[test]
    fn mean_util_is_duration_weighted() {
        let t = sample();
        let expected = (20.0 * 10.0 + 90.0 * 5.0 + 10.0 * 15.0) / 30.0;
        assert!((t.mean_cpu_util() - expected).abs() < 1e-9);
    }

    #[test]
    fn surge_count_detects_jumps() {
        let t = sample();
        assert_eq!(t.surge_count(50.0), 1);
        assert_eq!(t.surge_count(5.0), 1);
        assert_eq!(t.surge_count(200.0), 0);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn rejects_gaps() {
        let _ = Trace::new(
            "bad",
            vec![
                Segment {
                    start_s: 0.0,
                    duration_s: 5.0,
                    demand: demand(1.0),
                    actions: vec![],
                },
                Segment {
                    start_s: 6.0,
                    duration_s: 5.0,
                    demand: demand(1.0),
                    actions: vec![],
                },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "time zero")]
    fn rejects_late_start() {
        let _ = Trace::new(
            "bad",
            vec![Segment {
                start_s: 1.0,
                duration_s: 5.0,
                demand: demand(1.0),
                actions: vec![],
            }],
        );
    }
}
