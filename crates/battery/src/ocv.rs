//! Open-circuit-voltage (OCV) curves per chemistry.
//!
//! The terminal voltage of a lithium cell at rest is a monotone function of
//! its state of charge. CAPMAN's V-edge analysis (Fig. 3) and the cut-off
//! behaviour under surges both depend on the shape of this curve: flat
//! chemistries (LFP, LTO) sag into cut-off abruptly, sloped chemistries
//! (NCA, LCO) fade gradually.

use crate::chemistry::Chemistry;

/// A piecewise-linear OCV(SoC) curve.
///
/// Breakpoints are `(soc, volts)` pairs with strictly increasing SoC in
/// `[0, 1]` and non-decreasing voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct OcvCurve {
    points: Vec<(f64, f64)>,
}

impl OcvCurve {
    /// Build a curve from breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given, if SoC values are not
    /// strictly increasing within `[0, 1]`, or if voltages decrease.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "OCV curve needs at least two points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "SoC breakpoints must strictly increase");
            assert!(w[0].1 <= w[1].1, "OCV must be non-decreasing in SoC");
        }
        let first = points.first().expect("non-empty");
        let last = points.last().expect("non-empty");
        assert!(first.0 >= 0.0 && last.0 <= 1.0, "SoC must lie in [0, 1]");
        OcvCurve { points }
    }

    /// The canonical curve for a chemistry, anchored at that chemistry's
    /// cut-off voltage (SoC = 0) and a typical full-charge voltage.
    pub fn for_chemistry(chem: Chemistry) -> Self {
        let e = chem.electrical();
        let full = e.nominal_v * 1.12; // typical 4.15 V for a 3.7 V cell
                                       // Shape factor: LITTLE chemistries (esp. LFP/LTO) have flat plateaus.
        let plateau = match chem {
            Chemistry::Lfp | Chemistry::Lto => 0.035,
            Chemistry::Lmo | Chemistry::Nmc => 0.06,
            Chemistry::Nca | Chemistry::Lco => 0.09,
        };
        let span = full - e.cutoff_v;
        OcvCurve::new(vec![
            (0.0, e.cutoff_v),
            (0.05, e.cutoff_v + span * 0.35),
            (0.15, e.nominal_v - span * plateau * 2.0),
            (0.50, e.nominal_v),
            (0.85, e.nominal_v + span * plateau * 2.0),
            (1.0, full),
        ])
    }

    /// The open-circuit voltage at the given state of charge.
    ///
    /// SoC values outside `[0, 1]` are clamped.
    pub fn voltage(&self, soc: f64) -> f64 {
        let soc = soc.clamp(self.points[0].0, self.points[self.points.len() - 1].0);
        for w in self.points.windows(2) {
            let (s0, v0) = w[0];
            let (s1, v1) = w[1];
            if soc <= s1 {
                let t = (soc - s0) / (s1 - s0);
                return v0 + t * (v1 - v0);
            }
        }
        self.points[self.points.len() - 1].1
    }

    /// The full-charge voltage (SoC = 1).
    pub fn full_voltage(&self) -> f64 {
        self.points[self.points.len() - 1].1
    }

    /// The empty voltage (SoC = 0).
    pub fn empty_voltage(&self) -> f64 {
        self.points[0].1
    }

    /// The breakpoints of the curve.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_between_breakpoints() {
        let c = OcvCurve::new(vec![(0.0, 3.0), (1.0, 4.0)]);
        assert!((c.voltage(0.5) - 3.5).abs() < 1e-12);
        assert!((c.voltage(0.25) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn clamps_out_of_range_soc() {
        let c = OcvCurve::new(vec![(0.0, 3.0), (1.0, 4.0)]);
        assert_eq!(c.voltage(-0.5), 3.0);
        assert_eq!(c.voltage(2.0), 4.0);
    }

    #[test]
    fn chemistry_curves_are_monotone() {
        for chem in Chemistry::ALL {
            let c = OcvCurve::for_chemistry(chem);
            let mut prev = f64::NEG_INFINITY;
            for i in 0..=100 {
                let v = c.voltage(f64::from(i) / 100.0);
                assert!(v >= prev - 1e-12, "{chem} not monotone at {i}");
                prev = v;
            }
        }
    }

    #[test]
    fn chemistry_curves_anchor_cutoff_and_full() {
        for chem in Chemistry::ALL {
            let e = chem.electrical();
            let c = OcvCurve::for_chemistry(chem);
            assert!((c.empty_voltage() - e.cutoff_v).abs() < 1e-9);
            assert!(c.full_voltage() > e.nominal_v);
            // Mid-charge sits near the nominal voltage.
            assert!((c.voltage(0.5) - e.nominal_v).abs() < 0.05);
        }
    }

    #[test]
    fn lfp_plateau_is_flatter_than_nca() {
        let lfp = OcvCurve::for_chemistry(Chemistry::Lfp);
        let nca = OcvCurve::for_chemistry(Chemistry::Nca);
        let lfp_span = lfp.voltage(0.85) - lfp.voltage(0.15);
        let nca_span = nca.voltage(0.85) - nca.voltage(0.15);
        let lfp_rel = lfp_span / lfp.voltage(0.5);
        let nca_rel = nca_span / nca.voltage(0.5);
        assert!(lfp_rel < nca_rel);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn rejects_non_monotone_soc() {
        let _ = OcvCurve::new(vec![(0.0, 3.0), (0.0, 3.5)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing_voltage() {
        let _ = OcvCurve::new(vec![(0.0, 3.6), (1.0, 3.5)]);
    }
}
