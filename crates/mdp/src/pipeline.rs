//! Coarse-to-fine warm-started Bellman recalibration.
//!
//! `Calibrator::recalibrate` used to solve the full device MDP from a
//! cold start every time the similarity recursion finished. But the
//! calibration already *has* a similarity matrix, and similarity
//! thresholds induce a ladder of quotient MDPs: a coarse clustering with
//! few states, refined step by step down to the full state space. The
//! pipeline here exploits that ladder:
//!
//! 1. For each threshold `theta` (coarse → fine) build the **quotient
//!    MDP** of the [`Abstraction`] directly in CSR form — the
//!    representative state's action nodes keep their precomputed
//!    expected rewards, and their successor probabilities are summed per
//!    successor *cluster*. No nested intermediate is materialised and
//!    one [`QuotientScratch`] arena is reused across all levels.
//! 2. Solve each quotient with Jacobi sweeps **warm-started** from the
//!    previous level's solution, mapped through the clustering:
//!    [`restrict`] seeds cluster `c` from the current full-space value
//!    of its representative, and [`lift`] writes the converged cluster
//!    value back to every member state.
//! 3. Finish with a full-space solve warm-started from the finest
//!    quotient's lift (and, across calibrations, from the previous
//!    calibration's values).
//!
//! Value iteration contracts toward the unique fixed point from any
//! seed, so the final solution is the *exact* full-space optimum — the
//! quotient levels only buy a better seed. A quotient value differs
//! from the full value by at most `theta / (1 - rho)` (the Section
//! III-D bound), so each level starts within a ball that shrinks with
//! `theta` and the expensive full-space sweeps are spent only on the
//! last `O(log(theta / eps))` contraction digits. The
//! `bench_recalibrate` report records per-level warm-vs-cold sweep
//! counts to keep this honest.

use crate::abstraction::{Abstraction, ClusterMap};
use crate::engine::ExecutionMode;
use crate::matrix::SquareMatrix;
use crate::mdp::{Mdp, SolverView};
use crate::value_iteration::{
    auto_mode, converge_view, converge_view_masked, extract_q_policy, validate_solver_params,
    Precision, Solution,
};

/// Fraction of the state space the dirty rows' backward closure may
/// cover before [`RecalibrationPipeline::solve_incremental`] abandons
/// the restricted sweep and falls back to the full warm pipeline. Past
/// this point the masked (serial) sweep would touch most rows anyway
/// while giving up the parallel schedule.
pub const INCREMENTAL_FALLBACK_FRACTION: f64 = 0.5;

/// Minimum share of the state space the backward closure must cover
/// before [`RecalibrationPipeline::solve_incremental`] bothers with the
/// quotient theta ladder. Below this, the per-rung overhead (an O(n²)
/// similarity clustering plus a quotient-CSR build) exceeds the masked
/// sweeps the warm start saves; the closure-restricted final solve is
/// what guarantees `eps` either way.
pub const INCREMENTAL_LADDER_FRACTION: f64 = 0.25;

/// Restrict a full-space value vector to a quotient level: cluster `c`
/// is seeded with the value of its representative state. `out` is
/// overwritten (and resized) to `n_clusters` values.
pub fn restrict(v_full: &[f64], cm: &ClusterMap, out: &mut Vec<f64>) {
    out.clear();
    out.extend(cm.reps.iter().map(|&r| v_full[r]));
}

/// Lift a quotient level's value vector back to the full space: every
/// state takes its cluster's value.
///
/// # Panics
///
/// Panics if `v_full` is not `n_states` long.
pub fn lift(v_coarse: &[f64], cm: &ClusterMap, v_full: &mut [f64]) {
    assert_eq!(v_full.len(), cm.n_states(), "lift target length mismatch");
    for (slot, &c) in v_full.iter_mut().zip(&cm.cluster_of) {
        *slot = v_coarse[c];
    }
}

/// Reusable arena for quotient-MDP construction — the five CSR columns
/// of a [`SolverView`] plus the per-cluster accumulator the aggregation
/// scatters into. One scratch serves every level of a pipeline run (and
/// every run, if the caller keeps it around): each level clears and
/// refills the columns without reallocating once the high-water mark is
/// reached.
#[derive(Debug, Default, Clone)]
pub struct QuotientScratch {
    succ: Vec<u32>,
    prob: Vec<f64>,
    node_ptr: Vec<usize>,
    node_reward: Vec<f64>,
    action_ptr: Vec<usize>,
    /// Per-cluster probability accumulator; zero outside
    /// [`build`](QuotientScratch::build) (re-zeroed via `touched`).
    accum: Vec<f64>,
    /// Clusters touched by the current action node, in first-touch
    /// order — this fixes the successor order deterministically.
    touched: Vec<u32>,
}

impl QuotientScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        QuotientScratch::default()
    }

    /// Build the quotient of `view` under `cm` into this scratch,
    /// overwriting any previous level.
    ///
    /// Cluster `c` inherits the action nodes of its representative
    /// `cm.reps[c]`: the expected immediate reward is carried over
    /// verbatim (it is invariant under successor aggregation) and the
    /// outcome probabilities are summed per successor cluster, in
    /// first-touch order. A cluster whose representative is absorbing
    /// stays absorbing.
    fn build(&mut self, view: &SolverView<'_>, cm: &ClusterMap) {
        let nc = cm.n_clusters();
        self.succ.clear();
        self.prob.clear();
        self.node_ptr.clear();
        self.node_reward.clear();
        self.action_ptr.clear();
        self.accum.clear();
        self.accum.resize(nc, 0.0);
        self.node_ptr.push(0);
        self.action_ptr.push(0);
        for &r in &cm.reps {
            for k in view.action_ptr[r]..view.action_ptr[r + 1] {
                self.node_reward.push(view.node_reward[k]);
                self.touched.clear();
                for i in view.node_ptr[k]..view.node_ptr[k + 1] {
                    let c2 = cm.cluster_of[view.succ[i] as usize];
                    // Normalised probabilities are strictly positive, so
                    // a zero accumulator means "not yet touched".
                    if self.accum[c2] == 0.0 {
                        self.touched.push(c2 as u32);
                    }
                    self.accum[c2] += view.prob[i];
                }
                for &c2 in &self.touched {
                    self.succ.push(c2);
                    self.prob.push(self.accum[c2 as usize]);
                    self.accum[c2 as usize] = 0.0;
                }
                self.node_ptr.push(self.succ.len());
            }
            self.action_ptr.push(self.node_reward.len());
        }
    }

    /// The solver view of the level currently held in the scratch.
    fn view(&self) -> SolverView<'_> {
        SolverView {
            succ: &self.succ,
            prob: &self.prob,
            node_ptr: &self.node_ptr,
            node_reward: &self.node_reward,
            action_ptr: &self.action_ptr,
        }
    }
}

/// Per-level accounting of one pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// The similarity threshold that induced this level.
    pub theta: f64,
    /// States of the quotient MDP.
    pub n_clusters: usize,
    /// Jacobi sweeps spent on this level.
    pub sweeps: usize,
}

/// The result of a pipeline run: the exact full-space solution plus the
/// sweep ledger the recalibration telemetry and `bench_recalibrate`
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutcome {
    /// The full-space solution (identical fixed point to a cold
    /// [`crate::value_iteration::solve`], by contraction).
    pub solution: Solution,
    /// Quotient levels actually solved, coarse → fine. Thresholds whose
    /// clustering achieved no compression are skipped and do not appear.
    pub levels: Vec<LevelStats>,
    /// Sweeps of the final full-space solve.
    pub final_sweeps: usize,
    /// Whether the coarsest level (or, with no levels, the full solve)
    /// was seeded from caller-provided prior values rather than zeros.
    pub warm_started: bool,
}

impl PipelineOutcome {
    /// Total Jacobi sweeps across every level and the final solve.
    pub fn total_sweeps(&self) -> usize {
        self.levels.iter().map(|l| l.sweeps).sum::<usize>() + self.final_sweeps
    }
}

/// Accounting of one [`RecalibrationPipeline::solve_incremental`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalStats {
    /// States whose Bellman operator changed (owners of dirty rows).
    pub dirty_states: usize,
    /// Size of the dirty states' backward closure — the states the
    /// masked sweeps actually updated. Equals `n_states` on fallback.
    pub affected_states: usize,
    /// Whether the run abandoned the restricted sweep for the full warm
    /// pipeline (closure above [`INCREMENTAL_FALLBACK_FRACTION`], an
    /// unusable prior, or an `f32` kernel).
    pub full_fallback: bool,
}

/// Result of an incremental pipeline run: the usual [`PipelineOutcome`]
/// plus the restriction accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalOutcome {
    /// The solution and sweep ledger, as from the full pipeline.
    pub outcome: PipelineOutcome,
    /// How much of the state space the run actually had to touch.
    pub stats: IncrementalStats,
}

/// The set of states from which any dirty state is reachable (including
/// the dirty states themselves), ascending — the *backward closure*
/// over the transition graph. A state outside this set cannot reach a
/// dirty state, hence neither can any of its successors, so its value
/// and its Bellman residual are untouched by the dirty rows: freezing
/// it during the masked sweeps is exact up to the solver's `eps`.
fn backward_closure(view: &SolverView<'_>, n: usize, dirty: &[usize]) -> Vec<usize> {
    // Predecessor adjacency in CSR form via counting sort over the
    // successor mirror: O(outcomes) time, two flat allocations.
    let mut start = vec![0usize; n + 1];
    for &t in view.succ {
        start[t as usize + 1] += 1;
    }
    for i in 0..n {
        start[i + 1] += start[i];
    }
    let mut preds = vec![0u32; view.succ.len()];
    let mut cursor = start.clone();
    for s in 0..n {
        for k in view.action_ptr[s]..view.action_ptr[s + 1] {
            for i in view.node_ptr[k]..view.node_ptr[k + 1] {
                let t = view.succ[i] as usize;
                preds[cursor[t]] = s as u32;
                cursor[t] += 1;
            }
        }
    }
    let mut in_set = vec![false; n];
    let mut frontier: Vec<usize> = Vec::new();
    for &d in dirty {
        assert!(d < n, "dirty state {d} out of range for {n} states");
        if !in_set[d] {
            in_set[d] = true;
            frontier.push(d);
        }
    }
    let mut head = 0;
    while head < frontier.len() {
        let u = frontier[head];
        head += 1;
        for &p in &preds[start[u]..start[u + 1]] {
            let p = p as usize;
            if !in_set[p] {
                in_set[p] = true;
                frontier.push(p);
            }
        }
    }
    frontier.sort_unstable();
    frontier
}

/// [`lift`] restricted to the affected states: everything else keeps
/// its (already converged) prior value bit-for-bit.
fn lift_masked(v_coarse: &[f64], cm: &ClusterMap, v_full: &mut [f64], affected: &[usize]) {
    for &s in affected {
        v_full[s] = v_coarse[cm.cluster_of[s]];
    }
}

/// The coarse-to-fine recalibration pipeline (see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct RecalibrationPipeline {
    rho: f64,
    eps: f64,
    precision: Precision,
}

impl RecalibrationPipeline {
    /// A pipeline solving to precision `eps` under discount `rho`, with
    /// the bitwise-contracted `f64` kernel.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not in `(0, 1)` or `eps` is not positive.
    pub fn new(rho: f64, eps: f64) -> Self {
        validate_solver_params(rho, eps);
        RecalibrationPipeline {
            rho,
            eps,
            precision: Precision::F64,
        }
    }

    /// Switch the sweep kernel (quotient levels *and* the final solve).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The configured discount.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The configured precision target.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Solve `mdp` coarse-to-fine through the quotient ladder induced by
    /// `thetas` (given coarse → fine, i.e. non-increasing) over `sigma`,
    /// warm-starting every level from the previous one and optionally
    /// the whole run from `prior` (a value vector from an earlier
    /// calibration; ignored with a cold start if its length does not
    /// match the — possibly re-profiled — state space).
    ///
    /// Allocates a fresh [`QuotientScratch`]; callers on the hot path
    /// keep one and use [`solve_with_scratch`](Self::solve_with_scratch).
    pub fn solve(
        &self,
        mdp: &Mdp,
        sigma: &SquareMatrix,
        thetas: &[f64],
        prior: Option<&[f64]>,
        mode: ExecutionMode,
    ) -> PipelineOutcome {
        self.solve_with_scratch(mdp, sigma, thetas, prior, mode, &mut QuotientScratch::new())
    }

    /// [`solve`](Self::solve) reusing a caller-held scratch arena.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not `n_states × n_states` or a `theta` is
    /// outside `[0, 1]`.
    pub fn solve_with_scratch(
        &self,
        mdp: &Mdp,
        sigma: &SquareMatrix,
        thetas: &[f64],
        prior: Option<&[f64]>,
        mode: ExecutionMode,
        scratch: &mut QuotientScratch,
    ) -> PipelineOutcome {
        let n = mdp.n_states();
        assert_eq!(sigma.n(), n, "similarity matrix does not match the MDP");
        let view = mdp.solver_view();

        let warm_started =
            matches!(prior, Some(p) if p.len() == n && p.iter().all(|v| v.is_finite()));
        let mut v_full = if warm_started {
            prior.expect("checked above").to_vec()
        } else {
            vec![0.0; n]
        };

        let mut levels = Vec::new();
        let mut v_coarse = Vec::new();
        let mut sweep_buf = Vec::new();
        for &theta in thetas {
            let cm = Abstraction::from_similarity(sigma, theta).cluster_map();
            if cm.n_clusters() == n {
                // No compression: this level would just duplicate the
                // final solve at full width. Skip it.
                continue;
            }
            let _level_span = capman_obs::span("bellman_level", cm.n_clusters() as u64);
            scratch.build(&view, &cm);
            restrict(&v_full, &cm, &mut v_coarse);
            let sweeps = converge_view(
                &scratch.view(),
                self.rho,
                self.eps,
                &mut v_coarse,
                &mut sweep_buf,
                level_mode(mode, cm.n_clusters()),
                self.precision,
            );
            lift(&v_coarse, &cm, &mut v_full);
            levels.push(LevelStats {
                theta,
                n_clusters: cm.n_clusters(),
                sweeps,
            });
        }

        let final_sweeps = {
            let _final_span = capman_obs::span("bellman_final", n as u64);
            converge_view(
                &view,
                self.rho,
                self.eps,
                &mut v_full,
                &mut sweep_buf,
                level_mode(mode, n),
                self.precision,
            )
        };
        let (q, policy) = extract_q_policy(mdp, &view, self.rho, &v_full);
        let iterations = levels.iter().map(|l| l.sweeps).sum::<usize>() + final_sweeps;
        PipelineOutcome {
            solution: Solution {
                values: v_full,
                q,
                policy,
                iterations,
            },
            levels,
            final_sweeps,
            warm_started,
        }
    }

    /// The cold baseline `bench_recalibrate` compares against: the same
    /// quotient ladder, but every level *and* the final solve start from
    /// zeros and no values flow between levels. The returned solution is
    /// exactly the cold full-space solve; the per-level sweeps measure
    /// what warm-starting saves.
    pub fn solve_cold(
        &self,
        mdp: &Mdp,
        sigma: &SquareMatrix,
        thetas: &[f64],
        mode: ExecutionMode,
        scratch: &mut QuotientScratch,
    ) -> PipelineOutcome {
        let n = mdp.n_states();
        assert_eq!(sigma.n(), n, "similarity matrix does not match the MDP");
        let view = mdp.solver_view();

        let mut levels = Vec::new();
        let mut v_coarse = Vec::new();
        let mut sweep_buf = Vec::new();
        for &theta in thetas {
            let cm = Abstraction::from_similarity(sigma, theta).cluster_map();
            if cm.n_clusters() == n {
                continue;
            }
            scratch.build(&view, &cm);
            v_coarse.clear();
            v_coarse.resize(cm.n_clusters(), 0.0);
            let sweeps = converge_view(
                &scratch.view(),
                self.rho,
                self.eps,
                &mut v_coarse,
                &mut sweep_buf,
                level_mode(mode, cm.n_clusters()),
                self.precision,
            );
            levels.push(LevelStats {
                theta,
                n_clusters: cm.n_clusters(),
                sweeps,
            });
        }

        let mut v_full = vec![0.0; n];
        let final_sweeps = converge_view(
            &view,
            self.rho,
            self.eps,
            &mut v_full,
            &mut sweep_buf,
            level_mode(mode, n),
            self.precision,
        );
        let (q, policy) = extract_q_policy(mdp, &view, self.rho, &v_full);
        let iterations = levels.iter().map(|l| l.sweeps).sum::<usize>() + final_sweeps;
        PipelineOutcome {
            solution: Solution {
                values: v_full,
                q,
                policy,
                iterations,
            },
            levels,
            final_sweeps,
            warm_started: false,
        }
    }

    /// Re-solve after a *small* model change, paying only for the states
    /// the change can influence.
    ///
    /// `dirty_states` are the owners of the rows whose outcomes were
    /// patched since `prior` was computed (see `Mdp::patch_rows`), and
    /// `prior` must be the converged value vector of the pre-patch
    /// model. The run computes the dirty rows' backward closure over the
    /// patched transition graph, restricts every theta-ladder level to
    /// the quotient clusters containing an affected state, and finishes
    /// with a masked full-space solve over the closure — all other
    /// states keep their prior values bit-for-bit. Because a state
    /// outside the closure reads only values outside the closure, its
    /// Bellman residual is still below `eps` from the prior solve, so
    /// the returned solution meets the same global `eps` contract as
    /// [`solve`](Self::solve) (values within `2·eps/(1−rho)` of the full
    /// warm solve; Q and the greedy policy are extracted over the full
    /// space as usual).
    ///
    /// Falls back to the full warm pipeline — identical to calling
    /// [`solve_with_scratch`](Self::solve_with_scratch) with
    /// `Some(prior)` — when the closure covers more than
    /// [`INCREMENTAL_FALLBACK_FRACTION`] of the state space, when the
    /// prior is unusable (wrong length or non-finite), or when the
    /// pipeline runs the `f32` kernel (the masked sweep is f64-only).
    /// `stats.full_fallback` records which path ran.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not `n_states × n_states` or a dirty state
    /// index is out of range.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_incremental(
        &self,
        mdp: &Mdp,
        sigma: &SquareMatrix,
        thetas: &[f64],
        prior: &[f64],
        dirty_states: &[usize],
        mode: ExecutionMode,
        scratch: &mut QuotientScratch,
    ) -> IncrementalOutcome {
        let n = mdp.n_states();
        assert_eq!(sigma.n(), n, "similarity matrix does not match the MDP");
        let view = mdp.solver_view();

        let prior_ok = prior.len() == n && prior.iter().all(|v| v.is_finite());
        if !prior_ok || self.precision == Precision::F32 {
            let outcome = self.solve_with_scratch(
                mdp,
                sigma,
                thetas,
                prior_ok.then_some(prior),
                mode,
                scratch,
            );
            return IncrementalOutcome {
                outcome,
                stats: IncrementalStats {
                    dirty_states: dirty_states.len(),
                    affected_states: n,
                    full_fallback: true,
                },
            };
        }

        let affected = backward_closure(&view, n, dirty_states);
        let stats = IncrementalStats {
            dirty_states: dirty_states.len(),
            affected_states: affected.len(),
            full_fallback: false,
        };
        if affected.len() as f64 > INCREMENTAL_FALLBACK_FRACTION * n as f64 {
            let outcome = self.solve_with_scratch(mdp, sigma, thetas, Some(prior), mode, scratch);
            return IncrementalOutcome {
                outcome,
                stats: IncrementalStats {
                    affected_states: n,
                    full_fallback: true,
                    ..stats
                },
            };
        }

        let _span = capman_obs::span("bellman_incremental", affected.len() as u64);
        let mut v_full = prior.to_vec();
        let mut levels = Vec::new();
        let mut final_sweeps = 0;
        if !affected.is_empty() {
            let mut v_coarse = Vec::new();
            let mut sweep_buf = Vec::new();
            let mut active_clusters: Vec<usize> = Vec::new();
            // The quotient ladder is purely a warm-start accelerator —
            // the masked final solve alone meets the `eps` contract. Each
            // rung costs an O(n²) clustering plus a quotient build, which
            // dwarfs the masked sweeps it saves when the closure is
            // small, so only run the ladder once the closure is a sizable
            // share of the space (see [`INCREMENTAL_LADDER_FRACTION`]).
            let run_ladder = affected.len() as f64 >= INCREMENTAL_LADDER_FRACTION * n as f64;
            for &theta in thetas.iter().filter(|_| run_ladder) {
                let cm = Abstraction::from_similarity(sigma, theta).cluster_map();
                if cm.n_clusters() == n {
                    continue;
                }
                active_clusters.clear();
                active_clusters.extend(affected.iter().map(|&s| cm.cluster_of[s]));
                active_clusters.sort_unstable();
                active_clusters.dedup();
                scratch.build(&view, &cm);
                restrict(&v_full, &cm, &mut v_coarse);
                let sweeps = converge_view_masked(
                    &scratch.view(),
                    self.rho,
                    self.eps,
                    &mut v_coarse,
                    &mut sweep_buf,
                    &active_clusters,
                );
                lift_masked(&v_coarse, &cm, &mut v_full, &affected);
                levels.push(LevelStats {
                    theta,
                    n_clusters: cm.n_clusters(),
                    sweeps,
                });
            }
            final_sweeps = converge_view_masked(
                &view,
                self.rho,
                self.eps,
                &mut v_full,
                &mut sweep_buf,
                &affected,
            );
        }
        let (q, policy) = extract_q_policy(mdp, &view, self.rho, &v_full);
        let iterations = levels.iter().map(|l| l.sweeps).sum::<usize>() + final_sweeps;
        IncrementalOutcome {
            outcome: PipelineOutcome {
                solution: Solution {
                    values: v_full,
                    q,
                    policy,
                    iterations,
                },
                levels,
                final_sweeps,
                warm_started: true,
            },
            stats,
        }
    }
}

/// Quotient levels can be far smaller than the full space; re-run the
/// serial/parallel dispatch per level (and for the final solve) so a
/// 12-cluster coarse level is not fanned out across cores.
/// `ExecutionMode::Parallel` therefore means "parallel where it pays",
/// matching what `value_iteration::solve` does for a single solve.
fn level_mode(requested: ExecutionMode, n_clusters: usize) -> ExecutionMode {
    match requested {
        ExecutionMode::Serial => ExecutionMode::Serial,
        ExecutionMode::Parallel => auto_mode(n_clusters),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;
    use crate::value_iteration::solve_with_mode;

    /// A deterministic pseudo-random MDP with `groups` clusters of
    /// near-identical states, plus a similarity matrix reflecting the
    /// grouping.
    fn clustered(n_states: usize, groups: usize, seed: u64) -> (Mdp, SquareMatrix) {
        let mut b = MdpBuilder::new(n_states, 4);
        let mut x: u64 = seed | 1;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        // Group templates: every member of a group gets the template's
        // transitions (to group representatives), with tiny per-member
        // reward jitter so members are similar but not identical.
        let mut templates = Vec::new();
        for _ in 0..groups {
            let mut t = Vec::new();
            for a in 0..3 {
                let next_group = (rand() as usize) % groups;
                let r = (rand() % 900) as f64 / 1000.0;
                t.push((a, next_group, r));
            }
            templates.push(t);
        }
        for s in 0..n_states {
            let g = s % groups;
            for &(a, next_group, r) in &templates[g] {
                // Members map group targets to that group's first member.
                let next = next_group;
                let jitter = (rand() % 20) as f64 / 1000.0;
                b.transition(s, a, next, 1.0, (r + jitter).min(1.0));
            }
        }
        let mut sigma = SquareMatrix::identity(n_states);
        for u in 0..n_states {
            for v in 0..n_states {
                if u != v && u % groups == v % groups {
                    sigma.set(u, v, 0.97);
                } else if u != v {
                    sigma.set(u, v, 0.2);
                }
            }
        }
        (b.build(), sigma)
    }

    #[test]
    fn pipeline_matches_the_cold_solver_fixed_point() {
        let (m, sigma) = clustered(80, 8, 42);
        let rho = 0.9;
        let eps = 1e-9;
        let cold = solve_with_mode(&m, rho, eps, ExecutionMode::Serial);
        let out = RecalibrationPipeline::new(rho, eps).solve(
            &m,
            &sigma,
            &[0.3, 0.05],
            None,
            ExecutionMode::Serial,
        );
        assert_eq!(out.solution.policy, cold.policy);
        // Both are within eps/(1-rho) of V*.
        let tol = 2.0 * eps / (1.0 - rho);
        for (a, b) in out.solution.values.iter().zip(&cold.values) {
            assert!((a - b).abs() < tol, "{a} vs {b}");
        }
    }

    #[test]
    fn warm_pipeline_spends_fewer_full_space_sweeps() {
        let (m, sigma) = clustered(120, 6, 7);
        let pipe = RecalibrationPipeline::new(0.95, 1e-8);
        let mut scratch = QuotientScratch::new();
        let warm = pipe.solve_with_scratch(
            &m,
            &sigma,
            &[0.3],
            None,
            ExecutionMode::Serial,
            &mut scratch,
        );
        let cold = pipe.solve_cold(&m, &sigma, &[0.3], ExecutionMode::Serial, &mut scratch);
        assert!(!warm.levels.is_empty(), "the ladder must compress");
        assert!(
            warm.final_sweeps < cold.final_sweeps,
            "warm final solve ({}) should beat cold ({})",
            warm.final_sweeps,
            cold.final_sweeps
        );
        assert!(warm.total_sweeps() < cold.total_sweeps());
    }

    #[test]
    fn prior_values_warm_start_the_whole_run() {
        let (m, sigma) = clustered(60, 6, 11);
        let pipe = RecalibrationPipeline::new(0.9, 1e-9);
        let first = pipe.solve(&m, &sigma, &[0.3], None, ExecutionMode::Serial);
        assert!(!first.warm_started);
        let second = pipe.solve(
            &m,
            &sigma,
            &[0.3],
            Some(&first.solution.values),
            ExecutionMode::Serial,
        );
        assert!(second.warm_started);
        assert!(second.total_sweeps() <= first.total_sweeps());
        assert_eq!(second.solution.policy, first.solution.policy);
    }

    #[test]
    fn mismatched_prior_is_ignored_not_fatal() {
        let (m, sigma) = clustered(40, 4, 3);
        let pipe = RecalibrationPipeline::new(0.9, 1e-9);
        let out = pipe.solve(
            &m,
            &sigma,
            &[],
            Some(&[1.0, 2.0]), // stale: state space was re-profiled
            ExecutionMode::Serial,
        );
        assert!(!out.warm_started);
        assert!(out.levels.is_empty());
    }

    #[test]
    fn uncompressed_levels_are_skipped() {
        let (m, sigma) = clustered(30, 3, 5);
        let pipe = RecalibrationPipeline::new(0.9, 1e-9);
        // theta = 0 keeps every state distinct — no level to solve.
        let out = pipe.solve(&m, &sigma, &[0.0], None, ExecutionMode::Serial);
        assert!(out.levels.is_empty());
        assert_eq!(out.total_sweeps(), out.final_sweeps);
    }

    #[test]
    fn quotient_preserves_probability_mass_and_rewards() {
        let (m, sigma) = clustered(50, 5, 9);
        let cm = Abstraction::from_similarity(&sigma, 0.3).cluster_map();
        assert!(cm.n_clusters() < m.n_states());
        let mut scratch = QuotientScratch::new();
        scratch.build(&m.solver_view(), &cm);
        let qv = scratch.view();
        for c in 0..cm.n_clusters() {
            let r = cm.reps[c];
            let full = m.solver_view();
            let n_nodes_full = full.action_ptr[r + 1] - full.action_ptr[r];
            let n_nodes_q = qv.action_ptr[c + 1] - qv.action_ptr[c];
            assert_eq!(n_nodes_full, n_nodes_q, "cluster {c}");
            for (kq, kf) in (qv.action_ptr[c]..qv.action_ptr[c + 1])
                .zip(full.action_ptr[r]..full.action_ptr[r + 1])
            {
                assert_eq!(qv.node_reward[kq], full.node_reward[kf]);
                let mass: f64 = qv.prob[qv.node_ptr[kq]..qv.node_ptr[kq + 1]].iter().sum();
                assert!((mass - 1.0).abs() < 1e-12, "node {kq} mass {mass}");
                // Successor clusters are distinct.
                let succs = &qv.succ[qv.node_ptr[kq]..qv.node_ptr[kq + 1]];
                let mut sorted: Vec<u32> = succs.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), succs.len());
            }
        }
    }

    use crate::mdp::{Outcome, RowPatch};

    /// In the `clustered` fixture every transition targets a state in
    /// `0..groups`, so any state `>= groups` has no predecessors: its
    /// backward closure is just itself. Patch one such row and check the
    /// restricted solve against the full warm solve on the patched MDP.
    #[test]
    fn incremental_after_a_local_patch_matches_the_full_warm_solve() {
        let (m, sigma) = clustered(80, 8, 42);
        let rho = 0.9;
        let eps = 1e-9;
        let pipe = RecalibrationPipeline::new(rho, eps);
        let mut scratch = QuotientScratch::new();
        let thetas = [0.3, 0.05];
        let prior = pipe
            .solve_with_scratch(
                &m,
                &sigma,
                &thetas,
                None,
                ExecutionMode::Serial,
                &mut scratch,
            )
            .solution
            .values;

        let dirty_state = 41; // >= groups: no predecessors
        let mut patched = m.clone();
        let new_row: Vec<Outcome> = m
            .outcomes(dirty_state, 0)
            .iter()
            .map(|o| Outcome {
                reward: (o.reward * 0.5).clamp(0.0, 1.0),
                ..*o
            })
            .collect();
        patched.patch_rows(&[RowPatch {
            state: dirty_state,
            action: 0,
            outcomes: new_row,
        }]);

        let inc = pipe.solve_incremental(
            &patched,
            &sigma,
            &thetas,
            &prior,
            &[dirty_state],
            ExecutionMode::Serial,
            &mut scratch,
        );
        assert!(!inc.stats.full_fallback);
        assert_eq!(inc.stats.dirty_states, 1);
        assert_eq!(inc.stats.affected_states, 1);
        assert!(inc.outcome.warm_started);

        let full = pipe.solve_with_scratch(
            &patched,
            &sigma,
            &thetas,
            Some(&prior),
            ExecutionMode::Serial,
            &mut scratch,
        );
        assert_eq!(inc.outcome.solution.policy, full.solution.policy);
        let tol = 2.0 * eps / (1.0 - rho);
        for (s, (a, b)) in inc
            .outcome
            .solution
            .values
            .iter()
            .zip(&full.solution.values)
            .enumerate()
        {
            assert!((a - b).abs() < tol, "state {s}: {a} vs {b}");
        }
        // Unaffected states keep the prior values bit-for-bit.
        for (s, (got, want)) in inc.outcome.solution.values.iter().zip(&prior).enumerate() {
            if s != dirty_state {
                assert_eq!(got.to_bits(), want.to_bits(), "state {s} was frozen");
            }
        }
    }

    #[test]
    fn global_drift_falls_back_to_the_full_warm_pipeline_bitwise() {
        let (m, sigma) = clustered(60, 6, 11);
        let pipe = RecalibrationPipeline::new(0.9, 1e-9);
        let mut scratch = QuotientScratch::new();
        let thetas = [0.3];
        let prior = pipe
            .solve_with_scratch(
                &m,
                &sigma,
                &thetas,
                None,
                ExecutionMode::Serial,
                &mut scratch,
            )
            .solution
            .values;
        // Every state dirty: the closure trivially exceeds the fallback
        // fraction, so the run must be exactly the full warm solve.
        let all: Vec<usize> = (0..m.n_states()).collect();
        let inc = pipe.solve_incremental(
            &m,
            &sigma,
            &thetas,
            &prior,
            &all,
            ExecutionMode::Serial,
            &mut scratch,
        );
        assert!(inc.stats.full_fallback);
        assert_eq!(inc.stats.affected_states, m.n_states());
        let full = pipe.solve_with_scratch(
            &m,
            &sigma,
            &thetas,
            Some(&prior),
            ExecutionMode::Serial,
            &mut scratch,
        );
        assert_eq!(inc.outcome, full);
    }

    #[test]
    fn empty_dirty_set_returns_the_prior_without_sweeping() {
        let (m, sigma) = clustered(40, 4, 3);
        let pipe = RecalibrationPipeline::new(0.9, 1e-9);
        let mut scratch = QuotientScratch::new();
        let full = pipe.solve_with_scratch(
            &m,
            &sigma,
            &[0.3],
            None,
            ExecutionMode::Serial,
            &mut scratch,
        );
        let inc = pipe.solve_incremental(
            &m,
            &sigma,
            &[0.3],
            &full.solution.values,
            &[],
            ExecutionMode::Serial,
            &mut scratch,
        );
        assert!(!inc.stats.full_fallback);
        assert_eq!(inc.stats.affected_states, 0);
        assert_eq!(inc.outcome.total_sweeps(), 0);
        for (a, b) in inc
            .outcome
            .solution
            .values
            .iter()
            .zip(&full.solution.values)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(inc.outcome.solution.policy, full.solution.policy);
    }

    #[test]
    fn unusable_prior_falls_back_to_a_cold_full_solve() {
        let (m, sigma) = clustered(30, 3, 5);
        let pipe = RecalibrationPipeline::new(0.9, 1e-9);
        let mut scratch = QuotientScratch::new();
        let inc = pipe.solve_incremental(
            &m,
            &sigma,
            &[0.3],
            &[1.0, 2.0], // stale length
            &[0],
            ExecutionMode::Serial,
            &mut scratch,
        );
        assert!(inc.stats.full_fallback);
        assert!(!inc.outcome.warm_started);
        let cold = pipe.solve_with_scratch(
            &m,
            &sigma,
            &[0.3],
            None,
            ExecutionMode::Serial,
            &mut scratch,
        );
        assert_eq!(inc.outcome, cold);
    }

    #[test]
    fn closure_follows_predecessor_chains_through_the_ladder() {
        // States >= groups all feed the group heads (0..groups); a dirty
        // group head therefore pulls every state that targets it into
        // the closure, and the run still matches the full solve.
        let (m, sigma) = clustered(48, 6, 19);
        let rho = 0.9;
        let eps = 1e-9;
        let pipe = RecalibrationPipeline::new(rho, eps);
        let mut scratch = QuotientScratch::new();
        let thetas = [0.3];
        let prior = pipe
            .solve_with_scratch(
                &m,
                &sigma,
                &thetas,
                None,
                ExecutionMode::Serial,
                &mut scratch,
            )
            .solution
            .values;
        let dirty_state = 2; // a group head: has real predecessors
        let mut patched = m.clone();
        let new_row: Vec<Outcome> = m
            .outcomes(dirty_state, 1)
            .iter()
            .map(|o| Outcome {
                reward: (o.reward + 0.25).clamp(0.0, 1.0),
                ..*o
            })
            .collect();
        patched.patch_rows(&[RowPatch {
            state: dirty_state,
            action: 1,
            outcomes: new_row,
        }]);
        let inc = pipe.solve_incremental(
            &patched,
            &sigma,
            &thetas,
            &prior,
            &[dirty_state],
            ExecutionMode::Serial,
            &mut scratch,
        );
        let full = pipe.solve_with_scratch(
            &patched,
            &sigma,
            &thetas,
            Some(&prior),
            ExecutionMode::Serial,
            &mut scratch,
        );
        assert!(
            inc.stats.affected_states > 1,
            "a dirty head must pull its predecessors in"
        );
        let tol = 2.0 * eps / (1.0 - rho);
        for (s, (a, b)) in inc
            .outcome
            .solution
            .values
            .iter()
            .zip(&full.solution.values)
            .enumerate()
        {
            assert!((a - b).abs() < tol, "state {s}: {a} vs {b}");
        }
        assert_eq!(inc.outcome.solution.policy, full.solution.policy);
    }

    #[test]
    fn restrict_and_lift_round_trip_on_cluster_constant_vectors() {
        let (_, sigma) = clustered(24, 4, 13);
        let cm = Abstraction::from_similarity(&sigma, 0.3).cluster_map();
        let v_coarse_in: Vec<f64> = (0..cm.n_clusters()).map(|c| c as f64 * 1.5).collect();
        let mut v_full = vec![0.0; cm.n_states()];
        lift(&v_coarse_in, &cm, &mut v_full);
        let mut v_coarse_out = Vec::new();
        restrict(&v_full, &cm, &mut v_coarse_out);
        assert_eq!(v_coarse_in, v_coarse_out);
    }
}
