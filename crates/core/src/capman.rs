//! The CAPMAN scheduling policy.
//!
//! CAPMAN combines four ingredients (Section III):
//!
//! 1. **Profiling** — every step feeds the observed
//!    `(state, action, state', reward)` tuple and measured power into the
//!    MDP profiler (Fig. 8).
//! 2. **Demand prediction** — the upcoming power is predicted from the
//!    learned per-state power estimates: the system-call actions that
//!    just fired identify the successor power state *before* the power
//!    materialises, which is exactly the edge over the reactive
//!    Heuristic baseline.
//! 3. **Runtime calibration** — in the background (every calibration
//!    interval) the structural-similarity recursion clusters states and
//!    the MDP is solved; unfamiliar states reuse the cached decision of
//!    their similarity representative, with value loss bounded by
//!    `theta / (1 - rho)`.
//! 4. **Balanced depletion with cooling awareness** — surges (and the
//!    TEC's active-power bursts) go to the LITTLE cell, gentle load to
//!    the big cell, with a proportional controller steering both cells
//!    toward simultaneous exhaustion and a hysteresis band to avoid
//!    paying switch costs for marginal decisions.

use capman_battery::chemistry::Class;
use capman_device::fsm::Action;
use capman_device::states::DeviceState;

use crate::online::Calibrator;
use crate::policy::{usable_or_fallback, DecisionContext, Observation, Policy};
use crate::profiler::Profiler;
use crate::telemetry::CalibrationSample;

/// Feature toggles for the mechanism ablation (every flag on is the
/// full scheduler; each off-switch removes one ingredient so its
/// contribution can be measured — see the `capman_ablation` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapmanFeatures {
    /// Use the learned per-state power prediction (off: react to the
    /// last measured power like the Heuristic).
    pub prediction: bool,
    /// Run the depletion-balance controller (off: fixed threshold).
    pub balance: bool,
    /// Rest a diffusion-starved big cell (off: fall back only on hard
    /// unusability).
    pub head_guard: bool,
    /// Hysteresis deadband and switch dwell (off: flap freely).
    pub hysteresis: bool,
}

impl CapmanFeatures {
    /// The full scheduler.
    pub fn all() -> Self {
        CapmanFeatures {
            prediction: true,
            balance: true,
            head_guard: true,
            hysteresis: true,
        }
    }

    /// The full scheduler minus one named ingredient.
    ///
    /// # Panics
    ///
    /// Panics on an unknown ingredient name.
    pub fn without(ingredient: &str) -> Self {
        let mut f = CapmanFeatures::all();
        match ingredient {
            "prediction" => f.prediction = false,
            "balance" => f.balance = false,
            "head_guard" => f.head_guard = false,
            "hysteresis" => f.hysteresis = false,
            other => panic!("unknown CAPMAN ingredient: {other}"),
        }
        f
    }
}

impl Default for CapmanFeatures {
    fn default() -> Self {
        CapmanFeatures::all()
    }
}

/// The threshold/hysteresis decision core of CAPMAN, factored out of
/// [`CapmanPolicy`] so the fleet's pool-calibrated policy variant (which
/// reads calibration snapshots published by background workers instead
/// of owning a [`Calibrator`]) makes bit-identical choices.
///
/// The engine owns everything *stateful* about a decision — current
/// selection, hysteresis, dwell bookkeeping — and is fed the two inputs
/// that differ between the inline and pooled schedulers: the power
/// prediction and the calibrated Q-preference for the deadband.
#[derive(Debug, Clone)]
pub struct DecisionEngine {
    /// Base surge threshold, watts.
    thr_base_w: f64,
    /// Gain of the depletion-balance controller.
    beta: f64,
    /// Hysteresis half-width around the threshold, watts.
    deadband_w: f64,
    /// Minimum time between voluntary switches, seconds (each flip costs
    /// energy and heat through the switch facility).
    min_dwell_s: f64,
    /// The current selection (held inside the deadband).
    current: Class,
    /// Time of the last voluntary switch.
    last_switch_s: f64,
    /// Mechanism toggles (all on by default).
    features: CapmanFeatures,
}

impl DecisionEngine {
    /// The paper's thresholds with every mechanism enabled.
    pub fn paper() -> Self {
        DecisionEngine::with_features(CapmanFeatures::all())
    }

    /// The paper's thresholds with some mechanisms disabled.
    pub fn with_features(features: CapmanFeatures) -> Self {
        DecisionEngine {
            thr_base_w: 1.5,
            beta: 2.5,
            deadband_w: 0.2,
            min_dwell_s: 4.0,
            current: Class::Big,
            last_switch_s: f64::NEG_INFINITY,
            features,
        }
    }

    /// The mechanism toggles this engine runs with.
    pub fn features(&self) -> CapmanFeatures {
        self.features
    }

    /// The currently held selection.
    pub fn current(&self) -> Class {
        self.current
    }

    /// Whether this step's actions signal an imminent surge.
    pub fn surge_signal(actions: &[Action]) -> bool {
        actions.iter().any(|a| {
            matches!(
                a,
                Action::AppLaunch
                    | Action::ScreenOn
                    | Action::Wake
                    | Action::NetSendStart
                    | Action::NetReceiveStart
            )
        })
    }

    /// Choose the cell for the upcoming step from a power prediction
    /// and the calibrated Q-preference consulted inside the deadband.
    pub fn choose(
        &mut self,
        ctx: &DecisionContext<'_>,
        predicted_w: f64,
        q_preference: Option<Class>,
    ) -> Class {
        let mut pred = predicted_w;
        if self.features.prediction && Self::surge_signal(ctx.actions) {
            // A surge-class action fired: trust the prediction upward.
            // The bump clears the default threshold plus deadband, but a
            // strongly raised (LITTLE-protecting) threshold still wins.
            pred = pred.max(ctx.last_power_w).max(self.thr_base_w * 1.5);
        }

        // Steer both cells toward simultaneous exhaustion.
        let thr = if self.features.balance {
            let imbalance = ctx.little_soc - ctx.big_soc;
            (self.thr_base_w * (1.0 - self.beta * imbalance)).clamp(0.4, 6.0)
        } else {
            self.thr_base_w
        };

        // The TEC's active-power burst is itself served by LITTLE.
        let hot = ctx.tec_on || ctx.hotspot_c > 44.0;
        let effective_thr = if hot { thr * 0.7 } else { thr };

        let deadband = if self.features.hysteresis {
            self.deadband_w
        } else {
            0.0
        };
        let mut preferred = if pred > effective_thr + deadband {
            Class::Little
        } else if pred < effective_thr - deadband {
            Class::Big
        } else {
            // Inside the hysteresis band: consult the calibrated MDP's
            // switch-action Q-values; otherwise hold the current choice.
            q_preference.unwrap_or(self.current)
        };

        // Head guard: a diffusion-starved big cell cannot carry real
        // load — let it rest and recover through the valve while the
        // LITTLE cell serves, then reuse it for gentle stretches. This is
        // how CAPMAN extracts the big cell's bound charge instead of
        // stranding it (the Dual/Heuristic baselines lack this and brown
        // out on a drained big cell).
        if self.features.head_guard {
            if preferred == Class::Big && ctx.big_head < 0.12 && ctx.little_usable {
                preferred = Class::Little;
            } else if preferred == Class::Little && ctx.little_head < 0.05 && ctx.big_usable {
                preferred = Class::Big;
            }
        }

        // Dwell: a voluntary flip inside the dwell window is not worth
        // its switching cost; surge signals may pre-empt it.
        if self.features.hysteresis
            && preferred != self.current
            && ctx.time_s - self.last_switch_s < self.min_dwell_s
            && !Self::surge_signal(ctx.actions)
        {
            preferred = self.current;
        }

        let chosen = usable_or_fallback(preferred, ctx);
        if chosen != self.current {
            self.last_switch_s = ctx.time_s;
        }
        self.current = chosen;
        self.current
    }
}

/// One-step-ahead power prediction shared by the inline and pooled
/// schedulers: the device state already reflects this step's system-call
/// actions, so the learned per-state power estimate *is* a prediction.
/// States never visited fall back to their similarity representative
/// (the reuse that runtime calibration enables), then to the last
/// measured power.
pub fn predict_power_w(
    profiler: &Profiler,
    representative: Option<DeviceState>,
    ctx: &DecisionContext<'_>,
) -> f64 {
    if let Some(p) = profiler.state_power_w(ctx.state) {
        return p;
    }
    if let Some(rep) = representative {
        if let Some(p) = profiler.state_power_w(rep) {
            return p;
        }
    }
    ctx.last_power_w
}

/// The CAPMAN battery scheduler.
#[derive(Debug)]
pub struct CapmanPolicy {
    profiler: Profiler,
    calibrator: Calibrator,
    /// Phone compute speed (normalises calibration overhead, Fig. 16).
    compute_speed: f64,
    /// The threshold/hysteresis decision core.
    engine: DecisionEngine,
    /// Calibration events not yet drained into telemetry.
    pending_calibrations: Vec<CalibrationSample>,
}

impl CapmanPolicy {
    /// CAPMAN with the paper's defaults for a phone of the given compute
    /// speed.
    pub fn new(compute_speed: f64) -> Self {
        CapmanPolicy::with_calibrator(compute_speed, Calibrator::paper())
    }

    /// CAPMAN with a custom calibrator (used by the rho sweep of
    /// Fig. 16 and the ablation benches).
    pub fn with_calibrator(compute_speed: f64, calibrator: Calibrator) -> Self {
        assert!(compute_speed > 0.0, "compute speed must be positive");
        CapmanPolicy {
            profiler: Profiler::new(),
            calibrator,
            compute_speed,
            engine: DecisionEngine::paper(),
            pending_calibrations: Vec::new(),
        }
    }

    /// CAPMAN with some mechanisms disabled (the `capman_ablation`
    /// bench).
    pub fn with_features(compute_speed: f64, features: CapmanFeatures) -> Self {
        let mut policy = CapmanPolicy::new(compute_speed);
        policy.engine = DecisionEngine::with_features(features);
        policy
    }

    /// Read-only access to the profiler (for tests and tooling).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Read-only access to the calibrator.
    pub fn calibrator(&self) -> &Calibrator {
        &self.calibrator
    }
}

impl Policy for CapmanPolicy {
    fn name(&self) -> &'static str {
        "CAPMAN"
    }

    fn observe(&mut self, obs: &Observation) {
        self.profiler.observe(
            obs.prev_state,
            obs.action,
            obs.new_state,
            obs.reward,
            obs.power_w,
        );
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Class {
        // Background runtime calibration (cheap gate when not due).
        if self
            .calibrator
            .maybe_recalibrate(ctx.time_s, &self.profiler, self.compute_speed)
        {
            if capman_obs::enabled() {
                capman_obs::counter!(
                    "inline_recalibrations_total",
                    "Calibrations run inline on the decision path (blocking the tick)"
                )
                .inc();
            }
            if let Some(cal) = self.calibrator.calibration() {
                let run = &cal.engine_run;
                self.pending_calibrations.push(CalibrationSample {
                    time_s: ctx.time_s,
                    sweeps: run.sweeps,
                    emd_solves: run.emd_solves,
                    cache_hits: run.cache_hits,
                    bound_pruned: run.bound_pruned,
                    wall_us: run.wall_us,
                    graph_action_nodes: cal.graph_action_nodes,
                    bellman_sweeps: cal.bellman_sweeps,
                    bellman_levels: cal.levels.len(),
                    warm_started: cal.warm_started,
                    staleness_s: 0.0,
                });
            }
        }

        let pred = if self.engine.features().prediction {
            predict_power_w(
                &self.profiler,
                self.calibrator.representative(ctx.state),
                ctx,
            )
        } else {
            ctx.last_power_w
        };
        self.engine
            .choose(ctx, pred, self.calibrator.q_preference(ctx.state))
    }

    fn overhead_us(&self) -> f64 {
        self.calibrator.overhead_us()
    }

    fn recalibrations(&self) -> u64 {
        self.calibrator.recalibrations()
    }

    fn drain_calibrations(&mut self) -> Vec<CalibrationSample> {
        std::mem::take(&mut self.pending_calibrations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_device::states::DeviceState;

    fn ctx<'a>(
        state: DeviceState,
        actions: &'a [Action],
        last_power_w: f64,
        little_soc: f64,
        big_soc: f64,
    ) -> DecisionContext<'a> {
        DecisionContext {
            time_s: 100.0,
            state,
            actions,
            last_power_w,
            big_soc,
            little_soc,
            big_usable: true,
            little_usable: true,
            big_head: 1.0,
            little_head: 1.0,
            hotspot_c: 30.0,
            tec_on: false,
            dual: true,
        }
    }

    fn obs(prev: DeviceState, action: Action, new: DeviceState, power: f64) -> Observation {
        Observation {
            time_s: 1.0,
            prev_state: prev,
            action,
            new_state: new,
            reward: 0.9,
            power_w: power,
        }
    }

    #[test]
    fn learned_state_power_drives_the_decision() {
        let mut p = CapmanPolicy::new(1.0);
        let awake = DeviceState::awake();
        let asleep = DeviceState::asleep();
        // Teach it that the awake state draws 3 W.
        for _ in 0..5 {
            p.observe(&obs(asleep, Action::ScreenOn, awake, 3.0));
        }
        // Low measured power last step, but the *state* says surge.
        let c = ctx(awake, &[], 0.4, 0.9, 0.9);
        assert_eq!(p.decide(&c), Class::Little);
        // And the asleep state (never measured above 0) goes back to big
        // once the switch dwell window has passed.
        let mut c = ctx(asleep, &[], 0.4, 0.9, 0.9);
        c.time_s = 200.0;
        assert_eq!(p.decide(&c), Class::Big);
    }

    #[test]
    fn surge_actions_preempt_before_power_materialises() {
        let mut p = CapmanPolicy::new(1.0);
        // Nothing learned yet: an AppLaunch must still trigger LITTLE.
        let actions = [Action::AppLaunch];
        let c = ctx(DeviceState::awake(), &actions, 0.5, 0.9, 0.9);
        assert_eq!(p.decide(&c), Class::Little);
    }

    #[test]
    fn balance_controller_spares_the_drained_little_cell() {
        let mut p = CapmanPolicy::new(1.0);
        let awake = DeviceState::awake();
        for _ in 0..5 {
            p.observe(&obs(DeviceState::asleep(), Action::ScreenOn, awake, 2.0));
        }
        // 2 W load, but LITTLE is nearly dead and big is full: threshold
        // rises and big takes the load.
        let c = ctx(awake, &[], 2.0, 0.05, 0.95);
        assert_eq!(p.decide(&c), Class::Big);
    }

    #[test]
    fn tec_heat_pushes_toward_little() {
        let mut p = CapmanPolicy::new(1.0);
        let awake = DeviceState::awake();
        for _ in 0..5 {
            p.observe(&obs(DeviceState::asleep(), Action::ScreenOn, awake, 1.3));
        }
        // 1.3 W is below the cold threshold...
        let c = ctx(awake, &[], 1.3, 0.9, 0.9);
        assert_eq!(p.decide(&c), Class::Big);
        // ...but with the TEC running the effective threshold drops.
        let mut hot = ctx(awake, &[], 1.3, 0.9, 0.9);
        hot.tec_on = true;
        assert_eq!(p.decide(&hot), Class::Little);
    }

    #[test]
    fn hysteresis_holds_the_current_selection() {
        let mut p = CapmanPolicy::new(1.0);
        let awake = DeviceState::awake();
        for _ in 0..5 {
            p.observe(&obs(DeviceState::asleep(), Action::ScreenOn, awake, 2.5));
        }
        let c = ctx(awake, &[], 2.5, 0.9, 0.9);
        assert_eq!(p.decide(&c), Class::Little);
        // Prediction drifts into the deadband (threshold ~1.5, deadband
        // 0.2): selection holds instead of flapping.
        for _ in 0..30 {
            p.observe(&obs(awake, Action::TimerTick, awake, 1.5));
        }
        let c = ctx(awake, &[], 1.5, 0.9, 0.9);
        assert_eq!(p.decide(&c), Class::Little, "deadband should hold");
    }

    #[test]
    fn disabling_prediction_reverts_to_reactive_behaviour() {
        let mut full = CapmanPolicy::new(1.0);
        let mut ablated = CapmanPolicy::with_features(1.0, CapmanFeatures::without("prediction"));
        let awake = DeviceState::awake();
        for p in [&mut full, &mut ablated] {
            for _ in 0..5 {
                p.observe(&obs(DeviceState::asleep(), Action::ScreenOn, awake, 3.0));
            }
        }
        // State says surge, but the last measured power was low: only
        // the predictive scheduler switches.
        let c = ctx(awake, &[], 0.4, 0.9, 0.9);
        assert_eq!(full.decide(&c), Class::Little);
        assert_eq!(ablated.decide(&c), Class::Big);
    }

    #[test]
    fn disabling_balance_fixes_the_threshold() {
        let mut ablated = CapmanPolicy::with_features(1.0, CapmanFeatures::without("balance"));
        let awake = DeviceState::awake();
        for _ in 0..5 {
            ablated.observe(&obs(DeviceState::asleep(), Action::ScreenOn, awake, 2.0));
        }
        // LITTLE nearly dead would normally raise the threshold; the
        // ablated scheduler keeps hammering it.
        let c = ctx(awake, &[], 2.0, 0.05, 0.95);
        assert_eq!(ablated.decide(&c), Class::Little);
    }

    #[test]
    fn features_without_rejects_unknown_names() {
        let result = std::panic::catch_unwind(|| CapmanFeatures::without("nonsense"));
        assert!(result.is_err());
    }

    #[test]
    fn overhead_accumulates_with_recalibrations() {
        let mut p = CapmanPolicy::new(1.0);
        let awake = DeviceState::awake();
        let asleep = DeviceState::asleep();
        for _ in 0..100 {
            p.observe(&obs(asleep, Action::ScreenOn, awake, 2.0));
        }
        let c = ctx(awake, &[], 2.0, 0.9, 0.9);
        let _ = p.decide(&c);
        assert_eq!(p.recalibrations(), 1);
        assert!(p.overhead_us() > 0.0);
    }

    #[test]
    fn calibration_telemetry_is_drained_once() {
        let mut p = CapmanPolicy::new(1.0);
        let awake = DeviceState::awake();
        let asleep = DeviceState::asleep();
        for _ in 0..100 {
            p.observe(&obs(asleep, Action::ScreenOn, awake, 2.0));
        }
        let c = ctx(awake, &[], 2.0, 0.9, 0.9);
        let _ = p.decide(&c);
        let drained = p.drain_calibrations();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].time_s, c.time_s);
        assert!(drained[0].sweeps >= 1);
        assert!(drained[0].wall_us > 0.0);
        assert!(p.drain_calibrations().is_empty(), "drain must empty");
    }
}
