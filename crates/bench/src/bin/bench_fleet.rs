//! Measure fleet throughput with inline vs pooled calibration and
//! write `BENCH_fleet.json`.
//!
//! ```text
//! cargo run --release -p capman-bench --bin bench_fleet                    # 1k/4k/16k ladder
//! cargo run --release -p capman-bench --bin bench_fleet -- --devices 1024  # one size
//! cargo run --release -p capman-bench --bin bench_fleet -- --devices 1000000  # arena-only scale run
//! cargo run --release -p capman-bench --bin bench_fleet -- --arena-devices 1024,16384
//! cargo run --release -p capman-bench --bin bench_fleet -- --quick         # CI smoke sizes
//! cargo run --release -p capman-bench --bin bench_fleet -- --require-async-win
//! cargo run --release -p capman-bench --bin bench_fleet -- --obs-overhead  # obs cost contract
//! ```
//!
//! Observability flags (most useful with `--features obs`):
//!
//! * `--trace-out <path>` — drain the span tracer after the run and
//!   write a Chrome `trace_event` JSON file.
//! * `--metrics-out <path>` — write the metrics-registry snapshot as
//!   flat JSON, plus Prometheus text next to it (`<path>.prom`).
//! * `--obs-overhead` — instead of the throughput ladder, run one fleet
//!   repeatedly with the obs runtime switch off vs on (interleaved,
//!   min-wall per arm) and enforce the overhead contract: with the
//!   feature compiled out both arms are identical code, so the measured
//!   delta must sit inside the < 2% noise budget; with it compiled in,
//!   the off-arm (kill switch) must also stay < 2%, and the on-arm's
//!   recording cost is reported. Writes `BENCH_obs_overhead.json`
//!   (override with `--out`).
//!
//! Per fleet size the binary instantiates the same two-cohort CAPMAN
//! fleet twice — once with inline (blocking, per-device) calibration,
//! once with the async calibration pool — and measures devices/sec for
//! both. Before any number is reported it asserts the async mode's
//! correctness envelope:
//!
//! * **no lost ticks** — every device executes exactly as many
//!   scheduling ticks as under inline calibration (the calibration path
//!   must not change how long a device runs);
//! * **zero dropped calibrations** — the bounded pool queue never
//!   overflowed;
//! * **bounded staleness** — no device waited past its own horizon for
//!   a calibration it requested.
//!
//! `--require-async-win` additionally asserts the pool beats inline by
//! at least 2x at 4096+ devices (the multicore CI leg turns this on;
//! the win comes from cohort coalescing — one background solve serves
//! every device of a cohort — so it holds even single-core).
//!
//! Alongside the roster ladder the binary runs an **arena ladder**: the
//! same fleet through the structure-of-arrays `ArenaRunner`, whose
//! streaming aggregation never materializes the per-device summary
//! vector. Each arena row records wall time *and* the process peak RSS
//! (`VmHWM`), and the ladder asserts the arena's memory contract: every
//! row's peak RSS stays within 1.5x of the previous (smaller) row's,
//! and throughput stays within 2x of the smallest row's rate. Roster
//! runs are skipped above 65 536 devices — materializing rosters and
//! summary vectors at that scale is exactly what the arena exists to
//! avoid — so `--devices 1000000` produces an arena-only scale run
//! (plus the two reference sizes the memory assertions compare against).
//! `--arena-devices a,b,c` pins the arena ladder explicitly.

use std::time::Instant;

use capman_bench::perf_report::{ArenaRow, FleetReport, FleetRow, ObsOverheadReport};
use capman_bench::rss::peak_rss_kb;
use capman_bench::trials::{self, SampleGroup};
use capman_fleet::{
    ArenaConfig, ArenaRunner, CalibrationMode, Fleet, FleetConfig, FleetPlan, FleetProfile,
    FleetResult, FleetRunner, PoolConfig,
};
use capman_workload::WorkloadKind;

// A compressed fixture: a 25-minute discharge with a 5-minute
// calibration cadence packs four calibration intervals into a horizon
// short enough to sweep 16k devices. (The paper's 20-minute cadence
// over a full-day discharge has the same solve-to-tick ratio; only the
// absolute wall time differs.)
const HORIZON_S: f64 = 1500.0;
const EVERY_S: f64 = 300.0;
const BATCH: usize = 64;
/// Devices resident per shard arena — the arena ladder's memory knob.
const ARENA_SHARD: usize = 4096;
/// Largest fleet the roster path (materialized specs + summary vector)
/// is asked to carry; bigger sizes run arena-only.
const ROSTER_CEILING: usize = 65_536;

fn cohort_profiles() -> Vec<FleetProfile> {
    let mut video = FleetProfile::capman("video", WorkloadKind::Video, 41);
    let mut pcmark = FleetProfile::capman("pcmark", WorkloadKind::Pcmark, 43);
    for profile in [&mut video, &mut pcmark] {
        profile.config.max_horizon_s = HORIZON_S;
        profile.calibrator.every_s = EVERY_S;
    }
    vec![video, pcmark]
}

fn assert_even(devices: usize) {
    assert!(
        devices >= 2 && devices.is_multiple_of(2),
        "need an even device count"
    );
}

fn build_fleet(devices: usize) -> Fleet {
    assert_even(devices);
    Fleet::build(cohort_profiles(), devices / 2)
}

fn build_plan(devices: usize) -> FleetPlan {
    assert_even(devices);
    FleetPlan::new(cohort_profiles(), devices / 2)
}

fn run_mode(fleet: &Fleet, mode: CalibrationMode) -> (FleetResult, f64) {
    let runner = FleetRunner::new(FleetConfig {
        mode,
        batch: BATCH,
        pool: PoolConfig {
            workers: 2,
            queue_depth: 64,
        },
        parallel: true,
    });
    let t0 = Instant::now();
    let result = runner.run(fleet);
    (result, t0.elapsed().as_secs_f64() * 1e3)
}

fn fleet_row(devices: usize, require_async_win: bool, reps: usize) -> FleetRow {
    assert!(reps >= 1, "need at least one rep");
    let fleet = build_fleet(devices);
    // Interleave the arms rep-by-rep (inline, pool, inline, pool, ...)
    // so machine load hits both alike; headlines stay min-wall, the
    // pooled-arm distribution rides along for the statistical gate. The
    // simulation itself is deterministic, so any rep's results can
    // carry the correctness envelope and the sketch quantiles.
    let mut inline_wall_ms = f64::INFINITY;
    let mut pool_wall_ms_samples = Vec::with_capacity(reps);
    let mut staleness_p99_s_samples = Vec::with_capacity(reps);
    let mut first: Option<(FleetResult, FleetResult)> = None;
    for _ in 0..reps {
        let (inline_rep, inline_ms) = run_mode(&fleet, CalibrationMode::Inline);
        let (pool_rep, pool_ms) = run_mode(&fleet, CalibrationMode::Pool);
        inline_wall_ms = inline_wall_ms.min(inline_ms);
        pool_wall_ms_samples.push(pool_ms);
        staleness_p99_s_samples.push(pool_rep.aggregate.staleness_s.p99());
        if first.is_none() {
            first = Some((inline_rep, pool_rep));
        }
    }
    let (inline, pool) = first.expect("reps >= 1");
    let pool_wall_ms = pool_wall_ms_samples
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);

    // --- Correctness envelope before any throughput number ------------
    let ticks = |r: &FleetResult| r.summaries.iter().map(|s| s.ticks).collect::<Vec<_>>();
    assert_eq!(
        ticks(&inline),
        ticks(&pool),
        "async calibration must not change how long devices tick"
    );
    let counters = pool.aggregate.pool;
    assert_eq!(
        counters.dropped, 0,
        "pool queue overflowed — no tick may lose its calibration"
    );
    assert_eq!(
        counters.completed, counters.enqueued,
        "every enqueued calibration must complete"
    );
    let staleness_max_s = pool.aggregate.staleness_s.max();
    assert!(
        staleness_max_s <= HORIZON_S,
        "staleness {staleness_max_s} s exceeds the device horizon"
    );

    let row = FleetRow {
        devices,
        cohorts: fleet.profiles.len(),
        ticks: pool.aggregate.ticks,
        inline_wall_ms,
        pool_wall_ms,
        pool_wall_ms_samples,
        inline_recalibrations: inline.aggregate.recalibrations,
        pool_completed: counters.completed,
        pool_submitted: counters.submitted,
        pool_coalesced: counters.coalesced,
        pool_dropped: counters.dropped,
        staleness_p50_s: pool.aggregate.staleness_s.p50(),
        staleness_p95_s: pool.aggregate.staleness_s.p95(),
        staleness_p99_s: pool.aggregate.staleness_s.p99(),
        staleness_p99_s_samples,
        staleness_max_s,
        lifetime_p50_s: pool.aggregate.lifetime_s.p50(),
        hotspot_p95_c: pool.aggregate.hotspot_c.p95(),
    };
    if require_async_win && devices >= 4096 {
        assert!(
            row.speedup() >= 2.0,
            "async pool must be >= 2x inline at {devices} devices, got {:.2}x",
            row.speedup()
        );
    }
    row
}

/// One arena-ladder row: the plan-derived fleet through the
/// structure-of-arrays runner with pooled calibration and streaming
/// aggregation. The correctness envelope here is the aggregation
/// contract — every device counted exactly once, no summary vector
/// materialized, no calibration shed — and peak RSS rides along as the
/// number the arena exists to bound.
fn arena_row(devices: usize, reps: usize) -> ArenaRow {
    assert!(reps >= 1, "need at least one rep");
    let plan = build_plan(devices);
    let runner = ArenaRunner::new(ArenaConfig {
        mode: CalibrationMode::Pool,
        shard_devices: ARENA_SHARD.min(devices),
        pool: PoolConfig {
            workers: 2,
            queue_depth: 64,
        },
        ..ArenaConfig::default()
    });
    let mut wall_ms_samples = Vec::with_capacity(reps);
    let mut first: Option<FleetResult> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let result = runner.run(&plan);
        wall_ms_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        if first.is_none() {
            first = Some(result);
        }
    }
    let result = first.expect("reps >= 1");
    let agg = &result.aggregate;

    // --- Streaming-aggregation envelope -------------------------------
    assert!(
        result.summaries.is_empty(),
        "the arena bench must not materialize the summary vector"
    );
    assert_eq!(agg.devices as usize, devices, "every device counted once");
    assert_eq!(agg.lifetime_s.count(), devices as u64);
    assert_eq!(agg.pool.dropped, 0, "pool queue must not overflow");
    assert_eq!(
        agg.pool.completed, agg.pool.enqueued,
        "every enqueued calibration must complete"
    );
    let staleness_max_s = agg.staleness_s.max();
    assert!(
        staleness_max_s <= HORIZON_S,
        "staleness {staleness_max_s} s exceeds the device horizon"
    );

    let wall_ms = wall_ms_samples
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    ArenaRow {
        devices,
        shard_devices: runner.config().shard_devices,
        cohorts: plan.profiles().len(),
        ticks: agg.ticks,
        wall_ms,
        wall_ms_samples,
        peak_rss_kb: peak_rss_kb(),
        recalibrations: agg.recalibrations,
        pool_completed: agg.pool.completed,
        pool_dropped: agg.pool.dropped,
        staleness_p99_s: agg.staleness_s.p99(),
        lifetime_p50_s: agg.lifetime_s.p50(),
        hotspot_p95_c: agg.hotspot_c.p95(),
    }
}

/// The arena's scale contract, asserted over an ascending ladder:
/// growing the fleet must not grow memory (peak RSS within 1.5x of the
/// previous row — the `VmHWM` mark is process-monotone, so the bound
/// says "this row added almost nothing") and must not sink throughput
/// (within 2x of the smallest row's devices/sec; per-device work is
/// constant, so a bigger fleet only amortizes fixed costs better).
fn assert_arena_scaling(rows: &[ArenaRow]) {
    for pair in rows.windows(2) {
        let (small, big) = (&pair[0], &pair[1]);
        if small.peak_rss_kb > 0 {
            assert!(
                (big.peak_rss_kb as f64) <= 1.5 * small.peak_rss_kb as f64,
                "arena memory contract broken: {} devices peaked at {} kB vs {} kB at {}",
                big.devices,
                big.peak_rss_kb,
                small.peak_rss_kb,
                small.devices
            );
        }
    }
    if let Some(first) = rows.first() {
        for row in &rows[1..] {
            assert!(
                row.devices_per_s() >= 0.5 * first.devices_per_s(),
                "arena throughput sank at scale: {:.1} dev/s at {} vs {:.1} dev/s at {}",
                row.devices_per_s(),
                row.devices,
                first.devices_per_s(),
                first.devices
            );
        }
    }
}

/// One `--obs-overhead` measurement (see the module docs). Interleaving
/// the arms rep-by-rep keeps both under the same machine conditions;
/// min-wall per arm rejects scheduler hiccups.
fn obs_overhead(devices: usize, reps: usize) -> ObsOverheadReport {
    let fleet = build_fleet(devices);
    // Warm-up run: fault in code paths and the allocator before timing.
    capman_obs::set_enabled(false);
    let _ = run_mode(&fleet, CalibrationMode::Pool);
    let mut wall_off_ms = f64::INFINITY;
    let mut wall_on_ms = f64::INFINITY;
    let mut causal_seen = false;
    for _ in 0..reps {
        capman_obs::set_enabled(false);
        wall_off_ms = wall_off_ms.min(run_mode(&fleet, CalibrationMode::Pool).1);
        capman_obs::set_enabled(true);
        wall_on_ms = wall_on_ms.min(run_mode(&fleet, CalibrationMode::Pool).1);
        // Keep ring memory bounded across reps; `--trace-out` snapshots
        // the final rep only.
        if reps > 1 {
            let drain = capman_obs::drain();
            causal_seen = causal_seen
                || drain
                    .records
                    .iter()
                    .any(|r| r.trace != 0 && matches!(r.kind, capman_obs::RecordKind::Link { .. }));
        }
    }
    // The measured on-arm must be doing the *full* job: trace contexts
    // minted at submission and cross-thread flow links recorded. An
    // overhead number for a tracer that silently stopped tracing would
    // certify nothing.
    if capman_obs::compiled() && reps > 1 {
        assert!(
            causal_seen,
            "obs-on arm recorded no flow-linked causal traces — the overhead \
             measurement is not exercising causal tracing"
        );
    }
    ObsOverheadReport {
        obs_compiled: capman_obs::compiled(),
        devices,
        reps,
        wall_off_ms,
        wall_on_ms,
    }
}

/// Honour `--trace-out` / `--metrics-out` after the measured work.
fn write_obs_outputs(trace_out: Option<&str>, metrics_out: Option<&str>) {
    if trace_out.is_some() || metrics_out.is_some() {
        if !capman_obs::compiled() {
            eprintln!("note: built without --features obs — traces and metrics will be empty");
        }
        if let Some(path) = trace_out {
            let drain = capman_obs::drain();
            capman_obs::trace::validate(&drain.records).expect("drained spans must be well-nested");
            let n = drain.records.len();
            std::fs::write(path, capman_obs::export::chrome_trace(&drain))
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("wrote {path} ({n} spans, {} dropped)", drain.dropped);
        }
        if let Some(path) = metrics_out {
            let snap = capman_obs::snapshot();
            std::fs::write(path, capman_obs::export::metrics_json(&snap))
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            let prom_path = format!("{path}.prom");
            std::fs::write(&prom_path, capman_obs::export::prometheus_text(&snap))
                .unwrap_or_else(|e| panic!("write {prom_path}: {e}"));
            println!("wrote {path} and {prom_path}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let require_async_win = args.iter().any(|a| a == "--require-async-win");
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let trace_out = flag("--trace-out");
    let metrics_out = flag("--metrics-out");
    let trials_out = flag("--trials");
    let reps: usize = flag("--reps")
        .map(|n| n.parse().expect("--reps takes a number"))
        .unwrap_or(1);

    if args.iter().any(|a| a == "--obs-overhead") {
        let devices = match flag("--devices") {
            Some(n) => n.parse().expect("--devices takes a number"),
            None if quick => 256,
            None => 1024,
        };
        let report = obs_overhead(devices, 3);
        println!(
            "obs overhead @ {} devices (feature {}): off {:.1} ms ({:.1} dev/s), on {:.1} ms \
             ({:.1} dev/s), overhead {:+.2}%",
            report.devices,
            if report.obs_compiled {
                "compiled"
            } else {
                "disabled"
            },
            report.wall_off_ms,
            report.devices_per_s_off(),
            report.wall_on_ms,
            report.devices_per_s_on(),
            report.overhead_pct()
        );
        // The contract from DESIGN.md §12: the *disabled* path (feature
        // off, or feature on with the kill switch off) costs < 2%
        // devices/sec. The off-arm must never lose more than the noise
        // budget to the on-arm, which does strictly more work.
        assert!(
            report.wall_off_ms <= report.wall_on_ms * 1.02,
            "disabled-path overhead contract violated: off {:.1} ms vs on {:.1} ms",
            report.wall_off_ms,
            report.wall_on_ms
        );
        if !report.obs_compiled {
            // Identical code in both arms: the delta is pure harness
            // noise and bounds the measurement resolution.
            assert!(
                report.overhead_pct().abs() < 2.0,
                "feature-off arms diverged by {:.2}% — measurement too noisy",
                report.overhead_pct()
            );
        }
        let out_path = flag("--out").unwrap_or_else(|| "BENCH_obs_overhead.json".to_string());
        std::fs::write(&out_path, report.to_json())
            .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
        println!("wrote {out_path}");
        write_obs_outputs(trace_out.as_deref(), metrics_out.as_deref());
        return;
    }

    let out_path = flag("--out").unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let devices_flag: Option<usize> =
        flag("--devices").map(|n| n.parse().expect("--devices takes a number"));
    // The roster ladder stops at ROSTER_CEILING: above it the
    // materialized specs + summary vector are the memory bug the arena
    // fixes, not a baseline worth waiting on.
    let sizes: Vec<usize> = match devices_flag {
        Some(n) if n > ROSTER_CEILING => Vec::new(),
        Some(n) => vec![n],
        None if quick => vec![256],
        None => vec![1024, 4096, 16384],
    };
    let mut arena_sizes: Vec<usize> = match flag("--arena-devices") {
        Some(list) => list
            .split(',')
            .map(|n| n.trim().parse().expect("--arena-devices takes numbers"))
            .collect(),
        // A scale run keeps the two reference sizes so the memory and
        // throughput contracts have in-process baselines to hold
        // against (VmHWM is monotone: ascending order attributes
        // growth to the row that caused it).
        None => match devices_flag {
            Some(n) if n > ROSTER_CEILING => vec![16_384, ROSTER_CEILING, n],
            Some(n) => vec![n],
            None if quick => vec![256],
            None => vec![16_384, ROSTER_CEILING],
        },
    };
    arena_sizes.sort_unstable();
    arena_sizes.dedup();

    let mut report = FleetReport {
        threads: rayon::current_num_threads(),
        batch: BATCH,
        horizon_s: HORIZON_S,
        every_s: EVERY_S,
        ..FleetReport::default()
    };

    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "devices",
        "inline_ms",
        "pool_ms",
        "inl_dev/s",
        "pool_dev/s",
        "speedup",
        "solves",
        "stale_p99"
    );
    for &devices in &sizes {
        let row = fleet_row(devices, require_async_win, reps);
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>10.1} {:>10.1} {:>7.1}x {:>10} {:>9.1}s",
            row.devices,
            row.inline_wall_ms,
            row.pool_wall_ms,
            row.inline_devices_per_s(),
            row.pool_devices_per_s(),
            row.speedup(),
            row.pool_completed,
            row.staleness_p99_s
        );
        report.rows.push(row);
    }

    println!(
        "arena ladder (pooled calibration, {} devices/shard):",
        ARENA_SHARD
    );
    println!(
        "{:>9} {:>12} {:>10} {:>12} {:>8} {:>10}",
        "devices", "wall_ms", "dev/s", "peak_rss_kb", "solves", "stale_p99"
    );
    for &devices in &arena_sizes {
        // The big rows dominate the wall clock; one rep is plenty once
        // the gate has the reference sizes' distributions.
        let row_reps = if devices > ROSTER_CEILING { 1 } else { reps };
        let row = arena_row(devices, row_reps);
        println!(
            "{:>9} {:>12.1} {:>10.1} {:>12} {:>8} {:>9.1}s",
            row.devices,
            row.wall_ms,
            row.devices_per_s(),
            row.peak_rss_kb,
            row.pool_completed,
            row.staleness_p99_s
        );
        // Where the roster ladder ran the same fleet, the arena must
        // have executed the identical simulation (full bit-identity is
        // pinned by the fleet crate's tests; ticks are the cheap
        // in-bench witness).
        if let Some(roster) = report.rows.iter().find(|r| r.devices == row.devices) {
            assert_eq!(
                roster.ticks, row.ticks,
                "arena and roster disagree on ticks at {devices} devices"
            );
        }
        report.arena.push(row);
    }
    assert_arena_scaling(&report.arena);

    let json = report.to_json();
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");

    if let Some(dir) = trials_out.as_deref() {
        let mut groups = Vec::new();
        for row in &report.rows {
            let task = format!("devices-{}", row.devices);
            groups.push(SampleGroup::new(
                &task,
                "pool",
                "pool_wall_ms",
                &row.pool_wall_ms_samples,
            ));
            groups.push(SampleGroup::new(
                &task,
                "staleness_p99",
                "staleness_p99_s",
                &row.staleness_p99_s_samples,
            ));
        }
        for row in &report.arena {
            groups.push(SampleGroup::new(
                &format!("arena-devices-{}", row.devices),
                "arena",
                "wall_ms",
                &row.wall_ms_samples,
            ));
        }
        trials::emit(std::path::Path::new(dir), "bench_fleet", &groups)
            .unwrap_or_else(|e| panic!("emit trials to {dir}: {e}"));
        println!("wrote {dir} ({} sample groups)", groups.len());
    }
    write_obs_outputs(trace_out.as_deref(), metrics_out.as_deref());
}
