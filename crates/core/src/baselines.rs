//! The state-of-the-practice baselines of Section V.
//!
//! * **Practice** — the original phone: one battery, no scheduling.
//! * **Dual** — big.LITTLE installed, but always drains the LITTLE cell
//!   first.
//! * **Heuristic** — big.LITTLE with a utilisation-based prediction from
//!   the Table II power models: it reacts to the *measured* power of the
//!   previous step, so it lags every surge by one decision interval and
//!   flaps around the threshold (no hysteresis) — exactly the weaknesses
//!   CAPMAN's MDP prediction removes.

use capman_battery::chemistry::Class;

use crate::policy::{usable_or_fallback, DecisionContext, Observation, Policy};

/// The single-battery *Practice* baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct PracticePolicy;

impl Policy for PracticePolicy {
    fn name(&self) -> &'static str {
        "Practice"
    }

    fn decide(&mut self, _ctx: &DecisionContext<'_>) -> Class {
        Class::Big
    }
}

/// The *Dual* baseline: LITTLE first, big when LITTLE is gone.
#[derive(Debug, Clone, Copy, Default)]
pub struct DualPolicy;

impl Policy for DualPolicy {
    fn name(&self) -> &'static str {
        "Dual"
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Class {
        usable_or_fallback(Class::Little, ctx)
    }
}

/// The *Heuristic* baseline: threshold on the smoothed measured power.
#[derive(Debug, Clone, Copy)]
pub struct HeuristicPolicy {
    /// Power above which the LITTLE cell is selected, watts.
    threshold_w: f64,
    /// Smoothed measured power, watts.
    ema_w: f64,
}

impl HeuristicPolicy {
    /// The default 1.5 W surge threshold.
    pub fn new() -> Self {
        HeuristicPolicy::with_threshold(1.5)
    }

    /// A custom threshold (for the ablation benches).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not positive.
    pub fn with_threshold(threshold_w: f64) -> Self {
        assert!(threshold_w > 0.0, "threshold must be positive");
        HeuristicPolicy {
            threshold_w,
            ema_w: 0.0,
        }
    }
}

impl Default for HeuristicPolicy {
    fn default() -> Self {
        HeuristicPolicy::new()
    }
}

impl Policy for HeuristicPolicy {
    fn name(&self) -> &'static str {
        "Heuristic"
    }

    fn observe(&mut self, obs: &Observation) {
        // Fast-tracking EMA: reactive, still one step behind reality.
        self.ema_w += 0.6 * (obs.power_w - self.ema_w);
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Class {
        let preferred = if self.ema_w > self.threshold_w {
            Class::Little
        } else {
            Class::Big
        };
        usable_or_fallback(preferred, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_device::states::DeviceState;

    fn ctx() -> DecisionContext<'static> {
        DecisionContext {
            time_s: 0.0,
            state: DeviceState::awake(),
            actions: &[],
            last_power_w: 1.0,
            big_soc: 0.9,
            little_soc: 0.9,
            big_usable: true,
            little_usable: true,
            big_head: 1.0,
            little_head: 1.0,
            hotspot_c: 30.0,
            tec_on: false,
            dual: true,
        }
    }

    fn obs(power_w: f64) -> Observation {
        Observation {
            time_s: 1.0,
            prev_state: DeviceState::awake(),
            action: capman_device::fsm::Action::TimerTick,
            new_state: DeviceState::awake(),
            reward: 0.9,
            power_w,
        }
    }

    #[test]
    fn practice_always_uses_the_single_battery() {
        let mut p = PracticePolicy;
        assert_eq!(p.decide(&ctx()), Class::Big);
        assert_eq!(p.name(), "Practice");
    }

    #[test]
    fn dual_prefers_little_until_it_dies() {
        let mut p = DualPolicy;
        assert_eq!(p.decide(&ctx()), Class::Little);
        let mut dead_little = ctx();
        dead_little.little_usable = false;
        assert_eq!(p.decide(&dead_little), Class::Big);
    }

    #[test]
    fn heuristic_reacts_to_measured_power() {
        let mut p = HeuristicPolicy::new();
        // Cold start: low EMA, big battery.
        assert_eq!(p.decide(&ctx()), Class::Big);
        // A surge is measured -> switches (one step late).
        p.observe(&obs(4.0));
        assert_eq!(p.decide(&ctx()), Class::Little);
        // Load drops -> flaps back within a couple of steps.
        p.observe(&obs(0.5));
        p.observe(&obs(0.5));
        assert_eq!(p.decide(&ctx()), Class::Big);
    }

    #[test]
    fn heuristic_threshold_is_configurable() {
        let mut p = HeuristicPolicy::with_threshold(10.0);
        p.observe(&obs(4.0));
        assert_eq!(p.decide(&ctx()), Class::Big, "below a high threshold");
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_non_positive_threshold() {
        let _ = HeuristicPolicy::with_threshold(0.0);
    }
}
