//! Cross-PR perf regression gate over the committed `BENCH_*.json`
//! reports.
//!
//! ```text
//! perf_gate <committed.json> <fresh.json> [--max-slowdown 1.30] [--min-ms 0.25]
//! ```
//!
//! CI regenerates a benchmark report and compares it against the
//! committed one **at matching fixture sizes**: if a gated metric
//! slowed down by more than the allowed factor (default 1.30, i.e.
//! >30%), the gate exits non-zero and prints the offending rows.
//!
//! Gated metrics are the *serial* solver time (`csr_serial_ms`), the
//! similarity engine time (`engine_ms`), the fleet's pooled wall
//! time (`pool_wall_ms`, keyed by device count), and the fleet's p99
//! calibration staleness (`staleness_p99_s`) — so observability-visible
//! regressions (devices deciding from older calibrations) fail CI, not
//! just throughput ones. The parallel solver time is reported but not
//! gated — its variance on shared CI runners (core stealing, migration)
//! swamps a 30% threshold. Rows whose committed time is below the
//! `--min-ms` floor are skipped too: at sub-floor durations the timer
//! and allocator noise exceed any real regression — except for metrics
//! gated in [`GateMode::FloorAsBaseline`], where a sub-floor committed
//! value is *good news* to defend, not noise to skip: the ratio is
//! taken against `max(committed, floor)`, so a healthy 0.1 s baseline
//! still catches a jump past `0.25 s x limit` while staying immune to
//! bucket-resolution jitter below the floor. Fixture sizes present in
//! only one file are reported and ignored.
//!
//! The gate **skips cleanly (exit 0)** instead of failing when it has
//! nothing to compare: a missing committed or fresh report (a section
//! landing before its first committed baseline), or two reports with no
//! overlapping gated rows. A hard failure in those cases would force
//! every new benchmark to land in lockstep with its CI wiring; a loud
//! skip keeps the gate honest without the coupling.

use capman_bench::perf_report::{parse_rows, row_value};

/// How a gated metric treats committed values below the `--min-ms`
/// noise floor.
#[derive(Clone, Copy, PartialEq, Eq)]
enum GateMode {
    /// Skip sub-floor rows entirely (wall-time metrics: below the floor
    /// the timer noise exceeds any real regression).
    SkipBelowFloor,
    /// Gate sub-floor rows against the floor itself: `ratio =
    /// new / max(committed, floor)`. For metrics whose healthy value
    /// sits *under* the floor (p99 staleness at bucket resolution),
    /// skipping would disable the gate forever, while a raw ratio
    /// against a near-zero baseline would flake on bucket jitter.
    FloorAsBaseline,
}

/// A gated metric: `(section, key_field, metric, mode)`. Rows are
/// matched across reports by the value of `key_field`. Units need not
/// be milliseconds — `staleness_p99_s` is simulated seconds; the
/// `--min-ms` floor is interpreted in the metric's own unit.
const GATES: [(&str, &str, &str, GateMode); 4] = [
    (
        "solver",
        "states",
        "csr_serial_ms",
        GateMode::SkipBelowFloor,
    ),
    (
        "similarity",
        "states",
        "engine_ms",
        GateMode::SkipBelowFloor,
    ),
    ("fleet", "devices", "pool_wall_ms", GateMode::SkipBelowFloor),
    (
        "fleet",
        "devices",
        "staleness_p99_s",
        GateMode::FloorAsBaseline,
    ),
];

struct Args {
    committed: String,
    fresh: String,
    max_slowdown: f64,
    min_ms: f64,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str, default: f64| -> f64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let positional: Vec<&String> = {
        // Strip flag pairs to recover the two file paths.
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.starts_with("--") {
                    skip_next = true;
                    return false;
                }
                true
            })
            .collect()
    };
    if positional.len() != 2 {
        eprintln!(
            "usage: perf_gate <committed.json> <fresh.json> [--max-slowdown 1.30] [--min-ms 0.25]"
        );
        std::process::exit(2);
    }
    Args {
        committed: positional[0].clone(),
        fresh: positional[1].clone(),
        max_slowdown: flag("--max-slowdown", 1.30),
        min_ms: flag("--min-ms", 0.25),
    }
}

/// Read a report, or skip the whole gate cleanly when it is absent — a
/// missing file means "no baseline yet", not "regression".
fn read_or_skip(path: &str, role: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            println!("perf_gate: SKIP — {role} report {path} unreadable ({e}); nothing to gate");
            std::process::exit(0);
        }
    }
}

fn main() {
    let args = parse_args();
    let committed = read_or_skip(&args.committed, "committed");
    let fresh = read_or_skip(&args.fresh, "fresh");

    let mut failures = 0usize;
    let mut compared = 0usize;
    for (section, key_field, metric, mode) in GATES {
        let old_rows = parse_rows(&committed, section);
        let new_rows = parse_rows(&fresh, section);
        if old_rows.is_empty() || new_rows.is_empty() {
            println!(
                "{section}: absent from {} report, skipped",
                if old_rows.is_empty() {
                    "committed"
                } else {
                    "fresh"
                }
            );
            continue;
        }
        for old in &old_rows {
            let Some(key) = row_value(old, key_field) else {
                continue;
            };
            let Some(new) = new_rows
                .iter()
                .find(|r| row_value(r, key_field) == Some(key))
            else {
                println!("{section}/{key_field}={key}: only in committed report, skipped");
                continue;
            };
            let (Some(old_ms), Some(new_ms)) = (row_value(old, metric), row_value(new, metric))
            else {
                continue;
            };
            if old_ms < args.min_ms && mode == GateMode::SkipBelowFloor {
                println!(
                    "{section}/{key_field}={key} {metric}: committed {old_ms:.3} below the \
                     {:.2} noise floor, skipped",
                    args.min_ms
                );
                continue;
            }
            compared += 1;
            // FloorAsBaseline rows divide by at least the floor, so a
            // sub-floor baseline cannot amplify bucket jitter into a
            // failure but a genuine jump past floor x limit still trips.
            let ratio = new_ms / old_ms.max(args.min_ms);
            let verdict = if ratio > args.max_slowdown {
                failures += 1;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "{section}/{key_field}={key} {metric}: {old_ms:.3} -> {new_ms:.3} \
                 ({ratio:.2}x, limit {:.2}x) {verdict}",
                args.max_slowdown
            );
        }
    }

    if compared == 0 {
        println!(
            "perf_gate: SKIP — no gated rows matched between {} and {} \
             (new report shape, or disjoint fixture sizes); nothing to gate",
            args.committed, args.fresh
        );
        std::process::exit(0);
    }
    if failures > 0 {
        eprintln!("perf_gate: {failures} gated metric(s) regressed");
        std::process::exit(1);
    }
    println!("perf_gate: all {compared} gated metrics within limits");
}
