//! The pool-calibrated CAPMAN scheduler.
//!
//! [`PooledCapmanPolicy`] is the fleet-mode variant of
//! `capman_core::capman::CapmanPolicy`: the same profiler, the same
//! [`DecisionEngine`] (so decisions are bit-identical given the same
//! calibration), but instead of *running* calibrations inline on the
//! scheduling tick, it submits requests to a shared
//! [`CalibrationPool`](crate::pool::CalibrationPool) and reads whatever
//! snapshot the pool last published for its cohort. Ticks never block
//! on calibration; the price is *staleness* — decisions may be taken
//! against a calibration that is a few simulated seconds old, which the
//! policy measures and reports through the standard
//! [`CalibrationSample`] telemetry channel.

use std::sync::Arc;

use capman_battery::chemistry::Class;
use capman_core::capman::{predict_power_w, DecisionEngine};
use capman_core::online::CalibratorSpec;
use capman_core::policy::{DecisionContext, Observation, Policy};
use capman_core::profiler::Profiler;
use capman_core::telemetry::CalibrationSample;

use crate::pool::{CalibrationBackend, CalibrationPool, CalibrationSnapshot};

/// CAPMAN with calibration delegated to a shared background backend —
/// the in-process [`CalibrationPool`] or any other
/// [`CalibrationBackend`] (the resident `capman-serve` service).
pub struct PooledCapmanPolicy {
    profiler: Profiler,
    backend: Arc<dyn CalibrationBackend>,
    cohort: usize,
    compute_speed: f64,
    engine: DecisionEngine,
    /// The cohort's calibration cadence (mirrors the inline calibrator).
    every_s: f64,
    /// Observations required before the first request.
    warmup_observations: u64,
    last_request_s: f64,
    /// Simulated time of the oldest request this device is still
    /// waiting on (staleness is measured from here).
    pending_since_s: Option<f64>,
    /// Last snapshot sequence number adopted.
    seen_seq: u64,
    snapshot: Arc<CalibrationSnapshot>,
    adoptions: u64,
    pending_samples: Vec<CalibrationSample>,
}

impl PooledCapmanPolicy {
    /// A pooled scheduler for one device of `cohort`, requesting on the
    /// cadence of `spec`.
    pub fn new(
        pool: Arc<CalibrationPool>,
        cohort: usize,
        spec: CalibratorSpec,
        compute_speed: f64,
    ) -> Self {
        Self::with_backend(pool, cohort, spec, compute_speed)
    }

    /// Like [`PooledCapmanPolicy::new`] but against any
    /// [`CalibrationBackend`] — this is how `capman-serve` substitutes
    /// its admission-controlled service for the raw pool without the
    /// scheduler noticing.
    pub fn with_backend(
        backend: Arc<dyn CalibrationBackend>,
        cohort: usize,
        spec: CalibratorSpec,
        compute_speed: f64,
    ) -> Self {
        assert!(compute_speed > 0.0, "compute speed must be positive");
        let snapshot = backend.snapshot(cohort);
        PooledCapmanPolicy {
            profiler: Profiler::new(),
            backend,
            cohort,
            compute_speed,
            engine: DecisionEngine::paper(),
            every_s: spec.every_s,
            warmup_observations: 60,
            last_request_s: f64::NEG_INFINITY,
            pending_since_s: None,
            seen_seq: snapshot.seq,
            snapshot,
            adoptions: 0,
            pending_samples: Vec::new(),
        }
    }

    /// Snapshot sequence number the device currently decides from.
    pub fn seen_seq(&self) -> u64 {
        self.seen_seq
    }
}

impl Policy for PooledCapmanPolicy {
    fn name(&self) -> &'static str {
        "CAPMAN"
    }

    fn observe(&mut self, obs: &Observation) {
        self.profiler.observe(
            obs.prev_state,
            obs.action,
            obs.new_state,
            obs.reward,
            obs.power_w,
        );
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Class {
        // Adopt the latest published snapshot — one lock-free-style
        // load; never waits on an in-progress calibration.
        let snap = self.backend.snapshot(self.cohort);
        if snap.seq > self.seen_seq {
            self.seen_seq = snap.seq;
            self.adoptions += 1;
            let staleness_s = self
                .pending_since_s
                .take()
                .map_or(0.0, |since| (ctx.time_s - since).max(0.0));
            if capman_obs::enabled() {
                capman_obs::counter!(
                    "pool_adoptions_total",
                    "Snapshot adoptions by device schedulers"
                )
                .inc();
                let (trace, publish_span) =
                    snap.trace.map_or((0, 0), |t| (t.trace, t.publish_span));
                let adopt_event = capman_obs::event_in("pool_adopt", snap.seq, trace);
                // Stitch the publish→adopt hop back to the worker that
                // produced this snapshot.
                capman_obs::link("pool_adopt_flow", publish_span, adopt_event, trace);
                capman_obs::histogram!(
                    "adoption_staleness_s",
                    "Simulated seconds between a device's request and its adoption",
                    &[0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0]
                )
                .observe_with_exemplar(staleness_s, trace);
            }
            // Close the request's lifecycle at the backend: the serve
            // service decomposes served staleness into its critical-path
            // phases here; the in-process pool's default is a no-op.
            self.backend.adopt(self.cohort, &snap, ctx.time_s);
            if let Some(cal) = &snap.calibration {
                let run = &cal.engine_run;
                self.pending_samples.push(CalibrationSample {
                    time_s: ctx.time_s,
                    sweeps: run.sweeps,
                    emd_solves: run.emd_solves,
                    cache_hits: run.cache_hits,
                    bound_pruned: run.bound_pruned,
                    wall_us: run.wall_us,
                    graph_action_nodes: cal.graph_action_nodes,
                    bellman_sweeps: cal.bellman_sweeps,
                    bellman_levels: cal.levels.len(),
                    warm_started: cal.warm_started,
                    staleness_s,
                });
            }
            self.snapshot = snap;
        }

        // Request a calibration only when the cohort's published one is
        // stale for *this* device's clock (or absent). Devices of a
        // cohort share one calibration, so once any device has driven a
        // solve, its cohort-mates find a fresh snapshot and stay
        // silent — this is what caps pool work at O(cohorts) solves per
        // interval instead of O(devices). The per-device cadence gate
        // on top stops a pending (unpublished) request from being
        // re-submitted every tick.
        let snapshot_stale = match self.snapshot.calibration {
            None => true,
            Some(_) => ctx.time_s - self.snapshot.requested_at_s >= self.every_s,
        };
        if snapshot_stale
            && self.profiler.observations() >= self.warmup_observations
            && ctx.time_s - self.last_request_s >= self.every_s
        {
            self.backend
                .submit(self.cohort, ctx.time_s, &self.profiler, self.compute_speed);
            self.last_request_s = ctx.time_s;
            if self.pending_since_s.is_none() {
                self.pending_since_s = Some(ctx.time_s);
            }
        }

        let calibration = self.snapshot.calibration.as_ref();
        let pred = if self.engine.features().prediction {
            predict_power_w(
                &self.profiler,
                calibration.map(|c| c.representative(ctx.state)),
                ctx,
            )
        } else {
            ctx.last_power_w
        };
        let q_pref = calibration.and_then(|c| c.q_preference(ctx.state));
        self.engine.choose(ctx, pred, q_pref)
    }

    fn overhead_us(&self) -> f64 {
        // Calibration runs off the tick path; the scheduler itself pays
        // (approximately) nothing. The pool's wall time is reported
        // through the calibration telemetry instead.
        0.0
    }

    fn recalibrations(&self) -> u64 {
        self.adoptions
    }

    fn drain_calibrations(&mut self) -> Vec<CalibrationSample> {
        std::mem::take(&mut self.pending_samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use capman_device::fsm::Action;
    use capman_device::states::DeviceState;

    fn ctx(state: DeviceState, time_s: f64) -> DecisionContext<'static> {
        DecisionContext {
            time_s,
            state,
            actions: &[],
            last_power_w: 0.8,
            big_soc: 0.9,
            little_soc: 0.9,
            big_head: 0.9,
            little_head: 0.9,
            big_usable: true,
            little_usable: true,
            dual: true,
            tec_on: false,
            hotspot_c: 35.0,
        }
    }

    fn warmed(policy: &mut PooledCapmanPolicy) {
        let awake = DeviceState::awake();
        let asleep = DeviceState::asleep();
        for i in 0..40 {
            let power = 1.0 + (i % 5) as f64 * 0.5;
            policy.observe(&Observation {
                time_s: i as f64,
                prev_state: asleep,
                action: Action::ScreenOn,
                new_state: awake,
                reward: 0.9,
                power_w: power,
            });
            policy.observe(&Observation {
                time_s: i as f64,
                prev_state: awake,
                action: Action::ScreenOff,
                new_state: asleep,
                reward: 0.9,
                power_w: 0.2,
            });
        }
    }

    #[test]
    fn ticks_do_not_block_and_eventually_adopt_a_snapshot() {
        let pool = Arc::new(CalibrationPool::spawn(
            &[CalibratorSpec::paper()],
            PoolConfig::default(),
        ));
        let mut policy =
            PooledCapmanPolicy::new(Arc::clone(&pool), 0, CalibratorSpec::paper(), 1.0);
        warmed(&mut policy);
        // First due tick submits; the decision itself returns instantly
        // from the placeholder snapshot.
        let _ = policy.decide(&ctx(DeviceState::awake(), 1200.0));
        assert_eq!(policy.recalibrations(), 0, "not yet adopted");
        pool.drain();
        // Next tick observes the published calibration.
        let _ = policy.decide(&ctx(DeviceState::awake(), 1203.0));
        assert_eq!(policy.recalibrations(), 1);
        let samples = policy.drain_calibrations();
        assert_eq!(samples.len(), 1);
        assert!(
            (samples[0].staleness_s - 3.0).abs() < 1e-9,
            "staleness measured from the device's request to first adoption"
        );
        assert_eq!(policy.overhead_us(), 0.0, "tick path pays no solve time");
    }

    #[test]
    fn two_devices_share_one_cohort_calibration() {
        let pool = Arc::new(CalibrationPool::spawn(
            &[CalibratorSpec::paper()],
            PoolConfig::default(),
        ));
        let mut a = PooledCapmanPolicy::new(Arc::clone(&pool), 0, CalibratorSpec::paper(), 1.0);
        let mut b = PooledCapmanPolicy::new(Arc::clone(&pool), 0, CalibratorSpec::paper(), 1.0);
        warmed(&mut a);
        warmed(&mut b);
        let _ = a.decide(&ctx(DeviceState::awake(), 1200.0));
        let _ = b.decide(&ctx(DeviceState::awake(), 1200.0));
        pool.drain();
        // Adopt inside the freshness window (every_s = 1.0) so neither
        // device issues a second request; the counters below then cover
        // the 1200.0 burst alone. Whether b's request was coalesced in
        // the queue (submitted == 2) or suppressed because a's solve
        // published first (submitted == 1) depends on worker timing,
        // but either way the burst must collapse to a single solve.
        let _ = a.decide(&ctx(DeviceState::awake(), 1200.5));
        let _ = b.decide(&ctx(DeviceState::awake(), 1200.5));
        let counters = pool.counters();
        assert_eq!(
            counters.completed, 1,
            "a same-cohort burst collapses to one solve (coalesced or suppressed)"
        );
        assert!(counters.submitted >= 1);
        assert_eq!(a.seen_seq(), b.seen_seq(), "both read the same snapshot");
    }
}
