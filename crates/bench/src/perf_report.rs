//! Machine-readable perf tracking: `BENCH_mdp.json`.
//!
//! The `bench_mdp` binary measures the solver and similarity hot paths
//! and serialises the numbers here, so the perf trajectory is diffable
//! across PRs (the vendored serde stand-in has no format backend, so
//! the JSON is emitted by hand — the schema is flat enough for that).

use std::fmt::Write as _;

/// One solver measurement row.
#[derive(Debug, Clone)]
pub struct SolverRow {
    /// State count of the fixture graph.
    pub states: usize,
    /// `(state, action)` pairs with outcomes.
    pub action_nodes: usize,
    /// Total transition edges.
    pub outcomes: usize,
    /// Bellman sweeps to convergence.
    pub iterations: usize,
    /// Pre-CSR baseline: nested-Vec Gauss–Seidel, milliseconds.
    pub nested_ms: f64,
    /// CSR solver, serial schedule, milliseconds.
    pub csr_serial_ms: f64,
    /// CSR solver, parallel schedule, milliseconds.
    pub csr_parallel_ms: f64,
}

impl SolverRow {
    /// Speedup of the serial CSR solver over the nested baseline.
    pub fn speedup_serial(&self) -> f64 {
        self.nested_ms / self.csr_serial_ms
    }

    /// Speedup of the parallel CSR solver over the nested baseline.
    pub fn speedup_parallel(&self) -> f64 {
        self.nested_ms / self.csr_parallel_ms
    }
}

/// One similarity-engine measurement row.
#[derive(Debug, Clone)]
pub struct SimilarityRow {
    /// State count of the fixture graph.
    pub states: usize,
    /// Reference recursion wall time, milliseconds.
    pub reference_ms: f64,
    /// Parallel memoized engine wall time, milliseconds.
    pub engine_ms: f64,
}

impl SimilarityRow {
    /// Speedup of the engine over the reference recursion.
    pub fn speedup(&self) -> f64 {
        self.reference_ms / self.engine_ms
    }
}

/// The full report the binary writes.
#[derive(Debug, Clone, Default)]
pub struct PerfReport {
    /// Worker threads available to the parallel paths.
    pub threads: usize,
    /// Solver rows, one per fixture size.
    pub solver: Vec<SolverRow>,
    /// Similarity rows, one per fixture size.
    pub similarity: Vec<SimilarityRow>,
}

fn push_f64(out: &mut String, key: &str, value: f64, trailing: bool) {
    let _ = write!(out, "      \"{key}\": {value:.4}");
    out.push_str(if trailing { ",\n" } else { "\n" });
}

impl PerfReport {
    /// Render the report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"generated_by\": \"cargo run --release -p capman-bench --bin bench_mdp\","
        );
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        out.push_str("  \"solver\": [\n");
        for (i, row) in self.solver.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"states\": {},", row.states);
            let _ = writeln!(out, "      \"action_nodes\": {},", row.action_nodes);
            let _ = writeln!(out, "      \"outcomes\": {},", row.outcomes);
            let _ = writeln!(out, "      \"iterations\": {},", row.iterations);
            push_f64(&mut out, "nested_gauss_seidel_ms", row.nested_ms, true);
            push_f64(&mut out, "csr_serial_ms", row.csr_serial_ms, true);
            push_f64(&mut out, "csr_parallel_ms", row.csr_parallel_ms, true);
            push_f64(&mut out, "speedup_serial", row.speedup_serial(), true);
            push_f64(&mut out, "speedup_parallel", row.speedup_parallel(), false);
            out.push_str(if i + 1 < self.solver.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"similarity\": [\n");
        for (i, row) in self.similarity.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"states\": {},", row.states);
            push_f64(&mut out, "reference_ms", row.reference_ms, true);
            push_f64(&mut out, "engine_ms", row.engine_ms, true);
            push_f64(&mut out, "speedup", row.speedup(), false);
            out.push_str(if i + 1 < self.similarity.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_the_expected_shape() {
        let report = PerfReport {
            threads: 1,
            solver: vec![SolverRow {
                states: 512,
                action_nodes: 1700,
                outcomes: 5100,
                iterations: 40,
                nested_ms: 9.0,
                csr_serial_ms: 3.0,
                csr_parallel_ms: 3.0,
            }],
            similarity: vec![SimilarityRow {
                states: 256,
                reference_ms: 100.0,
                engine_ms: 10.0,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"states\": 512"));
        assert!(json.contains("\"speedup_serial\": 3.0000"));
        assert!(json.contains("\"speedup\": 10.0000"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
