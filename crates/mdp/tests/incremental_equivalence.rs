//! Property tests pinning the incremental-recalibration contract at the
//! MDP layer: across randomized drift sequences, patching dirty rows in
//! place ([`Mdp::patch_rows`]) is *bitwise* identical to rebuilding the
//! whole model from the drifted transition table, and the similarity
//! engine's targeted EMD-memo invalidation never changes what it
//! computes — a post-invalidation warm engine matches a cold engine
//! bit for bit on the mutated graph.

use capman_mdp::engine::{ExecutionMode, SimilarityEngine};
use capman_mdp::graph::MdpGraph;
use capman_mdp::mdp::{Mdp, MdpBuilder, Outcome, RowPatch};
use capman_mdp::similarity::SimilarityParams;
use proptest::prelude::*;

/// Deterministic 64-bit mixer for deriving per-step randomness.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// The profiler-side ground truth: raw-weight outcome lists per
/// `(state, action)` row, in insertion order. `None` = row unseen.
type Table = Vec<Vec<Option<Vec<Outcome>>>>;

fn random_table(n_states: usize, n_actions: usize, seed: u64) -> Table {
    let mut rng = seed;
    let mut table: Table = vec![vec![None; n_actions]; n_states];
    for (s, row) in table.iter_mut().enumerate() {
        for outs in row.iter_mut() {
            // ~60% of rows populated with 1..=4 outcomes.
            if unit(&mut rng) < 0.6 {
                let k = 1 + (splitmix(&mut rng) as usize) % 4;
                let mut list = Vec::with_capacity(k);
                for _ in 0..k {
                    let next = (splitmix(&mut rng) as usize) % n_states;
                    if list.iter().any(|o: &Outcome| o.next == next) {
                        continue;
                    }
                    list.push(Outcome {
                        next,
                        prob: 0.5 + 4.0 * unit(&mut rng),
                        reward: unit(&mut rng),
                    });
                }
                if list.is_empty() {
                    list.push(Outcome {
                        next: s,
                        prob: 1.0,
                        reward: unit(&mut rng),
                    });
                }
                *outs = Some(list);
            }
        }
    }
    // Every state needs at least one action somewhere for a non-trivial
    // model; give state s a self-loop on action 0 when fully empty.
    for (s, row) in table.iter_mut().enumerate() {
        if row.iter().all(|o| o.is_none()) {
            row[0] = Some(vec![Outcome {
                next: s,
                prob: 1.0,
                reward: 0.5,
            }]);
        }
    }
    table
}

fn build_from(table: &Table, n_states: usize, n_actions: usize) -> Mdp {
    let mut b = MdpBuilder::new(n_states, n_actions);
    for (s, row) in table.iter().enumerate() {
        for (a, outs) in row.iter().enumerate() {
            if let Some(outs) = outs {
                for o in outs {
                    b.transition(s, a, o.next, o.prob, o.reward);
                }
            }
        }
    }
    b.build()
}

/// Mutate one row of the table in a seed-chosen way and return the
/// matching patch. Covers every splice class: same-shape jitter, a
/// widened row, a shrunk row, row deletion and row creation.
fn drift_row(table: &mut Table, n_states: usize, rng: &mut u64) -> RowPatch {
    let n_actions = table[0].len();
    let s = (splitmix(rng) as usize) % n_states;
    let a = (splitmix(rng) as usize) % n_actions;
    let kind = splitmix(rng) % 4;
    let slot = &mut table[s][a];
    match (kind, slot.as_mut()) {
        // Same-shape drift: jitter every weight and reward.
        (0, Some(outs)) => {
            for o in outs.iter_mut() {
                o.prob = (o.prob * (0.8 + 0.4 * unit(rng))).max(1e-3);
                o.reward = (o.reward + 0.1 * (unit(rng) - 0.5)).clamp(0.0, 1.0);
            }
        }
        // Widen: append a successor not yet in the row.
        (1, Some(outs)) => {
            let start = (splitmix(rng) as usize) % n_states;
            if let Some(next) = (0..n_states)
                .map(|i| (start + i) % n_states)
                .find(|c| outs.iter().all(|o| o.next != *c))
            {
                outs.push(Outcome {
                    next,
                    prob: 0.5 + unit(rng),
                    reward: unit(rng),
                });
            }
        }
        // Shrink: drop one successor, deleting the row when it empties.
        (2, Some(outs)) => {
            let at = (splitmix(rng) as usize) % outs.len();
            outs.remove(at);
            if outs.is_empty() {
                *slot = None;
            }
        }
        // Create (or overwrite) the row from scratch.
        _ => {
            let k = 1 + (splitmix(rng) as usize) % 3;
            let mut list: Vec<Outcome> = Vec::with_capacity(k);
            for _ in 0..k {
                let next = (splitmix(rng) as usize) % n_states;
                if list.iter().any(|o| o.next == next) {
                    continue;
                }
                list.push(Outcome {
                    next,
                    prob: 0.5 + unit(rng),
                    reward: unit(rng),
                });
            }
            if list.is_empty() {
                list.push(Outcome {
                    next: s,
                    prob: 1.0,
                    reward: 0.5,
                });
            }
            *slot = Some(list);
        }
    }
    RowPatch {
        state: s,
        action: a,
        outcomes: slot.clone().unwrap_or_default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline contract: a cached MDP patched forward through a
    /// randomized drift sequence stays bitwise equal to a full rebuild
    /// from the drifted table, at every step.
    #[test]
    fn patched_mdp_is_bitwise_the_full_rebuild(
        n_states in 2usize..24,
        n_actions in 1usize..5,
        seed in any::<u64>(),
        steps in 1usize..6,
        rows_per_step in 1usize..5,
    ) {
        let mut rng = seed;
        let mut table = random_table(n_states, n_actions, splitmix(&mut rng));
        let mut cached = build_from(&table, n_states, n_actions);
        for _ in 0..steps {
            let mut patches: Vec<RowPatch> = Vec::new();
            for _ in 0..rows_per_step {
                let patch = drift_row(&mut table, n_states, &mut rng);
                // patch_rows rejects duplicate rows; keep the last write.
                patches.retain(|p| (p.state, p.action) != (patch.state, patch.action));
                patches.push(patch);
            }
            cached.patch_rows(&patches);
            prop_assert_eq!(&cached, &build_from(&table, n_states, n_actions));
        }
    }

    /// Targeted EMD-memo invalidation is invisible to results: after the
    /// model drifts, a warm engine whose dirty entries were evicted
    /// computes bitwise the same similarity as a cold engine on the
    /// mutated graph.
    #[test]
    fn invalidated_engine_matches_a_cold_engine_bitwise(
        n_states in 2usize..12,
        n_actions in 1usize..4,
        seed in any::<u64>(),
        rows in 1usize..4,
        rho in 0.1f64..0.9,
    ) {
        let mut rng = seed;
        let mut table = random_table(n_states, n_actions, splitmix(&mut rng));
        let mdp = build_from(&table, n_states, n_actions);
        let params = SimilarityParams::paper(rho);

        let mut warm = SimilarityEngine::with_options(ExecutionMode::Serial, true, false);
        let _ = warm.compute(&MdpGraph::filtered(&mdp, |_, _| true), &params);

        // Drift a few rows and collect every state a dirty row touches
        // (owners plus old and new successors).
        let mut dirty: Vec<usize> = Vec::new();
        for _ in 0..rows {
            let before = table.clone();
            let patch = drift_row(&mut table, n_states, &mut rng);
            dirty.push(patch.state);
            dirty.extend(patch.outcomes.iter().map(|o| o.next));
            if let Some(outs) = &before[patch.state][patch.action] {
                dirty.extend(outs.iter().map(|o| o.next));
            }
        }
        let drifted = build_from(&table, n_states, n_actions);
        let graph = MdpGraph::filtered(&drifted, |_, _| true);

        warm.invalidate_states(&dirty);
        let after = warm.compute(&graph, &params);
        let cold = SimilarityEngine::with_options(ExecutionMode::Serial, true, false)
            .compute(&graph, &params);
        prop_assert_eq!(&after.sigma_s, &cold.sigma_s);
        prop_assert_eq!(&after.sigma_a, &cold.sigma_a);
        prop_assert_eq!(after.iterations, cold.iterations);
    }
}
