//! The CAPMAN framework — cooling and active power management for
//! big.LITTLE battery packs (Section III of the paper).
//!
//! This crate ties the substrates together into the full system:
//!
//! * [`config`] — simulation configuration (one discharge cycle).
//! * [`sim`] — the discrete-time simulation engine coupling the workload
//!   trace, device power-state machine, battery pack, thermal network and
//!   TEC.
//! * [`profiler`] — the online profile-and-monitor layer that turns
//!   observed `(state, action, state, reward)` tuples into the MDP of
//!   Fig. 8.
//! * [`policy`] — the scheduling interface and decision context.
//! * [`baselines`] — the *Practice*, *Dual* and *Heuristic* baselines.
//! * [`oracle`] — the clairvoyant offline *Oracle* baseline.
//! * [`capman`] — the CAPMAN scheduler: MDP profiling, structural-
//!   similarity runtime calibration, demand prediction, and balanced
//!   big.LITTLE depletion.
//! * [`online`] — the background runtime-calibration scheduler with the
//!   overhead accounting of Fig. 16.
//! * [`scenario`] — the concurrent scenario runner fanning independent
//!   discharge-cycle simulations across cores.
//! * [`actuator`] — converts decisions into switch-facility signals.
//! * [`telemetry`] — time-series sampling (Figs. 13 and 15).
//! * [`metrics`] — the per-cycle [`metrics::Outcome`] and comparison
//!   helpers.
//! * [`experiments`] — the harness regenerating every evaluation figure.
//!
//! # Example
//!
//! ```
//! use capman_core::experiments::{run_policy, PolicyKind};
//! use capman_device::phone::PhoneProfile;
//! use capman_workload::WorkloadKind;
//!
//! let outcome = run_policy(
//!     PolicyKind::Practice,
//!     WorkloadKind::Video,
//!     PhoneProfile::nexus(),
//!     42,
//! );
//! assert!(outcome.service_time_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actuator;
pub mod baselines;
pub mod capman;
pub mod competitiveness;
pub mod config;
pub mod experiments;
pub mod metrics;
pub mod online;
pub mod oracle;
pub mod policy;
pub mod profiler;
pub mod report;
pub mod scenario;
pub mod sim;
pub mod telemetry;

pub use config::SimConfig;
pub use experiments::PolicyKind;
pub use metrics::Outcome;
pub use online::{Calibration, Calibrator, CalibratorSpec};
pub use oracle::select_calibrator;
pub use scenario::{Scenario, ScenarioRunner};
pub use sim::Simulator;
