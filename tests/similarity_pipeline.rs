//! Integration of the MDP pipeline: profile a real simulated cycle into
//! an MDP, run Algorithm 1, and verify the competitiveness bound holds on
//! the *profiled* system (not just synthetic MDPs).

use capman::core::capman::CapmanPolicy;
use capman::core::online::Calibrator;
use capman::core::policy::{Observation, Policy};
use capman::device::fsm::Action;
use capman::device::phone::PhoneProfile;
use capman::device::states::DeviceState;
use capman::mdp::graph::MdpGraph;
use capman::mdp::similarity::{structural_similarity, SimilarityParams};
use capman::mdp::value_iteration::solve;
use capman::workload::{generate, WorkloadKind};

/// Replay a trace through the device FSM and profile it.
fn profiled_policy(workload: WorkloadKind, seconds: f64) -> CapmanPolicy {
    let mut policy = CapmanPolicy::new(1.0);
    let trace = generate(workload, seconds, 17);
    let model = PhoneProfile::nexus().power_model();
    let mut state = DeviceState::asleep();
    let mut t = 0.0;
    while t < seconds {
        let prev = state;
        let mut first = None;
        for seg in trace.segments_starting_in(t, t + 1.0) {
            for &a in &seg.actions {
                state = state.apply(a);
                first.get_or_insert(a);
            }
        }
        let demand = trace.at(t).demand;
        let power = model.device_power_mw(&state, &demand) / 1000.0;
        // Use a smooth pseudo-efficiency as the reward signal.
        let reward = (1.0 / (1.0 + power / 10.0)).clamp(0.0, 1.0);
        policy.observe(&Observation {
            time_s: t,
            prev_state: prev,
            action: first.unwrap_or(Action::TimerTick),
            new_state: state,
            reward,
            power_w: power,
        });
        // Emulate the actuator's switch decisions so the pruned graph of
        // Algorithm 1 has battery-switch action nodes (in the full
        // simulator these come from the actuator itself).
        if (t as u64) % 20 == 10 {
            use capman::battery::chemistry::Class;
            let (action, target) = if state.battery == Class::Big {
                (Action::SwitchToLittle, Class::Little)
            } else {
                (Action::SwitchToBig, Class::Big)
            };
            let next = state.apply(action);
            policy.observe(&Observation {
                time_s: t,
                prev_state: state,
                action,
                new_state: next,
                reward,
                power_w: power,
            });
            state = next.with_battery(target);
        }
        t += 1.0;
    }
    policy
}

#[test]
fn profiled_mdp_respects_the_competitiveness_bound() {
    let policy = profiled_policy(WorkloadKind::Pcmark, 1200.0);
    let mdp = policy.profiler().to_mdp();
    let rho = 0.5;
    let sol = solve(&mdp, rho, 1e-10);
    let graph = MdpGraph::from_mdp(&mdp);
    let sim = structural_similarity(&graph, &SimilarityParams::paper(rho));
    assert!(sim.converged);
    for &u in policy.profiler().visited_states() {
        for &v in policy.profiler().visited_states() {
            let gap = (sol.values[u] - sol.values[v]).abs();
            let bound = sim.value_bound(u, v, rho);
            assert!(
                gap <= bound + 1e-6,
                "|V[{u}] - V[{v}]| = {gap} exceeds bound {bound}"
            );
        }
    }
}

#[test]
fn profiler_sees_a_compact_live_state_space() {
    // The paper: "our finite MDP has 50 state nodes" — the live state
    // space of a real workload is a small fraction of the 96-state
    // product.
    let policy = profiled_policy(WorkloadKind::Pcmark, 1800.0);
    let visited = policy.profiler().visited_states().len();
    assert!(
        (3..=60).contains(&visited),
        "expected a compact live space, got {visited}"
    );
}

#[test]
fn calibration_compresses_states_without_large_value_loss() {
    let policy = profiled_policy(WorkloadKind::EtaStatic { eta: 50 }, 1500.0);
    let mut cal = Calibrator::new(0.3, 0.15, 1.0);
    cal.recalibrate(0.0, policy.profiler(), 1.0);
    let calibration = cal.calibration().expect("calibrated");
    let n_clusters = calibration.abstraction.n_clusters();
    assert!(n_clusters < capman::device::states::STATE_COUNT);
    // The promised worst-case loss.
    assert!(calibration.abstraction.value_loss_bound(0.3) <= 0.15 / 0.7 + 1e-12);
    // Every representative's cached value is close to its members'.
    let mdp = policy.profiler().to_mdp();
    let sol = solve(&mdp, 0.3, 1e-10);
    for &u in policy.profiler().visited_states() {
        let rep = calibration.abstraction.representative(u);
        let gap = (sol.values[u] - sol.values[rep]).abs();
        assert!(
            gap <= calibration.abstraction.value_loss_bound(0.3) + 1e-6,
            "state {u} vs rep {rep}: {gap}"
        );
    }
}

#[test]
fn overhead_grows_toward_rho_one() {
    // The Fig. 16 shape on the real profiled MDP.
    let policy = profiled_policy(WorkloadKind::Pcmark, 900.0);
    let iterations = |rho: f64| {
        let mut cal = Calibrator::new(rho, 0.1, 1.0);
        cal.recalibrate(0.0, policy.profiler(), 1.0);
        cal.calibration().expect("calibrated").similarity_iterations
    };
    let lo = iterations(0.05);
    let hi = iterations(0.95);
    assert!(
        hi > lo,
        "similarity iterations must grow with rho: {lo} -> {hi}"
    );
}
