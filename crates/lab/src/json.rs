//! A minimal, dependency-free JSON value model, parser and emitter.
//!
//! The vendored serde stand-in has no format backend, so the experiment
//! harness owns the little JSON it needs: `tasks.jsonl` rows, per-trial
//! `result.json` files, and the `BENCH_*.json` reports the statistical
//! perf gate reads. The parser is a strict recursive-descent scanner
//! over the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null) that rejects malformed input with a
//! position-annotated error — the property the gate relies on to tell
//! "corrupt report" apart from "no report".
//!
//! Object member order is preserved ([`Json::Obj`] is an ordered list),
//! so emit → parse → emit round-trips byte-for-byte for the documents
//! this crate writes.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value truncated to `u64`, if this is a non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Convenience: `self.get(key)` as an `f64`.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// Convenience: `self.get(key)` as a string slice.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Convenience: `self.get(key)` as a vector of numbers (`None` if
    /// the key is missing, not an array, or any element is non-numeric).
    pub fn num_array(&self, key: &str) -> Option<Vec<f64>> {
        self.get(key)?.as_arr()?.iter().map(Json::as_f64).collect()
    }

    /// Render compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                        if indent.is_none() {
                            // compact arrays still separate items
                        }
                    }
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Shortest round-trip rendering of a finite number; non-finite values
/// (illegal in JSON) render as `null`, mirroring the telemetry rule
/// that degenerate measurements read as absent rather than poisoning a
/// document.
fn write_number(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document. Trailing content after the top-level value
/// (other than whitespace) is an error, as is any grammar violation —
/// the error carries the byte offset for diagnostics.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        src,
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.src[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let before = p.pos;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > before
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        self.src[start..self.pos]
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("unparseable number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-walk as UTF-8: pick up the full scalar value.
                    let rest = &self.src[self.pos - 1..];
                    let ch = rest.chars().next().ok_or_else(|| self.err("bad UTF-8"))?;
                    self.pos = self.pos - 1 + ch.len_utf8();
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Builder shorthand for object construction in emitters.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_result_schema() {
        let doc = r#"{"outcome": "success", "objective": {"name": "accuracy", "value": 0.95},
                      "metrics": {"latency_ms": 1200, "tokens": 450}}"#;
        let v = parse(doc).expect("valid");
        assert_eq!(v.str("outcome"), Some("success"));
        assert_eq!(v.get("objective").unwrap().num("value"), Some(0.95));
        assert_eq!(v.get("metrics").unwrap().num("tokens"), Some(450.0));
    }

    #[test]
    fn round_trips_nested_documents() {
        let doc = obj(vec![
            ("name", Json::Str("fig12".into())),
            (
                "samples",
                Json::Arr(vec![Json::Num(1.5), Json::Num(-2.0), Json::Num(3e-4)]),
            ),
            (
                "nested",
                obj(vec![("ok", Json::Bool(true)), ("n", Json::Null)]),
            ),
        ]);
        for rendered in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(parse(&rendered).expect("round trip"), doc);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}f".into());
        assert_eq!(parse(&s.to_compact()).expect("escapes"), s);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\": }",
            "{\"a\": 1,}",
            "nul",
            "1.2.3",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "{'single': 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_truncated_reports() {
        // The exact failure mode the perf gate must catch: a report cut
        // off mid-write looks like JSON until it suddenly is not.
        let full = "{\"solver\": [{\"states\": 128, \"csr_serial_ms\": 0.15}]}";
        assert!(parse(full).is_ok());
        for cut in 1..full.len() {
            assert!(parse(&full[..cut]).is_err(), "accepted prefix {cut}");
        }
    }

    #[test]
    fn num_array_extracts_samples() {
        let v = parse("{\"samples\": [1, 2.5, 3]}").unwrap();
        assert_eq!(v.num_array("samples"), Some(vec![1.0, 2.5, 3.0]));
        let mixed = parse("{\"samples\": [1, \"x\"]}").unwrap();
        assert_eq!(mixed.num_array("samples"), None);
    }

    #[test]
    fn parses_every_committed_bench_report_shape() {
        // The gate reads these files; the parser must accept the shapes
        // our own emitters produce (hand-written JSON in perf_report).
        let report = "{\n  \"threads\": 4,\n  \"solver\": [\n    {\n      \"states\": 128,\n      \"csr_serial_ms\": 0.1529\n    }\n  ]\n}\n";
        let v = parse(report).expect("report shape");
        assert_eq!(v.num("threads"), Some(4.0));
        let rows = v.get("solver").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].num("states"), Some(128.0));
    }
}
