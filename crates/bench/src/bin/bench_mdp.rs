//! Measure the MDP hot paths and write `BENCH_mdp.json`.
//!
//! ```text
//! cargo run --release -p capman-bench --bin bench_mdp             # full sizes
//! cargo run --release -p capman-bench --bin bench_mdp -- --quick  # CI smoke
//! cargo run --release -p capman-bench --bin bench_mdp -- --out p  # custom path
//! cargo run --release -p capman-bench --bin bench_mdp -- --require-parallel-win
//! ```
//!
//! Per fixture size the binary times the pre-CSR nested-Vec
//! Gauss–Seidel solver against the CSR solver (serial and parallel
//! schedules), checks the solutions agree, and times the similarity
//! engine against its reference recursion. Results land in
//! `BENCH_mdp.json` (see [`capman_bench::perf_report`]) so the perf
//! trajectory is tracked across PRs.

use std::time::Instant;

use capman_bench::mdp_fixtures::{build_csr, build_nested, device_like_transitions};
use capman_bench::perf_report::{PerfReport, SimilarityRow, SolverRow};
use capman_bench::trials::{self, SampleGroup};
use capman_mdp::engine::SimilarityEngine;
use capman_mdp::graph::MdpGraph;
use capman_mdp::mdp::MdpBuilder;
use capman_mdp::reference::solve_nested;
use capman_mdp::similarity::{structural_similarity, SimilarityParams};
use capman_mdp::value_iteration::solve_with_mode;
use capman_mdp::ExecutionMode;

const RHO: f64 = 0.95;
const EPS: f64 = 1e-9;
const SEED: u64 = 42;

/// Sizes below the solver's parallel-dispatch floor run the serial
/// kernel either way, so `--require-parallel-win` skips them. Mirrors
/// `PAR_MIN_STATES` in `capman_mdp::value_iteration`.
const PARALLEL_FLOOR: usize = 256;

/// Wall time of one call to `f`, milliseconds.
fn time_once_ms<T>(mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    let out = f();
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(out);
    ms
}

fn solver_row(n_states: usize, reps: usize) -> SolverRow {
    let txs = device_like_transitions(n_states, SEED);
    let nested = build_nested(n_states, &txs);
    let csr = build_csr(n_states, &txs);

    let baseline = solve_nested(&nested, RHO, EPS);
    let serial = solve_with_mode(&csr, RHO, EPS, ExecutionMode::Serial);
    let parallel = solve_with_mode(&csr, RHO, EPS, ExecutionMode::Parallel);
    assert_eq!(
        serial.iterations, baseline.iterations,
        "layouts must sweep identically on the forward fixture"
    );
    for (s, (a, b)) in serial.values.iter().zip(&baseline.values).enumerate() {
        assert!(
            (a - b).abs() < 1e-9,
            "state {s}: CSR {a} vs nested {b} diverged"
        );
    }
    for (a, b) in serial.values.iter().zip(&parallel.values) {
        assert_eq!(a.to_bits(), b.to_bits(), "schedules must be bit-identical");
    }

    // Interleave the timed reps (one round = one rep of each layout)
    // so a load spike on a shared machine hits all three equally
    // instead of skewing whichever happened to run during it. The
    // headline stays the min; the serial-CSR rep distribution rides
    // along for the statistical gate.
    let mut nested_ms = f64::INFINITY;
    let mut csr_serial_ms_samples = Vec::with_capacity(reps);
    let mut csr_parallel_ms = f64::INFINITY;
    for _ in 0..reps {
        nested_ms = nested_ms.min(time_once_ms(|| solve_nested(&nested, RHO, EPS)));
        csr_serial_ms_samples.push(time_once_ms(|| {
            solve_with_mode(&csr, RHO, EPS, ExecutionMode::Serial)
        }));
        csr_parallel_ms = csr_parallel_ms.min(time_once_ms(|| {
            solve_with_mode(&csr, RHO, EPS, ExecutionMode::Parallel)
        }));
    }
    let csr_serial_ms = csr_serial_ms_samples
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);

    SolverRow {
        states: n_states,
        action_nodes: csr.n_action_nodes(),
        outcomes: csr.n_outcomes(),
        iterations: serial.iterations,
        nested_ms,
        csr_serial_ms,
        csr_parallel_ms,
        csr_serial_ms_samples,
    }
}

/// The similarity fixture mirrors the `similarity_engine` bench: two
/// actions, successor distributions drawn from a shared template pool.
fn similarity_graph(n_states: usize) -> MdpGraph {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    let n_templates = (n_states / 8).max(6);
    let templates: Vec<Vec<(usize, f64)>> = (0..n_templates)
        .map(|_| {
            let n_succ = rng.gen_range(1..=3usize);
            (0..n_succ)
                .map(|_| (rng.gen_range(0..n_states), rng.gen_range(0.1..1.0)))
                .collect()
        })
        .collect();
    let rewards: Vec<f64> = (0..n_templates).map(|_| rng.gen_range(0.0..1.0)).collect();
    let mut b = MdpBuilder::new(n_states, 2);
    for s in 0..n_states - 1 {
        for a in 0..2 {
            let t = rng.gen_range(0..n_templates);
            for &(to, w) in &templates[t] {
                b.transition(s, a, to, w, rewards[t]);
            }
        }
    }
    MdpGraph::from_mdp(&b.build())
}

fn similarity_row(n_states: usize, reps: usize) -> SimilarityRow {
    let graph = similarity_graph(n_states);
    let mut params = SimilarityParams::paper(0.3);
    params.tolerance = 1e-3;
    params.max_iterations = 50;

    let t0 = Instant::now();
    let reference = structural_similarity(&graph, &params);
    let reference_ms = t0.elapsed().as_secs_f64() * 1e3;

    // A fresh engine per rep: repeated computes on one engine would
    // time its memoization, not the solve the gate defends.
    let mut engine_ms_samples = Vec::with_capacity(reps);
    for rep in 0..reps {
        let mut engine = SimilarityEngine::parallel();
        let t0 = Instant::now();
        let fast = engine.compute(&graph, &params);
        engine_ms_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        if rep == 0 {
            assert!(
                reference.sigma_s.max_abs_diff(&fast.sigma_s) < 1e-9,
                "engine drifted from the reference"
            );
        }
    }
    let engine_ms = engine_ms_samples
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);

    SimilarityRow {
        states: n_states,
        reference_ms,
        engine_ms,
        engine_ms_samples,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let require_parallel_win = args.iter().any(|a| a == "--require-parallel-win");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_mdp.json")
        .to_string();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let trace_out = flag("--trace-out");
    let metrics_out = flag("--metrics-out");
    let trials_out = flag("--trials");

    let (solver_sizes, sim_sizes, reps): (&[usize], &[usize], usize) = if quick {
        (&[64, 128], &[32], 2)
    } else {
        (&[128, 512, 1024], &[128, 256], 5)
    };

    let mut report = PerfReport {
        threads: rayon::current_num_threads(),
        ..PerfReport::default()
    };

    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "states", "nested_ms", "csr_ser_ms", "csr_par_ms", "ser_x", "par_x"
    );
    for &n in solver_sizes {
        let row = solver_row(n, reps);
        println!(
            "{:>7} {:>12.3} {:>12.3} {:>12.3} {:>8.1}x {:>8.1}x",
            row.states,
            row.nested_ms,
            row.csr_serial_ms,
            row.csr_parallel_ms,
            row.speedup_serial(),
            row.speedup_parallel()
        );
        // Multi-core CI asks for proof that the rayon fan-out pays off:
        // at parallel-eligible sizes the chunked sweep must beat the
        // serial one outright.
        if require_parallel_win && row.states >= PARALLEL_FLOOR {
            assert!(
                rayon::current_num_threads() > 1,
                "--require-parallel-win needs a multi-core runner \
                 (rayon sees 1 thread)"
            );
            assert!(
                row.csr_parallel_ms < row.csr_serial_ms,
                "parallel sweep must win at {} states ({:.3} ms vs {:.3} ms serial)",
                row.states,
                row.csr_parallel_ms,
                row.csr_serial_ms
            );
        }
        report.solver.push(row);
    }

    println!(
        "\n{:>7} {:>13} {:>12} {:>9}",
        "states", "reference_ms", "engine_ms", "speedup"
    );
    for &n in sim_sizes {
        let row = similarity_row(n, reps);
        println!(
            "{:>7} {:>13.1} {:>12.1} {:>8.1}x",
            row.states,
            row.reference_ms,
            row.engine_ms,
            row.speedup()
        );
        report.similarity.push(row);
    }

    std::fs::write(&out_path, report.to_json()).expect("write BENCH_mdp.json");
    println!("\nwrote {out_path}");

    // Re-emit the rep distributions as lab trials + analysis table.
    if let Some(dir) = trials_out.as_deref() {
        let mut groups = Vec::new();
        for row in &report.solver {
            groups.push(SampleGroup::new(
                &format!("states-{}", row.states),
                "csr_serial",
                "csr_serial_ms",
                &row.csr_serial_ms_samples,
            ));
        }
        for row in &report.similarity {
            groups.push(SampleGroup::new(
                &format!("states-{}", row.states),
                "engine",
                "engine_ms",
                &row.engine_ms_samples,
            ));
        }
        trials::emit(std::path::Path::new(dir), "bench_mdp", &groups)
            .unwrap_or_else(|e| panic!("emit trials to {dir}: {e}"));
        println!("wrote {dir} ({} sample groups)", groups.len());
    }

    // Observability exports (meaningful with --features obs; empty
    // otherwise).
    if let Some(path) = trace_out.as_deref() {
        let drain = capman_obs::drain();
        std::fs::write(path, capman_obs::export::chrome_trace(&drain))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path} ({} spans)", drain.records.len());
    }
    if let Some(path) = metrics_out.as_deref() {
        std::fs::write(
            path,
            capman_obs::export::metrics_json(&capman_obs::snapshot()),
        )
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
