//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API this workspace uses:
//! range/tuple/`Just`/`prop_oneof!`/collection strategies, `prop_map` /
//! `prop_filter_map` combinators, the `proptest!` test macro, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-case RNG, so failures are reproducible; there is no shrinking —
//! a failing case panics with the ordinary assertion message.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Mirror of proptest's `prop` re-export namespace.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface used by the test files.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Uniform choice between heterogeneous strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests.
///
/// Accepts the standard shape: an optional inner
/// `#![proptest_config(...)]`, then test functions whose arguments are
/// `pattern in strategy` pairs or plain `name: Type` arguments (the
/// latter draw from [`arbitrary::any`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:tt; $(
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {$(
        $crate::__proptest_case! {
            cfg = $cfg,
            meta = ($(#[$meta])*),
            name = $name,
            body = { $body },
            pats = (),
            strats = (),
            args = ($($args)*)
        }
    )*};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All arguments consumed: emit the test function.
    (cfg = ($cfg:expr), meta = ($($meta:tt)*), name = $name:ident, body = { $body:block },
     pats = ($($p:tt)*), strats = ($($s:tt)*), args = ()) => {
        $($meta)*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategies = ($($s,)*);
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::new_case_rng(case);
                let ($($p,)*) =
                    $crate::strategy::Strategy::new_value(&strategies, &mut rng);
                $body
            }
        }
    };
    // `pattern in strategy` argument.
    (cfg = $cfg:tt, meta = $meta:tt, name = $name:ident, body = $body:tt,
     pats = ($($p:tt)*), strats = ($($s:tt)*),
     args = ($pat:pat in $strat:expr $(, $($rest:tt)*)?)) => {
        $crate::__proptest_case! {
            cfg = $cfg, meta = $meta, name = $name, body = $body,
            pats = ($($p)* ($pat)),
            strats = ($($s)* ($strat)),
            args = ($($($rest)*)?)
        }
    };
    // `name: Type` argument (drawn from `any::<Type>()`).
    (cfg = $cfg:tt, meta = $meta:tt, name = $name:ident, body = $body:tt,
     pats = ($($p:tt)*), strats = ($($s:tt)*),
     args = ($arg:ident : $ty:ty $(, $($rest:tt)*)?)) => {
        $crate::__proptest_case! {
            cfg = $cfg, meta = $meta, name = $name, body = $body,
            pats = ($($p)* ($arg)),
            strats = ($($s)* ($crate::arbitrary::any::<$ty>())),
            args = ($($($rest)*)?)
        }
    };
}
