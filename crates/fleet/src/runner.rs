//! The sharded fleet runner.
//!
//! [`FleetRunner`] carries every device of a [`Fleet`] through its full
//! discharge cycle, dealing devices across cores in cache-sized batches
//! (shards). Each shard worker writes its [`DeviceSummary`] results
//! into disjoint output slots, so the summary vector follows fleet
//! order — device `i`'s summary is at index `i` whatever the schedule —
//! and with inline (synchronous) calibration the parallel run is
//! bit-identical to a serial pass over the same fleet.
//!
//! With [`CalibrationMode::Pool`], CAPMAN cohorts delegate calibration
//! to a shared [`CalibrationPool`]: ticks never block on a solve, one
//! background calibration serves a whole cohort, and the per-device
//! staleness this introduces is measured and folded into the fleet
//! aggregate's percentile sketches.

use std::sync::Arc;
use std::time::Instant;

use capman_core::experiments::build_pack;
use capman_core::policy::Policy;
use capman_core::sim::DeviceSim;
use capman_core::telemetry::{LeanTelemetry, ShardThroughput};
use rayon::prelude::*;

use crate::dispatch::FleetPolicy;
use crate::pool::{CalibrationBackend, CalibrationPool, PoolConfig, PoolCounters};
use crate::profile::{DeviceSpec, Fleet};
use crate::sketch::QuantileSketch;

/// How CAPMAN cohorts calibrate during a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationMode {
    /// Each device owns a calibrator and pays the solve inline on the
    /// tick that triggers it (the single-device seed behaviour).
    Inline,
    /// Devices submit to a shared background pool and read published
    /// snapshots; ticks never block (see [`crate::pool`]).
    Pool,
}

/// Fleet-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Calibration execution mode.
    pub mode: CalibrationMode,
    /// Devices per shard (rayon work unit). Sized so one shard's hot
    /// state stays cache-resident; 64 is a good default.
    pub batch: usize,
    /// Pool sizing (ignored in [`CalibrationMode::Inline`]).
    pub pool: PoolConfig,
    /// Deal shards across cores (`false`: the same shards run one
    /// after another on the calling thread, the determinism reference).
    pub parallel: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            mode: CalibrationMode::Inline,
            batch: 64,
            pool: PoolConfig::default(),
            parallel: true,
        }
    }
}

/// Per-device result, reduced from the full [`Outcome`] to what fleet
/// reports need. `PartialEq` compares exactly (f64 bit semantics via
/// `==`), which is what the sharded-vs-serial determinism contract is
/// stated in terms of.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSummary {
    /// Fleet-unique device id.
    pub device_id: u64,
    /// Cohort index.
    pub cohort: usize,
    /// Seconds until the discharge cycle ended.
    pub service_time_s: f64,
    /// Work served, utilisation-seconds.
    pub work_served: f64,
    /// Energy delivered to the load, joules.
    pub energy_delivered_j: f64,
    /// Peak hot-spot temperature, degC.
    pub max_hotspot_c: f64,
    /// Battery switches performed.
    pub switches: u64,
    /// Scheduling ticks executed (telemetry samples).
    pub ticks: u64,
    /// Calibrations this device adopted (pool) or ran (inline).
    pub recalibrations: u64,
    /// Largest calibration staleness observed, simulated seconds.
    pub max_staleness_s: f64,
}

/// Fleet-level aggregation: streaming percentile sketches over the
/// per-device summaries plus run-wide counters.
#[derive(Debug, Clone)]
pub struct FleetAggregate {
    /// Devices simulated.
    pub devices: u64,
    /// Total scheduling ticks across the fleet.
    pub ticks: u64,
    /// Total calibrations adopted/ran across the fleet.
    pub recalibrations: u64,
    /// Battery lifetime (service time) distribution, seconds.
    pub lifetime_s: QuantileSketch,
    /// Peak hot-spot temperature distribution, degC.
    pub hotspot_c: QuantileSketch,
    /// Per-device max calibration-staleness distribution, seconds.
    pub staleness_s: QuantileSketch,
    /// Pool counters (all-zero in inline mode).
    pub pool: PoolCounters,
    /// Per-shard throughput counters.
    pub shards: Vec<ShardThroughput>,
    /// Wall-clock of the whole run, milliseconds.
    pub wall_ms: f64,
}

impl FleetAggregate {
    /// Devices per wall-clock second over the whole run.
    pub fn devices_per_s(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.devices as f64 / (self.wall_ms / 1e3)
    }
}

/// A completed fleet run: summaries in fleet order plus the aggregate.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Per-device summaries; index `i` is device `i` of the fleet.
    pub summaries: Vec<DeviceSummary>,
    /// Fleet-level aggregation.
    pub aggregate: FleetAggregate,
}

/// Runs fleets to completion under a [`FleetConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetRunner {
    config: FleetConfig,
}

impl FleetRunner {
    /// A runner with the given configuration.
    pub fn new(config: FleetConfig) -> Self {
        FleetRunner { config }
    }

    /// The configuration this runner applies.
    pub fn config(&self) -> FleetConfig {
        self.config
    }

    /// Simulate every device of the fleet and aggregate.
    ///
    /// # Panics
    ///
    /// Panics if the fleet is empty or the batch size is zero.
    pub fn run(&self, fleet: &Fleet) -> FleetResult {
        assert!(!fleet.is_empty(), "cannot run an empty fleet");
        assert!(self.config.batch > 0, "batch size must be positive");
        let _run_span = capman_obs::span("fleet_run", fleet.len() as u64);
        let t0 = Instant::now();
        let pool = match self.config.mode {
            CalibrationMode::Inline => None,
            CalibrationMode::Pool => {
                let specs: Vec<_> = fleet.profiles.iter().map(|p| p.calibrator).collect();
                Some(Arc::new(CalibrationPool::spawn(&specs, self.config.pool)))
            }
        };
        // The shards only need the backend surface; the concrete pool
        // handle stays here for drain + counters at the end of the run.
        let backend: Option<Arc<dyn CalibrationBackend>> =
            pool.clone().map(|p| p as Arc<dyn CalibrationBackend>);

        let batch = self.config.batch;
        let n_shards = fleet.len().div_ceil(batch);
        // One pre-sized cell per shard: every worker writes only its own
        // cell (indexed by the chunk position), so no lock is taken and
        // no post-hoc sort is needed — cell order IS shard order, and
        // concatenating the cells' summaries reproduces fleet order.
        let mut cells: Vec<ShardCell> = (0..n_shards).map(|_| ShardCell::default()).collect();
        if self.config.parallel {
            cells.par_chunks_mut(1).enumerate().for_each(|shard, cell| {
                run_shard(fleet, shard, batch, backend.as_ref(), &mut cell[0]);
            });
        } else {
            for (shard, cell) in cells.iter_mut().enumerate() {
                run_shard(fleet, shard, batch, backend.as_ref(), cell);
            }
        }
        let mut summaries: Vec<DeviceSummary> = Vec::with_capacity(fleet.len());
        let mut shards: Vec<ShardThroughput> = Vec::with_capacity(n_shards);
        for cell in cells {
            summaries.extend(cell.summaries);
            shards.push(cell.throughput.expect("every shard cell ran exactly once"));
        }

        let pool_counters = match &pool {
            Some(pool) => {
                pool.drain();
                pool.counters()
            }
            None => PoolCounters::default(),
        };
        let aggregate = aggregate(fleet, &summaries, pool_counters, shards, t0);
        FleetResult {
            summaries,
            aggregate,
        }
    }
}

/// Feed the registry from exactly the per-shard values that go into
/// [`ShardThroughput`], so registry totals always equal the
/// `ShardThroughput`-derived sums (the obs acceptance test checks this
/// equality).
pub(crate) fn record_shard_metrics(devices: u64, ticks: u64) {
    if capman_obs::enabled() {
        capman_obs::counter!("fleet_shards_total", "Fleet shards executed").inc();
        capman_obs::counter!("fleet_devices_total", "Devices simulated to completion").add(devices);
        capman_obs::counter!("fleet_ticks_total", "Scheduler ticks across all devices").add(ticks);
    }
}

/// One shard's output: its summaries (in device order) plus throughput.
/// Workers own disjoint cells, so writes need no synchronisation.
#[derive(Debug, Default)]
struct ShardCell {
    summaries: Vec<DeviceSummary>,
    throughput: Option<ShardThroughput>,
}

/// Simulate one shard's contiguous device range into its cell. The
/// shard owns a single [`FleetPolicy`] slot re-initialised in place per
/// device, so the loop performs no per-device policy allocation.
fn run_shard(
    fleet: &Fleet,
    shard: usize,
    batch: usize,
    backend: Option<&Arc<dyn CalibrationBackend>>,
    cell: &mut ShardCell,
) {
    let _shard_span = capman_obs::span("fleet_shard", shard as u64);
    let t_shard = Instant::now();
    let start = shard * batch;
    let end = (start + batch).min(fleet.len());
    cell.summaries.reserve_exact(end - start);
    let mut slot = FleetPolicy::placeholder();
    let mut ticks = 0u64;
    for spec in &fleet.devices[start..end] {
        let summary = run_device(fleet, spec, backend, &mut slot);
        ticks += summary.ticks;
        cell.summaries.push(summary);
    }
    record_shard_metrics(cell.summaries.len() as u64, ticks);
    cell.throughput = Some(ShardThroughput {
        shard,
        devices: cell.summaries.len() as u64,
        ticks,
        wall_ms: t_shard.elapsed().as_secs_f64() * 1e3,
    });
}

/// Simulate one device to completion, re-initialising the shard's
/// policy slot for it.
fn run_device(
    fleet: &Fleet,
    spec: &DeviceSpec,
    backend: Option<&Arc<dyn CalibrationBackend>>,
    slot: &mut FleetPolicy,
) -> DeviceSummary {
    let profile = &fleet.profiles[spec.cohort];
    let mut trace = profile.trace(spec);
    let config = profile.device_config(spec);
    let pack = build_pack(profile.kind);
    *slot = FleetPolicy::for_device(profile, spec, backend, || trace.clone());
    let mut sim = DeviceSim::new(
        Arc::new(profile.phone.clone()),
        Arc::new(profile.phone.power_model()),
        pack,
        config,
    );
    let mut lean = LeanTelemetry::default();
    while sim.step(slot, &mut trace, &mut lean).is_none() {}
    DeviceSummary {
        device_id: spec.device_id,
        cohort: spec.cohort,
        service_time_s: sim.time_s(),
        work_served: sim.work_served(),
        energy_delivered_j: sim.energy_delivered_j(),
        max_hotspot_c: sim.peak_hotspot_c(),
        switches: sim.switches(),
        ticks: lean.samples,
        recalibrations: slot.recalibrations(),
        max_staleness_s: lean.max_staleness_s,
    }
}

/// The canonical sketch geometries of the fleet aggregate. The arena's
/// streaming per-shard folds build the same geometries so their bin-wise
/// merges equal this serial fold exactly.
pub(crate) fn lifetime_sketch(horizon: f64) -> QuantileSketch {
    QuantileSketch::new(0.0, horizon, 2048)
}

/// Peak-hot-spot sketch geometry (see [`lifetime_sketch`]).
pub(crate) fn hotspot_sketch() -> QuantileSketch {
    QuantileSketch::new(15.0, 90.0, 750)
}

/// Calibration-staleness sketch geometry (see [`lifetime_sketch`]).
pub(crate) fn staleness_sketch() -> QuantileSketch {
    QuantileSketch::new(0.0, 120.0, 1200)
}

/// Fold per-device summaries into the fleet aggregate. Runs serially in
/// fleet order over already-reduced summaries, so it is deterministic
/// regardless of how the shards were scheduled.
fn aggregate(
    fleet: &Fleet,
    summaries: &[DeviceSummary],
    pool: PoolCounters,
    shards: Vec<ShardThroughput>,
    t0: Instant,
) -> FleetAggregate {
    let horizon = fleet
        .profiles
        .iter()
        .map(|p| p.config.max_horizon_s)
        .fold(1.0, f64::max);
    let mut lifetime_s = lifetime_sketch(horizon);
    let mut hotspot_c = hotspot_sketch();
    let mut staleness_s = staleness_sketch();
    let mut ticks = 0u64;
    let mut recalibrations = 0u64;
    for s in summaries {
        lifetime_s.insert(s.service_time_s);
        hotspot_c.insert(s.max_hotspot_c);
        staleness_s.insert(s.max_staleness_s);
        ticks += s.ticks;
        recalibrations += s.recalibrations;
    }
    FleetAggregate {
        devices: summaries.len() as u64,
        ticks,
        recalibrations,
        lifetime_s,
        hotspot_c,
        staleness_s,
        pool,
        shards,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::FleetProfile;
    use capman_core::experiments::PolicyKind;
    use capman_workload::WorkloadKind;

    /// A small, short-horizon fleet that still crosses the calibration
    /// interval at least once for CAPMAN cohorts.
    fn tiny_fleet(devices_per_profile: usize) -> Fleet {
        let mut capman = FleetProfile::capman("video", WorkloadKind::Video, 21);
        capman.config.max_horizon_s = 1500.0;
        capman.calibrator.every_s = 600.0;
        let mut dual = FleetProfile::capman("pcmark-dual", WorkloadKind::Pcmark, 22);
        dual.kind = PolicyKind::Dual;
        dual.config.max_horizon_s = 1500.0;
        dual.config.tec_enabled = false;
        Fleet::build(vec![capman, dual], devices_per_profile)
    }

    #[test]
    fn sharded_parallel_run_is_bit_identical_to_serial() {
        let fleet = tiny_fleet(3);
        let serial = FleetRunner::new(FleetConfig {
            parallel: false,
            ..FleetConfig::default()
        })
        .run(&fleet);
        let parallel = FleetRunner::new(FleetConfig {
            parallel: true,
            batch: 2,
            ..FleetConfig::default()
        })
        .run(&fleet);
        assert_eq!(serial.summaries, parallel.summaries);
    }

    #[test]
    fn summaries_follow_fleet_order() {
        let fleet = tiny_fleet(2);
        let result = FleetRunner::new(FleetConfig {
            batch: 3,
            ..FleetConfig::default()
        })
        .run(&fleet);
        assert_eq!(result.summaries.len(), fleet.len());
        for (spec, summary) in fleet.devices.iter().zip(&result.summaries) {
            assert_eq!(spec.device_id, summary.device_id);
            assert_eq!(spec.cohort, summary.cohort);
        }
    }

    #[test]
    fn pool_mode_completes_with_no_dropped_calibrations() {
        let fleet = tiny_fleet(2);
        let result = FleetRunner::new(FleetConfig {
            mode: CalibrationMode::Pool,
            batch: 2,
            ..FleetConfig::default()
        })
        .run(&fleet);
        let agg = &result.aggregate;
        assert_eq!(agg.devices as usize, fleet.len());
        assert_eq!(agg.pool.dropped, 0, "bounded queue must not overflow here");
        assert_eq!(
            agg.pool.completed, agg.pool.enqueued,
            "drain waits out the queue"
        );
        assert!(
            agg.pool.submitted >= agg.pool.enqueued,
            "coalescing cannot invent requests"
        );
        // CAPMAN devices adopted at least one pooled calibration.
        let adopted: u64 = result
            .summaries
            .iter()
            .filter(|s| s.cohort == 0)
            .map(|s| s.recalibrations)
            .sum();
        assert!(adopted > 0, "pooled calibrations must reach the devices");
    }

    #[test]
    fn pool_mode_loses_no_ticks_against_inline() {
        let fleet = tiny_fleet(2);
        let inline = FleetRunner::new(FleetConfig::default()).run(&fleet);
        let pooled = FleetRunner::new(FleetConfig {
            mode: CalibrationMode::Pool,
            ..FleetConfig::default()
        })
        .run(&fleet);
        // Calibration execution mode must not change how long devices
        // tick: same devices, same tick counts.
        let ticks = |r: &FleetResult| r.summaries.iter().map(|s| s.ticks).collect::<Vec<_>>();
        assert_eq!(ticks(&inline), ticks(&pooled));
    }

    #[test]
    fn aggregate_sketches_cover_every_device() {
        let fleet = tiny_fleet(2);
        let result = FleetRunner::new(FleetConfig::default()).run(&fleet);
        let agg = &result.aggregate;
        assert_eq!(agg.lifetime_s.count(), agg.devices);
        assert_eq!(agg.hotspot_c.count(), agg.devices);
        assert!(agg.lifetime_s.p50() > 0.0);
        let shard_devices: u64 = agg.shards.iter().map(|s| s.devices).sum();
        assert_eq!(shard_devices, agg.devices);
        let shard_ticks: u64 = agg.shards.iter().map(|s| s.ticks).sum();
        assert_eq!(shard_ticks, agg.ticks);
    }
}
