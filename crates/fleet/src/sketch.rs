//! Deterministic streaming quantile sketches for fleet aggregation.
//!
//! At fleet scale we cannot afford to keep every per-device sample
//! around just to report p50/p95/p99 at the end, and we must not let
//! the aggregate depend on the order shards finish in. A
//! [`QuantileSketch`] is a fixed-range, fixed-bin histogram: insertion
//! is O(1), memory is constant, and merging two sketches is a bin-wise
//! add — commutative and associative, so sharded parallel aggregation
//! produces bit-identical results to a serial pass regardless of shard
//! scheduling.
//!
//! The price is bounded resolution: a quantile is reported as the upper
//! edge of the bin holding it, i.e. within `(hi - lo) / bins` of the
//! exact order statistic. That is ample for the fleet report (hotspot
//! temperatures to ~0.1 degC, lifetimes to a few seconds, staleness to
//! fractions of a second).

/// A fixed-range streaming histogram answering quantile queries.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// A sketch covering `[lo, hi]` with `bins` equal-width bins.
    /// Samples outside the range clamp into the edge bins (and are
    /// still reflected exactly in [`min`](Self::min) / [`max`](Self::max)).
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "sketch needs at least one bin");
        assert!(hi > lo, "sketch range must be non-empty");
        QuantileSketch {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample. Non-finite samples are ignored.
    pub fn insert(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let bins = self.counts.len();
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * bins as f64) as isize).clamp(0, bins as isize - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another sketch of the same geometry into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches have different ranges or bin counts.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(self.lo, other.lo, "sketch geometries must match");
        assert_eq!(self.hi, other.hi, "sketch geometries must match");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bin counts must match"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as the upper edge of the bin
    /// holding that order statistic, clamped to the observed extremes.
    /// Returns 0.0 for an empty sketch (mirrors the telemetry rule that
    /// empty aggregates read as zero, not NaN).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the order statistic we are after, 1-based.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let width = (self.hi - self.lo) / self.counts.len() as f64;
                let edge = self.lo + width * (idx as f64 + 1.0);
                return edge.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile shorthand.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_reads_zero_everywhere() {
        let s = QuantileSketch::new(0.0, 100.0, 64);
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.p99(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn quantiles_track_a_uniform_ramp() {
        let mut s = QuantileSketch::new(0.0, 100.0, 1000);
        for i in 0..10_000 {
            s.insert(i as f64 / 100.0);
        }
        let width = 100.0 / 1000.0;
        assert!((s.p50() - 50.0).abs() <= width + 1e-9, "p50 = {}", s.p50());
        assert!((s.p95() - 95.0).abs() <= width + 1e-9, "p95 = {}", s.p95());
        assert!((s.p99() - 99.0).abs() <= width + 1e-9, "p99 = {}", s.p99());
    }

    #[test]
    fn merge_is_order_independent() {
        let samples: Vec<f64> = (0..500).map(|i| (i as f64 * 37.0) % 80.0).collect();
        let mut serial = QuantileSketch::new(0.0, 80.0, 128);
        for &x in &samples {
            serial.insert(x);
        }
        // Two shard orders.
        let mut a1 = QuantileSketch::new(0.0, 80.0, 128);
        let mut a2 = QuantileSketch::new(0.0, 80.0, 128);
        for (i, &x) in samples.iter().enumerate() {
            if i % 2 == 0 {
                a1.insert(x);
            } else {
                a2.insert(x);
            }
        }
        let mut merged_fwd = a1.clone();
        merged_fwd.merge(&a2);
        let mut merged_rev = a2.clone();
        merged_rev.merge(&a1);
        assert_eq!(merged_fwd, serial);
        assert_eq!(merged_rev, serial);
    }

    #[test]
    fn out_of_range_samples_clamp_but_extremes_stay_exact() {
        let mut s = QuantileSketch::new(0.0, 10.0, 10);
        s.insert(-5.0);
        s.insert(25.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.min(), -5.0);
        assert_eq!(s.max(), 25.0);
        assert!(s.quantile(1.0) <= 25.0);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut s = QuantileSketch::new(0.0, 1.0, 4);
        s.insert(f64::NAN);
        s.insert(f64::INFINITY);
        assert_eq!(s.count(), 0);
    }
}
