//! The evaluation phones (Section V: Nexus, Honor, Lenovo).
//!
//! The paper tests three phones "with CPU frequency ranging from 1040 kHz
//! to 2000 kHz, with installed Android ROM version 5.0-7.1" (the units are
//! clearly MHz). Per-phone differences matter in two places: the device
//! power scale (Fig. 15's different active-power traces) and the compute
//! speed, which scales the scheduler overhead of Fig. 16.

use serde::{Deserialize, Serialize};

use crate::power::PowerModel;

/// A phone profile: identity, CPU frequency ladder, power scale and
/// compute speed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhoneProfile {
    /// Marketing name used in the paper's figures.
    pub name: &'static str,
    /// Android ROM version installed.
    pub android_version: &'static str,
    /// Available CPU frequencies, MHz, ascending.
    pub freqs_mhz: Vec<u32>,
    /// Device-wide power scale relative to the Nexus (panel/process
    /// variation).
    pub power_scale: f64,
    /// Compute speed relative to the Nexus; divides scheduler overhead.
    pub compute_speed: f64,
}

impl PhoneProfile {
    /// The Nexus 6 of the motivation experiments (Android 5.0.1).
    pub fn nexus() -> Self {
        PhoneProfile {
            name: "Nexus",
            android_version: "5.0.1",
            freqs_mhz: vec![1040, 1190, 1340, 1490, 1640, 1790, 1940, 2000],
            power_scale: 1.0,
            compute_speed: 1.0,
        }
    }

    /// The Honor test phone (Android 6.0).
    pub fn honor() -> Self {
        PhoneProfile {
            name: "Honor",
            android_version: "6.0",
            freqs_mhz: vec![1040, 1250, 1450, 1660, 1850],
            power_scale: 0.92,
            compute_speed: 0.78,
        }
    }

    /// The Lenovo test phone (Android 7.1).
    pub fn lenovo() -> Self {
        PhoneProfile {
            name: "Lenovo",
            android_version: "7.1",
            freqs_mhz: vec![1100, 1300, 1500, 1700, 1900, 2000],
            power_scale: 1.07,
            compute_speed: 1.22,
        }
    }

    /// All three evaluation phones.
    pub fn all() -> Vec<PhoneProfile> {
        vec![
            PhoneProfile::nexus(),
            PhoneProfile::honor(),
            PhoneProfile::lenovo(),
        ]
    }

    /// Look a phone up by its figure name, case-insensitively — the form
    /// experiment datasets name phones in (`"phone": "Nexus"`).
    pub fn by_name(name: &str) -> Option<PhoneProfile> {
        PhoneProfile::all()
            .into_iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// The calibrated power model for this phone.
    pub fn power_model(&self) -> PowerModel {
        PowerModel::calibrated(self.freqs_mhz.len(), self.power_scale)
    }

    /// Number of CPU frequency levels (`freq = 0, 1, ..., n` in Table II).
    pub fn n_freqs(&self) -> usize {
        self.freqs_mhz.len()
    }

    /// Highest available frequency, MHz.
    pub fn max_freq_mhz(&self) -> u32 {
        *self.freqs_mhz.last().expect("profile has frequencies")
    }

    /// Lowest available frequency, MHz.
    pub fn min_freq_mhz(&self) -> u32 {
        *self.freqs_mhz.first().expect("profile has frequencies")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_range_matches_paper() {
        // "CPU frequency ranging from 1040 to 2000".
        let min = PhoneProfile::all()
            .iter()
            .map(PhoneProfile::min_freq_mhz)
            .min()
            .expect("phones");
        let max = PhoneProfile::all()
            .iter()
            .map(PhoneProfile::max_freq_mhz)
            .max()
            .expect("phones");
        assert_eq!(min, 1040);
        assert_eq!(max, 2000);
    }

    #[test]
    fn android_versions_span_5_to_7() {
        let phones = PhoneProfile::all();
        assert!(phones.iter().any(|p| p.android_version.starts_with("5")));
        assert!(phones.iter().any(|p| p.android_version.starts_with("7")));
    }

    #[test]
    fn frequencies_are_ascending() {
        for p in PhoneProfile::all() {
            for w in p.freqs_mhz.windows(2) {
                assert!(w[0] < w[1], "{}: not ascending", p.name);
            }
        }
    }

    #[test]
    fn power_model_reflects_scale() {
        let nexus = PhoneProfile::nexus().power_model();
        let lenovo = PhoneProfile::lenovo().power_model();
        assert!(lenovo.scale() > nexus.scale());
    }

    #[test]
    fn names_are_distinct() {
        let phones = PhoneProfile::all();
        assert_eq!(phones.len(), 3);
        assert_ne!(phones[0].name, phones[1].name);
        assert_ne!(phones[1].name, phones[2].name);
    }

    #[test]
    fn compute_speeds_differ_for_fig16() {
        let phones = PhoneProfile::all();
        let speeds: Vec<f64> = phones.iter().map(|p| p.compute_speed).collect();
        assert!(speeds.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9));
    }
}
