//! Empirical competitiveness accounting.
//!
//! The paper proves CAPMAN's online scheme is worst-case
//! `O(1/(1-rho))`-competitive against the optimal policy and highlights
//! that "if we relax the similarity discount factor and let rho = 0.05,
//! the upper bound of Algorithm 1 is within O(1.05)-competitiveness".
//! This module makes both sides measurable: the theoretical bound for a
//! given `rho` and `theta`, and the *empirical* ratio of an online
//! policy's outcome against the clairvoyant Oracle's on the same trace.

use serde::{Deserialize, Serialize};

use crate::metrics::Outcome;

/// The theoretical worst-case competitiveness factor of the paper:
/// following a state within similarity distance `theta` of a solved one
/// costs at most `theta / (1 - rho)` in (normalised) value, i.e. the
/// policy is `1 + theta / (1 - rho)`-competitive.
///
/// # Panics
///
/// Panics if `rho` is not in `[0, 1)` or `theta` not in `[0, 1]`.
pub fn theoretical_ratio(rho: f64, theta: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
    assert!((0.0..=1.0).contains(&theta), "theta must be in [0, 1]");
    1.0 + theta / (1.0 - rho)
}

/// The paper's headline configuration: `rho = 0.05` with maximal reuse
/// (`theta` saturated at the bound scale) gives `O(1.05)`.
pub fn paper_headline_ratio() -> f64 {
    // theta scaled into the normalised reward unit: the paper states the
    // bound directly as 1/(1-rho) with rho = 0.05 -> 1.0526... ~ 1.05.
    1.0 / (1.0 - 0.05)
}

/// An empirical competitiveness measurement of one policy against the
/// Oracle on the same trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalRatio {
    /// Oracle service time over the policy's (>= 1 means the Oracle was
    /// at least as good; the competitive ratio).
    pub service_ratio: f64,
    /// Oracle work served over the policy's.
    pub work_ratio: f64,
}

impl EmpiricalRatio {
    /// Measure a policy outcome against the Oracle outcome for the same
    /// trace.
    ///
    /// # Panics
    ///
    /// Panics if the outcomes come from different workloads, or the
    /// policy outcome has zero service time or work.
    pub fn measure(policy: &Outcome, oracle: &Outcome) -> Self {
        assert_eq!(
            policy.workload, oracle.workload,
            "outcomes must share the trace"
        );
        assert!(policy.service_time_s > 0.0 && policy.work_served > 0.0);
        EmpiricalRatio {
            service_ratio: oracle.service_time_s / policy.service_time_s,
            work_ratio: oracle.work_served / policy.work_served,
        }
    }

    /// Whether the measurement respects a theoretical ratio (with a
    /// small tolerance for simulation noise).
    pub fn within(&self, theoretical: f64) -> bool {
        self.service_ratio <= theoretical * 1.02
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::experiments::{run_policy_with, PolicyKind};
    use capman_device::phone::PhoneProfile;
    use capman_workload::WorkloadKind;

    #[test]
    fn theoretical_ratio_matches_the_paper_example() {
        // rho = 0.05 -> within O(1.05)-competitiveness.
        assert!((paper_headline_ratio() - 1.0526).abs() < 1e-3);
        assert!((theoretical_ratio(0.05, 0.05) - 1.0526).abs() < 1e-3);
        // The bound diverges as rho -> 1.
        assert!(theoretical_ratio(0.99, 0.5) > 50.0);
        // Zero reuse distance is 1-competitive.
        assert_eq!(theoretical_ratio(0.5, 0.0), 1.0);
    }

    #[test]
    fn capman_is_empirically_near_one_competitive() {
        let run = |kind: PolicyKind| {
            let config = SimConfig {
                max_horizon_s: 12_000.0,
                tec_enabled: kind.has_tec(),
                ..SimConfig::paper()
            };
            run_policy_with(kind, WorkloadKind::Video, PhoneProfile::nexus(), 33, config)
        };
        let capman = run(PolicyKind::Capman);
        let oracle = run(PolicyKind::Oracle);
        let ratio = EmpiricalRatio::measure(&capman, &oracle);
        // Far inside the paper's 1.05 guarantee on this workload.
        assert!(
            ratio.within(paper_headline_ratio()),
            "service ratio {} exceeds the bound",
            ratio.service_ratio
        );
    }

    #[test]
    fn heuristic_ratio_is_worse_than_capman_ratio() {
        let run = |kind: PolicyKind| {
            let config = SimConfig {
                max_horizon_s: 15_000.0,
                tec_enabled: kind.has_tec(),
                ..SimConfig::paper()
            };
            run_policy_with(
                kind,
                WorkloadKind::Pcmark,
                PhoneProfile::nexus(),
                33,
                config,
            )
        };
        let oracle = run(PolicyKind::Oracle);
        let capman = EmpiricalRatio::measure(&run(PolicyKind::Capman), &oracle);
        let heuristic = EmpiricalRatio::measure(&run(PolicyKind::Heuristic), &oracle);
        assert!(heuristic.service_ratio >= capman.service_ratio);
    }

    #[test]
    #[should_panic(expected = "share the trace")]
    fn rejects_mismatched_workloads() {
        let config = SimConfig {
            max_horizon_s: 400.0,
            ..SimConfig::paper()
        };
        let a = run_policy_with(
            PolicyKind::Dual,
            WorkloadKind::Video,
            PhoneProfile::nexus(),
            1,
            config,
        );
        let b = run_policy_with(
            PolicyKind::Dual,
            WorkloadKind::Pcmark,
            PhoneProfile::nexus(),
            1,
            config,
        );
        let _ = EmpiricalRatio::measure(&a, &b);
    }
}
