//! Heterogeneous (big.LITTLE) battery models for the CAPMAN reproduction.
//!
//! The CAPMAN paper schedules between two lithium-ion cells of different
//! chemistry — a *big* cell (high energy density, gentle discharge; NCA in
//! the paper) and a *LITTLE* cell (high discharge rate; LMO in the paper).
//! This crate provides everything below the scheduler:
//!
//! * [`chemistry`] — the six-chemistry feature database of Table I and the
//!   radar-map metrics of Fig. 4, with the paper's big/LITTLE
//!   classification rule.
//! * [`kibam`] — the Kinetic Battery Model (two-well) that produces the
//!   rate-capacity and recovery effects CAPMAN exploits.
//! * [`ocv`] — per-chemistry open-circuit-voltage curves.
//! * [`thevenin`] — the Thevenin equivalent-circuit voltage model (series
//!   resistance plus one RC pair) with temperature-dependent losses.
//! * [`cell`] — a complete simulated cell combining the above, with a
//!   power-demand interface and heat output.
//! * [`vedge`] — the V-edge step-response probe and the D1/D2/D3 area
//!   decomposition of Fig. 3.
//! * [`pack`] — the big.LITTLE [`pack::BatteryPack`] with switching costs.
//! * [`switch`] — the switch facility (TTL signal model of Fig. 9/11).
//! * [`supercap`] — the supercapacitor that filters the LITTLE cell's
//!   spiky output in the prototype of Fig. 10.
//!
//! # Example
//!
//! ```
//! use capman_battery::chemistry::Chemistry;
//! use capman_battery::cell::Cell;
//!
//! // A 2500 mAh LMO (LITTLE) cell, as used in the paper's prototype.
//! let mut cell = Cell::new(Chemistry::Lmo, 2.5);
//! let step = cell.step(1.5, 1.0, 25.0); // draw 1.5 W for 1 s at 25 degC
//! assert!(step.delivered_j > 0.0);
//! assert!(cell.soc() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod charging;
pub mod chemistry;
pub mod degradation;
pub mod error;
pub mod kibam;
pub mod multi;
pub mod ocv;
pub mod pack;
pub mod supercap;
pub mod switch;
pub mod thevenin;
pub mod vedge;

pub use cell::{Cell, CellStep};
pub use chemistry::{Chemistry, Class};
pub use error::BatteryError;
pub use pack::{BatteryPack, PackStep};
