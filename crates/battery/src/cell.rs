//! A complete simulated lithium cell.
//!
//! [`Cell`] combines the KiBaM charge kinetics, the per-chemistry OCV
//! curve and the Thevenin circuit into a single power-demand interface:
//! the device asks for watts, the cell answers with the watts it could
//! actually deliver, the current drawn, the terminal voltage and the heat
//! it dissipated. All of CAPMAN's battery-side effects — rate-capacity
//! losses, recovery, V-edge, voltage collapse under surges, thermal
//! leakage — emerge from this model.

use serde::{Deserialize, Serialize};

use crate::chemistry::{Chemistry, Class, ElectricalParams};
use crate::error::BatteryError;
use crate::kibam::Kibam;
use crate::ocv::OcvCurve;
use crate::thevenin::Thevenin;

/// Reference capacity at which [`ElectricalParams::r0_ohm`] is quoted, Ah.
const REFERENCE_CAPACITY_AH: f64 = 2.5;

/// Below this total state of charge a cell is permanently exhausted.
const EXHAUSTION_SOC: f64 = 0.005;

/// A simulated lithium-ion cell of a given chemistry and capacity.
///
/// # Examples
///
/// ```
/// use capman_battery::cell::Cell;
/// use capman_battery::chemistry::Chemistry;
///
/// let mut cell = Cell::new(Chemistry::Nca, 2.5);
/// let step = cell.step(1.0, 60.0, 25.0); // 1 W for a minute
/// assert!(step.delivered_j > 0.0);
/// assert!(cell.soc() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    chemistry: Chemistry,
    capacity_ah: f64,
    params: ElectricalParams,
    kibam: Kibam,
    circuit: Thevenin,
    ocv: OcvCurve,
    delivered_j: f64,
    heat_j: f64,
    exhausted: bool,
}

/// Telemetry for one simulation step of a [`Cell`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellStep {
    /// Power actually delivered to the load this step, watts.
    pub delivered_w: f64,
    /// Energy actually delivered this step, joules.
    pub delivered_j: f64,
    /// Current drawn from the cell, amperes.
    pub current_a: f64,
    /// Terminal voltage under load at the end of the step, volts.
    pub voltage_v: f64,
    /// Heat dissipated inside the cell this step, watts (average).
    pub heat_w: f64,
    /// The terminal voltage sagged below the chemistry cut-off: the demand
    /// was not (fully) met. A rested cell can recover from a brownout.
    pub brownout: bool,
    /// The KiBaM available well ran dry during the step.
    pub starved: bool,
}

impl CellStep {
    /// A step in which nothing could be delivered (dead or idle cell).
    fn empty(voltage_v: f64) -> Self {
        CellStep {
            delivered_w: 0.0,
            delivered_j: 0.0,
            current_a: 0.0,
            voltage_v,
            heat_w: 0.0,
            brownout: false,
            starved: false,
        }
    }
}

impl Cell {
    /// Build a fully charged cell.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_ah` is not positive. Use [`Cell::try_new`] for a
    /// fallible constructor.
    pub fn new(chemistry: Chemistry, capacity_ah: f64) -> Self {
        Cell::try_new(chemistry, capacity_ah).expect("valid cell parameters")
    }

    /// Build a fully charged cell, checking parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if `capacity_ah` is not positive.
    pub fn try_new(chemistry: Chemistry, capacity_ah: f64) -> Result<Self, BatteryError> {
        if !capacity_ah.is_finite() || capacity_ah <= 0.0 {
            return Err(BatteryError::NonPositiveCapacity(capacity_ah));
        }
        let params = chemistry.electrical();
        // Larger cells have proportionally more parallel electrode area,
        // hence lower resistance.
        let scale = REFERENCE_CAPACITY_AH / capacity_ah;
        let kibam = Kibam::new(capacity_ah * 3600.0, params.kibam_c, params.kibam_k)?;
        let circuit = Thevenin::new(
            params.r0_ohm * scale,
            params.rc_r_ohm * scale,
            params.rc_tau_s,
        )?;
        Ok(Cell {
            chemistry,
            capacity_ah,
            params,
            kibam,
            circuit,
            ocv: OcvCurve::for_chemistry(chemistry),
            delivered_j: 0.0,
            heat_j: 0.0,
            exhausted: false,
        })
    }

    /// Draw `demand_w` watts for `dt` seconds at cell temperature `temp_c`.
    ///
    /// Solves the load current from `P = V * I` with `V = E - I * R0`,
    /// applies the chemistry's maximum C-rate, drains the KiBaM wells
    /// (including temperature-dependent self-discharge), and advances the
    /// polarization state. A demand of `0.0` lets the cell rest and
    /// recover.
    ///
    /// # Panics
    ///
    /// Panics if `demand_w` is negative or `dt` is not positive.
    pub fn step(&mut self, demand_w: f64, dt: f64, temp_c: f64) -> CellStep {
        assert!(demand_w >= 0.0, "power demand must be non-negative");
        assert!(dt > 0.0, "step duration must be positive");

        if self.exhausted {
            return CellStep::empty(0.0);
        }

        // Source EMF: OCV of the total charge, pulled down by the
        // concentration overpotential (depleted available well) and the
        // standing polarization voltage.
        let emf = self.emf();

        let r0 = self.circuit.r0_at(temp_c);
        let i_limit = self.params.max_c_rate * self.capacity_ah;

        // Solve E*I - R*I^2 = P for the smaller root; collapse to the
        // maximum-power point when the demand is unreachable.
        let (mut current, mut brownout) = if demand_w == 0.0 {
            (0.0, false)
        } else {
            let disc = emf * emf - 4.0 * r0 * demand_w;
            if disc >= 0.0 {
                ((emf - disc.sqrt()) / (2.0 * r0), false)
            } else {
                (emf / (2.0 * r0), true)
            }
        };
        if current > i_limit {
            current = i_limit;
            brownout = true;
        }

        let mut voltage = emf - current * r0;
        if voltage < self.params.cutoff_v && current > 0.0 {
            // Sagged below cut-off: the protection circuit limits current
            // to what keeps the terminal at the cut-off voltage.
            current = ((emf - self.params.cutoff_v) / r0).max(0.0);
            voltage = self.params.cutoff_v;
            brownout = true;
        }

        // Self-discharge grows exponentially with temperature (Arrhenius,
        // doubling every 10 K): hot, uncooled batteries waste energy. This
        // is the thermal-coupling term that makes TEC cooling pay off.
        let leak_w =
            self.params.leak_ref_w_per_ah * self.capacity_ah * ((temp_c - 25.0) / 10.0).exp2();
        let leak_a = if emf > 0.0 { leak_w / emf } else { 0.0 };

        let draw = self
            .kibam
            .draw(current + leak_a, dt)
            .expect("validated current and dt");
        let starved = draw.starved;
        // Fraction of the requested charge actually supplied.
        let served = if current + leak_a > 0.0 {
            draw.delivered_c / ((current + leak_a) * dt)
        } else {
            1.0
        };
        let actual_current = current * served;
        let delivered_w = voltage * actual_current;
        let delivered_j = delivered_w * dt;

        self.circuit.step(actual_current, dt);
        let heat_w = self.circuit.heat_w(actual_current, temp_c) + leak_w * served;

        self.delivered_j += delivered_j;
        self.heat_j += heat_w * dt;
        if self.kibam.total_soc() <= EXHAUSTION_SOC {
            self.exhausted = true;
        }

        CellStep {
            delivered_w,
            delivered_j,
            current_a: actual_current,
            voltage_v: voltage,
            heat_w,
            brownout: brownout || served < 0.999,
            starved,
        }
    }

    /// Let the cell rest (recover) for `dt` seconds at `temp_c`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn rest(&mut self, dt: f64, temp_c: f64) -> CellStep {
        self.step(0.0, dt, temp_c)
    }

    /// Charge the cell with `current_a` amperes for `dt` seconds.
    ///
    /// Returns the charge actually accepted in coulombs (zero once
    /// full). Charging lifts a permanently exhausted cell back into
    /// service and dissipates `I^2 R0` as heat.
    ///
    /// # Panics
    ///
    /// Panics if `current_a` is negative or `dt` is not positive.
    pub fn charge(&mut self, current_a: f64, dt: f64, temp_c: f64) -> f64 {
        assert!(current_a >= 0.0, "charge current must be non-negative");
        assert!(dt > 0.0, "dt must be positive");
        let accepted = self
            .kibam
            .charge(current_a, dt)
            .expect("validated current and dt");
        self.circuit.step(0.0, dt);
        self.heat_j += current_a * current_a * self.circuit.r0_at(temp_c) * dt;
        if self.kibam.total_soc() > EXHAUSTION_SOC * 2.0 {
            self.exhausted = false;
        }
        accepted
    }

    /// The present source EMF (open-circuit voltage minus concentration
    /// sag and polarization), volts.
    ///
    /// The concentration overpotential grows *quadratically* with the
    /// well-head gap: shallow depletion of the available well is cheap,
    /// deep depletion (a sustained draw beyond the diffusion rate)
    /// collapses the terminal voltage — the nonlinearity behind the
    /// V-edge and the rate-dependent usable capacity.
    pub fn emf(&self) -> f64 {
        let ocv = self.ocv.voltage(self.kibam.total_soc());
        let sag_span = (self.params.nominal_v - self.params.cutoff_v) * self.params.sag_coeff;
        let gap = (self.kibam.h2() - self.kibam.h1()).max(0.0);
        let sag = sag_span * gap * gap;
        (ocv - sag - self.circuit.polarization_v()).max(0.0)
    }

    /// Terminal voltage the cell would show under `demand_w` right now.
    pub fn voltage_under(&self, demand_w: f64, temp_c: f64) -> f64 {
        let emf = self.emf();
        if demand_w <= 0.0 {
            return emf;
        }
        let r0 = self.circuit.r0_at(temp_c);
        let disc = emf * emf - 4.0 * r0 * demand_w;
        if disc >= 0.0 {
            let i = (emf - disc.sqrt()) / (2.0 * r0);
            emf - i * r0
        } else {
            emf / 2.0
        }
    }

    /// Total state of charge in `[0, 1]` (all wells).
    pub fn soc(&self) -> f64 {
        self.kibam.total_soc()
    }

    /// Head height of the immediately available charge in `[0, 1]`.
    pub fn available_head(&self) -> f64 {
        self.kibam.h1()
    }

    /// Whether the cell is permanently empty.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Whether the cell can serve load right now (not exhausted, not
    /// starved).
    pub fn is_usable(&self) -> bool {
        !self.exhausted && !self.kibam.is_starved()
    }

    /// The cell's chemistry.
    pub fn chemistry(&self) -> Chemistry {
        self.chemistry
    }

    /// The cell's big/LITTLE class.
    pub fn class(&self) -> Class {
        self.chemistry.class()
    }

    /// Rated capacity in ampere-hours.
    pub fn capacity_ah(&self) -> f64 {
        self.capacity_ah
    }

    /// Rated energy in joules (capacity times nominal voltage).
    pub fn rated_energy_j(&self) -> f64 {
        self.capacity_ah * 3600.0 * self.params.nominal_v
    }

    /// Cell volume in litres, from the chemistry's energy density.
    pub fn volume_l(&self) -> f64 {
        let wh = self.capacity_ah * self.params.nominal_v;
        wh / self.params.energy_density_wh_per_l
    }

    /// Total energy delivered to loads so far, joules.
    pub fn delivered_j(&self) -> f64 {
        self.delivered_j
    }

    /// Total heat dissipated so far, joules.
    pub fn heat_j(&self) -> f64 {
        self.heat_j
    }

    /// The maximum power the cell could deliver right now, watts.
    pub fn max_power_w(&self, temp_c: f64) -> f64 {
        let emf = self.emf();
        let r0 = self.circuit.r0_at(temp_c);
        let i_limit = self.params.max_c_rate * self.capacity_ah;
        let i_mp = (emf / (2.0 * r0)).min(i_limit);
        (emf - i_mp * r0) * i_mp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lmo() -> Cell {
        Cell::new(Chemistry::Lmo, 2.5)
    }

    fn nca() -> Cell {
        Cell::new(Chemistry::Nca, 2.5)
    }

    #[test]
    fn fresh_cell_is_full_and_usable() {
        let c = lmo();
        assert!((c.soc() - 1.0).abs() < 1e-9);
        assert!(c.is_usable());
        assert!(!c.is_exhausted());
        assert!(c.emf() > c.chemistry().electrical().nominal_v);
    }

    #[test]
    fn moderate_load_is_served_exactly() {
        let mut c = lmo();
        let s = c.step(2.0, 1.0, 25.0);
        assert!(!s.brownout);
        assert!((s.delivered_w - 2.0).abs() < 0.02, "got {}", s.delivered_w);
        assert!(s.current_a > 0.4 && s.current_a < 0.8);
        assert!(s.heat_w > 0.0);
    }

    #[test]
    fn impossible_demand_browns_out() {
        let mut c = lmo();
        let s = c.step(10_000.0, 1.0, 25.0);
        assert!(s.brownout);
        assert!(s.delivered_w < 10_000.0);
    }

    #[test]
    fn discharge_until_exhaustion_terminates() {
        let mut c = Cell::new(Chemistry::Lmo, 0.1);
        let mut steps = 0u32;
        while !c.is_exhausted() && steps < 2_000_000 {
            c.step(1.0, 1.0, 25.0);
            steps += 1;
        }
        assert!(c.is_exhausted(), "cell should eventually exhaust");
        // Exhausted cell delivers nothing.
        let s = c.step(1.0, 1.0, 25.0);
        assert_eq!(s.delivered_w, 0.0);
    }

    #[test]
    fn surge_yield_favors_little_chemistry() {
        // Drain both cells with a 12 W pulsed load; the LITTLE (LMO) cell
        // must deliver more total energy than the big (NCA) cell of the
        // same capacity. This is the Fig. 2(b) mechanism.
        let pulsed_yield = |mut c: Cell| -> f64 {
            for _ in 0..200_000 {
                c.step(12.0, 1.0, 25.0);
                c.rest(1.0, 25.0);
                if c.is_exhausted() {
                    break;
                }
            }
            c.delivered_j()
        };
        let little = pulsed_yield(lmo());
        let big = pulsed_yield(nca());
        assert!(
            little > big,
            "LMO should out-deliver NCA under surges: {little} vs {big}"
        );
    }

    #[test]
    fn gentle_yield_favors_big_chemistry() {
        // Under a light continuous load the big cell's higher stored
        // energy (same Ah, higher voltage plateau here both 3.7 — use the
        // loss channel) should make NCA at least competitive; its rated
        // energy must exceed its delivered deficit. We check the weaker,
        // robust property: NCA serves a 0.5 W load for a long time without
        // brownout.
        let mut c = nca();
        for _ in 0..3600 {
            let s = c.step(0.5, 1.0, 25.0);
            assert!(!s.brownout);
        }
        assert!(c.soc() < 1.0 && c.soc() > 0.9);
    }

    #[test]
    fn hot_cell_leaks_more() {
        let drain_idle = |temp: f64| -> f64 {
            let mut c = nca();
            for _ in 0..86_400 {
                c.rest(1.0, temp);
            }
            c.soc()
        };
        let cool = drain_idle(25.0);
        let hot = drain_idle(55.0);
        assert!(hot < cool, "hot idle cell should self-discharge faster");
    }

    #[test]
    fn rest_recovers_brownout() {
        let mut c = Cell::new(Chemistry::Nca, 0.5);
        // Hammer until brownout.
        let mut saw_brownout = false;
        for _ in 0..100_000 {
            let s = c.step(6.0, 1.0, 25.0);
            if s.brownout {
                saw_brownout = true;
                break;
            }
        }
        assert!(saw_brownout);
        let sagged_v = c.voltage_under(6.0, 25.0);
        for _ in 0..600 {
            c.rest(1.0, 25.0);
        }
        assert!(
            c.voltage_under(6.0, 25.0) > sagged_v,
            "rest should lift voltage"
        );
    }

    #[test]
    fn volume_reflects_energy_density() {
        let lmo = lmo();
        let nca = nca();
        assert!(nca.volume_l() < lmo.volume_l(), "big cell is denser");
    }

    #[test]
    fn max_power_is_positive_and_bounded() {
        let c = lmo();
        let p = c.max_power_w(25.0);
        assert!(p > 0.0);
        // Bounded by current limit times full voltage.
        let e = c.chemistry().electrical();
        assert!(p <= e.max_c_rate * c.capacity_ah() * c.emf());
    }

    #[test]
    fn try_new_rejects_bad_capacity() {
        assert!(Cell::try_new(Chemistry::Lmo, 0.0).is_err());
        assert!(Cell::try_new(Chemistry::Lmo, -2.0).is_err());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn step_panics_on_negative_demand() {
        lmo().step(-1.0, 1.0, 25.0);
    }
}
