//! Acceptance test for the observability tentpole: a pooled fleet run's
//! registry deltas must equal the `ShardThroughput` / `PoolCounters`
//! ground truth *exactly*, and the drained trace must validate and
//! export cleanly.
//!
//! Lives in its own integration-test binary (one process, one `#[test]`)
//! because it measures before/after deltas of the **global** registry
//! and tracer — any concurrent test instrumenting the globals would
//! perturb the counts. Compiled only with `--features obs`; without the
//! feature the global hooks are constant no-ops and there is nothing to
//! measure.
#![cfg(feature = "obs")]

use capman_fleet::{CalibrationMode, Fleet, FleetConfig, FleetProfile, FleetRunner};
use capman_obs::export::{chrome_trace, metrics_json, prometheus_text};
use capman_obs::trace::validate;
use capman_obs::MetricsSnapshot;
use capman_workload::WorkloadKind;

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _, _)| n == name)
        .map(|(_, _, v)| *v)
        .unwrap_or(0)
}

fn hist_count(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.histograms
        .iter()
        .find(|h| h.name == name)
        .map(|h| h.count)
        .unwrap_or(0)
}

#[test]
fn registry_and_trace_match_fleet_ground_truth() {
    assert!(capman_obs::compiled(), "test requires --features obs");
    capman_obs::set_enabled(true);
    capman_obs::set_span_sampling(1);
    let _ = capman_obs::drain();

    // Small pooled CAPMAN fleet that crosses the calibration interval.
    let mut profile = FleetProfile::capman("video", WorkloadKind::Video, 7);
    profile.config.max_horizon_s = 1500.0;
    profile.calibrator.every_s = 600.0;
    let fleet = Fleet::build(vec![profile], 6);

    let before = capman_obs::snapshot();
    let result = FleetRunner::new(FleetConfig {
        mode: CalibrationMode::Pool,
        batch: 2,
        ..FleetConfig::default()
    })
    .run(&fleet);
    let after = capman_obs::snapshot();
    let delta = |name: &str| counter(&after, name) - counter(&before, name);

    // --- Registry totals vs ShardThroughput ground truth, exactly. ---
    let agg = &result.aggregate;
    let shard_devices: u64 = agg.shards.iter().map(|s| s.devices).sum();
    let shard_ticks: u64 = agg.shards.iter().map(|s| s.ticks).sum();
    assert_eq!(delta("fleet_devices_total"), shard_devices);
    assert_eq!(delta("fleet_ticks_total"), shard_ticks);
    assert_eq!(delta("fleet_shards_total"), agg.shards.len() as u64);

    // --- Registry totals vs PoolCounters, exactly. ---
    assert_eq!(delta("pool_submitted_total"), agg.pool.submitted);
    assert_eq!(delta("pool_enqueued_total"), agg.pool.enqueued);
    assert_eq!(delta("pool_coalesced_total"), agg.pool.coalesced);
    assert_eq!(delta("pool_dropped_total"), agg.pool.dropped);
    assert_eq!(delta("pool_completed_total"), agg.pool.completed);
    assert!(agg.pool.completed > 0, "run must calibrate at least once");
    let adoptions: u64 = result.summaries.iter().map(|s| s.recalibrations).sum();
    assert_eq!(delta("pool_adoptions_total"), adoptions);
    assert_eq!(
        delta("calibrations_total"),
        agg.pool.completed,
        "every pooled solve runs the one shared calibrator"
    );
    assert_eq!(
        hist_count(&after, "pool_solve_us") - hist_count(&before, "pool_solve_us"),
        agg.pool.completed
    );
    assert_eq!(
        hist_count(&after, "adoption_staleness_s") - hist_count(&before, "adoption_staleness_s"),
        adoptions
    );
    // Every enqueue was matched by a dequeue: the depth gauge nets to 0.
    let gauge = |snap: &MetricsSnapshot| {
        snap.gauges
            .iter()
            .find(|(n, _, _)| n == "pool_queue_depth")
            .map(|(_, _, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(gauge(&after), gauge(&before));

    // --- The trace validates and its span counts match the counters.
    // `run()` drops the pool (joining its workers) before returning, so
    // every guard is closed by the time we drain. ---
    let drain = capman_obs::drain();
    assert_eq!(drain.dropped, 0, "rings must hold a small fleet's spans");
    validate(&drain.records).expect("spans well-nested per thread");
    let count = |label: &str| drain.records.iter().filter(|r| r.label == label).count() as u64;
    assert_eq!(count("fleet_run"), 1);
    assert_eq!(count("fleet_shard"), agg.shards.len() as u64);
    assert_eq!(count("pool_solve"), agg.pool.completed);
    assert_eq!(count("calibrate"), agg.pool.completed);
    assert_eq!(count("pool_request"), agg.pool.submitted);
    assert_eq!(count("pool_publish"), agg.pool.completed);
    assert_eq!(count("pool_adopt"), adoptions);
    // The request → publish → adopt hop counts tell one coherent story.
    assert!(count("pool_request") >= count("pool_publish"));

    // --- Exporters stay structurally valid on real data. ---
    let trace_json = chrome_trace(&drain);
    assert_eq!(
        trace_json.matches('{').count(),
        trace_json.matches('}').count()
    );
    assert!(trace_json.contains("\"traceEvents\""));
    assert!(trace_json.contains("\"name\": \"fleet_shard\""));
    assert!(trace_json.contains("\"name\": \"pool_adopt\""));
    let prom = prometheus_text(&after);
    assert!(prom.contains("# TYPE fleet_devices_total counter"));
    assert!(prom.contains("# TYPE pool_solve_us histogram"));
    assert!(prom.contains("pool_solve_us_bucket{le=\"+Inf\"}"));
    let json = metrics_json(&after);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(json.contains("\"metrics\": ["));
    assert!(json.contains(&format!("\"fleet_devices_total\": {}", shard_devices)));
    assert!(json.contains("\"pool_solve_us_p99\":"));
}
