//! Trace statistics.
//!
//! The paper's modelling hinges on demand *patterns*: surge frequency,
//! skewness, duty above the surge threshold. This module computes those
//! statistics for any trace, so workloads can be characterised the way
//! Section III characterises CAPMAN's target software ("arrivals are
//! frequent with a skewed distribution").

use serde::{Deserialize, Serialize};

use capman_device::power::{Demand, PowerModel};
use capman_device::states::DeviceState;

use crate::trace::Trace;

/// Aggregate statistics of a workload trace.
///
/// # Examples
///
/// ```
/// use capman_workload::stats::TraceStats;
/// use capman_workload::{generate, WorkloadKind};
/// use capman_device::power::PowerModel;
///
/// let trace = generate(WorkloadKind::Pcmark, 3000.0, 1);
/// let stats = TraceStats::analyze(&trace, &PowerModel::calibrated(8, 1.0), 2.6);
/// assert!(stats.surge_count > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Duration-weighted mean CPU utilisation, percent.
    pub mean_cpu_util: f64,
    /// Duration-weighted mean estimated device power, watts (awake
    /// state assumed).
    pub mean_power_w: f64,
    /// Peak estimated device power, watts.
    pub peak_power_w: f64,
    /// Fraction of time spent above the surge power threshold.
    pub surge_duty: f64,
    /// Number of surge onsets (upward crossings of the threshold).
    pub surge_count: usize,
    /// Mean gap between surge onsets, seconds (`inf` without surges).
    pub mean_surge_gap_s: f64,
    /// Coefficient of variation of the surge gaps — > 1 indicates a
    /// skewed (bursty) arrival process.
    pub surge_gap_cv: f64,
}

impl TraceStats {
    /// Analyse a trace with the given power model, using `threshold_w`
    /// as the surge power level (the scheduler's default is 1.5 W).
    ///
    /// # Panics
    ///
    /// Panics if `threshold_w` is not positive.
    pub fn analyze(trace: &Trace, model: &PowerModel, threshold_w: f64) -> Self {
        assert!(threshold_w > 0.0, "threshold must be positive");
        let awake = DeviceState::awake();
        let power_of = |demand: &Demand| model.device_power_mw(&awake, demand) / 1000.0;

        let mut mean_power = 0.0;
        let mut peak_power: f64 = 0.0;
        let mut surge_time = 0.0;
        let mut onsets: Vec<f64> = Vec::new();
        let mut prev_above = false;
        for seg in trace.segments() {
            let p = power_of(&seg.demand);
            mean_power += p * seg.duration_s;
            peak_power = peak_power.max(p);
            let above = p > threshold_w;
            if above {
                surge_time += seg.duration_s;
                if !prev_above {
                    onsets.push(seg.start_s);
                }
            }
            prev_above = above;
        }
        let horizon = trace.horizon_s();
        let gaps: Vec<f64> = onsets.windows(2).map(|w| w[1] - w[0]).collect();
        let mean_gap = if gaps.is_empty() {
            f64::INFINITY
        } else {
            gaps.iter().sum::<f64>() / gaps.len() as f64
        };
        let gap_cv = if gaps.len() < 2 || !mean_gap.is_finite() || mean_gap == 0.0 {
            0.0
        } else {
            let var = gaps.iter().map(|g| (g - mean_gap).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean_gap
        };

        TraceStats {
            mean_cpu_util: trace.mean_cpu_util(),
            mean_power_w: mean_power / horizon,
            peak_power_w: peak_power,
            surge_duty: surge_time / horizon,
            surge_count: onsets.len(),
            mean_surge_gap_s: mean_gap,
            surge_gap_cv: gap_cv,
        }
    }

    /// Whether the trace matches CAPMAN's target profile (Section III):
    /// frequent surges with a skewed arrival distribution.
    pub fn is_capman_target(&self) -> bool {
        self.surge_count >= 10 && self.surge_gap_cv > 0.3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate, WorkloadKind};
    use capman_device::power::PowerModel;

    fn stats(kind: WorkloadKind) -> TraceStats {
        let trace = generate(kind, 6000.0, 9);
        TraceStats::analyze(&trace, &PowerModel::calibrated(8, 1.0), 2.6)
    }

    #[test]
    fn geekbench_is_high_power_high_duty() {
        let s = stats(WorkloadKind::Geekbench);
        assert!(s.mean_power_w > 2.0, "mean {}", s.mean_power_w);
        assert!(s.mean_cpu_util > 90.0);
    }

    #[test]
    fn idle_has_no_surges() {
        let s = stats(WorkloadKind::IdleOn);
        assert_eq!(s.surge_count, 0);
        assert_eq!(s.surge_duty, 0.0);
        assert!(s.mean_surge_gap_s.is_infinite());
    }

    #[test]
    fn pcmark_matches_the_capman_target_profile() {
        let s = stats(WorkloadKind::Pcmark);
        assert!(s.surge_count >= 10, "surges {}", s.surge_count);
        assert!(
            s.is_capman_target(),
            "PCMark should be a CAPMAN target: {s:?}"
        );
    }

    #[test]
    fn video_surges_less_often_than_pcmark() {
        let v = stats(WorkloadKind::Video);
        let p = stats(WorkloadKind::Pcmark);
        assert!(v.surge_duty < p.surge_duty);
    }

    #[test]
    fn eta_orders_surge_duty() {
        let lo = stats(WorkloadKind::EtaStatic { eta: 20 });
        let hi = stats(WorkloadKind::EtaStatic { eta: 80 });
        assert!(hi.surge_duty >= lo.surge_duty);
    }

    #[test]
    fn peak_is_at_least_mean() {
        for kind in WorkloadKind::fig12() {
            let s = stats(kind);
            assert!(s.peak_power_w >= s.mean_power_w, "{kind:?}");
        }
    }
}
