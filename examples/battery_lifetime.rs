//! Multi-cycle lifetime: does CAPMAN's balanced depletion also age the
//! pack more gracefully?
//!
//! ```text
//! cargo run --release --example battery_lifetime
//! ```
//!
//! The paper evaluates single discharge cycles; Table I's *lifetime*
//! column invites the multi-cycle question. This example runs a few
//! complete discharge cycles (the pack is rebuilt fresh each cycle, as
//! if CC-CV recharged), feeds each cell's measured throughput and rate
//! into the cycle-aging model, and projects the pack's life: Dual
//! hammers the LITTLE cell, CAPMAN spreads the wear.

use capman::battery::chemistry::Chemistry;
use capman::battery::degradation::AgingModel;
use capman::core::config::SimConfig;
use capman::core::experiments::{run_policy_with, PolicyKind};
use capman::device::phone::PhoneProfile;
use capman::workload::WorkloadKind;

/// Mean discharge voltage used to convert joules to coulombs.
const MEAN_V: f64 = 3.6;

fn main() {
    let cycles = 4;
    println!("{cycles} full discharge cycles (eta-50% mix), wear per cell\n");
    println!(
        "{:<9} {:>10} {:>12} {:>12} {:>22}",
        "policy", "EFC big", "EFC LITTLE", "worn cell", "projected pack life"
    );
    for kind in [PolicyKind::Capman, PolicyKind::Dual] {
        let mut big_age = AgingModel::new(Chemistry::Nca, 2.5);
        let mut little_age = AgingModel::new(Chemistry::Lmo, 2.5);
        for cycle in 0..cycles {
            let config = SimConfig {
                max_horizon_s: 40_000.0, // cycles end on battery, not horizon
                tec_enabled: kind.has_tec(),
                ..SimConfig::paper()
            };
            let o = run_policy_with(
                kind,
                WorkloadKind::EtaStatic { eta: 50 },
                PhoneProfile::nexus(),
                cycle as u64,
                config,
            );
            let battery_c = (o.mean_hotspot_c - 12.0).max(25.0);
            let rate = |delivered_j: f64, active_s: f64| {
                if active_s > 0.0 {
                    (delivered_j / active_s / MEAN_V) / 2.5
                } else {
                    0.0
                }
            };
            big_age.record(
                o.big_delivered_j / MEAN_V,
                battery_c,
                rate(o.big_delivered_j, o.big_active_s),
            );
            little_age.record(
                o.little_delivered_j / MEAN_V,
                battery_c,
                rate(o.little_delivered_j, o.little_active_s),
            );
        }
        // Project: the pack is done when its first cell hits end of
        // life; wear accumulates linearly in this model.
        let project = |age: &AgingModel| {
            let per_cycle = age.equivalent_full_cycles() / cycles as f64;
            if per_cycle > 0.0 {
                AgingModel::rated_cycles(age.chemistry()) / per_cycle
            } else {
                f64::INFINITY
            }
        };
        let pack_life = project(&big_age).min(project(&little_age));
        let worn_first = if project(&big_age) < project(&little_age) {
            "big"
        } else {
            "LITTLE"
        };
        println!(
            "{:<9} {:>10.2} {:>12.2} {:>12} {:>16.0} cycles",
            kind.label(),
            big_age.equivalent_full_cycles(),
            little_age.equivalent_full_cycles(),
            worn_first,
            pack_life,
        );
    }
    println!("\n(Dual's LITTLE-first habit concentrates wear on the LITTLE cell; CAPMAN's");
    println!("balanced depletion spreads it — longer pack life for the same service)");
}
