//! Measured average state powers — Table III of the paper.
//!
//! "Average power costs of all hardware states in tested devices", in
//! milliwatts, measured on the prototype with an Agilent 34410A
//! multimeter. These constants calibrate the power models of Table II.

/// CPU power in the C0 (active) state, mW.
pub const CPU_C0_MW: f64 = 612.0;
/// CPU power in the C1 state, mW.
pub const CPU_C1_MW: f64 = 462.0;
/// CPU power in the C2 state, mW.
pub const CPU_C2_MW: f64 = 310.0;
/// CPU power asleep, mW.
pub const CPU_SLEEP_MW: f64 = 55.0;

/// Screen power when off, mW.
pub const SCREEN_OFF_MW: f64 = 22.0;
/// Screen power when on at the reference brightness, mW.
pub const SCREEN_ON_MW: f64 = 790.0;

/// WiFi power when idle, mW.
pub const WIFI_IDLE_MW: f64 = 60.0;
/// WiFi power when receiving (access), mW.
pub const WIFI_ACCESS_MW: f64 = 1284.0;
/// WiFi power when transmitting (send), mW.
pub const WIFI_SEND_MW: f64 = 1548.0;

/// TEC power when off, mW.
pub const TEC_OFF_MW: f64 = 0.0;
/// TEC driver power when on, mW, as listed in Table III.
///
/// Note: Table III lists 29.17 mW for the TEC, which is far below the
/// electrical power a Peltier module pumps at its rated current. We read
/// this as the *driver/control* overhead; the module's own pump power
/// comes from the physics model in `capman-thermal` (Table II, last row).
/// EXPERIMENTS.md discusses the discrepancy.
pub const TEC_ON_MW: f64 = 29.17;

/// Reference screen brightness level (0-255) at which
/// [`SCREEN_ON_MW`] was measured.
pub const SCREEN_REF_BRIGHTNESS: f64 = 180.0;

/// Reference packet rate (packets/s) at which [`WIFI_ACCESS_MW`] was
/// measured.
pub const WIFI_REF_ACCESS_PPS: f64 = 80.0;

/// Reference packet rate (packets/s) at which [`WIFI_SEND_MW`] was
/// measured.
pub const WIFI_REF_SEND_PPS: f64 = 160.0;

/// Packet-rate threshold `t` between the low and high WiFi power regimes
/// (Table II; the paper notes the switch near 100 kB of buffered data).
pub const WIFI_THRESHOLD_PPS: f64 = 100.0;

#[cfg(test)]
#[allow(clippy::assertions_on_constants)] // the point is to pin Table III
mod tests {
    use super::*;

    #[test]
    fn cpu_states_are_ordered_by_power() {
        assert!(CPU_SLEEP_MW < CPU_C2_MW);
        assert!(CPU_C2_MW < CPU_C1_MW);
        assert!(CPU_C1_MW < CPU_C0_MW);
    }

    #[test]
    fn wifi_states_are_ordered_by_power() {
        assert!(WIFI_IDLE_MW < WIFI_ACCESS_MW);
        assert!(WIFI_ACCESS_MW < WIFI_SEND_MW);
    }

    #[test]
    fn table_iii_values_match_paper() {
        assert_eq!(CPU_C0_MW, 612.0);
        assert_eq!(CPU_C1_MW, 462.0);
        assert_eq!(CPU_C2_MW, 310.0);
        assert_eq!(CPU_SLEEP_MW, 55.0);
        assert_eq!(SCREEN_OFF_MW, 22.0);
        assert_eq!(SCREEN_ON_MW, 790.0);
        assert_eq!(WIFI_IDLE_MW, 60.0);
        assert_eq!(WIFI_ACCESS_MW, 1284.0);
        assert_eq!(WIFI_SEND_MW, 1548.0);
        assert_eq!(TEC_OFF_MW, 0.0);
        assert_eq!(TEC_ON_MW, 29.17);
    }
}
