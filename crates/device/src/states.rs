//! Device power states and the composite state vector (Fig. 7).
//!
//! Each component exposes a small set of power states; the composite
//! [`DeviceState`] is the cartesian product, plus the active battery.
//! CAPMAN's MDP runs over this state space (the paper's finite MDP has
//! ~50 reachable state nodes out of the 96-element product).

use serde::{Deserialize, Serialize};
use std::fmt;

use capman_battery::chemistry::Class;

use crate::fsm::Action;

/// CPU power states (C-states plus deep sleep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CpuState {
    /// Deep sleep / suspend.
    Sleep,
    /// Deep idle (caches flushed).
    C2,
    /// Light idle (clock gated).
    C1,
    /// Active execution.
    C0,
}

impl CpuState {
    /// All CPU states, lowest power first.
    pub const ALL: [CpuState; 4] = [CpuState::Sleep, CpuState::C2, CpuState::C1, CpuState::C0];
}

/// Screen power states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ScreenState {
    /// Panel off.
    Off,
    /// Panel on (power depends on brightness).
    On,
}

impl ScreenState {
    /// All screen states.
    pub const ALL: [ScreenState; 2] = [ScreenState::Off, ScreenState::On];
}

/// WiFi power states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WifiState {
    /// Associated but idle.
    Idle,
    /// Receiving (low packet rate regime of Table II).
    Access,
    /// Transmitting (high packet rate regime).
    Send,
}

impl WifiState {
    /// All WiFi states.
    pub const ALL: [WifiState; 3] = [WifiState::Idle, WifiState::Access, WifiState::Send];
}

/// TEC power states (the module is driven on/off at rated current).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TecState {
    /// Module off.
    Off,
    /// Module on at rated current.
    On,
}

impl TecState {
    /// All TEC states.
    pub const ALL: [TecState; 2] = [TecState::Off, TecState::On];
}

/// The composite device power state — the MDP state vector of Fig. 8,
/// e.g. `{SLEEP, OFF, ..., big}` or `{C0, ON, ..., LITTLE}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceState {
    /// CPU state.
    pub cpu: CpuState,
    /// Screen state.
    pub screen: ScreenState,
    /// WiFi state.
    pub wifi: WifiState,
    /// TEC state.
    pub tec: TecState,
    /// The battery carrying the load.
    pub battery: Class,
}

/// Number of distinct composite device states.
pub const STATE_COUNT: usize = 4 * 2 * 3 * 2 * 2;

impl DeviceState {
    /// The suspended phone: everything asleep, big battery selected.
    pub fn asleep() -> Self {
        DeviceState {
            cpu: CpuState::Sleep,
            screen: ScreenState::Off,
            wifi: WifiState::Idle,
            tec: TecState::Off,
            battery: Class::Big,
        }
    }

    /// The fully awake phone serving an interactive app.
    pub fn awake() -> Self {
        DeviceState {
            cpu: CpuState::C0,
            screen: ScreenState::On,
            wifi: WifiState::Access,
            tec: TecState::Off,
            battery: Class::Big,
        }
    }

    /// Dense index in `[0, STATE_COUNT)` for array-backed MDPs.
    pub fn index(&self) -> usize {
        let cpu = match self.cpu {
            CpuState::Sleep => 0,
            CpuState::C2 => 1,
            CpuState::C1 => 2,
            CpuState::C0 => 3,
        };
        let screen = match self.screen {
            ScreenState::Off => 0,
            ScreenState::On => 1,
        };
        let wifi = match self.wifi {
            WifiState::Idle => 0,
            WifiState::Access => 1,
            WifiState::Send => 2,
        };
        let tec = match self.tec {
            TecState::Off => 0,
            TecState::On => 1,
        };
        let battery = match self.battery {
            Class::Big => 0,
            Class::Little => 1,
        };
        (((cpu * 2 + screen) * 3 + wifi) * 2 + tec) * 2 + battery
    }

    /// Decode a dense index back into a state.
    ///
    /// # Panics
    ///
    /// Panics if `index >= STATE_COUNT`.
    pub fn from_index(index: usize) -> Self {
        assert!(index < STATE_COUNT, "state index out of range: {index}");
        let battery = if index.is_multiple_of(2) {
            Class::Big
        } else {
            Class::Little
        };
        let rest = index / 2;
        let tec = if rest.is_multiple_of(2) {
            TecState::Off
        } else {
            TecState::On
        };
        let rest = rest / 2;
        let wifi = WifiState::ALL[rest % 3];
        let rest = rest / 3;
        let screen = ScreenState::ALL[rest % 2];
        let rest = rest / 2;
        let cpu = CpuState::ALL[rest % 4];
        DeviceState {
            cpu,
            screen,
            wifi,
            tec,
            battery,
        }
    }

    /// Iterate over every composite state.
    pub fn all() -> impl Iterator<Item = DeviceState> {
        (0..STATE_COUNT).map(DeviceState::from_index)
    }

    /// Apply an action, returning the successor state (the FSM of Fig. 7).
    pub fn apply(&self, action: Action) -> DeviceState {
        crate::fsm::transition(*self, action)
    }

    /// Returns this state with a different active battery.
    pub fn with_battery(mut self, battery: Class) -> Self {
        self.battery = battery;
        self
    }

    /// Whether the phone is fully suspended (CPU asleep, screen off).
    pub fn is_suspended(&self) -> bool {
        self.cpu == CpuState::Sleep && self.screen == ScreenState::Off
    }
}

impl Default for DeviceState {
    fn default() -> Self {
        DeviceState::asleep()
    }
}

impl fmt::Display for DeviceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{:?}, {:?}, {:?}, TEC {:?}, {}}}",
            self.cpu, self.screen, self.wifi, self.tec, self.battery
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip_is_bijective() {
        let mut seen = [false; STATE_COUNT];
        for state in DeviceState::all() {
            let i = state.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
            assert_eq!(DeviceState::from_index(i), state);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn state_count_is_96() {
        assert_eq!(STATE_COUNT, 96);
        assert_eq!(DeviceState::all().count(), 96);
    }

    #[test]
    fn asleep_state_is_suspended() {
        let s = DeviceState::asleep();
        assert!(s.is_suspended());
        assert_eq!(s.battery, Class::Big);
    }

    #[test]
    fn awake_state_is_not_suspended() {
        assert!(!DeviceState::awake().is_suspended());
    }

    #[test]
    fn with_battery_changes_only_battery() {
        let s = DeviceState::asleep().with_battery(Class::Little);
        assert_eq!(s.battery, Class::Little);
        assert_eq!(s.cpu, CpuState::Sleep);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_out_of_range() {
        let _ = DeviceState::from_index(STATE_COUNT);
    }

    #[test]
    fn display_matches_paper_notation() {
        let s = DeviceState::asleep();
        let text = s.to_string();
        assert!(text.contains("Sleep"));
        assert!(text.contains("big"));
    }
}
