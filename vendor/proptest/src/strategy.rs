//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// How many times filtering combinators retry before giving up.
const FILTER_RETRIES: usize = 10_000;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values `f` maps to `Some`, regenerating otherwise.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.new_value(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// The `prop_filter_map` combinator.
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.new_value(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map '{}' rejected every candidate", self.whence);
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].new_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_case_rng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = new_case_rng(0);
        for _ in 0..1000 {
            let x = (3usize..9).new_value(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0.5f64..=1.5).new_value(&mut rng);
            assert!((0.5..=1.5).contains(&y));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = new_case_rng(1);
        let s = (0u8..10, 0u8..10).prop_map(|(a, b)| a as u16 + b as u16);
        for _ in 0..100 {
            assert!(s.new_value(&mut rng) < 20);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = new_case_rng(2);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut saw = [false; 3];
        for _ in 0..200 {
            saw[u.new_value(&mut rng) as usize] = true;
        }
        assert!(saw[1] && saw[2]);
    }

    #[test]
    #[should_panic(expected = "rejected every candidate")]
    fn filter_map_reports_starvation() {
        let mut rng = new_case_rng(3);
        let s = (0u8..10).prop_filter_map("impossible", |_| None::<u8>);
        let _ = s.new_value(&mut rng);
    }
}
