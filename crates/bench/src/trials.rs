//! Bridge from bench measurements to lab trials (`--trials DIR`).
//!
//! Every `bench_*` binary can re-emit its per-rep samples in the
//! experiment harness's `result.json` schema: one trial per (fixture ×
//! metric arm × rep), plus the aggregated `analysis.json` table. That
//! puts hand-rolled benchmarks and declarative sweeps in the same
//! on-disk shape, so the same tooling diffs either.

use std::path::Path;

use capman_lab::{write_results, AnalysisTable, TrialOutcome, TrialResult};

/// One emission group: a fixture (the task), a metric arm (the
/// variant), and its per-rep samples.
#[derive(Debug, Clone)]
pub struct SampleGroup {
    /// Task id, e.g. `states-512`.
    pub task_id: String,
    /// Variant name, e.g. `csr_serial`.
    pub variant: String,
    /// Objective name carried into each trial, e.g. `csr_serial_ms`.
    pub objective_name: String,
    /// One objective value per rep, in rep order.
    pub samples: Vec<f64>,
}

impl SampleGroup {
    /// Build a group from a metric's rep samples.
    pub fn new(task_id: &str, variant: &str, objective_name: &str, samples: &[f64]) -> SampleGroup {
        SampleGroup {
            task_id: task_id.to_string(),
            variant: variant.to_string(),
            objective_name: objective_name.to_string(),
            samples: samples.to_vec(),
        }
    }
}

/// Expand groups into one [`TrialResult`] per rep.
pub fn to_trials(groups: &[SampleGroup]) -> Vec<TrialResult> {
    let mut trials = Vec::new();
    for g in groups {
        for (rep, &value) in g.samples.iter().enumerate() {
            trials.push(TrialResult {
                trial_id: format!("{}-{}-r{rep:02}", g.task_id, g.variant),
                task_id: g.task_id.clone(),
                variant: g.variant.clone(),
                rep,
                seed: rep as u64,
                outcome: TrialOutcome::Success,
                objective_name: g.objective_name.clone(),
                objective: value,
                metrics: Vec::new(),
            });
        }
    }
    trials
}

/// Write `trials/<id>/result.json` per rep plus `analysis.json` under
/// `dir`. Groups with no samples contribute nothing.
pub fn emit(dir: &Path, experiment: &str, groups: &[SampleGroup]) -> Result<(), String> {
    let trials = to_trials(groups);
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    write_results(&trials, dir)?;
    let table = AnalysisTable::from_trials(experiment, &trials);
    let path = dir.join("analysis.json");
    std::fs::write(&path, table.to_json().to_pretty())
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_expand_to_one_trial_per_rep() {
        let groups = vec![
            SampleGroup::new("states-512", "csr_serial", "csr_serial_ms", &[3.0, 3.2]),
            SampleGroup::new("states-512", "nested", "nested_ms", &[9.0]),
        ];
        let trials = to_trials(&groups);
        assert_eq!(trials.len(), 3);
        assert_eq!(trials[0].trial_id, "states-512-csr_serial-r00");
        assert_eq!(trials[1].rep, 1);
        assert_eq!(trials[2].variant, "nested");
        assert_eq!(trials[2].objective, 9.0);
    }

    #[test]
    fn emit_round_trips_through_the_lab_reader() {
        let dir = std::env::temp_dir().join(format!("capman-trials-{}", std::process::id()));
        let groups = vec![SampleGroup::new(
            "states-64",
            "engine",
            "engine_ms",
            &[1.5, 1.7],
        )];
        emit(&dir, "bench_mdp", &groups).expect("emit");
        let back = capman_lab::read_results(&dir).expect("read back");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].task_id, "states-64");
        let analysis = std::fs::read_to_string(dir.join("analysis.json")).expect("analysis");
        let doc = capman_lab::json::parse(&analysis).expect("valid JSON");
        assert_eq!(doc.str("experiment"), Some("bench_mdp"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
