//! Thevenin equivalent-circuit voltage model.
//!
//! The terminal voltage of a loaded cell is the open-circuit voltage minus
//! the ohmic drop over the series resistance `R0` and the polarization
//! voltage over one RC pair:
//!
//! ```text
//! V_term = OCV(SoC) - I * R0(T) - V_rc
//! dV_rc/dt = (I * R_rc - V_rc) / tau
//! ```
//!
//! The instantaneous `I * R0` drop followed by the slower RC transient is
//! exactly the sharp edge of the V-edge phenomenon (Fig. 3); the partial
//! recovery comes from the KiBaM available-well head feeding the OCV term.

use serde::{Deserialize, Serialize};

use crate::error::BatteryError;

/// Reference temperature for the resistance model, degrees Celsius.
pub const REFERENCE_TEMP_C: f64 = 25.0;

/// A series resistance plus single-RC-pair polarization model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thevenin {
    r0: f64,
    rc_r: f64,
    tau: f64,
    v_rc: f64,
}

impl Thevenin {
    /// Fractional change of `R0` per Kelvin below the reference
    /// temperature (cold cells are more resistive).
    const COLD_COEFF_PER_K: f64 = 0.015;
    /// Fractional change of `R0` per Kelvin above the reference
    /// temperature (warm electrolytes conduct slightly better).
    const WARM_COEFF_PER_K: f64 = 0.004;
    /// Lower clamp on the temperature scaling of `R0`.
    const MIN_SCALE: f64 = 0.6;
    /// Upper clamp on the temperature scaling of `R0`.
    const MAX_SCALE: f64 = 3.0;

    /// Create a relaxed (zero polarization) circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if any of `r0_ohm`, `rc_r_ohm`, `rc_tau_s` is not
    /// positive.
    pub fn new(r0_ohm: f64, rc_r_ohm: f64, rc_tau_s: f64) -> Result<Self, BatteryError> {
        for (name, value) in [
            ("r0_ohm", r0_ohm),
            ("rc_r_ohm", rc_r_ohm),
            ("rc_tau_s", rc_tau_s),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(BatteryError::InvalidParameter { name, value });
            }
        }
        Ok(Thevenin {
            r0: r0_ohm,
            rc_r: rc_r_ohm,
            tau: rc_tau_s,
            v_rc: 0.0,
        })
    }

    /// The series resistance at `temp_c`, in ohms.
    pub fn r0_at(&self, temp_c: f64) -> f64 {
        let dt = temp_c - REFERENCE_TEMP_C;
        let scale = if dt < 0.0 {
            1.0 - dt * Self::COLD_COEFF_PER_K // dt negative => scale > 1
        } else {
            1.0 - dt * Self::WARM_COEFF_PER_K
        };
        self.r0 * scale.clamp(Self::MIN_SCALE, Self::MAX_SCALE)
    }

    /// Effective total resistance seen by a *sustained* load: `R0 + R_rc`.
    pub fn steady_resistance(&self, temp_c: f64) -> f64 {
        self.r0_at(temp_c) + self.rc_r
    }

    /// Terminal voltage for the given OCV, load current and temperature,
    /// using the current polarization state.
    pub fn terminal_voltage(&self, ocv: f64, current_a: f64, temp_c: f64) -> f64 {
        ocv - current_a * self.r0_at(temp_c) - self.v_rc
    }

    /// Advance the polarization state by `dt` seconds at `current_a`.
    ///
    /// Uses the exact exponential solution of the first-order RC dynamics,
    /// so any step size is stable.
    pub fn step(&mut self, current_a: f64, dt: f64) {
        let target = current_a * self.rc_r;
        let alpha = (-dt / self.tau).exp();
        self.v_rc = target + (self.v_rc - target) * alpha;
    }

    /// The present polarization voltage, volts.
    pub fn polarization_v(&self) -> f64 {
        self.v_rc
    }

    /// Ohmic heat dissipated at `current_a`, watts: `I^2 R0 + V_rc I`.
    pub fn heat_w(&self, current_a: f64, temp_c: f64) -> f64 {
        current_a * current_a * self.r0_at(temp_c) + self.v_rc.abs() * current_a
    }

    /// Reset the polarization state (e.g. after a long rest).
    pub fn relax(&mut self) {
        self.v_rc = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit() -> Thevenin {
        Thevenin::new(0.030, 0.015, 6.0).expect("valid")
    }

    #[test]
    fn instant_drop_is_ohmic_only() {
        let c = circuit();
        let v = c.terminal_voltage(3.7, 2.0, REFERENCE_TEMP_C);
        assert!((v - (3.7 - 2.0 * 0.030)).abs() < 1e-12);
    }

    #[test]
    fn polarization_converges_to_ir() {
        let mut c = circuit();
        for _ in 0..1000 {
            c.step(2.0, 1.0);
        }
        assert!((c.polarization_v() - 2.0 * 0.015).abs() < 1e-6);
    }

    #[test]
    fn polarization_decays_at_rest() {
        let mut c = circuit();
        c.step(5.0, 60.0);
        let loaded = c.polarization_v();
        assert!(loaded > 0.0);
        c.step(0.0, 60.0);
        assert!(c.polarization_v() < loaded * 0.01);
    }

    #[test]
    fn cold_increases_resistance_warm_decreases() {
        let c = circuit();
        assert!(c.r0_at(0.0) > c.r0_at(25.0));
        assert!(c.r0_at(45.0) < c.r0_at(25.0));
        assert!(c.r0_at(-200.0) <= 0.030 * 3.0 + 1e-12);
        assert!(c.r0_at(500.0) >= 0.030 * 0.6 - 1e-12);
    }

    #[test]
    fn heat_grows_quadratically_with_current() {
        let c = circuit();
        let h1 = c.heat_w(1.0, 25.0);
        let h4 = c.heat_w(2.0, 25.0);
        assert!((h4 / h1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn exact_step_is_stable_for_huge_dt() {
        let mut c = circuit();
        c.step(3.0, 1e9);
        assert!((c.polarization_v() - 3.0 * 0.015).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Thevenin::new(0.0, 0.1, 1.0).is_err());
        assert!(Thevenin::new(0.1, -0.1, 1.0).is_err());
        assert!(Thevenin::new(0.1, 0.1, 0.0).is_err());
    }

    #[test]
    fn relax_clears_polarization() {
        let mut c = circuit();
        c.step(4.0, 100.0);
        c.relax();
        assert_eq!(c.polarization_v(), 0.0);
    }
}
