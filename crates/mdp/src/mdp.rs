//! The finite Markov decision process `M = {S, A, T, R}`.
//!
//! States and actions are dense indices; the transition function `T` and
//! reward function `R` are stored per `(state, action)` pair as a sparse
//! list of `(successor, probability, reward)` entries, with rewards
//! normalised to `[0, 1]` as in the paper.
//!
//! # Storage layout
//!
//! Internally the MDP is a CSR (compressed sparse row) structure: every
//! outcome lives in one contiguous arena, indexed by a `row_ptr` table
//! with one row per `(state, action)` pair, and the available actions of
//! each state are packed into a second arena indexed per state. The
//! Bellman solvers, the q-learning driver and the similarity engine all
//! sweep these rows millions of times per calibration, so the layout
//! buys three things over the naive `Vec<Vec<Vec<Outcome>>>` nesting:
//!
//! * `outcomes(s, a)` is two loads into one flat allocation instead of a
//!   three-level pointer chase through per-pair heap vectors;
//! * `available_actions(s)` walks a packed slice instead of filtering
//!   all `|A|` actions through `Vec::is_empty` on every sweep;
//! * `is_absorbing(s)` and `n_action_nodes()` are O(1) pointer
//!   arithmetic.
//!
//! On top of the arena the builder lays out a structure-of-arrays mirror
//! for the Bellman sweep itself ([`SolverView`]): successor indices and
//! probabilities in two dense arrays (12 bytes per outcome instead of
//! the 24-byte [`Outcome`]), plus the expected immediate reward of every
//! action node precomputed once. A sweep then reduces to the SpMV-shaped
//! `R(a) + rho * sum_i p_i * V[succ_i]` with no reward loads at all.
//!
//! The public API is unchanged from the nested layout;
//! [`crate::reference::NestedMdp`] keeps the old representation alive as
//! a test/bench oracle.

use serde::{Deserialize, Serialize};

/// One probabilistic outcome of taking an action.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Successor state index.
    pub next: usize,
    /// Transition probability.
    pub prob: f64,
    /// Reward in `[0, 1]`.
    pub reward: f64,
}

/// A finite MDP with dense state/action indices, stored in CSR form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mdp {
    n_states: usize,
    n_actions: usize,
    /// All outcomes, contiguous, rows ordered by `(state, action)`.
    arena: Vec<Outcome>,
    /// Row bounds: the outcomes of `(s, a)` live in
    /// `arena[row_ptr[s * n_actions + a]..row_ptr[s * n_actions + a + 1]]`.
    row_ptr: Vec<usize>,
    /// Packed available actions, rows ordered by state.
    actions: Vec<u32>,
    /// State bounds: the available actions of `s` live in
    /// `actions[action_ptr[s]..action_ptr[s + 1]]`.
    action_ptr: Vec<usize>,
    /// Successor per outcome, arena order (structure-of-arrays mirror).
    succ: Vec<u32>,
    /// Probability per outcome, arena order (structure-of-arrays mirror).
    prob: Vec<f64>,
    /// Arena offsets per action node: the outcomes of the `k`-th packed
    /// action node live in `arena[node_ptr[k]..node_ptr[k + 1]]`. Valid
    /// because empty rows contribute nothing to the arena, so non-empty
    /// rows are contiguous in packed-action order.
    node_ptr: Vec<usize>,
    /// Expected immediate reward per action node, precomputed from the
    /// normalised probabilities in arena order.
    node_reward: Vec<f64>,
}

/// Borrowed structure-of-arrays view of the Bellman hot path, indexed by
/// packed action node: the `k`-th node of state `s` (for `k` in
/// `action_ptr[s]..action_ptr[s + 1]`) has outcomes
/// `(succ[i], prob[i])` for `i` in `node_ptr[k]..node_ptr[k + 1]` and
/// expected immediate reward `node_reward[k]`.
pub(crate) struct SolverView<'a> {
    pub succ: &'a [u32],
    pub prob: &'a [f64],
    pub node_ptr: &'a [usize],
    pub node_reward: &'a [f64],
    pub action_ptr: &'a [usize],
}

impl Mdp {
    /// Number of states `|S|`.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions `|A|`.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// The outcomes of taking `action` in `state` (empty if unavailable).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn outcomes(&self, state: usize, action: usize) -> &[Outcome] {
        assert!(state < self.n_states, "state out of range");
        assert!(action < self.n_actions, "action out of range");
        let row = state * self.n_actions + action;
        &self.arena[self.row_ptr[row]..self.row_ptr[row + 1]]
    }

    /// Actions available in `state`, ascending.
    pub fn available_actions(&self, state: usize) -> impl Iterator<Item = usize> + '_ {
        self.action_list(state).iter().map(|&a| a as usize)
    }

    /// The packed list of actions available in `state`, ascending — the
    /// zero-cost form of [`available_actions`](Mdp::available_actions)
    /// for hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn action_list(&self, state: usize) -> &[u32] {
        assert!(state < self.n_states, "state out of range");
        &self.actions[self.action_ptr[state]..self.action_ptr[state + 1]]
    }

    /// A state with no available actions is *absorbing* (the paper's
    /// target states for battery scheduling). O(1).
    pub fn is_absorbing(&self, state: usize) -> bool {
        assert!(state < self.n_states, "state out of range");
        self.action_ptr[state] == self.action_ptr[state + 1]
    }

    /// Expected immediate reward of `(state, action)`.
    pub fn expected_reward(&self, state: usize, action: usize) -> f64 {
        self.outcomes(state, action)
            .iter()
            .map(|o| o.prob * o.reward)
            .sum()
    }

    /// Total number of `(state, action)` pairs with outcomes — the number
    /// of action nodes in the graph representation. O(1).
    pub fn n_action_nodes(&self) -> usize {
        self.actions.len()
    }

    /// Total number of outcomes (transition edges) across all pairs. O(1).
    pub fn n_outcomes(&self) -> usize {
        self.arena.len()
    }

    /// The structure-of-arrays view the Bellman sweep iterates.
    pub(crate) fn solver_view(&self) -> SolverView<'_> {
        SolverView {
            succ: &self.succ,
            prob: &self.prob,
            node_ptr: &self.node_ptr,
            node_reward: &self.node_reward,
            action_ptr: &self.action_ptr,
        }
    }
}

/// A full replacement for one `(state, action)` row, consumed by
/// [`Mdp::patch_rows`]. `outcomes` carries raw weights exactly like
/// [`MdpBuilder::transition`] — visit counts or probabilities — and is
/// normalised inside the patch with the same arithmetic the builder
/// uses, so a patched MDP is bitwise identical to a full rebuild.
#[derive(Debug, Clone, PartialEq)]
pub struct RowPatch {
    /// Owning state of the row.
    pub state: usize,
    /// Action of the row.
    pub action: usize,
    /// The complete new outcome list (raw weights, insertion order).
    /// An empty list deletes the row (the action becomes unavailable).
    pub outcomes: Vec<Outcome>,
}

impl Mdp {
    /// Rebuild only the given rows in place, leaving every other row's
    /// storage untouched.
    ///
    /// When every patched row keeps its outcome count (and no row
    /// appears or disappears), the arena, the SoA mirrors and the
    /// per-node expected rewards are overwritten in place — the
    /// steady-state recalibration path allocates nothing. Otherwise the
    /// CSR arrays are spliced: clean rows are copied bitwise and dirty
    /// rows are laid out exactly as [`MdpBuilder::build`] would.
    ///
    /// Either way the result is bitwise equal (`==`) to rebuilding the
    /// whole MDP from scratch with the patched transition table, because
    /// per-row normalisation (`w_i / sum w`) and the expected-reward
    /// reduction run in the same order with the same operations.
    ///
    /// Returns `true` when the zero-allocation in-place path was taken.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices, duplicate `(state, action)` rows
    /// in `patches`, non-positive/non-finite weights, or rewards outside
    /// `[0, 1]` — the same validation the builder applies.
    pub fn patch_rows(&mut self, patches: &[RowPatch]) -> bool {
        for p in patches {
            assert!(p.state < self.n_states, "patch state out of range");
            assert!(p.action < self.n_actions, "patch action out of range");
            for o in &p.outcomes {
                assert!(o.next < self.n_states, "successor out of range");
                assert!(
                    o.prob > 0.0 && o.prob.is_finite(),
                    "probability/count weight must be positive and finite"
                );
                assert!(
                    (0.0..=1.0).contains(&o.reward),
                    "reward must be normalised to [0, 1]"
                );
            }
        }
        let mut order: Vec<usize> = (0..patches.len()).collect();
        order.sort_by_key(|&i| (patches[i].state, patches[i].action));
        for w in order.windows(2) {
            let (a, b) = (&patches[w[0]], &patches[w[1]]);
            assert!(
                (a.state, a.action) != (b.state, b.action),
                "duplicate patch for row ({}, {})",
                a.state,
                a.action
            );
        }
        let in_place = patches.iter().all(|p| {
            let row = p.state * self.n_actions + p.action;
            self.row_ptr[row + 1] - self.row_ptr[row] == p.outcomes.len()
        });
        if in_place {
            for p in patches {
                if p.outcomes.is_empty() {
                    continue; // empty row replaced by empty row: no-op
                }
                let row = p.state * self.n_actions + p.action;
                let lo = self.row_ptr[row];
                let total: f64 = p.outcomes.iter().map(|o| o.prob).sum();
                for (i, o) in p.outcomes.iter().enumerate() {
                    let prob = o.prob / total;
                    self.arena[lo + i] = Outcome { prob, ..*o };
                    self.succ[lo + i] = o.next as u32;
                    self.prob[lo + i] = prob;
                }
                let hi = lo + p.outcomes.len();
                let base = self.action_ptr[p.state];
                let k = base
                    + self.actions[base..self.action_ptr[p.state + 1]]
                        .binary_search(&(p.action as u32))
                        .expect("non-empty row must have a packed action node");
                self.node_reward[k] = self.arena[lo..hi].iter().map(|o| o.prob * o.reward).sum();
            }
            return true;
        }
        self.splice_rows(patches, &order);
        false
    }

    /// The slow patch path: re-lay the CSR arrays, copying clean rows
    /// bitwise and normalising dirty rows exactly like the builder.
    fn splice_rows(&mut self, patches: &[RowPatch], order: &[usize]) {
        let dirty_edges: usize = order.iter().map(|&i| patches[i].outcomes.len()).sum();
        let clean_edges: usize = order
            .iter()
            .map(|&i| {
                let p = &patches[i];
                let row = p.state * self.n_actions + p.action;
                self.row_ptr[row + 1] - self.row_ptr[row]
            })
            .sum();
        let n_edges = self.arena.len() - clean_edges + dirty_edges;
        let mut arena = Vec::with_capacity(n_edges);
        let mut row_ptr = Vec::with_capacity(self.n_states * self.n_actions + 1);
        let mut actions = Vec::with_capacity(self.actions.len());
        let mut action_ptr = Vec::with_capacity(self.n_states + 1);
        let mut succ = Vec::with_capacity(n_edges);
        let mut prob = Vec::with_capacity(n_edges);
        let mut node_ptr = Vec::with_capacity(self.node_ptr.len());
        let mut node_reward = Vec::with_capacity(self.node_reward.len());
        row_ptr.push(0);
        action_ptr.push(0);
        let mut pending = order.iter().map(|&i| &patches[i]).peekable();
        let mut scratch: Vec<Outcome> = Vec::new();
        for s in 0..self.n_states {
            let mut old_k = self.action_ptr[s];
            for a in 0..self.n_actions {
                let row = s * self.n_actions + a;
                let old = &self.arena[self.row_ptr[row]..self.row_ptr[row + 1]];
                let patched = match pending.next_if(|p| (p.state, p.action) == (s, a)) {
                    Some(p) => {
                        // Normalise into scratch with the builder's
                        // exact per-row arithmetic.
                        scratch.clear();
                        scratch.extend_from_slice(&p.outcomes);
                        let total: f64 = scratch.iter().map(|o| o.prob).sum();
                        if total > 0.0 {
                            for o in scratch.iter_mut() {
                                o.prob /= total;
                            }
                        }
                        true
                    }
                    None => false,
                };
                let was_occupied = !old.is_empty();
                let outs: &[Outcome] = if patched { &scratch } else { old };
                if !outs.is_empty() {
                    actions.push(a as u32);
                    node_ptr.push(arena.len());
                    // A clean row keeps its precomputed expected reward
                    // bit-for-bit; a dirty row recomputes it the way the
                    // builder does.
                    node_reward.push(if patched {
                        outs.iter().map(|o| o.prob * o.reward).sum()
                    } else {
                        self.node_reward[old_k]
                    });
                }
                if was_occupied {
                    old_k += 1;
                }
                arena.extend_from_slice(outs);
                succ.extend(outs.iter().map(|o| o.next as u32));
                prob.extend(outs.iter().map(|o| o.prob));
                row_ptr.push(arena.len());
            }
            action_ptr.push(actions.len());
        }
        node_ptr.push(arena.len());
        self.arena = arena;
        self.row_ptr = row_ptr;
        self.actions = actions;
        self.action_ptr = action_ptr;
        self.succ = succ;
        self.prob = prob;
        self.node_ptr = node_ptr;
        self.node_reward = node_reward;
    }
}

/// A validating builder for [`Mdp`].
#[derive(Debug, Clone)]
pub struct MdpBuilder {
    n_states: usize,
    n_actions: usize,
    outcomes: Vec<Vec<Vec<Outcome>>>,
}

impl MdpBuilder {
    /// Start a builder for `n_states` states and `n_actions` actions.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(n_states: usize, n_actions: usize) -> Self {
        assert!(n_states > 0, "need at least one state");
        assert!(n_actions > 0, "need at least one action");
        MdpBuilder {
            n_states,
            n_actions,
            outcomes: vec![vec![Vec::new(); n_actions]; n_states],
        }
    }

    /// Add an outcome: taking `action` in `state` reaches `next` with
    /// weight `prob` (a probability or a raw visit count — weights are
    /// normalised per `(state, action)` at [`build`](MdpBuilder::build))
    /// and reward `reward`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range, `prob` is not positive and
    /// finite, or `reward` is not in `[0, 1]`.
    pub fn transition(
        &mut self,
        state: usize,
        action: usize,
        next: usize,
        prob: f64,
        reward: f64,
    ) -> &mut Self {
        assert!(state < self.n_states, "state out of range");
        assert!(action < self.n_actions, "action out of range");
        assert!(next < self.n_states, "successor out of range");
        assert!(
            prob > 0.0 && prob.is_finite(),
            "probability/count weight must be positive and finite"
        );
        assert!(
            (0.0..=1.0).contains(&reward),
            "reward must be normalised to [0, 1]"
        );
        self.outcomes[state][action].push(Outcome { next, prob, reward });
        self
    }

    /// Finish the MDP, flattening the accumulated nesting into CSR form.
    ///
    /// Outcome probabilities of each `(state, action)` are normalised to
    /// sum to one, so callers may supply raw visit counts (this is how the
    /// profiler feeds observed transition statistics in). Normalisation
    /// happens per pair in insertion order, so the stored probabilities
    /// are bitwise identical to what the nested layout produced.
    pub fn build(mut self) -> Mdp {
        assert!(
            u32::try_from(self.n_states).is_ok(),
            "state indices must fit in u32 for the packed successor array"
        );
        for per_state in &mut self.outcomes {
            for outs in per_state {
                let total: f64 = outs.iter().map(|o| o.prob).sum();
                if total > 0.0 {
                    for o in outs.iter_mut() {
                        o.prob /= total;
                    }
                }
            }
        }
        let n_edges: usize = self
            .outcomes
            .iter()
            .flat_map(|per_state| per_state.iter().map(Vec::len))
            .sum();
        let mut arena = Vec::with_capacity(n_edges);
        let mut row_ptr = Vec::with_capacity(self.n_states * self.n_actions + 1);
        let mut actions = Vec::new();
        let mut action_ptr = Vec::with_capacity(self.n_states + 1);
        let mut succ = Vec::with_capacity(n_edges);
        let mut prob = Vec::with_capacity(n_edges);
        let mut node_ptr = Vec::new();
        let mut node_reward = Vec::new();
        row_ptr.push(0);
        action_ptr.push(0);
        for per_state in &self.outcomes {
            for (a, outs) in per_state.iter().enumerate() {
                if !outs.is_empty() {
                    actions.push(a as u32);
                    node_ptr.push(arena.len());
                    node_reward.push(outs.iter().map(|o| o.prob * o.reward).sum());
                }
                arena.extend_from_slice(outs);
                succ.extend(outs.iter().map(|o| o.next as u32));
                prob.extend(outs.iter().map(|o| o.prob));
                row_ptr.push(arena.len());
            }
            action_ptr.push(actions.len());
        }
        node_ptr.push(arena.len());
        Mdp {
            n_states: self.n_states,
            n_actions: self.n_actions,
            arena,
            row_ptr,
            actions,
            action_ptr,
            succ,
            prob,
            node_ptr,
            node_reward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Mdp {
        // 0 --a0--> 1 --a0--> 2 (absorbing)
        let mut b = MdpBuilder::new(3, 2);
        b.transition(0, 0, 1, 1.0, 0.5);
        b.transition(1, 0, 2, 1.0, 1.0);
        b.build()
    }

    #[test]
    fn absorbing_detection() {
        let m = chain();
        assert!(!m.is_absorbing(0));
        assert!(!m.is_absorbing(1));
        assert!(m.is_absorbing(2));
    }

    #[test]
    fn available_actions_are_sparse() {
        let m = chain();
        assert_eq!(m.available_actions(0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(m.available_actions(2).count(), 0);
    }

    #[test]
    fn probabilities_are_normalised_from_counts() {
        let mut b = MdpBuilder::new(2, 1);
        // Raw counts: 3 visits to state 0, 1 to state 1.
        b.transition(0, 0, 0, 0.75, 0.0);
        b.transition(0, 0, 1, 0.25, 1.0);
        let m = b.build();
        let total: f64 = m.outcomes(0, 0).iter().map(|o| o.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_reward_weighs_probabilities() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 0, 0.5, 0.0);
        b.transition(0, 0, 1, 0.5, 1.0);
        let m = b.build();
        assert!((m.expected_reward(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn action_node_count() {
        assert_eq!(chain().n_action_nodes(), 2);
    }

    #[test]
    fn packed_action_lists_mirror_the_iterator() {
        let m = chain();
        for s in 0..m.n_states() {
            let packed: Vec<usize> = m.action_list(s).iter().map(|&a| a as usize).collect();
            let iterated: Vec<usize> = m.available_actions(s).collect();
            assert_eq!(packed, iterated, "state {s}");
        }
        assert_eq!(m.n_outcomes(), 2);
    }

    #[test]
    fn empty_rows_are_empty_slices() {
        let m = chain();
        assert!(m.outcomes(0, 1).is_empty());
        assert!(m.outcomes(2, 0).is_empty());
        assert!(m.outcomes(2, 1).is_empty());
    }

    #[test]
    fn solver_view_mirrors_the_arena() {
        let mut b = MdpBuilder::new(4, 3);
        b.transition(0, 0, 1, 2.0, 0.5);
        b.transition(0, 0, 2, 1.0, 0.25);
        b.transition(0, 2, 3, 1.0, 1.0);
        b.transition(1, 1, 3, 1.0, 0.75);
        b.transition(2, 0, 3, 1.0, 0.0);
        let m = b.build();
        let v = m.solver_view();
        assert_eq!(v.succ.len(), m.n_outcomes());
        assert_eq!(v.prob.len(), m.n_outcomes());
        assert_eq!(v.node_ptr.len(), m.n_action_nodes() + 1);
        for s in 0..m.n_states() {
            for (k, &a) in (v.action_ptr[s]..v.action_ptr[s + 1]).zip(m.action_list(s)) {
                let outs = m.outcomes(s, a as usize);
                assert_eq!(v.node_ptr[k + 1] - v.node_ptr[k], outs.len());
                for (i, o) in (v.node_ptr[k]..v.node_ptr[k + 1]).zip(outs) {
                    assert_eq!(v.succ[i] as usize, o.next);
                    assert_eq!(v.prob[i], o.prob);
                }
                let r: f64 = outs.iter().map(|o| o.prob * o.reward).sum();
                assert_eq!(v.node_reward[k], r);
            }
        }
    }

    #[test]
    #[should_panic(expected = "reward")]
    fn rejects_unnormalised_reward() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 1, 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_zero_probability() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 1, 0.0, 0.5);
    }

    type Tx = (usize, usize, usize, f64, f64);

    fn fixture_txs() -> Vec<Tx> {
        vec![
            (0, 0, 1, 2.0, 0.5),
            (0, 0, 2, 1.0, 0.25),
            (0, 2, 3, 1.0, 1.0),
            (1, 1, 3, 3.0, 0.75),
            (1, 1, 0, 1.0, 0.5),
            (2, 0, 3, 1.0, 0.0),
        ]
    }

    fn build_from(n_states: usize, n_actions: usize, txs: &[Tx]) -> Mdp {
        let mut b = MdpBuilder::new(n_states, n_actions);
        for &(s, a, to, w, r) in txs {
            b.transition(s, a, to, w, r);
        }
        b.build()
    }

    /// Apply a patch to the raw transition table the way the profiler's
    /// full rebuild would see it: replace the row's entries in place
    /// (keeping table order), append brand-new rows at the end.
    fn patch_txs(txs: &[Tx], patch: &RowPatch) -> Vec<Tx> {
        let mut out: Vec<Tx> = Vec::new();
        let mut emitted = false;
        for &(s, a, to, w, r) in txs {
            if (s, a) == (patch.state, patch.action) {
                if !emitted {
                    emitted = true;
                    for o in &patch.outcomes {
                        out.push((patch.state, patch.action, o.next, o.prob, o.reward));
                    }
                }
            } else {
                out.push((s, a, to, w, r));
            }
        }
        if !emitted {
            for o in &patch.outcomes {
                out.push((patch.state, patch.action, o.next, o.prob, o.reward));
            }
        }
        out
    }

    #[test]
    fn same_shape_patch_runs_in_place_and_matches_a_full_rebuild() {
        let txs = fixture_txs();
        let mut patched = build_from(4, 3, &txs);
        // Same successors, new raw counts/rewards: the row keeps its
        // width, so the patch must take the zero-allocation path.
        let patch = RowPatch {
            state: 0,
            action: 0,
            outcomes: vec![
                Outcome {
                    next: 1,
                    prob: 5.0,
                    reward: 0.625,
                },
                Outcome {
                    next: 2,
                    prob: 3.0,
                    reward: 0.125,
                },
            ],
        };
        assert!(patched.patch_rows(std::slice::from_ref(&patch)));
        let rebuilt = build_from(4, 3, &patch_txs(&txs, &patch));
        assert_eq!(patched, rebuilt);
    }

    #[test]
    fn widened_row_splices_and_matches_a_full_rebuild() {
        let txs = fixture_txs();
        let mut patched = build_from(4, 3, &txs);
        let patch = RowPatch {
            state: 0,
            action: 0,
            outcomes: vec![
                Outcome {
                    next: 1,
                    prob: 2.0,
                    reward: 0.5,
                },
                Outcome {
                    next: 2,
                    prob: 1.0,
                    reward: 0.25,
                },
                Outcome {
                    next: 3,
                    prob: 1.0,
                    reward: 0.75,
                },
            ],
        };
        assert!(!patched.patch_rows(std::slice::from_ref(&patch)));
        let rebuilt = build_from(4, 3, &patch_txs(&txs, &patch));
        assert_eq!(patched, rebuilt);
    }

    #[test]
    fn new_and_deleted_rows_splice_and_match_a_full_rebuild() {
        let txs = fixture_txs();
        let mut patched = build_from(4, 3, &txs);
        // One brand-new action node on state 3 (previously absorbing),
        // one deleted row on state 2, applied together.
        let fresh = RowPatch {
            state: 3,
            action: 1,
            outcomes: vec![Outcome {
                next: 0,
                prob: 1.0,
                reward: 0.5,
            }],
        };
        let gone = RowPatch {
            state: 2,
            action: 0,
            outcomes: Vec::new(),
        };
        assert!(!patched.patch_rows(&[fresh.clone(), gone.clone()]));
        let rebuilt = build_from(4, 3, &patch_txs(&patch_txs(&txs, &fresh), &gone));
        assert_eq!(patched, rebuilt);
        assert!(!patched.is_absorbing(3));
        assert!(patched.outcomes(2, 0).is_empty());
    }

    #[test]
    fn patch_normalises_raw_visit_counts() {
        let mut m = build_from(4, 3, &fixture_txs());
        m.patch_rows(&[RowPatch {
            state: 1,
            action: 1,
            outcomes: vec![
                Outcome {
                    next: 3,
                    prob: 9.0,
                    reward: 1.0,
                },
                Outcome {
                    next: 0,
                    prob: 1.0,
                    reward: 0.0,
                },
            ],
        }]);
        let total: f64 = m.outcomes(1, 1).iter().map(|o| o.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((m.expected_reward(1, 1) - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate patch")]
    fn rejects_duplicate_patch_rows() {
        let mut m = chain();
        let p = RowPatch {
            state: 0,
            action: 0,
            outcomes: vec![Outcome {
                next: 1,
                prob: 1.0,
                reward: 0.5,
            }],
        };
        m.patch_rows(&[p.clone(), p]);
    }

    #[test]
    #[should_panic(expected = "reward")]
    fn patch_rejects_unnormalised_reward() {
        let mut m = chain();
        m.patch_rows(&[RowPatch {
            state: 0,
            action: 0,
            outcomes: vec![Outcome {
                next: 1,
                prob: 1.0,
                reward: 2.0,
            }],
        }]);
    }
}
