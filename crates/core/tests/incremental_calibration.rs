//! End-to-end property test for incremental recalibration: across
//! randomized drift sequences, a calibrator that patches its cached
//! model forward (same profiler lineage) agrees with a calibrator that
//! rebuilds from scratch every period (a replayed profiler with a fresh
//! lineage id). The models they solve are bitwise identical — pinned at
//! the MDP layer by `incremental_equivalence` — so here we assert the
//! *calibrations* agree: same clustering, and values/decision Q within
//! the Bellman `eps` contract of each other.

use capman_battery::chemistry::Class;
use capman_core::online::Calibrator;
use capman_core::profiler::Profiler;
use capman_device::fsm::Action;
use capman_device::states::DeviceState;
use proptest::prelude::*;

/// Bellman precision of a calibration solve (`online::SOLVE_EPS`).
const EPS: f64 = 1e-6;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn state_pool() -> Vec<DeviceState> {
    let awake = DeviceState::awake();
    let asleep = DeviceState::asleep();
    vec![
        asleep,
        awake,
        awake.with_battery(Class::Little),
        asleep.with_battery(Class::Little),
    ]
}

/// One random observation, drawn identically for both arms.
fn random_observation(rng: &mut u64) -> (DeviceState, Action, DeviceState, f64, f64) {
    let pool = state_pool();
    let from = pool[(splitmix(rng) as usize) % pool.len()];
    let to = pool[(splitmix(rng) as usize) % pool.len()];
    let action = Action::ALL[(splitmix(rng) as usize) % Action::ALL.len()];
    (from, action, to, unit(rng), 3.0 * unit(rng))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_calibrations_track_full_rebuilds_across_drift(
        seed in any::<u64>(),
        steps in 1usize..4,
        obs_per_step in 1usize..10,
    ) {
        let mut rng = seed;
        let rho = 0.05;
        // `inc` keeps one profiler lineage and patches its cached model;
        // `full` sees a freshly replayed profiler every period, so its
        // lineage check fails and it rebuilds from scratch each time —
        // while still warm-starting its Bellman solve, the honest
        // pre-incremental baseline.
        let mut profiler = Profiler::new();
        let mut history: Vec<(DeviceState, Action, DeviceState, f64, f64)> = Vec::new();
        let mut inc = Calibrator::paper();
        let mut full = Calibrator::paper();

        for _ in 0..30 {
            let o = random_observation(&mut rng);
            profiler.observe(o.0, o.1, o.2, o.3, o.4);
            history.push(o);
        }

        for step in 0..=steps {
            if step > 0 {
                for _ in 0..obs_per_step {
                    let o = random_observation(&mut rng);
                    profiler.observe(o.0, o.1, o.2, o.3, o.4);
                    history.push(o);
                }
            }
            let mut replay = Profiler::new();
            for o in &history {
                replay.observe(o.0, o.1, o.2, o.3, o.4);
            }
            let now = 1300.0 * step as f64;
            inc.recalibrate(now, &profiler, 1.0);
            full.recalibrate(now, &replay, 1.0);

            let a = inc.calibration().expect("calibrated").clone();
            let b = full.calibration().expect("calibrated").clone();
            if step > 0 {
                prop_assert!(a.dirty_rows.is_some(), "same lineage must go incremental");
                prop_assert!(a.incremental.is_some());
            }
            prop_assert!(b.dirty_rows.is_none(), "fresh lineage must rebuild");

            // Identical models and a bitwise-deterministic similarity
            // engine: the clusterings agree exactly.
            for s in state_pool() {
                prop_assert_eq!(inc.representative(s), full.representative(s));
            }
            // Both value vectors satisfy the same global residual bound,
            // so they sit within 2·eps/(1-rho) of the common fixed point.
            let tol = 4.0 * EPS / (1.0 - rho) + 1e-12;
            for (x, y) in a.solution.values.iter().zip(&b.solution.values) {
                prop_assert!((x - y).abs() < tol, "{} vs {}", x, y);
            }
            // Greedy decisions may tie-break differently only when the
            // Q-values tie; the chosen actions' Q must agree.
            for (s, (&pa, &pb)) in a.solution.policy.iter().zip(&b.solution.policy).enumerate() {
                match (pa, pb) {
                    (Some(pa), Some(pb)) => {
                        let qa = a.solution.q[s][pa];
                        let qb = b.solution.q[s][pb];
                        prop_assert!((qa - qb).abs() < tol, "state {}: {} vs {}", s, qa, qb);
                    }
                    (pa, pb) => prop_assert_eq!(pa, pb, "absorbing-state mismatch at {}", s),
                }
            }
        }
    }
}
