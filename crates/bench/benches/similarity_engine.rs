//! Similarity-engine scaling: the serial seed path vs the parallel,
//! memoized engine on device-like MDP graphs of 32–512 states.
//!
//! The graphs mimic the redundancy of a real device MDP: many
//! `(state, action)` pairs share the same successor pattern (the same
//! screen or network transition fired from different battery levels), so
//! the engine's EMD memo cache and bound pruning have the duplicate
//! structure they exploit during runtime calibration. The one-shot
//! summary at the end checks the PR's acceptance bar: the full engine
//! at least 2x faster than the reference on a 256-state graph, with
//! matching matrices.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use capman_mdp::engine::SimilarityEngine;
use capman_mdp::graph::MdpGraph;
use capman_mdp::mdp::MdpBuilder;
use capman_mdp::similarity::{structural_similarity, SimilarityParams};

const ACTIONS: usize = 2;

/// A seeded random MDP with device-like successor redundancy: each
/// `(state, action)` draws its successor distribution from a small pool
/// of shared templates.
fn device_like_graph(n_states: usize, seed: u64) -> MdpGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_templates = (n_states / 8).max(6);
    let templates: Vec<Vec<(usize, f64)>> = (0..n_templates)
        .map(|_| {
            let n_succ = rng.gen_range(1..=3usize);
            (0..n_succ)
                .map(|_| (rng.gen_range(0..n_states), rng.gen_range(0.1..1.0)))
                .collect()
        })
        .collect();
    let rewards: Vec<f64> = (0..n_templates).map(|_| rng.gen_range(0.0..1.0)).collect();
    let mut b = MdpBuilder::new(n_states, ACTIONS);
    for s in 0..(n_states - 1) {
        for a in 0..ACTIONS {
            let t = rng.gen_range(0..n_templates);
            for &(to, w) in &templates[t] {
                b.transition(s, a, to, w, rewards[t]);
            }
        }
    }
    MdpGraph::from_mdp(&b.build())
}

/// The calibration-loop configuration (see `online.rs::recalibrate`).
fn calibration_params() -> SimilarityParams {
    let mut p = SimilarityParams::paper(0.3);
    p.tolerance = 1e-3;
    p.max_iterations = 50;
    p
}

fn bench_similarity_engine(c: &mut Criterion) {
    let params = calibration_params();

    let mut group = c.benchmark_group("similarity_engine");
    group.sample_size(10);
    for n_states in [32usize, 64, 128] {
        let graph = device_like_graph(n_states, 7);
        group.bench_with_input(BenchmarkId::new("reference", n_states), &graph, |b, g| {
            b.iter(|| structural_similarity(g, &params))
        });
        group.bench_with_input(
            BenchmarkId::new("engine_serial", n_states),
            &graph,
            |b, g| b.iter(|| SimilarityEngine::serial().compute(g, &params)),
        );
        group.bench_with_input(
            BenchmarkId::new("engine_parallel_memo", n_states),
            &graph,
            |b, g| b.iter(|| SimilarityEngine::parallel().compute(g, &params)),
        );
    }
    group.finish();

    // One-shot acceptance summary on the big graphs (a cold engine per
    // run, as a calibration would see it).
    println!("\nsimilarity_engine: one-shot wall times, cold engine per run");
    println!(
        "{:>7} {:>13} {:>13} {:>13} {:>9} {:>9}  check",
        "states", "reference_ms", "engine_ser_ms", "engine_par_ms", "speedup", "hit_rate"
    );
    for n_states in [256usize, 512] {
        let graph = device_like_graph(n_states, 7);

        let t0 = Instant::now();
        let reference = structural_similarity(&graph, &params);
        let ref_s = t0.elapsed().as_secs_f64();

        let mut serial = SimilarityEngine::serial();
        let t0 = Instant::now();
        let ser = serial.compute(&graph, &params);
        let ser_s = t0.elapsed().as_secs_f64();

        let mut engine = SimilarityEngine::parallel();
        let t0 = Instant::now();
        let fast = engine.compute(&graph, &params);
        let par_s = t0.elapsed().as_secs_f64();

        assert!(
            reference.sigma_s.max_abs_diff(&fast.sigma_s) < 1e-9
                && reference.sigma_a.max_abs_diff(&fast.sigma_a) < 1e-9,
            "engine drifted from the reference"
        );
        assert_eq!(ser.sigma_s, reference.sigma_s, "serial engine must match");

        let speedup = ref_s / par_s;
        let check = if n_states == 256 {
            if speedup >= 2.0 {
                "PASS (>= 2x on 256 states)"
            } else {
                "FAIL (< 2x on 256 states)"
            }
        } else {
            ""
        };
        println!(
            "{:>7} {:>13.1} {:>13.1} {:>13.1} {:>8.1}x {:>8.1}%  {check}",
            n_states,
            ref_s * 1e3,
            ser_s * 1e3,
            par_s * 1e3,
            speedup,
            engine.stats().last_run.cache_hit_rate() * 100.0,
        );
    }
}

criterion_group!(benches, bench_similarity_engine);
criterion_main!(benches);
