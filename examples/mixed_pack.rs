//! Beyond big.LITTLE: does a third chemistry help?
//!
//! ```text
//! cargo run --release --example mixed_pack
//! ```
//!
//! The paper restricts the design to two cells, noting that a fully
//! mixed pack is "complex to schedule yet hard to reason" about. This
//! example uses the generalized [`MultiPack`] with a greedy marginal-
//! efficiency selector to compare a 2-cell NCA+LMO pack against a
//! 3-cell NCA+LMO+LTO pack of the same total capacity on the eta-50%
//! mix — quantifying what the extra chemistry buys (or costs).
//!
//! [`MultiPack`]: capman::battery::multi::MultiPack

use capman::battery::cell::Cell;
use capman::battery::chemistry::Chemistry;
use capman::battery::multi::MultiPack;
use capman::device::phone::PhoneProfile;
use capman::device::states::DeviceState;
use capman::workload::{generate, WorkloadKind};

/// Drive a pack through a trace with the greedy selector; returns
/// (service seconds, delivered joules, flips).
fn run(mut pack: MultiPack) -> (f64, f64, u64) {
    let trace = generate(WorkloadKind::EtaStatic { eta: 50 }, 60_000.0, 13);
    let model = PhoneProfile::nexus().power_model();
    let mut state = DeviceState::asleep();
    let mut delivered = 0.0;
    let mut consecutive_fail = 0u32;
    let mut t = 0.0;
    while t < 60_000.0 {
        for seg in trace.segments_starting_in(t, t + 1.0) {
            for &a in &seg.actions {
                state = state.apply(a);
            }
        }
        let demand_w = model.device_power_mw(&state, &trace.at(t).demand) / 1000.0;
        let choice = pack.greedy_choice(demand_w, 25.0);
        pack.select(choice);
        let step = pack.step(demand_w, 1.0, 25.0);
        delivered += step.cell.delivered_w;
        if demand_w > 0.0 && step.shortfall_w > 0.05 * demand_w {
            consecutive_fail += 1;
            if consecutive_fail >= 10 {
                break;
            }
        } else {
            consecutive_fail = 0;
        }
        t += 1.0;
    }
    (t, delivered, pack.flips())
}

fn main() {
    println!("Greedy multi-chemistry scheduling on the eta-50% mix (same 5 Ah total)\n");
    let two_cell = MultiPack::new(vec![
        Cell::new(Chemistry::Nca, 2.5),
        Cell::new(Chemistry::Lmo, 2.5),
    ]);
    let three_cell = MultiPack::new(vec![
        Cell::new(Chemistry::Nca, 2.0),
        Cell::new(Chemistry::Lmo, 2.0),
        Cell::new(Chemistry::Lto, 1.0),
    ]);
    println!(
        "{:<24} {:>12} {:>14} {:>8}",
        "pack", "service [s]", "delivered [J]", "flips"
    );
    for (name, pack) in [
        ("NCA + LMO (big.LITTLE)", two_cell),
        ("NCA + LMO + LTO", three_cell),
    ] {
        let (service, delivered, flips) = run(pack);
        println!("{name:<24} {service:>12.0} {delivered:>14.0} {flips:>8}");
    }
    println!("\n(the LTO slice adds rate headroom but costs energy density — the paper's");
    println!("reason to stop at two orthogonal chemistries)");
}
