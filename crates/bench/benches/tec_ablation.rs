//! Ablation: TEC threshold sweep.
//!
//! The paper fixes the TEC turn-on threshold at the 45 degC skin limit.
//! This ablation sweeps the threshold (plus a no-TEC arm) and reports
//! the temperature/energy trade-off on a Geekbench cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use capman_core::config::SimConfig;
use capman_core::experiments::{run_policy_with, PolicyKind};
use capman_core::metrics::Outcome;
use capman_device::phone::PhoneProfile;
use capman_workload::WorkloadKind;

const HORIZON_S: f64 = 3000.0;

fn run(threshold_c: Option<f64>) -> Outcome {
    let config = SimConfig {
        max_horizon_s: HORIZON_S,
        tec_enabled: threshold_c.is_some(),
        tec_threshold_c: threshold_c.unwrap_or(45.0),
        ..SimConfig::paper()
    };
    run_policy_with(
        PolicyKind::Capman,
        WorkloadKind::Geekbench,
        PhoneProfile::nexus(),
        42,
        config,
    )
}

fn bench_tec_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tec_ablation");
    group.sample_size(10);
    for arm in [None, Some(40.0), Some(45.0), Some(50.0)] {
        let label = arm.map(|t| format!("{t}C")).unwrap_or_else(|| "off".into());
        group.bench_with_input(BenchmarkId::new("geekbench", &label), &arm, |b, &arm| {
            b.iter(|| run(arm))
        });
    }
    group.finish();

    println!("\ntec_ablation (bench scale): threshold -> max spot temp / TEC energy");
    for arm in [None, Some(40.0), Some(45.0), Some(50.0)] {
        let o = run(arm);
        println!(
            "  {:<5} maxT={:>5.1}C  meanT={:>5.1}C  tec_j={:>7.0}  delivered_j={:>8.0}",
            arm.map(|t| format!("{t}C")).unwrap_or_else(|| "off".into()),
            o.max_hotspot_c,
            o.mean_hotspot_c,
            o.tec_energy_j,
            o.energy_delivered_j
        );
    }
}

criterion_group!(benches, bench_tec_ablation);
criterion_main!(benches);
