//! Lumped thermal RC network.
//!
//! The phone is modelled as a handful of thermal masses (nodes) connected
//! by thermal conductances, with the ambient as a fixed-temperature
//! boundary. Heat injected into a node (CPU power, battery I^2 R losses,
//! switch flips, TEC waste heat) diffuses toward the shell and the
//! ambient. The top half of Fig. 6 in the paper shows the corresponding
//! temperature map, with the hot spot above the CPU.

use serde::{Deserialize, Serialize};

/// The thermal nodes of the phone model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeId {
    /// CPU package (bulk).
    Cpu,
    /// The hot spot on the CPU die surface — where the TEC sits.
    HotSpot,
    /// The battery pack.
    Battery,
    /// The display assembly.
    Screen,
    /// The phone shell / back cover (coupled to ambient).
    Shell,
}

impl NodeId {
    /// All nodes in index order.
    pub const ALL: [NodeId; 5] = [
        NodeId::Cpu,
        NodeId::HotSpot,
        NodeId::Battery,
        NodeId::Screen,
        NodeId::Shell,
    ];

    fn index(self) -> usize {
        match self {
            NodeId::Cpu => 0,
            NodeId::HotSpot => 1,
            NodeId::Battery => 2,
            NodeId::Screen => 3,
            NodeId::Shell => 4,
        }
    }
}

/// A lumped-parameter thermal network over the [`NodeId`] nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalNetwork {
    /// Heat capacity per node, J/K.
    capacity: [f64; 5],
    /// Node temperatures, degC.
    temp: [f64; 5],
    /// Pairwise conductances, W/K (symmetric, diagonal unused).
    conductance: [[f64; 5]; 5],
    /// Conductance of each node to the ambient, W/K.
    to_ambient: [f64; 5],
    /// Ambient temperature, degC.
    ambient_c: f64,
    /// Heat injected since the last step, W per node.
    pending_w: [f64; 5],
}

impl ThermalNetwork {
    /// Maximum internal Euler substep, seconds. Chosen well below the
    /// smallest `C/G` time constant of the phone preset.
    const MAX_SUBSTEP_S: f64 = 0.5;

    /// The phone preset used throughout the evaluation.
    ///
    /// Capacities and conductances are sized so that a saturating workload
    /// (Geekbench-class, ~2.3 W total) drives the CPU hot spot past the
    /// 45 degC threshold within minutes at a 25 degC ambient, matching the
    /// paper's observation that resource-intensive apps create hot spots
    /// that passive cooling cannot remove.
    pub fn phone() -> Self {
        Self::phone_at_ambient(25.0)
    }

    /// The phone preset at a custom ambient temperature.
    pub fn phone_at_ambient(ambient_c: f64) -> Self {
        let mut conductance = [[0.0; 5]; 5];
        let mut set = |a: NodeId, b: NodeId, g: f64| {
            conductance[a.index()][b.index()] = g;
            conductance[b.index()][a.index()] = g;
        };
        set(NodeId::Cpu, NodeId::HotSpot, 0.015);
        set(NodeId::Cpu, NodeId::Shell, 0.05);
        set(NodeId::Cpu, NodeId::Battery, 0.03);
        set(NodeId::Battery, NodeId::Shell, 0.25);
        set(NodeId::Screen, NodeId::Shell, 0.30);
        // The passive cooling plate spreads hot-spot heat into the shell.
        set(NodeId::HotSpot, NodeId::Shell, 0.002);

        let mut to_ambient = [0.0; 5];
        to_ambient[NodeId::Shell.index()] = 0.55;

        ThermalNetwork {
            capacity: [
                8.0,  // CPU package
                0.8,  // hot spot (tiny mass)
                45.0, // battery
                20.0, // screen
                80.0, // shell
            ],
            temp: [ambient_c; 5],
            conductance,
            to_ambient,
            ambient_c,
            pending_w: [0.0; 5],
        }
    }

    /// Inject `power_w` watts of heat into `node` for the next [`step`].
    ///
    /// Multiple injections into the same node accumulate. Negative power
    /// removes heat (that is how the TEC pumps the hot spot).
    ///
    /// [`step`]: ThermalNetwork::step
    pub fn inject(&mut self, node: NodeId, power_w: f64) {
        self.pending_w[node.index()] += power_w;
    }

    /// Advance the network by `dt` seconds, consuming pending injections.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn step(&mut self, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        let n = (dt / Self::MAX_SUBSTEP_S).ceil().max(1.0) as usize;
        let sub = dt / n as f64;
        for _ in 0..n {
            let mut delta = [0.0; 5];
            for (i, d) in delta.iter_mut().enumerate() {
                let mut q = self.pending_w[i];
                for j in 0..5 {
                    if i != j {
                        q += self.conductance[i][j] * (self.temp[j] - self.temp[i]);
                    }
                }
                q += self.to_ambient[i] * (self.ambient_c - self.temp[i]);
                *d = q * sub / self.capacity[i];
            }
            for (t, d) in self.temp.iter_mut().zip(&delta) {
                *t += d;
            }
        }
        self.pending_w = [0.0; 5];
    }

    /// Temperature of a node, degC.
    pub fn temp_c(&self, node: NodeId) -> f64 {
        self.temp[node.index()]
    }

    /// The hottest node and its temperature.
    pub fn hottest(&self) -> (NodeId, f64) {
        NodeId::ALL.iter().map(|&n| (n, self.temp_c(n))).fold(
            (NodeId::Shell, f64::NEG_INFINITY),
            |acc, cur| {
                if cur.1 > acc.1 {
                    cur
                } else {
                    acc
                }
            },
        )
    }

    /// Ambient temperature, degC.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Override a node temperature (for tests and what-if analyses).
    pub fn set_temp_c(&mut self, node: NodeId, temp_c: f64) {
        self.temp[node.index()] = temp_c;
    }

    /// Add extra conductance between a node and the ambient — e.g. a
    /// larger passive cooling plate.
    pub fn add_ambient_path(&mut self, node: NodeId, g_w_per_k: f64) {
        assert!(g_w_per_k >= 0.0, "conductance must be non-negative");
        self.to_ambient[node.index()] += g_w_per_k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_ambient_everywhere() {
        let n = ThermalNetwork::phone();
        for node in NodeId::ALL {
            assert!((n.temp_c(node) - 25.0).abs() < 1e-12);
        }
    }

    #[test]
    fn injected_heat_raises_the_node() {
        let mut n = ThermalNetwork::phone();
        n.inject(NodeId::Cpu, 2.0);
        n.step(1.0);
        assert!(n.temp_c(NodeId::Cpu) > 25.0);
    }

    #[test]
    fn heat_diffuses_toward_the_shell() {
        let mut n = ThermalNetwork::phone();
        for _ in 0..600 {
            n.inject(NodeId::Cpu, 2.0);
            n.step(1.0);
        }
        assert!(n.temp_c(NodeId::Shell) > 25.5);
        assert!(n.temp_c(NodeId::Cpu) > n.temp_c(NodeId::Shell));
    }

    #[test]
    fn geekbench_class_load_creates_a_hot_spot_past_45c() {
        let mut n = ThermalNetwork::phone();
        // Saturating load: 2.0 W CPU body + 0.8 W concentrated on the spot.
        for _ in 0..1800 {
            n.inject(NodeId::Cpu, 2.0);
            n.inject(NodeId::HotSpot, 0.8);
            n.step(1.0);
        }
        let (node, t) = n.hottest();
        assert_eq!(node, NodeId::HotSpot);
        assert!(t > 45.0, "hot spot should pass the threshold, got {t}");
        // But the shell (skin) stays well below the spot.
        assert!(n.temp_c(NodeId::Shell) < t - 5.0);
    }

    #[test]
    fn idle_phone_returns_to_ambient() {
        let mut n = ThermalNetwork::phone();
        n.set_temp_c(NodeId::Cpu, 60.0);
        n.set_temp_c(NodeId::HotSpot, 70.0);
        for _ in 0..7200 {
            n.step(1.0);
        }
        for node in NodeId::ALL {
            assert!(
                (n.temp_c(node) - 25.0).abs() < 0.5,
                "{node:?} should cool to ambient"
            );
        }
    }

    #[test]
    fn negative_injection_cools_a_node() {
        let mut n = ThermalNetwork::phone();
        n.set_temp_c(NodeId::HotSpot, 50.0);
        let before = n.temp_c(NodeId::HotSpot);
        n.inject(NodeId::HotSpot, -0.5);
        n.step(1.0);
        // Cooling plus diffusion both pull the spot down.
        assert!(n.temp_c(NodeId::HotSpot) < before);
    }

    #[test]
    fn bigger_cooling_plate_lowers_steady_temperature() {
        let run = |extra_plate: f64| -> f64 {
            let mut n = ThermalNetwork::phone();
            n.add_ambient_path(NodeId::Shell, extra_plate);
            for _ in 0..3600 {
                n.inject(NodeId::Cpu, 2.0);
                n.step(1.0);
            }
            n.temp_c(NodeId::Cpu)
        };
        assert!(run(0.5) < run(0.0));
    }

    #[test]
    fn energy_conservation_adiabatic() {
        // With no ambient path, injected energy must equal the heat stored.
        let mut n = ThermalNetwork::phone();
        // Remove ambient coupling.
        n.to_ambient = [0.0; 5];
        let injected = 3.0 * 100.0; // 3 W for 100 s
        for _ in 0..100 {
            n.inject(NodeId::Cpu, 3.0);
            n.step(1.0);
        }
        let stored: f64 = NodeId::ALL
            .iter()
            .map(|&node| n.capacity[node.index()] * (n.temp_c(node) - 25.0))
            .sum();
        assert!(
            (stored - injected).abs() < injected * 0.01,
            "stored {stored} J vs injected {injected} J"
        );
    }

    #[test]
    fn ambient_preset_is_respected() {
        let n = ThermalNetwork::phone_at_ambient(30.0);
        assert_eq!(n.ambient_c(), 30.0);
        assert_eq!(n.temp_c(NodeId::Cpu), 30.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn step_rejects_zero_dt() {
        ThermalNetwork::phone().step(0.0);
    }
}
