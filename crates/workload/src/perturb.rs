//! Per-device perturbation of a generated trace.
//!
//! A fleet simulation drives thousands of devices from a handful of
//! shared workload profiles ("Characterizing Smartphone Power Management
//! in the Wild" motivates populations of realistic per-device traces
//! rather than one canonical trace per workload). A [`Perturbation`] is
//! the deterministic, seed-derived per-device variation applied on top
//! of a shared profile: the trace keeps its segment structure and action
//! timeline (the system-call signals CAPMAN's profiler learns from) while
//! the component demand is scaled to model device-to-device spread in
//! installed apps, screen time and radio conditions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use capman_device::power::Demand;

use crate::generators::{generate, WorkloadKind};
use crate::trace::{Segment, Trace};

/// A deterministic per-device demand perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perturbation {
    /// Multiplier on CPU utilisation (clamped back to `0..=100`).
    pub cpu_scale: f64,
    /// Multiplier on the WiFi packet rate.
    pub packet_scale: f64,
}

impl Perturbation {
    /// The no-op perturbation (`apply` returns the trace unchanged).
    pub fn identity() -> Self {
        Perturbation {
            cpu_scale: 1.0,
            packet_scale: 1.0,
        }
    }

    /// A perturbation drawn from `seed`: both scales uniform in
    /// `[1 - jitter, 1 + jitter]`.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is not in `[0, 1)`.
    pub fn sampled(seed: u64, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        if jitter == 0.0 {
            return Perturbation::identity();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        Perturbation {
            cpu_scale: rng.gen_range(1.0 - jitter..=1.0 + jitter),
            packet_scale: rng.gen_range(1.0 - jitter..=1.0 + jitter),
        }
    }

    /// Whether applying this perturbation changes anything.
    pub fn is_identity(&self) -> bool {
        self.cpu_scale == 1.0 && self.packet_scale == 1.0
    }

    /// The perturbed copy of one segment's demand. Scaling is purely
    /// per-segment, so applying it inline while streaming segments is
    /// bitwise identical to perturbing a materialized trace.
    pub fn apply_demand(&self, mut demand: Demand) -> Demand {
        demand.cpu_util = (demand.cpu_util * self.cpu_scale).clamp(0.0, 100.0);
        demand.packet_rate = (demand.packet_rate * self.packet_scale).max(0.0);
        demand
    }

    /// The perturbed copy of `trace`: same segments, same boundary
    /// actions, scaled demand.
    pub fn apply(&self, trace: &Trace) -> Trace {
        if self.is_identity() {
            return trace.clone();
        }
        let segments = trace
            .segments()
            .iter()
            .map(|seg| Segment {
                start_s: seg.start_s,
                duration_s: seg.duration_s,
                demand: self.apply_demand(seg.demand),
                actions: seg.actions.clone(),
            })
            .collect();
        Trace::new(trace.name().to_string(), segments)
    }
}

/// Generate a workload trace and apply a per-device perturbation — the
/// fleet's device-instantiation path.
pub fn generate_perturbed(
    kind: WorkloadKind,
    horizon_s: f64,
    seed: u64,
    perturbation: Perturbation,
) -> Trace {
    perturbation.apply(&generate(kind, horizon_s, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_a_bitwise_no_op() {
        let trace = generate(WorkloadKind::Pcmark, 1200.0, 7);
        let same = Perturbation::identity().apply(&trace);
        assert_eq!(trace, same);
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let a = Perturbation::sampled(99, 0.2);
        let b = Perturbation::sampled(99, 0.2);
        let c = Perturbation::sampled(100, 0.2);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should perturb differently");
        assert!((1.0 - 0.2..=1.0 + 0.2).contains(&a.cpu_scale));
        assert!((1.0 - 0.2..=1.0 + 0.2).contains(&a.packet_scale));
    }

    #[test]
    fn zero_jitter_is_the_identity() {
        assert!(Perturbation::sampled(4, 0.0).is_identity());
    }

    #[test]
    fn demand_scales_but_structure_survives() {
        let trace = generate(WorkloadKind::Video, 1800.0, 3);
        let scaled = Perturbation {
            cpu_scale: 1.5,
            packet_scale: 0.5,
        }
        .apply(&trace);
        assert_eq!(trace.segments().len(), scaled.segments().len());
        for (a, b) in trace.segments().iter().zip(scaled.segments()) {
            assert_eq!(a.start_s, b.start_s);
            assert_eq!(a.duration_s, b.duration_s);
            assert_eq!(a.actions, b.actions, "action timeline must survive");
            assert!(b.demand.cpu_util <= 100.0, "utilisation stays clamped");
            if a.demand.cpu_util > 0.0 && a.demand.cpu_util * 1.5 <= 100.0 {
                assert!((b.demand.cpu_util - a.demand.cpu_util * 1.5).abs() < 1e-9);
            }
            assert!((b.demand.packet_rate - a.demand.packet_rate * 0.5).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn rejects_out_of_range_jitter() {
        let _ = Perturbation::sampled(1, 1.0);
    }
}
