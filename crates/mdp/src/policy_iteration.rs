//! Policy iteration — the classic alternative exact solver.
//!
//! The paper cites the textbook observation that "the order of the
//! polynomials could be large enough that the theoretically efficient
//! algorithms are not efficient in practice" as the motivation for its
//! similarity shortcut. Policy iteration is that theoretically efficient
//! algorithm: alternate full policy evaluation with greedy improvement
//! until the policy is stable. It typically needs far fewer (but far
//! heavier) sweeps than value iteration; the tests cross-check all
//! three solvers against each other.

use serde::{Deserialize, Serialize};

use crate::mdp::Mdp;
use crate::value_iteration::evaluate_policy;

/// The result of policy iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyIterationResult {
    /// Optimal state values.
    pub values: Vec<f64>,
    /// The stable greedy policy (`None` on absorbing states).
    pub policy: Vec<Option<usize>>,
    /// Improvement rounds until stability.
    pub rounds: usize,
}

/// Solve the MDP by policy iteration.
///
/// # Panics
///
/// Panics if `rho` is not in `[0, 1)` or `eps` is not positive.
pub fn policy_iteration(mdp: &Mdp, rho: f64, eps: f64) -> PolicyIterationResult {
    assert!((0.0..1.0).contains(&rho), "discount must be in [0, 1)");
    assert!(eps > 0.0, "precision must be positive");
    let n = mdp.n_states();
    // Initial policy: the first available action everywhere.
    let mut policy: Vec<Option<usize>> = (0..n).map(|s| mdp.available_actions(s).next()).collect();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let values = evaluate_policy(mdp, &policy, rho, eps);
        let mut stable = true;
        #[allow(clippy::needless_range_loop)] // `s` indexes both the MDP and the policy
        for s in 0..n {
            let best = mdp.available_actions(s).max_by(|&a, &b| {
                let qa: f64 = mdp
                    .outcomes(s, a)
                    .iter()
                    .map(|o| o.prob * (o.reward + rho * values[o.next]))
                    .sum();
                let qb: f64 = mdp
                    .outcomes(s, b)
                    .iter()
                    .map(|o| o.prob * (o.reward + rho * values[o.next]))
                    .sum();
                qa.total_cmp(&qb)
            });
            if best != policy[s] {
                // Only switch on a strict improvement to guarantee
                // termination under floating-point evaluation.
                let q_of = |action: Option<usize>| -> f64 {
                    action
                        .map(|a| {
                            mdp.outcomes(s, a)
                                .iter()
                                .map(|o| o.prob * (o.reward + rho * values[o.next]))
                                .sum()
                        })
                        .unwrap_or(0.0)
                };
                if q_of(best) > q_of(policy[s]) + eps {
                    policy[s] = best;
                    stable = false;
                }
            }
        }
        if stable || rounds > 10_000 {
            let values = evaluate_policy(mdp, &policy, rho, eps);
            return PolicyIterationResult {
                values,
                policy,
                rounds,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;
    use crate::value_iteration::solve;

    fn loopy_mdp() -> Mdp {
        let mut b = MdpBuilder::new(4, 2);
        b.transition(0, 0, 1, 1.0, 0.1);
        b.transition(0, 1, 2, 1.0, 0.5);
        b.transition(1, 0, 0, 0.5, 0.3);
        b.transition(1, 0, 3, 0.5, 0.0);
        b.transition(2, 0, 0, 1.0, 0.8);
        b.transition(2, 1, 3, 1.0, 1.0);
        b.transition(3, 0, 3, 1.0, 0.2);
        b.build()
    }

    #[test]
    fn agrees_with_value_iteration() {
        let mdp = loopy_mdp();
        for rho in [0.3, 0.7, 0.9] {
            let vi = solve(&mdp, rho, 1e-12);
            let pi = policy_iteration(&mdp, rho, 1e-10);
            for s in 0..mdp.n_states() {
                assert!(
                    (vi.values[s] - pi.values[s]).abs() < 1e-6,
                    "rho {rho}, state {s}: VI {} vs PI {}",
                    vi.values[s],
                    pi.values[s]
                );
            }
        }
    }

    #[test]
    fn terminates_in_few_rounds() {
        let pi = policy_iteration(&loopy_mdp(), 0.9, 1e-10);
        assert!(pi.rounds <= 10, "took {} rounds", pi.rounds);
    }

    #[test]
    fn absorbing_states_have_no_policy() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 1, 1.0, 1.0);
        let pi = policy_iteration(&b.build(), 0.5, 1e-10);
        assert_eq!(pi.policy[1], None);
        assert_eq!(pi.values[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "discount")]
    fn rejects_discount_of_one() {
        let _ = policy_iteration(&loopy_mdp(), 1.0, 1e-10);
    }
}
