//! Run a declarative experiment: `experiment.yaml` + `tasks.jsonl` →
//! per-trial `result.json` files + an aggregated analysis table.
//!
//! ```text
//! lab_run <experiment.yaml> [--tasks tasks.jsonl] [--out DIR] [--analysis PATH]
//! ```
//!
//! `--tasks` defaults to `tasks.jsonl` next to the experiment file.
//! `--out` defaults to `lab-out/<experiment name>`; the directory gains
//! `experiment.json` (the run manifest), `trials/<id>/result.json` per
//! trial, and `analysis.json` (one row per variant × task — the same
//! flat row shape the perf tooling's `parse_rows` reads). `--analysis`
//! writes an extra copy of the table, e.g. for a CI artifact upload.
//! See `EXPERIMENTS.md` for the file contract.
//!
//! Exit codes: `0` on success (including trials whose *outcome* is
//! `failure` — a policy missing its service contract is a result, not a
//! harness error), `1` when the experiment cannot run, `2` on usage
//! errors.

use std::path::{Path, PathBuf};
use std::process::exit;

use capman_lab::{run_to_dir, AnalysisTable, ExperimentSpec, Task, TrialOutcome};

const USAGE: &str =
    "usage: lab_run <experiment.yaml> [--tasks tasks.jsonl] [--out DIR] [--analysis PATH]";

fn fail(msg: &str) -> ! {
    eprintln!("lab_run: {msg}");
    exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |name: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let positional: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.starts_with("--") {
                    skip_next = true;
                    return false;
                }
                true
            })
            .collect()
    };
    if positional.len() != 1 {
        eprintln!("{USAGE}");
        exit(2);
    }
    let spec_path = PathBuf::from(positional[0]);
    let tasks_path = value_of("--tasks").map(PathBuf::from).unwrap_or_else(|| {
        spec_path
            .parent()
            .unwrap_or(Path::new("."))
            .join("tasks.jsonl")
    });

    let spec_src = std::fs::read_to_string(&spec_path)
        .unwrap_or_else(|e| fail(&format!("{}: {e}", spec_path.display())));
    let spec = ExperimentSpec::from_yaml(&spec_src)
        .unwrap_or_else(|e| fail(&format!("{}: {e}", spec_path.display())));
    let tasks_src = std::fs::read_to_string(&tasks_path)
        .unwrap_or_else(|e| fail(&format!("{}: {e}", tasks_path.display())));
    let tasks = Task::from_jsonl(&tasks_src)
        .unwrap_or_else(|e| fail(&format!("{}: {e}", tasks_path.display())));

    let out_dir = value_of("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("lab-out").join(&spec.name));

    println!(
        "experiment {}: {} task(s) x {} variant(s) x {} repeat(s) = {} trial(s) -> {}",
        spec.name,
        tasks.len(),
        spec.variants.len(),
        spec.repeats,
        tasks.len() * spec.variants.len() * spec.repeats,
        out_dir.display()
    );
    let trials =
        run_to_dir(&spec, &tasks, &out_dir).unwrap_or_else(|e| fail(&format!("run failed: {e}")));
    for t in &trials {
        let note = match &t.outcome {
            TrialOutcome::Success => String::new(),
            TrialOutcome::Failure => " [failure]".to_string(),
            TrialOutcome::Error(reason) => format!(" [error: {reason}]"),
        };
        println!(
            "  {} {}={:.4}{note}",
            t.trial_id, t.objective_name, t.objective
        );
    }

    let table = AnalysisTable::from_trials(&spec.name, &trials);
    let rendered = table.to_json().to_pretty();
    let analysis_path = out_dir.join("analysis.json");
    std::fs::write(&analysis_path, &rendered)
        .unwrap_or_else(|e| fail(&format!("{}: {e}", analysis_path.display())));
    println!(
        "wrote {} ({} rows)",
        analysis_path.display(),
        table.rows.len()
    );
    if let Some(extra) = value_of("--analysis") {
        std::fs::write(extra, &rendered).unwrap_or_else(|e| fail(&format!("{extra}: {e}")));
        println!("wrote {extra}");
    }
}
