//! Tabular Q-learning — the model-free alternative to CAPMAN's
//! model-based pipeline.
//!
//! The paper builds an explicit MDP and solves it (with similarity
//! acceleration). A natural ablation is to learn action values directly
//! from the same `(state, action, reward, state')` stream without
//! maintaining transition statistics at all. This module provides the
//! classic temporal-difference learner for that comparison; the
//! `similarity_ablation` bench and the tests pit it against value
//! iteration.

use serde::{Deserialize, Serialize};

/// A tabular Q-learning agent over dense state/action indices.
///
/// # Examples
///
/// ```
/// use capman_mdp::qlearning::QLearning;
///
/// let mut agent = QLearning::new(2, 2, 0.5, 0.9);
/// for _ in 0..50 {
///     agent.update(0, 1, 1.0, 1, true); // arm 1 pays
///     agent.update(0, 0, 0.1, 1, true);
/// }
/// assert_eq!(agent.greedy_action(0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QLearning {
    n_states: usize,
    n_actions: usize,
    /// Action values, `q[s * n_actions + a]`.
    q: Vec<f64>,
    /// Learning rate in `(0, 1]`.
    alpha: f64,
    /// Discount factor in `[0, 1)`.
    rho: f64,
    updates: u64,
}

impl QLearning {
    /// Create an agent with zero-initialised action values.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero, `alpha` is outside `(0, 1]`, or
    /// `rho` is outside `[0, 1)`.
    pub fn new(n_states: usize, n_actions: usize, alpha: f64, rho: f64) -> Self {
        assert!(n_states > 0 && n_actions > 0, "dimensions must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
        QLearning {
            n_states,
            n_actions,
            q: vec![0.0; n_states * n_actions],
            alpha,
            rho,
            updates: 0,
        }
    }

    /// One TD update for the transition `(state, action) -> (reward,
    /// next)`. Pass `terminal = true` when `next` is absorbing.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `reward` is not finite.
    pub fn update(
        &mut self,
        state: usize,
        action: usize,
        reward: f64,
        next: usize,
        terminal: bool,
    ) {
        assert!(
            state < self.n_states && next < self.n_states,
            "state out of range"
        );
        assert!(action < self.n_actions, "action out of range");
        assert!(reward.is_finite(), "reward must be finite");
        let bootstrap = if terminal { 0.0 } else { self.max_q(next) };
        let idx = state * self.n_actions + action;
        let target = reward + self.rho * bootstrap;
        self.q[idx] += self.alpha * (target - self.q[idx]);
        self.updates += 1;
    }

    /// The learned action value `Q(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn q(&self, state: usize, action: usize) -> f64 {
        assert!(
            state < self.n_states && action < self.n_actions,
            "index out of range"
        );
        self.q[state * self.n_actions + action]
    }

    /// The greedy value `max_a Q(state, a)`.
    pub fn max_q(&self, state: usize) -> f64 {
        assert!(state < self.n_states, "state out of range");
        let row = &self.q[state * self.n_actions..(state + 1) * self.n_actions];
        row.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    /// The greedy action at `state` (ties go to the lower index).
    pub fn greedy_action(&self, state: usize) -> usize {
        assert!(state < self.n_states, "state out of range");
        let row = &self.q[state * self.n_actions..(state + 1) * self.n_actions];
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty action row")
    }

    /// Epsilon-greedy selection: explore uniformly with probability
    /// `epsilon`, using the caller-supplied uniform samples `u_explore`
    /// and `u_action` in `[0, 1)` (the library itself is RNG-free).
    ///
    /// # Panics
    ///
    /// Panics if the uniform samples are outside `[0, 1)` or `epsilon`
    /// is outside `[0, 1]`.
    pub fn select_action(
        &self,
        state: usize,
        epsilon: f64,
        u_explore: f64,
        u_action: f64,
    ) -> usize {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        assert!((0.0..1.0).contains(&u_explore) && (0.0..1.0).contains(&u_action));
        if u_explore < epsilon {
            (u_action * self.n_actions as f64) as usize
        } else {
            self.greedy_action(state)
        }
    }

    /// Total TD updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;
    use crate::value_iteration::solve;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn learns_the_better_arm_of_a_bandit() {
        // State 0 with two arms into the absorbing state 1.
        let mut agent = QLearning::new(2, 2, 0.2, 0.9);
        for _ in 0..200 {
            agent.update(0, 0, 0.2, 1, true);
            agent.update(0, 1, 0.9, 1, true);
        }
        assert_eq!(agent.greedy_action(0), 1);
        assert!((agent.q(0, 1) - 0.9).abs() < 1e-3);
        assert!((agent.q(0, 0) - 0.2).abs() < 1e-3);
    }

    #[test]
    fn converges_to_value_iteration_on_a_small_mdp() {
        // A 3-state loop with distinct rewards.
        let mut b = MdpBuilder::new(3, 2);
        b.transition(0, 0, 1, 1.0, 0.1);
        b.transition(0, 1, 2, 1.0, 0.6);
        b.transition(1, 0, 0, 1.0, 0.3);
        b.transition(2, 0, 0, 1.0, 0.9);
        let mdp = b.build();
        let rho = 0.8;
        let sol = solve(&mdp, rho, 1e-12);

        let mut agent = QLearning::new(3, 2, 0.1, rho);
        let mut rng = StdRng::seed_from_u64(3);
        let mut state = 0usize;
        for _ in 0..200_000 {
            let available: Vec<usize> = mdp.available_actions(state).collect();
            if available.is_empty() {
                state = 0;
                continue;
            }
            let a = available[rng.gen_range(0..available.len())];
            let outs = mdp.outcomes(state, a);
            // Sample a successor.
            let mut u: f64 = rng.gen();
            let mut chosen = outs[0];
            for o in outs {
                if u < o.prob {
                    chosen = *o;
                    break;
                }
                u -= o.prob;
            }
            agent.update(state, a, chosen.reward, chosen.next, false);
            state = chosen.next;
        }
        for s in 0..3 {
            assert!(
                (agent.max_q(s) - sol.values[s]).abs() < 0.05,
                "state {s}: Q {} vs V* {}",
                agent.max_q(s),
                sol.values[s]
            );
        }
        assert_eq!(agent.greedy_action(0), sol.policy[0].expect("policy"));
    }

    #[test]
    fn epsilon_greedy_explores_and_exploits() {
        let mut agent = QLearning::new(1, 3, 0.5, 0.5);
        agent.update(0, 2, 1.0, 0, true);
        // Exploit: u_explore above epsilon.
        assert_eq!(agent.select_action(0, 0.1, 0.5, 0.0), 2);
        // Explore: u_explore below epsilon, u_action picks arm 1.
        assert_eq!(agent.select_action(0, 0.9, 0.1, 0.34), 1);
    }

    #[test]
    fn update_counter_increments() {
        let mut agent = QLearning::new(2, 1, 0.1, 0.5);
        agent.update(0, 0, 0.5, 1, true);
        agent.update(1, 0, 0.5, 0, false);
        assert_eq!(agent.updates(), 2);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_zero_alpha() {
        let _ = QLearning::new(1, 1, 0.0, 0.5);
    }
}
