//! The statistical perf gate: Welch's t-test over benchmark rep
//! samples, with a legacy ratio fallback for sample-less reports.
//!
//! The old gate compared two point estimates (min-over-reps) against a
//! fixed 30% threshold — tight enough to flake on shared runners, loose
//! enough to wave through real 25% regressions. This module replaces
//! the verdict with a test over the *rep distributions* the reports now
//! carry (`"<metric>_samples"` arrays): a one-sided Welch's t-test
//! fails a row only when the slowdown is both statistically credible
//! (`p < alpha`) and practically large (`mean ratio − 1 > min_effect`).
//! Reports predating the samples schema — or single-rep rows — fall
//! back to the old point-ratio rule, so the gate never loses coverage
//! while baselines catch up.
//!
//! The gate keeps its two standing contracts:
//!
//! * **Clean SKIP** — a *missing* report or zero matched rows exits 0
//!   with a loud message: "no baseline yet" is not a regression. A
//!   report that exists but fails to parse is a different animal — the
//!   baseline is corrupt and silence would disable the gate forever —
//!   so [`evaluate_reports`] returns an error the CLI maps to exit 3.
//! * **[`GateMode::FloorAsBaseline`]** — metrics whose healthy value
//!   sits under the noise floor (p99 staleness at bucket resolution)
//!   divide by `max(baseline, floor)` instead of being skipped.
//!
//! The same verdict machinery powers a *live* mode: interleaved
//! baseline/candidate arms measured back-to-back in one process
//! ([`live_ab`]), which is how the A/A sanity check runs in CI.

use capman_lab::json::{self, Json};
use capman_lab::stats::{mean, welch_t_test};

/// How a gated metric treats committed values below the noise floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// Skip sub-floor rows entirely (wall-time metrics: below the floor
    /// the timer noise exceeds any real regression).
    SkipBelowFloor,
    /// Gate sub-floor rows against the floor itself: the effect ratio
    /// divides by `max(baseline, floor)`. For metrics whose healthy
    /// value sits *under* the floor, skipping would disable the gate
    /// forever, while a raw ratio against a near-zero baseline would
    /// flake on bucket jitter.
    FloorAsBaseline,
}

/// Gate thresholds. `Default` is the CI configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// One-sided significance level for the Welch verdict: the row
    /// fails only if the slowdown would appear by chance less than
    /// `alpha` of the time.
    pub alpha: f64,
    /// Practical-significance floor: mean slowdowns at or below this
    /// fraction pass even when statistically certain (a 1% regression
    /// with tiny variance is significant but not actionable).
    pub min_effect: f64,
    /// Legacy point-ratio limit, used when either side of a row lacks
    /// a sample distribution.
    pub max_slowdown: f64,
    /// Noise floor in the metric's own unit (the old `--min-ms`).
    pub floor: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            alpha: 0.05,
            min_effect: 0.05,
            max_slowdown: 1.30,
            floor: 0.25,
        }
    }
}

/// The gated metrics: `(section, key_field, metric, mode)`. Rows are
/// matched across reports by the value of `key_field`; samples ride in
/// `"<metric>_samples"`. Units need not be milliseconds —
/// `staleness_p99_s` is simulated seconds; the floor is interpreted in
/// the metric's own unit.
pub const GATES: [(&str, &str, &str, GateMode); 9] = [
    (
        "solver",
        "states",
        "csr_serial_ms",
        GateMode::SkipBelowFloor,
    ),
    (
        "similarity",
        "states",
        "engine_ms",
        GateMode::SkipBelowFloor,
    ),
    (
        "recalibration",
        "states",
        "warm_ms",
        GateMode::SkipBelowFloor,
    ),
    (
        "incremental",
        "dirty_frac",
        "wall_ms",
        GateMode::SkipBelowFloor,
    ),
    ("fleet", "devices", "pool_wall_ms", GateMode::SkipBelowFloor),
    (
        "fleet",
        "devices",
        "staleness_p99_s",
        GateMode::FloorAsBaseline,
    ),
    ("arena", "devices", "wall_ms", GateMode::SkipBelowFloor),
    ("serve", "overload_x", "wall_ms", GateMode::SkipBelowFloor),
    (
        "serve",
        "overload_x",
        "staleness_p99_s",
        GateMode::FloorAsBaseline,
    ),
];

/// Verdict on one gated row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowVerdict {
    /// Within limits.
    Pass,
    /// Credible, practically large regression.
    Fail,
    /// Not judged (sub-floor baseline).
    Skip,
}

impl RowVerdict {
    /// The label the CLI prints after the row.
    pub fn label(self) -> &'static str {
        match self {
            RowVerdict::Pass => "ok",
            RowVerdict::Fail => "REGRESSION",
            RowVerdict::Skip => "skipped",
        }
    }
}

/// One judged (or skipped) row.
#[derive(Debug, Clone)]
pub struct RowReport {
    /// `"section/key_field=key metric"`, ready for printing.
    pub context: String,
    /// The verdict.
    pub verdict: RowVerdict,
    /// Human-readable evidence (test statistics or the point ratio).
    pub detail: String,
}

/// The whole gate run.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Judged and skipped rows, in gate order.
    pub rows: Vec<RowReport>,
    /// Section-level skips (absent sections, unmatched fixture sizes).
    pub notes: Vec<String>,
    /// Rows that received a pass/fail verdict.
    pub compared: usize,
    /// Rows that failed.
    pub failures: usize,
}

/// Judge one row. Prefers Welch's t-test over the rep distributions;
/// rows without at least two samples per side fall back to the legacy
/// point ratio against `max_slowdown`.
pub fn judge(
    baseline: f64,
    candidate: f64,
    baseline_samples: &[f64],
    candidate_samples: &[f64],
    cfg: &GateConfig,
) -> (RowVerdict, String) {
    if let Some(w) = welch_t_test(baseline_samples, candidate_samples) {
        let effect = w.mean_candidate / w.mean_baseline.max(cfg.floor) - 1.0;
        let fail = w.p_greater < cfg.alpha && effect > cfg.min_effect;
        let verdict = if fail {
            RowVerdict::Fail
        } else {
            RowVerdict::Pass
        };
        let detail = format!(
            "Welch t={:.2} df={:.1} p={:.4} effect={:+.1}% \
             (n={}/{}, alpha={}, min-effect={:.0}%)",
            w.t,
            w.df,
            w.p_greater,
            effect * 100.0,
            baseline_samples.len(),
            candidate_samples.len(),
            cfg.alpha,
            cfg.min_effect * 100.0,
        );
        (verdict, detail)
    } else {
        let ratio = candidate / baseline.max(cfg.floor);
        let verdict = if ratio > cfg.max_slowdown {
            RowVerdict::Fail
        } else {
            RowVerdict::Pass
        };
        let detail = format!(
            "{baseline:.3} -> {candidate:.3} ({ratio:.2}x, limit {:.2}x, point ratio)",
            cfg.max_slowdown
        );
        (verdict, detail)
    }
}

/// Evaluate two parsed reports against [`GATES`].
pub fn evaluate(committed: &Json, fresh: &Json, cfg: &GateConfig) -> GateOutcome {
    let mut out = GateOutcome::default();
    for (section, key_field, metric, mode) in GATES {
        let old_rows = committed.get(section).and_then(Json::as_arr).unwrap_or(&[]);
        let new_rows = fresh.get(section).and_then(Json::as_arr).unwrap_or(&[]);
        if old_rows.is_empty() || new_rows.is_empty() {
            out.notes.push(format!(
                "{section}: absent from {} report, skipped",
                if old_rows.is_empty() {
                    "committed"
                } else {
                    "fresh"
                }
            ));
            continue;
        }
        for old in old_rows {
            let Some(key) = old.num(key_field) else {
                continue;
            };
            let Some(new) = new_rows.iter().find(|r| r.num(key_field) == Some(key)) else {
                out.notes.push(format!(
                    "{section}/{key_field}={key}: only in committed report, skipped"
                ));
                continue;
            };
            let (Some(baseline), Some(candidate)) = (old.num(metric), new.num(metric)) else {
                continue;
            };
            let context = format!("{section}/{key_field}={key} {metric}");
            if baseline < cfg.floor && mode == GateMode::SkipBelowFloor {
                out.rows.push(RowReport {
                    context,
                    verdict: RowVerdict::Skip,
                    detail: format!(
                        "committed {baseline:.3} below the {:.2} noise floor",
                        cfg.floor
                    ),
                });
                continue;
            }
            let samples_key = format!("{metric}_samples");
            let baseline_samples = old.num_array(&samples_key).unwrap_or_default();
            let candidate_samples = new.num_array(&samples_key).unwrap_or_default();
            let (verdict, detail) = judge(
                baseline,
                candidate,
                &baseline_samples,
                &candidate_samples,
                cfg,
            );
            out.compared += 1;
            if verdict == RowVerdict::Fail {
                out.failures += 1;
            }
            out.rows.push(RowReport {
                context,
                verdict,
                detail,
            });
        }
    }
    out
}

/// Parse two report documents and evaluate them. A document that fails
/// to parse is a *corrupt baseline*, not a missing one: the error names
/// the offending role and position so the CLI can exit 3 instead of
/// silently skipping the gate.
pub fn evaluate_reports(
    committed: &str,
    fresh: &str,
    cfg: &GateConfig,
) -> Result<GateOutcome, String> {
    let committed = json::parse(committed).map_err(|e| format!("committed report: {e}"))?;
    let fresh = json::parse(fresh).map_err(|e| format!("fresh report: {e}"))?;
    Ok(evaluate(&committed, &fresh, cfg))
}

/// Live interleaved A/B: draw `reps` baseline/candidate measurement
/// pairs from `sample_ms` back-to-back (so machine load hits both arms
/// alike), scale the candidate arm by `ab_slowdown`, and judge with the
/// same Welch machinery as the file gate. `ab_slowdown = 1.0` is the
/// A/A sanity check: both arms sample the same distribution and the
/// verdict should pass all but `alpha` of the time.
///
/// # Panics
///
/// Panics if `reps < 2` — the t-test needs a distribution per arm.
pub fn live_ab(
    reps: usize,
    ab_slowdown: f64,
    cfg: &GateConfig,
    mut sample_ms: impl FnMut() -> f64,
) -> GateOutcome {
    assert!(reps >= 2, "live mode needs at least 2 reps per arm");
    let mut baseline = Vec::with_capacity(reps);
    let mut candidate = Vec::with_capacity(reps);
    for _ in 0..reps {
        baseline.push(sample_ms());
        candidate.push(sample_ms() * ab_slowdown);
    }
    let (verdict, detail) = judge(
        mean(&baseline),
        mean(&candidate),
        &baseline,
        &candidate,
        cfg,
    );
    GateOutcome {
        rows: vec![RowReport {
            context: format!("live/interleaved x{reps} csr_serial_ms"),
            verdict,
            detail,
        }],
        notes: Vec::new(),
        compared: 1,
        failures: (verdict == RowVerdict::Fail) as usize,
    }
}

/// A deterministic stand-in for wall-clock measurement: Box–Muller
/// normals around 100 ms with σ = 2 ms, seeded. Lets the live mode run
/// reproducibly in tests and CI smoke (`perf_gate --ab-seed N`).
pub fn synthetic_sampler(seed: u64) -> impl FnMut() -> f64 {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    move || {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (100.0 + 2.0 * z).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted(base: f64, n: usize, step: f64) -> Vec<f64> {
        (0..n).map(|i| base + step * i as f64).collect()
    }

    #[test]
    fn a_clear_regression_fails_the_welch_verdict() {
        let cfg = GateConfig::default();
        let baseline = shifted(100.0, 10, 0.5);
        let candidate = shifted(200.0, 10, 0.5);
        let (verdict, detail) = judge(100.0, 200.0, &baseline, &candidate, &cfg);
        assert_eq!(verdict, RowVerdict::Fail, "{detail}");
        assert!(detail.contains("Welch"));
    }

    #[test]
    fn within_noise_differences_pass() {
        let cfg = GateConfig::default();
        // Overlapping arms: mean shift ~1% against σ ≈ 3.
        let baseline = vec![100.0, 104.0, 98.0, 101.0, 97.0, 103.0];
        let candidate = vec![101.0, 105.0, 99.0, 102.0, 98.0, 104.0];
        let (verdict, detail) = judge(100.0, 101.0, &baseline, &candidate, &cfg);
        assert_eq!(verdict, RowVerdict::Pass, "{detail}");
    }

    #[test]
    fn statistically_significant_but_tiny_effects_pass() {
        let cfg = GateConfig::default();
        // A 2% slowdown with near-zero variance: p ≈ 0 but the effect
        // is under the 5% practicality floor.
        let baseline = shifted(100.0, 10, 1e-4);
        let candidate = shifted(102.0, 10, 1e-4);
        let (verdict, detail) = judge(100.0, 102.0, &baseline, &candidate, &cfg);
        assert_eq!(verdict, RowVerdict::Pass, "{detail}");
    }

    #[test]
    fn sampleless_rows_fall_back_to_the_point_ratio() {
        let cfg = GateConfig::default();
        let (verdict, detail) = judge(100.0, 140.0, &[], &[], &cfg);
        assert_eq!(verdict, RowVerdict::Fail);
        assert!(detail.contains("point ratio"), "{detail}");
        let (verdict, _) = judge(100.0, 120.0, &[], &[], &cfg);
        assert_eq!(verdict, RowVerdict::Pass);
        // One sample is not a distribution either.
        let (_, detail) = judge(100.0, 120.0, &[100.0], &[120.0], &cfg);
        assert!(detail.contains("point ratio"));
    }

    #[test]
    fn corrupt_reports_are_an_error_not_a_skip() {
        let cfg = GateConfig::default();
        let good = r#"{"solver": []}"#;
        let err = evaluate_reports("{\"solver\": [truncated", good, &cfg)
            .expect_err("corrupt committed report must error");
        assert!(err.starts_with("committed report:"), "{err}");
        let err = evaluate_reports(good, "", &cfg).expect_err("empty fresh report must error");
        assert!(err.starts_with("fresh report:"), "{err}");
        // Both parseable → a clean outcome even with nothing to gate.
        let out = evaluate_reports(good, good, &cfg).expect("valid reports");
        assert_eq!(out.compared, 0);
    }

    #[test]
    fn live_aa_passes_and_a_doubled_arm_fails() {
        let cfg = GateConfig::default();
        let aa = live_ab(10, 1.0, &cfg, synthetic_sampler(7));
        assert_eq!(aa.failures, 0, "{}", aa.rows[0].detail);
        let ab = live_ab(10, 2.0, &cfg, synthetic_sampler(7));
        assert_eq!(ab.failures, 1, "{}", ab.rows[0].detail);
        assert!(ab.rows[0].detail.contains("Welch"));
    }

    #[test]
    fn serve_slo_floor_ratio_matches_the_gate_arithmetic() {
        // The serve crate's SLO monitor re-states FloorAsBaseline
        // (`observed / max(objective, floor) − 1 > tolerance`) instead
        // of depending on this crate — a bench→serve→bench cycle would
        // not build. This pins the two formulas to each other: for any
        // (observed, objective) pair, the SLO breach decision and the
        // gate's point-ratio effect agree when floor and tolerance line
        // up with the gate's floor and min_effect.
        let cfg = GateConfig::default();
        let tolerance = cfg.min_effect;
        for &objective in &[0.0, 0.1, 0.25, 1.0, 300.0] {
            for &observed in &[0.0, 0.2, 0.26, 1.04, 1.06, 9.0, 315.1] {
                let ratio = capman_serve::slo::floor_ratio(observed, objective, cfg.floor);
                let slo_breach = ratio - 1.0 > tolerance;
                let gate_effect = observed / objective.max(cfg.floor) - 1.0;
                assert_eq!(
                    slo_breach,
                    gate_effect > cfg.min_effect,
                    "floor_ratio({observed}, {objective}, {}) diverged from the gate",
                    cfg.floor
                );
            }
        }
        // The degenerate-denominator guard: a non-positive denominator
        // reads as ratio 0 (no breach), exactly like guarded_ratio.
        assert_eq!(capman_serve::slo::floor_ratio(5.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn the_serve_section_is_gated_on_wall_and_staleness() {
        let cfg = GateConfig::default();
        let committed = r#"{
            "serve": [{"overload_x": 4, "wall_ms": 80.0, "staleness_p99_s": 40.0}]
        }"#;
        let fresh = r#"{
            "serve": [{"overload_x": 4, "wall_ms": 85.0, "staleness_p99_s": 90.0}]
        }"#;
        let out = evaluate_reports(committed, fresh, &cfg).expect("valid reports");
        assert_eq!(out.compared, 2, "both serve legs judged");
        assert_eq!(out.failures, 1, "the staleness jump trips, wall does not");
        let failed: Vec<_> = out
            .rows
            .iter()
            .filter(|r| r.verdict == RowVerdict::Fail)
            .collect();
        assert!(failed[0].context.contains("staleness_p99_s"));
    }

    #[test]
    fn floor_as_baseline_judges_subfloor_rows_and_skip_mode_does_not() {
        let cfg = GateConfig::default();
        // staleness_p99_s is gated FloorAsBaseline: a sub-floor
        // committed value still trips on a jump past floor × limit.
        let committed = r#"{
            "fleet": [{"devices": 64, "pool_wall_ms": 0.1, "staleness_p99_s": 0.1}]
        }"#;
        let fresh = r#"{
            "fleet": [{"devices": 64, "pool_wall_ms": 0.2, "staleness_p99_s": 9.0}]
        }"#;
        let out = evaluate_reports(committed, fresh, &cfg).expect("valid reports");
        let skipped: Vec<_> = out
            .rows
            .iter()
            .filter(|r| r.verdict == RowVerdict::Skip)
            .collect();
        assert_eq!(skipped.len(), 1, "pool_wall_ms skipped below floor");
        assert!(skipped[0].context.contains("pool_wall_ms"));
        assert_eq!(out.compared, 1, "staleness judged despite the floor");
        assert_eq!(out.failures, 1, "9.0 vs max(0.1, 0.25) is a 36x jump");
    }
}
