//! Property-based invariants for the battery models.

use proptest::prelude::*;

use capman_battery::cell::Cell;
use capman_battery::chemistry::Chemistry;
use capman_battery::kibam::Kibam;
use capman_battery::ocv::OcvCurve;
use capman_battery::pack::BatteryPack;
use capman_battery::supercap::Supercap;

fn arb_chemistry() -> impl Strategy<Value = Chemistry> {
    prop_oneof![
        Just(Chemistry::Lco),
        Just(Chemistry::Nca),
        Just(Chemistry::Lmo),
        Just(Chemistry::Nmc),
        Just(Chemistry::Lfp),
        Just(Chemistry::Lto),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The KiBaM never creates charge: whatever is drawn plus whatever
    /// remains equals the initial capacity.
    #[test]
    fn kibam_conserves_charge(
        c in 0.1f64..0.9,
        k in 1e-5f64..1e-2,
        currents in prop::collection::vec(0.0f64..10.0, 1..60),
    ) {
        let capacity = 9000.0;
        let mut kibam = Kibam::new(capacity, c, k).expect("valid");
        let mut delivered = 0.0;
        for i in currents {
            delivered += kibam.draw(i, 5.0).expect("draw").delivered_c;
        }
        let total = delivered + kibam.remaining_coulombs();
        prop_assert!((total - capacity).abs() < 1e-6 * capacity,
            "charge imbalance: {total} vs {capacity}");
    }

    /// Well heads stay in [0, 1] under any draw/rest schedule.
    #[test]
    fn kibam_heads_stay_bounded(
        c in 0.1f64..0.9,
        k in 1e-5f64..1e-2,
        steps in prop::collection::vec((0.0f64..8.0, 0.5f64..30.0), 1..50),
    ) {
        let mut kibam = Kibam::new(9000.0, c, k).expect("valid");
        for (current, dt) in steps {
            kibam.draw(current, dt).expect("draw");
            prop_assert!((0.0..=1.0).contains(&kibam.h1()));
            prop_assert!((0.0..=1.0).contains(&kibam.h2()));
            prop_assert!((0.0..=1.0).contains(&kibam.total_soc()));
        }
    }

    /// A cell's SoC never increases while discharging, and all reported
    /// quantities stay physical.
    #[test]
    fn cell_soc_monotone_under_discharge(
        chem in arb_chemistry(),
        demands in prop::collection::vec(0.0f64..6.0, 1..80),
    ) {
        let mut cell = Cell::new(chem, 2.5);
        let mut prev_soc = cell.soc();
        for demand in demands {
            let step = cell.step(demand, 1.0, 25.0);
            prop_assert!(cell.soc() <= prev_soc + 1e-12);
            prop_assert!(step.delivered_w >= 0.0);
            prop_assert!(step.heat_w >= 0.0);
            prop_assert!(step.current_a >= 0.0);
            prop_assert!(step.voltage_v.is_finite());
            prev_soc = cell.soc();
        }
    }

    /// A cell can never deliver more energy than its rated content.
    #[test]
    fn cell_delivery_bounded_by_rated_energy(
        chem in arb_chemistry(),
        demand in 0.5f64..8.0,
    ) {
        let mut cell = Cell::new(chem, 0.2);
        for _ in 0..20_000 {
            cell.step(demand, 1.0, 25.0);
            if cell.is_exhausted() {
                break;
            }
        }
        prop_assert!(cell.delivered_j() <= cell.rated_energy_j() * 1.05,
            "delivered {} of rated {}", cell.delivered_j(), cell.rated_energy_j());
    }

    /// Rest always weakly raises the available head.
    #[test]
    fn rest_never_lowers_available_head(
        chem in arb_chemistry(),
        surge_s in 10u32..300,
    ) {
        let mut cell = Cell::new(chem, 2.5);
        for _ in 0..surge_s {
            cell.step(5.0, 1.0, 25.0);
        }
        let before = cell.available_head();
        cell.rest(60.0, 25.0);
        prop_assert!(cell.available_head() >= before - 1e-9);
    }

    /// OCV curves are monotone for every chemistry at any sampled SoC
    /// pair.
    #[test]
    fn ocv_is_monotone(chem in arb_chemistry(), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let curve = OcvCurve::for_chemistry(chem);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(curve.voltage(lo) <= curve.voltage(hi) + 1e-12);
    }

    /// The pack serves no more than demanded and accounts shortfall
    /// exactly.
    #[test]
    fn pack_serves_at_most_demand(
        demands in prop::collection::vec(0.0f64..8.0, 1..60),
        select_little in prop::collection::vec(any::<bool>(), 1..60),
    ) {
        let mut pack = BatteryPack::paper_prototype();
        for (demand, little) in demands.iter().zip(select_little) {
            use capman_battery::chemistry::Class;
            pack.select(if little { Class::Little } else { Class::Big });
            let step = pack.step(*demand, 1.0, 25.0);
            prop_assert!(step.delivered_w <= demand + 1e-9);
            prop_assert!((step.delivered_w + step.shortfall_w - demand).abs() < 1e-6);
            prop_assert!(step.heat_w >= 0.0);
        }
    }

    /// Charging never overfills and conserves charge: accepted charge
    /// equals the gain in remaining coulombs.
    #[test]
    fn charging_conserves_and_caps(
        chem in arb_chemistry(),
        drain_s in 100u32..4000,
        charge_a in 0.1f64..5.0,
    ) {
        let mut cell = Cell::new(chem, 2.5);
        for _ in 0..drain_s {
            cell.step(2.0, 1.0, 25.0);
        }
        let mut kib_before = cell.soc();
        for _ in 0..200 {
            let accepted = cell.charge(charge_a, 10.0, 25.0);
            prop_assert!(accepted >= 0.0);
            prop_assert!(cell.soc() <= 1.0 + 1e-9, "soc {}", cell.soc());
            prop_assert!(cell.soc() >= kib_before - 1e-9, "charging lowered soc");
            kib_before = cell.soc();
        }
    }

    /// A drain-then-full-recharge round trip restores a usable cell.
    #[test]
    fn recharge_restores_usability(chem in arb_chemistry()) {
        use capman_battery::charging::Charger;
        let mut cell = Cell::new(chem, 0.5);
        for _ in 0..100_000 {
            cell.step(3.0, 1.0, 25.0);
            if cell.is_exhausted() {
                break;
            }
        }
        let report = Charger::default().charge_cell(&mut cell, 200_000.0);
        prop_assert!(report.final_soc > 0.9, "soc {}", report.final_soc);
        prop_assert!(cell.is_usable(), "recharged cell must be usable");
        let s = cell.step(0.5, 1.0, 25.0);
        prop_assert!(s.delivered_w > 0.4);
    }

    /// The supercapacitor filter never manufactures energy: cumulative
    /// battery input plus buffer drain covers the served load.
    #[test]
    fn supercap_energy_balance(
        demands in prop::collection::vec(0.0f64..10.0, 1..100),
    ) {
        let mut cap = Supercap::prototype();
        let start = cap.stored_j();
        let mut battery_j = 0.0;
        let mut served_j = 0.0;
        for demand in demands {
            let s = cap.filter(demand, 0.5);
            battery_j += s.battery_demand_w * 0.5;
            served_j += (demand - s.shortfall_w) * 0.5;
        }
        let available = battery_j + (start - cap.stored_j());
        prop_assert!(served_j <= available + 1e-6,
            "served {served_j} J from only {available} J");
    }
}
