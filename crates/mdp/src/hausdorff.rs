//! Hausdorff distance between node sets.
//!
//! Eq. (4) defines the state similarity through the Hausdorff distance
//! between the two states' action-neighbourhoods `N_u`, `N_v` under the
//! action distance `delta_A`:
//!
//! ```text
//! d_H(X, Y) = max( sup_{x in X} inf_{y in Y} d(x, y),
//!                  sup_{y in Y} inf_{x in X} d(x, y) )
//! ```

/// The Hausdorff distance between index sets `xs` and `ys` under the
/// pairwise distance `dist`.
///
/// By convention the distance between two empty sets is zero and between
/// an empty and a non-empty set is one (the maximum of the normalised
/// distance scale) — this matches the paper's base case where exactly one
/// absorbing state yields distance one.
pub fn hausdorff(xs: &[usize], ys: &[usize], dist: impl Fn(usize, usize) -> f64) -> f64 {
    match (xs.is_empty(), ys.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return 1.0,
        (false, false) => {}
    }
    let directed = |from: &[usize], to: &[usize]| -> f64 {
        from.iter()
            .map(|&x| to.iter().map(|&y| dist(x, y)).fold(f64::INFINITY, f64::min))
            .fold(0.0, f64::max)
    };
    directed(xs, ys).max(directed(ys, xs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1(i: usize, j: usize) -> f64 {
        (i as f64 - j as f64).abs()
    }

    #[test]
    fn identical_sets_have_zero_distance() {
        let xs = [1, 3, 5];
        assert_eq!(hausdorff(&xs, &xs, l1), 0.0);
    }

    #[test]
    fn singleton_sets_use_pairwise_distance() {
        assert_eq!(hausdorff(&[2], &[7], l1), 5.0);
    }

    #[test]
    fn superset_distance_is_directed_max() {
        // {0, 10} vs {0}: the unmatched 10 dominates.
        assert_eq!(hausdorff(&[0, 10], &[0], l1), 10.0);
    }

    #[test]
    fn symmetric() {
        let a = [1, 4];
        let b = [2, 9];
        assert_eq!(hausdorff(&a, &b, l1), hausdorff(&b, &a, l1));
    }

    #[test]
    fn empty_set_conventions() {
        assert_eq!(hausdorff(&[], &[], l1), 0.0);
        assert_eq!(hausdorff(&[], &[3], l1), 1.0);
        assert_eq!(hausdorff(&[3], &[], l1), 1.0);
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let sets: [&[usize]; 3] = [&[0, 1], &[2], &[4, 5]];
        for a in sets {
            for b in sets {
                for c in sets {
                    let ab = hausdorff(a, b, l1);
                    let bc = hausdorff(b, c, l1);
                    let ac = hausdorff(a, c, l1);
                    assert!(ac <= ab + bc + 1e-12);
                }
            }
        }
    }
}
