//! Exact Bellman solving (Eqs. 8–9).
//!
//! ```text
//! V*(u) = max_{a in N_u} Q*(a)
//! Q*(a) = sum_u p(a, u) (r(a, u) + rho * V*(u))
//! ```
//!
//! The *Oracle* baseline is built on this solver; the structural-
//! similarity bound of Section III-D is verified against it in tests.

use serde::{Deserialize, Serialize};

use crate::mdp::Mdp;

/// An exact solution of a discounted MDP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Optimal state values `V*`.
    pub values: Vec<f64>,
    /// Optimal action values `Q*[s][a]` (`f64::NEG_INFINITY` where the
    /// action is unavailable).
    pub q: Vec<Vec<f64>>,
    /// Greedy policy: the maximising action per state, `None` for
    /// absorbing states.
    pub policy: Vec<Option<usize>>,
    /// Bellman sweeps performed.
    pub iterations: usize,
}

/// Solve the MDP by value iteration to precision `eps` (sup norm of the
/// Bellman residual).
///
/// Absorbing states have value zero, matching the paper's convention that
/// target states terminate the accumulation.
///
/// # Panics
///
/// Panics if `rho` is not in `[0, 1)` or `eps` is not positive.
pub fn solve(mdp: &Mdp, rho: f64, eps: f64) -> Solution {
    assert!((0.0..1.0).contains(&rho), "discount must be in [0, 1)");
    assert!(eps > 0.0, "precision must be positive");
    let n = mdp.n_states();
    let mut values = vec![0.0; n];
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut residual: f64 = 0.0;
        for s in 0..n {
            let mut best = f64::NEG_INFINITY;
            for a in mdp.available_actions(s) {
                let q: f64 = mdp
                    .outcomes(s, a)
                    .iter()
                    .map(|o| o.prob * (o.reward + rho * values[o.next]))
                    .sum();
                best = best.max(q);
            }
            let new = if best.is_finite() { best } else { 0.0 };
            residual = residual.max((new - values[s]).abs());
            values[s] = new;
        }
        if residual < eps || iterations > 1_000_000 {
            break;
        }
    }

    let mut q = vec![Vec::new(); n];
    let mut policy = vec![None; n];
    for s in 0..n {
        q[s] = (0..mdp.n_actions())
            .map(|a| {
                let outs = mdp.outcomes(s, a);
                if outs.is_empty() {
                    f64::NEG_INFINITY
                } else {
                    outs.iter()
                        .map(|o| o.prob * (o.reward + rho * values[o.next]))
                        .sum()
                }
            })
            .collect();
        policy[s] = mdp
            .available_actions(s)
            .max_by(|&a, &b| q[s][a].total_cmp(&q[s][b]));
    }

    Solution {
        values,
        q,
        policy,
        iterations,
    }
}

/// Evaluate a fixed (deterministic) policy's state values.
///
/// States where the policy provides no action (or an unavailable one)
/// are treated as absorbing.
///
/// # Panics
///
/// Panics if `rho` is not in `[0, 1)` or `eps` is not positive, or the
/// policy is shorter than the state space.
pub fn evaluate_policy(mdp: &Mdp, policy: &[Option<usize>], rho: f64, eps: f64) -> Vec<f64> {
    assert!((0.0..1.0).contains(&rho), "discount must be in [0, 1)");
    assert!(eps > 0.0, "precision must be positive");
    assert!(policy.len() >= mdp.n_states(), "policy too short");
    let n = mdp.n_states();
    let mut values = vec![0.0; n];
    loop {
        let mut residual: f64 = 0.0;
        for s in 0..n {
            let new = match policy[s] {
                Some(a) if !mdp.outcomes(s, a).is_empty() => mdp
                    .outcomes(s, a)
                    .iter()
                    .map(|o| o.prob * (o.reward + rho * values[o.next]))
                    .sum(),
                _ => 0.0,
            };
            residual = residual.max((new - values[s]).abs());
            values[s] = new;
        }
        if residual < eps {
            return values;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;

    fn two_armed() -> Mdp {
        // State 0 chooses between a low arm (r=0.2) and a high arm
        // (r=0.9), both leading to the absorbing state 1.
        let mut b = MdpBuilder::new(2, 2);
        b.transition(0, 0, 1, 1.0, 0.2);
        b.transition(0, 1, 1, 1.0, 0.9);
        b.build()
    }

    #[test]
    fn picks_the_better_arm() {
        let sol = solve(&two_armed(), 0.9, 1e-10);
        assert_eq!(sol.policy[0], Some(1));
        assert!((sol.values[0] - 0.9).abs() < 1e-9);
        assert_eq!(sol.values[1], 0.0);
        assert_eq!(sol.policy[1], None);
    }

    #[test]
    fn geometric_series_on_a_self_loop() {
        // A self-loop with reward 1 has value 1/(1-rho).
        let mut b = MdpBuilder::new(1, 1);
        b.transition(0, 0, 0, 1.0, 1.0);
        let m = b.build();
        let rho = 0.8;
        let sol = solve(&m, rho, 1e-12);
        assert!((sol.values[0] - 1.0 / (1.0 - rho)).abs() < 1e-6);
    }

    #[test]
    fn values_bounded_by_one_over_one_minus_rho() {
        // With rewards in [0,1], V* <= 1/(1-rho) always.
        let mut b = MdpBuilder::new(4, 3);
        b.transition(0, 0, 1, 0.5, 1.0);
        b.transition(0, 0, 2, 0.5, 0.7);
        b.transition(1, 1, 0, 1.0, 0.9);
        b.transition(2, 2, 3, 1.0, 1.0);
        b.transition(3, 0, 0, 1.0, 1.0);
        let m = b.build();
        let rho = 0.95;
        let sol = solve(&m, rho, 1e-10);
        for v in &sol.values {
            assert!(*v <= 1.0 / (1.0 - rho) + 1e-6);
            assert!(*v >= 0.0);
        }
    }

    #[test]
    fn policy_evaluation_matches_optimal_for_optimal_policy() {
        let m = two_armed();
        let sol = solve(&m, 0.9, 1e-10);
        let v = evaluate_policy(&m, &sol.policy, 0.9, 1e-10);
        for (a, b) in v.iter().zip(&sol.values) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn suboptimal_policy_has_lower_value() {
        let m = two_armed();
        let v = evaluate_policy(&m, &[Some(0), None], 0.9, 1e-10);
        assert!((v[0] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn stochastic_transitions_average_rewards() {
        let mut b = MdpBuilder::new(3, 1);
        b.transition(0, 0, 1, 0.5, 0.0);
        b.transition(0, 0, 2, 0.5, 1.0);
        let sol = solve(&b.build(), 0.5, 1e-12);
        assert!((sol.values[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn higher_discount_raises_values_on_recurrent_chains() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 1, 1.0, 0.5);
        b.transition(1, 0, 0, 1.0, 0.5);
        let m = b.build();
        let lo = solve(&m, 0.5, 1e-12).values[0];
        let hi = solve(&m, 0.95, 1e-12).values[0];
        assert!(hi > lo);
    }

    #[test]
    #[should_panic(expected = "discount")]
    fn rejects_discount_of_one() {
        let _ = solve(&two_armed(), 1.0, 1e-6);
    }
}
