//! Regenerate every table and figure of the CAPMAN paper.
//!
//! ```text
//! cargo run --release -p capman-bench --bin figures            # everything
//! cargo run --release -p capman-bench --bin figures -- fig12   # one experiment
//! ```
//!
//! Each section prints the measured series/rows next to the paper's
//! stated values where the paper gives them. EXPERIMENTS.md records the
//! comparison.

use capman_battery::cell::Cell;
use capman_battery::chemistry::{Chemistry, Class, Features};
use capman_battery::pack::BatteryPack;
use capman_battery::switch::SwitchFacility;
use capman_battery::vedge::VEdgeProbe;
use capman_core::baselines::PracticePolicy;
use capman_core::config::SimConfig;
use capman_core::experiments::{self, PolicyKind};
use capman_core::sim::Simulator;
use capman_device::constants;
use capman_device::phone::PhoneProfile;
use capman_device::power::{Demand, PowerModel};
use capman_device::states::{CpuState, DeviceState, ScreenState, WifiState};
use capman_thermal::tec::Tec;
use capman_workload::{generate, WorkloadKind};

const SEED: u64 = 42;

fn main() {
    let filter = std::env::args().nth(1);
    let run = |name: &str| filter.as_deref().map(|f| f == name).unwrap_or(true);

    if run("fig1") {
        fig1();
    }
    if run("fig2a") {
        fig2a();
    }
    if run("fig2b") {
        fig2b();
    }
    if run("fig3") {
        fig3();
    }
    if run("fig4") {
        fig4();
    }
    if run("table1") {
        table1();
    }
    if run("fig6") {
        fig6();
    }
    if run("table2") {
        table2();
    }
    if run("table3") {
        table3();
    }
    if run("fig9") {
        fig9();
    }
    if run("fig12") {
        fig12();
    }
    if run("fig13") {
        fig13();
    }
    if run("fig14") {
        fig14();
    }
    if run("fig15") {
        fig15();
    }
    if run("fig16") {
        fig16();
    }
    if run("fig12x") {
        fig12x();
    }
    if run("practice5") {
        practice5();
    }
    if run("ambient") {
        ambient();
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Fig. 1: LMO vs NCA electron release (cumulative charge) under the same
/// constant-power pull.
fn fig1() {
    header("Fig 1: LMO vs NCA power-supply behaviour (cumulative charge, 2 W pull)");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "t [s]", "LMO [C]", "LMO [V]", "NCA [C]", "NCA [V]"
    );
    let mut lmo = Cell::new(Chemistry::Lmo, 2.5);
    let mut nca = Cell::new(Chemistry::Nca, 2.5);
    let mut q_lmo = 0.0;
    let mut q_nca = 0.0;
    for t in 0..=3600 {
        let sl = lmo.step(2.0, 1.0, 25.0);
        let sn = nca.step(2.0, 1.0, 25.0);
        q_lmo += sl.current_a;
        q_nca += sn.current_a;
        if t % 600 == 0 {
            println!(
                "{:>8} {:>12.1} {:>12.3} {:>12.1} {:>12.3}",
                t, q_lmo, sl.voltage_v, q_nca, sn.voltage_v
            );
        }
    }
    println!("(LMO releases charge faster at the same power — higher discharge rate)");
}

/// Run a single-cell phone to end of service on a workload.
fn single_cell_service(chem: Chemistry, capacity_ah: f64, workload: WorkloadKind) -> f64 {
    let config = SimConfig::paper();
    let trace = generate(workload, config.max_horizon_s, SEED);
    let sim = Simulator::new(
        PhoneProfile::nexus(),
        trace,
        BatteryPack::single(chem, capacity_ah),
        Box::new(PracticePolicy),
        config,
    );
    sim.run().service_time_s
}

/// Fig. 2a: discharge-cycle time per app for LMO vs NCA (2500 mAh each).
fn fig2a() {
    header("Fig 2a: battery-on time per application, LMO vs NCA (2500 mAh)");
    println!("(the paper reports LMO +14.3% on screen-on idle and NCA +24% on video; our");
    println!("(Table-I-consistent model has the big cell win steady loads and the LITTLE");
    println!("(cell win bursty ones — see EXPERIMENTS.md on the paper's internal labels)");
    for workload in [WorkloadKind::IdleOn, WorkloadKind::Video] {
        let lmo = single_cell_service(Chemistry::Lmo, 2.5, workload);
        let nca = single_cell_service(Chemistry::Nca, 2.5, workload);
        let winner = if lmo > nca { "LMO" } else { "NCA" };
        let gain = (lmo.max(nca) / lmo.min(nca) - 1.0) * 100.0;
        println!(
            "  {:<16} LMO {:>8.0} s   NCA {:>8.0} s   -> {winner} +{gain:.1}%",
            workload.label(),
            lmo,
            nca
        );
    }
}

/// Fig. 2b: screen ON/OFF toggle frequency vs service time per chemistry.
fn fig2b() {
    header("Fig 2b: phone ON/OFF toggle frequency vs battery-on time");
    println!(
        "{:>12} {:>12} {:>12} {:>16}",
        "period [s]", "LMO [s]", "NCA [s]", "LITTLE benefit"
    );
    for period in [60u32, 30, 10, 4, 2] {
        let workload = WorkloadKind::Toggle { period_s: period };
        let lmo = single_cell_service(Chemistry::Lmo, 2.5, workload);
        let nca = single_cell_service(Chemistry::Nca, 2.5, workload);
        println!(
            "{:>12} {:>12.0} {:>12.0} {:>15.1}%",
            period,
            lmo,
            nca,
            (lmo / nca - 1.0) * 100.0
        );
    }
    println!("(the paper reports the relative benefit shrinking as toggling accelerates)");
}

/// Fig. 3: V-edge voltage curves and the D1/D2/D3 decomposition.
fn fig3() {
    header("Fig 3: V-edge step response (D1/D2/D3 areas)");
    let scenarios = [
        (
            "video-start surge",
            VEdgeProbe {
                base_w: 1.0,
                surge_w: 5.0,
                ..VEdgeProbe::default()
            },
        ),
        (
            "screen ON/OFF",
            VEdgeProbe {
                base_w: 0.1,
                surge_w: 2.5,
                surge_s: 4.0,
                ..VEdgeProbe::default()
            },
        ),
    ];
    println!(
        "{:<20} {:<5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "scenario", "cell", "V0", "Vmin", "Vss", "D1", "D2", "D3", "D3-D1"
    );
    for (name, probe) in scenarios {
        for chem in [Chemistry::Lmo, Chemistry::Nca] {
            let mut cell = Cell::new(chem, 2.5);
            let a = probe.run(&mut cell, 25.0).analysis();
            println!(
                "{:<20} {:<5} {:>8.3} {:>8.3} {:>8.3} {:>8.2} {:>8.1} {:>8.1} {:>9.1}",
                name,
                chem.symbol(),
                a.v_initial,
                a.v_min,
                a.v_steady,
                a.d1,
                a.d2,
                a.d3,
                a.saving_potential()
            );
        }
    }
    println!("(LITTLE minimises the transient dip D1; areas are in volt-seconds)");
}

/// Fig. 4: the normalized radar map of battery metrics.
fn fig4() {
    header("Fig 4: normalized battery metrics (radar map)");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "cell", "discharge", "density", "cost", "lifetime", "safety"
    );
    for chem in Chemistry::ALL {
        let r = chem.radar();
        println!(
            "{:<6} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>8.2}",
            chem.symbol(),
            r[0],
            r[1],
            r[2],
            r[3],
            r[4]
        );
    }
    println!("(no single chemistry covers all five axes — the motivation for big.LITTLE)");
}

/// Table I: star ratings and big/LITTLE classification.
fn table1() {
    header("Table I: battery model (star ratings -> big/LITTLE)");
    println!(
        "{:<22} {:<6} {:<6} {:<9} {:<8} {:<7}",
        "battery", "cost", "life", "discharge", "density", "result"
    );
    for chem in Chemistry::ALL {
        let f = chem.features();
        println!(
            "{:<22} {:<6} {:<6} {:<9} {:<8} {:<7}",
            format!("{}", chem),
            Features::stars(f.cost_efficiency),
            Features::stars(f.lifetime),
            Features::stars(f.discharge_rate),
            Features::stars(f.energy_density),
            chem.class()
        );
    }
}

/// Fig. 6: TEC delta-T vs operating current (peak at the 1.0 A rating).
fn fig6() {
    header("Fig 6: TEC temperature difference vs operating current");
    let tec = Tec::ate31();
    println!("rated current: {:.2} A", tec.rated_current_a());
    println!("{:>8} {:>12} {:>12}", "I [A]", "dT [K]", "P [W]");
    for i in 0..=22 {
        let current = f64::from(i) * 0.1;
        println!(
            "{:>8.1} {:>12.2} {:>12.3}",
            current,
            tec.delta_t_steady(current),
            tec.power_w(current, 25.0, 25.0 + tec.delta_t_steady(current).max(0.0))
        );
    }
    println!("(rises to the 1.0 A rated current, then falls — drive the TEC at its rating)");
}

/// Table II: the component power models at reference operating points.
fn table2() {
    header("Table II: component power models (evaluated at reference points)");
    let model = PowerModel::calibrated(8, 1.0);
    let full = Demand {
        cpu_util: 100.0,
        freq_index: 7,
        brightness: constants::SCREEN_REF_BRIGHTNESS,
        packet_rate: constants::WIFI_REF_ACCESS_PPS,
    };
    println!(
        "CPU    P = gamma_f * mu + C       -> C0 @ mu=100, top f: {:>7.1} mW (Table III: {})",
        model.cpu().power_mw(CpuState::C0, &full),
        constants::CPU_C0_MW
    );
    println!(
        "Screen P = (a_b + a_w)/2 * B + C  -> on @ B={}: {:>10.1} mW (Table III: {})",
        constants::SCREEN_REF_BRIGHTNESS,
        model.screen().power_mw(ScreenState::On, &full),
        constants::SCREEN_ON_MW
    );
    println!(
        "WiFi   piecewise in packet rate   -> access @ p={}: {:>6.1} mW (Table III: {})",
        constants::WIFI_REF_ACCESS_PPS,
        model.wifi().power_mw(WifiState::Access, &full),
        constants::WIFI_ACCESS_MW
    );
    let send = Demand {
        packet_rate: constants::WIFI_REF_SEND_PPS,
        ..full
    };
    println!(
        "WiFi   (high regime)              -> send @ p={}: {:>8.1} mW (Table III: {})",
        constants::WIFI_REF_SEND_PPS,
        model.wifi().power_mw(WifiState::Send, &send),
        constants::WIFI_SEND_MW
    );
    let tec = Tec::ate31();
    println!(
        "TEC    P = alpha I dT + I^2 R     -> 1.0 A @ dT=20 K: {:>7.3} W",
        tec.power_w(1.0, 25.0, 45.0)
    );
}

/// Table III: the measured state powers.
fn table3() {
    header("Table III: average power per hardware state [mW]");
    println!(
        "CPU    C0={} C1={} C2={} Sleep={}",
        constants::CPU_C0_MW,
        constants::CPU_C1_MW,
        constants::CPU_C2_MW,
        constants::CPU_SLEEP_MW
    );
    println!(
        "Screen Off={} On={}",
        constants::SCREEN_OFF_MW,
        constants::SCREEN_ON_MW
    );
    println!(
        "WiFi   Idle={} Access={} Send={}",
        constants::WIFI_IDLE_MW,
        constants::WIFI_ACCESS_MW,
        constants::WIFI_SEND_MW
    );
    println!(
        "TEC    Off={} On={}",
        constants::TEC_OFF_MW,
        constants::TEC_ON_MW
    );
    // Round-trip check: an awake phone's modelled power equals the sum of
    // its Table III parts.
    let model = PowerModel::calibrated(8, 1.0);
    let d = Demand {
        cpu_util: 100.0,
        freq_index: 7,
        brightness: constants::SCREEN_REF_BRIGHTNESS,
        packet_rate: constants::WIFI_REF_ACCESS_PPS,
    };
    let p = model.device_power_mw(&DeviceState::awake(), &d);
    println!(
        "check: awake phone @ reference points = {:.1} mW (C0 + screen-on + access = {})",
        p,
        constants::CPU_C0_MW + constants::SCREEN_ON_MW + constants::WIFI_ACCESS_MW
    );
}

/// Fig. 9: the TTL switch control signal.
fn fig9() {
    header("Fig 9: switch facility control signal (flips at t = 2, 5, 7, 8 s)");
    let mut facility = SwitchFacility::default();
    for t in [2.0, 5.0, 7.0, 8.0] {
        let target = facility.active().other();
        facility.switch_to(target, t);
    }
    println!("{:>10} {:>10} {:>10}", "t [s]", "level [V]", "selects");
    for &(t, level) in facility.signal() {
        let selects = if level > 1.0 {
            Class::Little
        } else {
            Class::Big
        };
        println!("{:>10.4} {:>10.1} {:>10}", t, level, selects.to_string());
    }
    println!(
        "flips: {}   switching energy: {:.2} J",
        facility.flips(),
        facility.energy_j()
    );
}

/// Fig. 12: one-discharge-cycle service time, 6 workloads x 5 policies.
fn fig12() {
    header("Fig 12: one-discharge-cycle performance (service time [s])");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "workload", "Oracle", "CAPMAN", "Heuristic", "Dual", "Practice"
    );
    let mut capman_vs = Vec::new();
    for workload in WorkloadKind::fig12() {
        let outcomes = experiments::fig12_row(workload, SEED);
        print!("{:<12}", workload.label());
        for o in &outcomes {
            print!(" {:>9.0}", o.service_time_s);
        }
        println!();
        let get = |k: PolicyKind| {
            outcomes
                .iter()
                .find(|o| o.policy == k.label())
                .expect("present")
                .clone()
        };
        let capman = get(PolicyKind::Capman);
        capman_vs.push((
            workload.label(),
            capman.service_gain_pct(&get(PolicyKind::Heuristic)),
            capman.service_gain_pct(&get(PolicyKind::Dual)),
            capman.service_gain_pct(&get(PolicyKind::Practice)),
            capman.service_gain_pct(&get(PolicyKind::Oracle)),
            capman.energy_saving_pct(&get(PolicyKind::Heuristic)),
            capman.performance_gain_pct(&get(PolicyKind::Heuristic)),
        ));
    }
    println!("\nCAPMAN gains (service time unless noted):");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "workload", "vs Heur", "vs Dual", "vs Practice", "vs Oracle", "energy/Heur", "perf/Heur"
    );
    for (w, heur, dual, practice, oracle, energy, perf) in &capman_vs {
        println!(
            "{:<12} {:>9.1}% {:>9.1}% {:>11.1}% {:>9.1}% {:>11.1}% {:>11.1}%",
            w, heur, dual, practice, oracle, energy, perf
        );
    }
    println!("\npaper targets: Geekbench +50% vs Practice; PCMark +21.3/+25.7% vs Dual/Heur;");
    println!("Video +53.3/+55.1/+67.1% vs Heur/Dual/Practice (within 9.6% of Oracle);");
    println!("eta mixes +76/+105/+114% vs Practice; avg +55.08% perf, 53.27% less energy.");
}

/// Fig. 13: cooling and active power over a cycle per workload.
fn fig13() {
    header("Fig 13: cooling and active power management (CAPMAN telemetry)");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "workload", "mean P [mW]", "peak P [mW]", "mean T", "max T", "TEC duty"
    );
    for outcome in experiments::fig13(SEED) {
        let t = &outcome.telemetry;
        println!(
            "{:<12} {:>12.0} {:>12.0} {:>9.1}C {:>9.1}C {:>9.2}",
            outcome.workload,
            t.mean_power_mw(),
            t.max_power_mw(),
            outcome.mean_hotspot_c,
            outcome.max_hotspot_c,
            t.tec_duty()
        );
    }
    println!("(the paper: temperature held around 45 degC; TEC boots near 2300 mW active power)");
}

/// Fig. 14: big/LITTLE activation ratio vs temperature reduction.
fn fig14() {
    header("Fig 14: big/LITTLE ratio vs TEC temperature reduction");
    println!(
        "{:<12} {:>16} {:>18}",
        "workload", "big:LITTLE ratio", "temp reduction [K]"
    );
    for p in experiments::fig14(SEED) {
        println!(
            "{:<12} {:>16.2} {:>18.1}",
            p.workload, p.big_little_ratio, p.temp_reduction_k
        );
    }
    println!("(LITTLE-heavy workloads wake the TEC more and see the larger reductions)");
}

/// Fig. 15: CAPMAN snapshots on the three phones.
fn fig15() {
    header("Fig 15: CAPMAN on Nexus / Honor / Lenovo (PCMark trace)");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "phone", "service [s]", "mean P [mW]", "peak P [mW]", "max T", "overhead us"
    );
    for o in experiments::fig15(WorkloadKind::Pcmark, SEED) {
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>12.0} {:>9.1}C {:>12.0}",
            o.phone,
            o.service_time_s,
            o.telemetry.mean_power_mw(),
            o.telemetry.max_power_mw(),
            o.max_hotspot_c,
            o.scheduler_overhead_us
        );
    }
    println!("(the paper reports similar management across phones, power 100 -> 450 mW range)");
}

/// Fig. 16: scheduler overhead vs the discount factor rho.
fn fig16() {
    header("Fig 16: runtime-calibration overhead vs discount factor rho");
    let rhos = [0.05, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99];
    let points = experiments::fig16(&rhos, SEED);
    println!(
        "{:<8} {:>8} {:>14} {:>12}",
        "phone", "rho", "overhead [us]", "iterations"
    );
    for p in &points {
        println!(
            "{:<8} {:>8.2} {:>14.0} {:>12}",
            p.phone, p.rho, p.overhead_us, p.iterations
        );
    }
    println!("(exponential growth toward rho -> 1; slower phones pay proportionally more —");
    println!("the paper reports ~300 us at rho -> 1 on the Nexus; absolute values depend on");
    println!("the host, the shape is the reproduction target)");
}

/// Fig. 12 scatter: mean and std of the service time over several seeds
/// (the paper's "green dots collected from multiple simulation
/// experiments"). Not part of the default run — invoke with `fig12x`.
fn fig12x() {
    header("Fig 12 (scatter): service time over 3 seeds, mean +/- std [s]");
    let seeds = [42, 43, 44];
    for workload in WorkloadKind::fig12() {
        print!("{:<12}", workload.label());
        for stat in experiments::fig12_stats(workload, &seeds) {
            print!(" {:>8.0}+/-{:<5.0}", stat.mean_s, stat.std_s);
        }
        println!();
    }
    println!("(columns: Oracle, CAPMAN, Heuristic, Dual, Practice)");
}

/// Ablation: the equal-total-capacity Practice reading (one 5 Ah NCA
/// cell instead of the 3.22 Ah stock battery). Invoke with `practice5`.
fn practice5() {
    use capman_core::experiments::run_with_pack;
    header("Ablation: Practice with one 5 Ah cell (capacity-equal reading)");
    println!(
        "{:<12} {:>14} {:>14} {:>16}",
        "workload", "stock 3.22Ah", "equal 5Ah", "CAPMAN"
    );
    for workload in WorkloadKind::fig12() {
        let stock =
            experiments::run_policy(PolicyKind::Practice, workload, PhoneProfile::nexus(), SEED);
        let equal = run_with_pack(
            PolicyKind::Practice,
            workload,
            PhoneProfile::nexus(),
            SEED,
            SimConfig::paper(),
            BatteryPack::single(Chemistry::Nca, 5.0),
        );
        let capman =
            experiments::run_policy(PolicyKind::Capman, workload, PhoneProfile::nexus(), SEED);
        println!(
            "{:<12} {:>13.0}s {:>13.0}s {:>13.0}s ({:+.0}% / {:+.0}%)",
            workload.label(),
            stock.service_time_s,
            equal.service_time_s,
            capman.service_time_s,
            capman.service_gain_pct(&stock),
            capman.service_gain_pct(&equal),
        );
    }
    println!("(even against a capacity-equal single cell, scheduling wins on bursty loads)");
}

/// Ambient-temperature sensitivity (invoke with `ambient`): the paper
/// claims CAPMAN maintains the temperature "even under skewed loads";
/// hotter rooms work the TEC harder.
fn ambient() {
    header("Ambient sweep: eta-50% mix under CAPMAN at several room temperatures");
    println!(
        "{:>10} {:>12} {:>10} {:>10}",
        "ambient", "service [s]", "TEC on [s]", "max T"
    );
    for p in experiments::ambient_sweep(&[15.0, 25.0, 32.0, 38.0], SEED, 40_000.0) {
        println!(
            "{:>9.0}C {:>12.0} {:>10.0} {:>9.1}C",
            p.ambient_c, p.service_time_s, p.tec_on_s, p.max_hotspot_c
        );
    }
    println!("(the TEC absorbs the ambient rise until its pumping margin runs out)");
}
