//! Concurrency hammer for the observability substrate: the registry and
//! tracer are hit simultaneously from the vendored-rayon worker pool
//! (the fleet's sharding threads) *and* raw `std::thread`s (the
//! calibration pool's workers), while a drainer races `Tracer::drain`
//! against live recording. Totals must come out exact — a sharded
//! counter that loses an increment or a drain that tears or duplicates
//! a span record would silently corrupt the acceptance comparison
//! against `ShardThroughput` ground truth.
//!
//! Everything here uses *local* `Registry` / `Tracer` instances so the
//! tests stay independent of the feature-gated global hooks (and of
//! each other under the parallel test runner).

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use capman_obs::trace::validate;
use capman_obs::{Registry, Tracer};
use rayon::prelude::*;

#[test]
fn counters_are_exact_under_rayon_and_raw_threads() {
    let registry = Arc::new(Registry::new());
    let counter = registry.counter("hammer_total", "Concurrency hammer");
    let gauge = registry.gauge("hammer_inflight", "Balanced add/sub");
    let hist = registry.histogram("hammer_hist", "Observed values", &[10.0, 100.0, 1000.0]);

    // Rayon arm: the fleet runner's access pattern — every chunk of a
    // shared slice bumps the same metrics from whatever worker thread
    // the chunk landed on.
    const DEVICES: usize = 4096;
    const CHUNK: usize = 64;
    let mut fleet = vec![0u64; DEVICES];
    {
        let counter = Arc::clone(&counter);
        let gauge = Arc::clone(&gauge);
        let hist = Arc::clone(&hist);
        fleet
            .as_mut_slice()
            .par_chunks_mut(CHUNK)
            .enumerate()
            .for_each(|i, chunk| {
                for x in chunk.iter_mut() {
                    *x = 1;
                    counter.inc();
                    hist.observe((i % 4) as f64 * 50.0);
                }
                gauge.add(1);
                gauge.sub(1);
            });
    }

    // Raw-thread arm: the calibration pool's access pattern — long-lived
    // workers adding in bursts.
    const WORKERS: usize = 8;
    const BURSTS: u64 = 1000;
    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            let counter = Arc::clone(&counter);
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                for j in 0..BURSTS {
                    counter.add(2);
                    hist.observe(j as f64);
                }
            });
        }
    });

    assert_eq!(fleet.iter().sum::<u64>(), DEVICES as u64);
    assert_eq!(
        counter.value(),
        DEVICES as u64 + WORKERS as u64 * BURSTS * 2,
        "no increment may be lost across shards"
    );
    assert_eq!(gauge.value(), 0, "balanced add/sub must cancel exactly");
    assert_eq!(hist.count(), DEVICES as u64 + WORKERS as u64 * BURSTS);
    // Histogram sum is a CAS loop over f64 bits; every observation is an
    // exact small integer, so the sum must be exact too.
    let rayon_sum: f64 = (0..DEVICES / CHUNK)
        .map(|i| (i % 4) as f64 * 50.0 * CHUNK as f64)
        .sum();
    let thread_sum: f64 = WORKERS as f64 * (0..BURSTS).map(|j| j as f64).sum::<f64>();
    assert_eq!(hist.sum(), rayon_sum + thread_sum);
}

#[test]
fn racing_drains_never_tear_or_duplicate_spans() {
    let tracer = Arc::new(Tracer::new(1 << 16));
    let stop = Arc::new(AtomicBool::new(false));

    const WRITERS: usize = 6;
    const SPANS_PER_WRITER: u64 = 2000;

    let drains = std::thread::scope(|scope| {
        // Drainer races the writers, draining continuously.
        let drainer = {
            let tracer = Arc::clone(&tracer);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut collected = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    collected.push(tracer.drain());
                    std::thread::yield_now();
                }
                collected
            })
        };
        let writers: Vec<_> = (0..WRITERS as u64)
            .map(|w| {
                let tracer = Arc::clone(&tracer);
                scope.spawn(move || {
                    for i in 0..SPANS_PER_WRITER {
                        let _outer = tracer.span("outer", w);
                        tracer.event("tick", i);
                        let _inner = tracer.span("inner", i);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("writer panicked");
        }
        stop.store(true, Ordering::Relaxed);
        drainer.join().expect("drainer panicked")
    });

    // One final drain catches anything recorded after the drainer's last
    // sweep; all writers have finished, so every guard is closed.
    let mut records = Vec::new();
    let mut dropped = 0;
    for d in drains.into_iter().chain(std::iter::once(tracer.drain())) {
        dropped += d.dropped;
        records.extend(d.records);
    }
    assert_eq!(dropped, 0, "rings were sized to hold everything");

    // Exactly 3 records per (writer, iteration), each id exactly once
    // across all racing drains: nothing torn, nothing duplicated.
    let expected = WRITERS as u64 * SPANS_PER_WRITER * 3;
    assert_eq!(records.len() as u64, expected);
    let ids: HashSet<u64> = records.iter().map(|r| r.id).collect();
    assert_eq!(ids.len() as u64, expected, "every span id is unique");
    for label in ["outer", "inner", "tick"] {
        assert_eq!(
            records.iter().filter(|r| r.label == label).count() as u64,
            WRITERS as u64 * SPANS_PER_WRITER,
            "per-label totals exact for {label}"
        );
    }
    // The union of racing drains is a complete, well-nested trace.
    records.sort_by_key(|r| (r.start_ns, r.id));
    validate(&records).expect("well-nested despite racing drains");
}
