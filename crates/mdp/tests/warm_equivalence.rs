//! Property tests for the warm-started / coarse-to-fine solver paths
//! added for online recalibration.
//!
//! Three contracts, each over randomly generated device-like MDPs:
//!
//! 1. `solve_warm` from *any* finite seed reaches the same fixed point
//!    as the cold `solve` — values within the contraction stopping
//!    bound, and any policy disagreement confined to numerical Q-ties;
//! 2. the opt-in f32 sweep stays within `1e-3` of the f64 oracle for
//!    `rho <= 0.9` (the envelope documented on `Precision::F32`);
//! 3. the coarse-to-fine [`RecalibrationPipeline`] lands on the cold
//!    solver's fixed point regardless of the similarity matrix, theta
//!    ladder, or prior vector it is fed — the ladder is an accelerator,
//!    never an answer-changer.

use proptest::prelude::*;

use capman_mdp::matrix::SquareMatrix;
use capman_mdp::mdp::{Mdp, MdpBuilder};
use capman_mdp::pipeline::RecalibrationPipeline;
use capman_mdp::value_iteration::{solve, solve_warm, solve_warm_with, Precision, Solution};
use capman_mdp::ExecutionMode;

const N_ACTIONS: usize = 5;
const EPS: f64 = 1e-9;

type Tx = (usize, usize, usize, f64, f64);

/// Splitmix-style stream from a drawn seed, the same reproducibility
/// trick `csr_equivalence.rs` uses.
fn splitmix(seed: u64) -> impl FnMut(u64) -> u64 {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    }
}

/// A state count, a raw transition table and a seed for auxiliary draws
/// (warm-start vectors, similarity matrices). Sized to cross the
/// solver's parallel chunk boundary (64 states) in a good fraction of
/// cases.
fn arb_instance() -> impl Strategy<Value = (usize, Vec<Tx>, u64)> {
    (2usize..160, 0u64..1_000_000, 0usize..300).prop_map(|(n, seed, len)| {
        let mut next = splitmix(seed);
        let txs = (0..len)
            .map(|_| {
                (
                    next(n as u64) as usize,
                    next(N_ACTIONS as u64) as usize,
                    next(n as u64) as usize,
                    0.1 + next(1000) as f64 / 200.0,
                    next(1000) as f64 / 1000.0,
                )
            })
            .collect();
        (n, txs, seed)
    })
}

fn build(n: usize, txs: &[Tx]) -> Mdp {
    let mut b = MdpBuilder::new(n, N_ACTIONS);
    for &(s, a, to, w, rew) in txs {
        b.transition(s, a, to, w, rew);
    }
    b.build()
}

/// A finite but otherwise arbitrary warm-start vector in `[-10, 10)`.
fn arb_seed_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut next = splitmix(seed ^ 0x9e3779b97f4a7c15);
    (0..n)
        .map(|_| next(20_000) as f64 / 1000.0 - 10.0)
        .collect()
}

/// A symmetric similarity matrix with unit diagonal and random
/// off-diagonal mass — deliberately *not* a real structural-similarity
/// output, so the pipeline contract is exercised on adversarial
/// clusterings too.
fn arb_sigma(n: usize, seed: u64) -> SquareMatrix {
    let mut next = splitmix(seed ^ 0x5851f42d4c957f2d);
    let mut sigma = SquareMatrix::identity(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let v = next(1000) as f64 / 1000.0;
            sigma.set(i, j, v);
            sigma.set(j, i, v);
        }
    }
    sigma
}

/// Both solutions stop within `eps * rho / (1 - rho)` of the true fixed
/// point, so they sit within twice that of each other; policies may
/// only disagree where the Q values tie to within that same slack.
fn assert_same_fixed_point(a: &Solution, b: &Solution, rho: f64) {
    let tol = 2.0 * EPS * rho / (1.0 - rho) + 1e-12;
    for (s, (x, y)) in a.values.iter().zip(&b.values).enumerate() {
        assert!(
            (x - y).abs() <= tol,
            "V({s}) differs beyond the contraction bound: {x} vs {y}"
        );
    }
    assert_eq!(a.policy.len(), b.policy.len());
    for (s, (pa, pb)) in a.policy.iter().zip(&b.policy).enumerate() {
        if pa == pb {
            continue;
        }
        let (Some(aa), Some(ab)) = (*pa, *pb) else {
            panic!("state {s}: one solution thinks the state is absorbing ({pa:?} vs {pb:?})");
        };
        // Greedy argmax can flip on a numerical tie; the Q gap must
        // then be inside the value tolerance in *both* tables.
        let gap_a = (a.q[s][aa] - a.q[s][ab]).abs();
        let gap_b = (b.q[s][aa] - b.q[s][ab]).abs();
        assert!(
            gap_a <= tol && gap_b <= tol,
            "state {s}: policies pick {aa} vs {ab} with Q gaps {gap_a:e}/{gap_b:e} beyond tolerance"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn warm_solve_reaches_the_cold_fixed_point(
        (n, txs, seed) in arb_instance(),
        rho in 0.1f64..0.95,
    ) {
        let mdp = build(n, &txs);
        let cold = solve(&mdp, rho, EPS);
        let v0 = arb_seed_vector(n, seed);
        let warm = solve_warm(&mdp, rho, EPS, &v0, ExecutionMode::Serial);
        assert_same_fixed_point(&warm, &cold, rho);
    }

    #[test]
    fn warm_solve_from_the_answer_is_nearly_free(
        (n, txs, _) in arb_instance(),
        rho in 0.1f64..0.95,
    ) {
        let mdp = build(n, &txs);
        let cold = solve(&mdp, rho, EPS);
        let warm = solve_warm(&mdp, rho, EPS, &cold.values, ExecutionMode::Serial);
        // One sweep to confirm the residual is already below eps.
        prop_assert_eq!(warm.iterations, 1);
        assert_same_fixed_point(&warm, &cold, rho);
    }

    #[test]
    fn f32_sweep_stays_within_its_documented_envelope(
        (n, txs, _) in arb_instance(),
        rho in 0.1f64..0.9,
    ) {
        let mdp = build(n, &txs);
        let oracle = solve(&mdp, rho, EPS);
        let zeros = vec![0.0; n];
        let fast = solve_warm_with(
            &mdp,
            rho,
            EPS,
            &zeros,
            ExecutionMode::Serial,
            Precision::F32,
        );
        for (s, (x, y)) in fast.values.iter().zip(&oracle.values).enumerate() {
            prop_assert!(
                (x - y).abs() < 1e-3,
                "state {}: f32 {} drifted from f64 {}",
                s,
                x,
                y
            );
        }
    }

    #[test]
    fn pipeline_fixed_point_matches_the_direct_solve(
        (n, txs, seed) in arb_instance(),
        rho in 0.1f64..0.95,
        theta_coarse in 0.1f64..0.6,
        theta_fine in 0.01f64..0.1,
        with_prior in any::<bool>(),
    ) {
        let mdp = build(n, &txs);
        let sigma = arb_sigma(n, seed);
        let cold = solve(&mdp, rho, EPS);

        let prior = arb_seed_vector(n, seed.wrapping_add(1));
        let pipeline = RecalibrationPipeline::new(rho, EPS);
        let out = pipeline.solve(
            &mdp,
            &sigma,
            &[theta_coarse, theta_fine],
            with_prior.then_some(prior.as_slice()),
            ExecutionMode::Parallel,
        );
        prop_assert_eq!(out.warm_started, with_prior);
        assert_same_fixed_point(&out.solution, &cold, rho);
    }
}
