//! # CAPMAN — Cooling and Active Power Management for big.LITTLE batteries
//!
//! This is the facade crate of the CAPMAN reproduction. It re-exports the
//! workspace crates so examples and downstream users can depend on a
//! single `capman` crate:
//!
//! * [`battery`] — heterogeneous cell models, the big.LITTLE pack, the
//!   switch facility and the supercapacitor filter.
//! * [`thermal`] — the lumped thermal network and the thermoelectric
//!   cooler (TEC).
//! * [`device`] — smartphone power-state machines and power models.
//! * [`workload`] — the paper's workload generators.
//! * [`mdp`] — MDPs, value iteration, EMD, and the structural-similarity
//!   recursion.
//! * [`core`] — the CAPMAN scheduler, baselines, simulator, and
//!   experiment harness.
//! * [`obs`] — the observability substrate: span tracer, metrics
//!   registry, Chrome-trace/Prometheus exporters (instrumentation
//!   compiles in with `--features obs`).
//! * [`fleet`] — fleet-scale simulation: cohort plans, device arenas,
//!   and the background calibration pool.
//! * [`serve`] — the resident multi-tenant calibration service:
//!   admission control, priority lanes, and SLO enforcement.
//!
//! # Quickstart
//!
//! ```
//! use capman::core::experiments::{run_policy, PolicyKind};
//! use capman::workload::WorkloadKind;
//!
//! let outcome = run_policy(
//!     PolicyKind::Capman,
//!     WorkloadKind::Video,
//!     capman::device::PhoneProfile::nexus(),
//!     42,
//! );
//! assert!(outcome.service_time_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use capman_battery as battery;
pub use capman_core as core;
pub use capman_device as device;
pub use capman_fleet as fleet;
pub use capman_mdp as mdp;
pub use capman_obs as obs;
pub use capman_serve as serve;
pub use capman_thermal as thermal;
pub use capman_workload as workload;
