//! Parallel iteration over mutable slice chunks.

use crate::current_num_threads;

/// Extension trait mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Split into non-overlapping chunks of `chunk_size` (the last may
    /// be shorter), processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunks<'a, T> {
        EnumerateChunks {
            chunks: self.chunks,
        }
    }

    /// Apply `f` to every chunk, in parallel when cores allow.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|_, chunk| f(chunk));
    }
}

/// The enumerated form of [`ParChunksMut`].
pub struct EnumerateChunks<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<T: Send> EnumerateChunks<'_, T> {
    /// Apply `f(index, chunk)` to every chunk, in parallel when cores
    /// allow. Chunks are dealt round-robin to one worker per core; each
    /// chunk is visited exactly once, whatever the schedule.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize, &mut [T]) + Sync,
    {
        let workers = current_num_threads().min(self.chunks.len());
        if workers <= 1 {
            for (i, chunk) in self.chunks.into_iter().enumerate() {
                f(i, chunk);
            }
            return;
        }
        // Pre-deal the chunks so each worker owns a disjoint set.
        let mut per_worker: Vec<Vec<(usize, &mut [T])>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, chunk) in self.chunks.into_iter().enumerate() {
            per_worker[i % workers].push((i, chunk));
        }
        let f = &f;
        std::thread::scope(|scope| {
            for work in per_worker {
                scope.spawn(move || {
                    for (i, chunk) in work {
                        f(i, chunk);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_chunk_is_visited_once() {
        let mut data = vec![0u64; 1037];
        data.as_mut_slice()
            .par_chunks_mut(64)
            .enumerate()
            .for_each(|i, chunk| {
                for x in chunk.iter_mut() {
                    *x += 1 + i as u64;
                }
            });
        for (j, &x) in data.iter().enumerate() {
            assert_eq!(x, 1 + (j / 64) as u64, "element {j}");
        }
    }

    #[test]
    fn plain_for_each_works() {
        let mut data = vec![1i32; 100];
        data.as_mut_slice().par_chunks_mut(7).for_each(|chunk| {
            for x in chunk.iter_mut() {
                *x *= 2;
            }
        });
        assert!(data.iter().all(|&x| x == 2));
    }

    #[test]
    fn ragged_tail_chunk_is_included() {
        let mut data = vec![0u8; 10];
        data.as_mut_slice()
            .par_chunks_mut(4)
            .enumerate()
            .for_each(|i, chunk| chunk.fill(i as u8 + 1));
        assert_eq!(data, [1, 1, 1, 1, 2, 2, 2, 2, 3, 3]);
    }
}
