//! Calibration probe: prints the Fig. 12 service-time grid so model
//! constants can be tuned against the paper's orderings and factors.

use capman_core::experiments::{fig12_row, PolicyKind};
use capman_workload::WorkloadKind;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workload", "Oracle", "CAPMAN", "Heur", "Dual", "Practice"
    );
    for workload in WorkloadKind::fig12() {
        let outcomes = fig12_row(workload, seed);
        print!("{:<12}", workload.label());
        for o in &outcomes {
            print!(" {:>10.0}", o.service_time_s);
        }
        println!();
        // Key paper numbers as gains vs each baseline.
        let get = |k: PolicyKind| {
            outcomes
                .iter()
                .find(|o| o.policy == k.label())
                .expect("policy present")
        };
        let capman = get(PolicyKind::Capman);
        println!(
            "{:<12}  vs Heur {:+.1}%  vs Dual {:+.1}%  vs Practice {:+.1}%  vs Oracle {:+.1}%  switches={} tec_duty={:.2} maxT={:.1}C eff={:.2} end={:?}",
            "",
            capman.service_gain_pct(get(PolicyKind::Heuristic)),
            capman.service_gain_pct(get(PolicyKind::Dual)),
            capman.service_gain_pct(get(PolicyKind::Practice)),
            capman.service_gain_pct(get(PolicyKind::Oracle)),
            capman.switches,
            capman.tec_on_s / capman.service_time_s.max(1.0),
            capman.max_hotspot_c,
            capman.efficiency(),
            capman.end_reason,
        );
        for o in &outcomes {
            println!(
                "{:<12}  {:<9} end={:?} eff={:.2} work={:.0} heat_j={:.0} deliv_j={:.0} maxT={:.1} switches={}",
                "", o.policy, o.end_reason, o.efficiency(), o.work_served, o.energy_heat_j, o.energy_delivered_j, o.max_hotspot_c, o.switches
            );
        }
    }
}
